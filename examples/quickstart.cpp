// Quickstart: generate a small synthetic SSD fleet, run WEFR feature
// selection, train the paper's Random Forest predictor on the selected
// features, and evaluate drive-level precision / recall / F0.5.
//
//   ./examples/quickstart [model=MC1] [drives=800]
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/pipeline.h"
#include "core/wefr.h"
#include "smartsim/generator.h"
#include "util/strings.h"

using namespace wefr;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "MC1";
  std::size_t drives = 800;
  if (argc > 2 && !util::parse_int_as(argv[2], drives)) {
    std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
    return 2;
  }

  // 1. Simulate a fleet of one drive model (stand-in for SMART logs +
  //    trouble tickets; see DESIGN.md for the substitution rationale).
  smartsim::SimOptions sim;
  sim.num_drives = drives;
  sim.num_days = 220;
  sim.seed = 7;
  sim.afr_scale = 30.0;  // compressed-time hazard so failures are plentiful
  const auto fleet = generate_fleet(smartsim::profile_by_name(model), sim);
  std::printf("fleet: %s, %zu drives, %zu failed, %d days, %zu SMART features\n",
              fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
              fleet.num_days, fleet.num_features());

  // 2. Split time: train on the first ~130 days, validate to day 189,
  //    test on the last month.
  const auto phases = core::standard_phases(fleet.num_days, /*num_phases=*/1);
  const auto& phase = phases.back();
  const int train_end = static_cast<int>(phase.test_start * 0.8) - 1;

  // 3. WEFR feature selection on the training period.
  core::ExperimentConfig cfg;
  cfg.forest.num_trees = 30;  // paper uses 100; 30 keeps this demo snappy
  cfg.negative_keep_prob = 0.1;
  const auto selection_samples = core::build_selection_samples(fleet, 0, train_end, cfg);
  const auto wefr = core::run_wefr(fleet, selection_samples, train_end);

  std::printf("\nWEFR selected %zu of %zu features:", wefr.all.selected.size(),
              fleet.num_features());
  for (const auto& name : wefr.all.selected_names) std::printf(" %s", name.c_str());
  std::printf("\n");
  if (wefr.change_point.has_value()) {
    std::printf("wear-out change point at MWI_N = %.0f -> per-group feature sets\n",
                wefr.change_point->mwi_threshold);
    std::printf("  low  group: %zu features%s\n", wefr.low->selected.size(),
                wefr.low->fallback ? " (fallback)" : "");
    std::printf("  high group: %zu features%s\n", wefr.high->selected.size(),
                wefr.high->fallback ? " (fallback)" : "");
  } else {
    std::printf("no wear-out change point detected (narrow MWI_N range)\n");
  }

  // 4. Train the predictor (window-expanded features, wear routing).
  const auto predictor = core::train_predictor(fleet, wefr, 0, train_end, cfg);

  // 5. Score the test month daily and evaluate drive-level at the
  //    paper's fixed-recall operating point.
  const auto scores = core::score_fleet(fleet, predictor, phase.test_start,
                                        phase.test_end, cfg);
  const auto eval = core::evaluate_fixed_recall(fleet, scores, phase.test_start,
                                                phase.test_end, cfg.horizon_days,
                                                /*target_recall=*/0.3);
  std::printf("\ntest phase days %d-%d (30-day horizon):\n", phase.test_start,
              phase.test_end);
  std::printf("  precision  %.1f%%\n", eval.precision * 100.0);
  std::printf("  recall     %.1f%%\n", eval.recall * 100.0);
  std::printf("  F0.5       %.1f%%\n", eval.f05 * 100.0);
  std::printf("  alarms fire at score >= %.3f\n", eval.threshold);
  std::printf("  confusion: tp=%zu fp=%zu fn=%zu tn=%zu\n", eval.confusion.tp,
              eval.confusion.fp, eval.confusion.fn, eval.confusion.tn);
  return 0;
}
