// Wear-out study: builds Figure-1-style survival curves, runs Bayesian
// change-point detection, and shows how the top features differ between
// the low- and high-wear groups — Section III-C of the paper as a
// runnable walk-through.
//
//   ./examples/wearout_study [model=MC2] [drives=900]
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "core/ranker.h"
#include "core/survival.h"
#include "smartsim/generator.h"
#include "stats/ranking.h"
#include "util/strings.h"

using namespace wefr;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "MC2";
  std::size_t drives = 900;
  if (argc > 2 && !util::parse_int_as(argv[2], drives)) {
    std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
    return 2;
  }

  smartsim::SimOptions sim;
  sim.num_drives = drives;
  sim.num_days = 220;
  sim.seed = 13;
  sim.afr_scale = 30.0;
  const auto fleet = generate_fleet(smartsim::profile_by_name(model), sim);
  std::printf("%s: %zu drives, %zu failed\n\n", model.c_str(), fleet.drives.size(),
              fleet.num_failed());

  // --- survival curve (Figure 1) ---
  const auto curve = core::survival_vs_mwi(fleet, fleet.num_days - 1);
  std::printf("survival rate vs MWI_N (%zu values):\n", curve.mwi.size());
  for (std::size_t i = 0; i < curve.mwi.size(); ++i) {
    const int bars = static_cast<int>(curve.rate[i] * 50.0 + 0.5);
    std::printf("  %5.0f %6.3f |%.*s\n", curve.mwi[i], curve.rate[i], bars,
                "##################################################");
  }

  // --- change point ---
  const auto cp = core::detect_wear_change_point(curve);
  if (!cp.has_value()) {
    std::printf("\nno significant change point (like MB1/MB2 in the paper) — done.\n");
    return 0;
  }
  std::printf("\nmost significant change point: MWI_N = %.0f (z = %.2f)\n",
              cp->mwi_threshold, cp->zscore);
  if (smartsim::profile_by_name(model).firmware_bug) {
    std::printf("(%s plants a firmware bug among barely-worn drives, so survival\n"
                " is non-monotone in MWI_N — the paper's MC2 story)\n",
                model.c_str());
  }

  // --- per-group feature importance (Table V) ---
  core::ExperimentConfig cfg;
  cfg.negative_keep_prob = 0.12;
  const auto samples = core::build_selection_samples(fleet, 0, fleet.num_days - 1, cfg);
  const int mwi_col = fleet.feature_index("MWI_N");

  for (const bool low : {true, false}) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const bool is_low =
          samples.x(i, static_cast<std::size_t>(mwi_col)) <= cp->mwi_threshold;
      if (is_low == low) idx.push_back(i);
    }
    std::printf("\n%s-MWI_N group: %zu samples", low ? "low" : "high", idx.size());
    if (idx.size() < 200) {
      std::printf(" (too small to rank)\n");
      continue;
    }
    const auto group = data::subset(samples, idx);
    std::printf(" (%zu positive)\n", group.num_positive());
    core::RandomForestRanker ranker;
    const auto scores = ranker.score(group.x, group.y);
    const auto order = stats::order_by_score(scores);
    for (std::size_t r = 0; r < 5 && r < order.size(); ++r) {
      std::printf("  rank %zu: %-10s (importance %.3f)\n", r + 1,
                  group.feature_names[order[r]].c_str(), scores[order[r]]);
    }
  }
  std::printf("\nReading: wear features (MWI_N/POH_R) climb the ranking in the low\n"
              "group — why WEFR re-selects features per wear group.\n");
  return 0;
}
