// Operational example: a weekly monitoring loop over a live fleet, the
// deployment mode described in Section IV-D. Each week the monitor
//   1. rebuilds the survival-rate-vs-MWI_N curve from data seen so far,
//   2. re-runs Bayesian change-point detection,
//   3. re-selects features per wear group when the threshold moved,
//   4. retrains the predictor and emits decommission alarms for the
//      coming week.
//
// Each weekly pass is instrumented through wefr::obs: a live progress
// line reports how long selection / training / scoring took (per-stage
// Stopwatch laps) and how many trace spans the week produced.
//
//   ./examples/fleet_monitor [MODEL] [DRIVES] [CSV] [CACHE_DIR]
//
// All arguments are positional; defaults are MC1 / 500 / simulate.
// With a CSV path the fleet is loaded from that file (tolerant parse,
// forward-filled) instead of simulated; a CACHE_DIR on top turns
// repeat runs into a single mapped read of the binary columnar
// snapshot.
#include <cmath>
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/cache.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smartsim/generator.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace wefr;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "MC1";
  std::size_t drives = 500;
  if (argc > 2 && !util::parse_int_as(argv[2], drives)) {
    std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
    return 2;
  }
  const std::string csv_path = argc > 3 ? argv[3] : "";
  const std::string cache_dir = argc > 4 ? argv[4] : "";

  data::FleetData fleet;
  if (csv_path.empty()) {
    smartsim::SimOptions sim;
    sim.num_drives = drives;
    sim.num_days = 220;
    sim.seed = 11;
    sim.afr_scale = 30.0;
    fleet = generate_fleet(smartsim::profile_by_name(model), sim);
  } else {
    data::ReadOptions ropt;
    ropt.policy = data::ParsePolicy::kRecover;
    data::CacheOptions cache;
    cache.dir = cache_dir;
    data::IngestReport report;
    fleet = data::load_fleet_csv_cached(csv_path, model, ropt, cache, &report);
    std::printf("ingest %s: %s\n", csv_path.c_str(), report.summary().c_str());
    if (report.fatal) {
      std::fprintf(stderr, "unusable input: %s\n", report.fatal_detail.c_str());
      return 1;
    }
  }
  std::printf("monitoring %s fleet: %zu drives (%zu will fail)\n\n",
              fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed());

  core::ExperimentConfig cfg;
  cfg.forest.num_trees = 25;
  cfg.negative_keep_prob = 0.08;
  core::WefrOptions wopt;

  const int warmup = 150;       // need history before the first model
  const int week = 7;
  // Training negatives are downsampled, which inflates predicted
  // probabilities — alarm high. (core::FleetMonitor can instead
  // recalibrate this to a fixed-recall point each week.)
  const double alarm_threshold = 0.8;

  double last_threshold = -1.0;
  std::size_t alarms_total = 0, alarms_correct = 0;
  std::vector<bool> decommissioned(fleet.drives.size(), false);

  // One tracer/registry across the whole monitoring run; the lap clock
  // splits each weekly pass into its select / train / score stages.
  obs::Tracer tracer;
  obs::Registry registry;
  obs::Context ctx{&tracer, &registry};
  const obs::Context* obs = &ctx;
  util::Stopwatch lap_clock;

  for (int today = warmup; today + week <= fleet.num_days; today += week) {
    lap_clock.lap();
    const std::size_t spans_before = tracer.size();

    // -- re-check the wear-out change point on data up to 'today' --
    const auto selection = core::build_selection_samples(fleet, 0, today - 1, cfg, obs);
    const auto sel = core::run_wefr(fleet, selection, today - 1, wopt, nullptr, obs);
    const double select_s = lap_clock.lap();

    const double thr = sel.change_point.has_value() ? sel.change_point->mwi_threshold : -1.0;
    if (thr != last_threshold) {
      if (thr >= 0.0) {
        std::printf("[day %3d] wear threshold moved: MWI_N = %.0f; re-selected "
                    "features (all=%zu, low=%zu, high=%zu)\n",
                    today, thr, sel.all.selected.size(),
                    sel.low ? sel.low->selected.size() : 0,
                    sel.high ? sel.high->selected.size() : 0);
      } else {
        std::printf("[day %3d] no wear change point; single feature set (%zu)\n", today,
                    sel.all.selected.size());
      }
      last_threshold = thr;
    }

    // -- retrain and score the coming week --
    const auto predictor = core::train_predictor(fleet, sel, 0, today - 1, cfg, obs);
    const double train_s = lap_clock.lap();
    const auto scores =
        core::score_fleet(fleet, predictor, today, today + week - 1, cfg, nullptr, obs);
    const double score_s = lap_clock.lap();
    std::printf("[day %3d] select %.2fs, train %.2fs, score %.2fs (%zu spans)\n",
                today, select_s, train_s, score_s, tracer.size() - spans_before);

    for (const auto& ds : scores) {
      if (decommissioned[ds.drive_index]) continue;  // already pulled
      for (std::size_t i = 0; i < ds.scores.size(); ++i) {
        if (ds.scores[i] < alarm_threshold) continue;
        const int day = ds.first_day + static_cast<int>(i);
        const auto& drive = fleet.drives[ds.drive_index];
        const bool correct =
            drive.failed() && drive.fail_day > day && drive.fail_day <= day + 30;
        decommissioned[ds.drive_index] = true;
        ++alarms_total;
        alarms_correct += correct ? 1 : 0;
        std::printf("[day %3d] ALARM %s score=%.2f -> decommission (%s)\n", day,
                    drive.drive_id.c_str(), ds.scores[i],
                    correct ? "fails within 30d"
                            : (drive.failed() ? "fails later" : "healthy"));
        break;  // first alarm per drive per week
      }
    }
  }

  std::printf("\nsummary: %zu alarms, %zu correct (precision %.1f%%); %zu trace "
              "spans collected\n",
              alarms_total, alarms_correct,
              alarms_total == 0 ? 0.0
                                : 100.0 * static_cast<double>(alarms_correct) /
                                      static_cast<double>(alarms_total),
              tracer.size());
  return 0;
}
