// Operational example: a weekly monitoring loop over a live fleet, the
// deployment mode described in Section IV-D. Each week the monitor
//   1. rebuilds the survival-rate-vs-MWI_N curve from data seen so far,
//   2. re-runs Bayesian change-point detection,
//   3. re-selects features per wear group when the threshold moved,
//   4. retrains the predictor and emits decommission alarms for the
//      coming week.
//
// Each weekly pass is instrumented through wefr::obs: a live progress
// line reports how long selection / training / scoring took (per-stage
// Stopwatch laps) and how many trace spans the week produced.
//
//   ./examples/fleet_monitor [MODEL] [DRIVES] [CSV] [CACHE_DIR] [SHARDS]
//   ./examples/fleet_monitor --churn [DRIVES] [MIX] [CHURN]
//   ./examples/fleet_monitor --daemon [DRIVES]
//
// All arguments are positional; defaults are MC1 / 500 / simulate.
// With a CSV path the fleet is loaded from that file (tolerant parse,
// forward-filled) instead of simulated; a CACHE_DIR on top turns
// repeat runs into a single mapped read of the binary columnar
// snapshot. SHARDS > 0 scores each week through the multi-worker shard
// driver and prints the live per-shard health ledger (drives,
// drive-days, wall clock, straggler ratio) after every pass.
//
// The --churn mode runs the heterogeneous-fleet scenario instead: a
// mixed-model pool (MIX, parse_mix_spec syntax, default
// "MC1:0.6,MA2:0.4") hit by a churn schedule (CHURN, parse_churn_spec
// syntax, default a half-fleet replacement with a hot-wear cohort) is
// monitored by core::FleetMonitor with the online change-point drift
// watch enabled, and the re-check lag behind the planted population
// change is printed.
//
// The --daemon mode is the same weekly loop rebuilt as a wefrd client:
// the fleet is streamed into a resident daemon::Engine one drive-day at
// a time over the framed daemon protocol, the daemon runs the weekly
// re-check and drift watch in-process, scoring touches only the drives
// that changed, and the client survives a deliberate mid-stream
// connection drop by transparently reconnecting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/monitor.h"
#include "daemon/client.h"
#include "daemon/engine.h"
#include "daemon/server.h"
#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/cache.h"
#include "data/preprocess.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/driver.h"
#include "smartsim/generator.h"
#include "smartsim/mixed_fleet.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace wefr;

namespace {

/// The --churn scenario: mixed fleet + churn schedule + FleetMonitor
/// with the online drift watch, reporting the re-check lag behind each
/// planted population change.
int run_churn_scenario(std::size_t drives, const std::string& mix_spec,
                       const std::string& churn_spec) {
  smartsim::MixedFleetSpec spec;
  spec.shares = smartsim::parse_mix_spec(mix_spec);
  spec.sim.num_drives = drives;
  spec.sim.num_days = 220;
  spec.sim.seed = 11;
  spec.sim.afr_scale = 11.0;
  spec.churn = smartsim::parse_churn_spec(churn_spec, drives);

  auto res = smartsim::generate_mixed_fleet(spec);
  std::printf("mixed fleet %s: %zu drives (%zu will fail), %zu features\n",
              res.fleet.model_name.c_str(), res.fleet.drives.size(),
              res.fleet.num_failed(), res.fleet.num_features());
  std::printf("schema: %s\n", res.schema.summary().c_str());
  for (const auto& d : res.diagnostics) std::printf("degraded: %s\n", d.c_str());
  for (int d : res.churn_days)
    std::printf("churn day %d (%s)\n", d,
                std::count(res.drift_days.begin(), res.drift_days.end(), d) > 0
                    ? "with wear-distribution drift"
                    : "population only");
  data::forward_fill(res.fleet, 0.0);

  core::MonitorOptions mo;
  mo.experiment.forest.num_trees = 25;
  mo.experiment.negative_keep_prob = 0.08;
  mo.online_drift_check = true;
  mo.check_interval_days = 28;  // slow cadence: the drift watch must beat it
  mo.retrain_every_check = false;
  core::FleetMonitor monitor(res.fleet, mo);
  const auto alarms = monitor.run_to_end();

  std::printf("\n%zu alarms; %zu re-checks, %zu drift detections\n", alarms.size(),
              monitor.updates().size(), monitor.drift_detections().size());
  for (const auto& det : monitor.drift_detections())
    std::printf("drift detected day %d (p=%.2f)\n", det.day, det.probability);
  for (const auto& up : monitor.updates()) {
    if (!up.drift_triggered) continue;
    // Re-check lag: days between the most recent planted churn and the
    // drift-triggered re-check that responded to it.
    int planted = -1;
    for (int d : res.churn_days) {
      if (d <= up.day) planted = d;
    }
    if (planted >= 0)
      std::printf("drift-triggered re-check day %d: lag %d days behind churn day %d\n",
                  up.day, up.day - planted, planted);
  }
  if (monitor.drift_detections().empty())
    std::printf("no drift detections (nothing planted, or watch outpaced by cadence)\n");
  return 0;
}

/// The --daemon scenario: the weekly monitoring loop as a wefrd
/// client. The daemon owns all state; this process only streams
/// drive-days in and asks for scores back.
int run_daemon_scenario(std::size_t drives) {
  smartsim::SimOptions sim;
  sim.num_drives = drives;
  sim.num_days = 220;
  sim.seed = 11;
  sim.afr_scale = 30.0;
  const auto fleet = generate_fleet(smartsim::profile_by_name("MC1"), sim);
  std::printf("daemon-monitoring %s fleet: %zu drives (%zu will fail)\n\n",
              fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed());

  daemon::EngineOptions eopt;
  eopt.experiment.forest.num_trees = 25;
  eopt.experiment.negative_keep_prob = 0.08;
  eopt.warmup_days = 150;
  eopt.check_interval_days = 28;  // monthly re-check; drift can pull it in
  eopt.online_drift_check = true;
  // Retrain only when the selected feature set moves: a stable
  // predictor is what lets the weekly rescore touch just the ~7 new
  // days per drive instead of the whole history.
  eopt.retrain_every_check = false;
  daemon::Engine engine(eopt, eopt.experiment.windows);

  daemon::ServerOptions sopt;
  int loop_fd = -1;
#ifdef WEFR_FORCE_LOOPBACK_DAEMON
  // Sanitizer builds: same event loop over an in-process socketpair.
  daemon::Server server(engine, sopt);
  loop_fd = server.connect_loopback();
  if (loop_fd < 0) {
    std::fprintf(stderr, "loopback setup failed\n");
    return 1;
  }
#else
  sopt.socket_path = "/tmp/wefrd-example-" + std::to_string(::getpid()) + ".sock";
  daemon::Server server(engine, sopt);
  std::string lerr;
  if (!server.listen_unix(&lerr)) {
    std::fprintf(stderr, "listen failed: %s\n", lerr.c_str());
    return 1;
  }
#endif
  std::thread server_thread([&server] { server.run(); });

  daemon::Client::Options copt;
  copt.socket_path = sopt.socket_path;
  copt.client_name = "fleet_monitor";
  copt.model_name = fleet.model_name;
  copt.feature_names = fleet.feature_names;
  daemon::Client client(copt);
  std::string cerr_msg;
  const bool connected = loop_fd >= 0 ? client.adopt_fd(loop_fd, &cerr_msg)
                                      : client.connect(&cerr_msg);
  if (!connected) {
    std::fprintf(stderr, "connect failed: %s\n", cerr_msg.c_str());
    server.request_stop();
    server_thread.join();
    return 1;
  }

  const int week = 7;
  const double alarm_threshold = 0.8;
  std::size_t alarms_total = 0, alarms_correct = 0;
  std::vector<bool> decommissioned(fleet.drives.size(), false);
  bool dropped = false;
  daemon::Msg reply;
  std::string err;

  for (int day = 0; day < fleet.num_days; ++day) {
    if (!dropped && day == 180 && loop_fd < 0) {
      // Simulated client crash: the next request redials and re-hellos
      // behind the scenes — the daemon's resident state loses nothing.
      client.drop_connection_for_test();
      dropped = true;
      std::printf("[day %3d] dropped the connection mid-stream (daemon keeps state)\n",
                  day);
    }
    for (std::size_t i = 0; i < fleet.drives.size(); ++i) {
      const auto& d = fleet.drives[i];
      if (day < d.first_day || day > d.last_day()) continue;
      const auto row = d.values.row(static_cast<std::size_t>(day - d.first_day));
      if (!client.append_day(d.drive_id, day,
                             std::vector<double>(row.begin(), row.end()), d.fail_day,
                             reply, &err)) {
        std::fprintf(stderr, "append failed: %s\n", err.c_str());
        server.request_stop();
        server_thread.join();
        return 1;
      }
      if (reply.type == daemon::MsgType::kError) {
        std::fprintf(stderr, "append refused: %s\n", reply.text.c_str());
        server.request_stop();
        server_thread.join();
        return 1;
      }
    }

    // -- weekly: ask the daemon for fresh scores; alarm like the batch
    //    monitoring loop above --
    if ((day + 1) % week != 0 || day < eopt.warmup_days) continue;
    bool printed_week = false;
    for (std::size_t i = 0; i < fleet.drives.size(); ++i) {
      const auto& d = fleet.drives[i];
      if (decommissioned[i] || day < d.first_day || day > d.last_day()) continue;
      if (!client.score_drive(d.drive_id, reply, &err)) {
        std::fprintf(stderr, "score failed: %s\n", err.c_str());
        server.request_stop();
        server_thread.join();
        return 1;
      }
      if (reply.type == daemon::MsgType::kError) break;  // no predictor yet
      if (!printed_week && reply.drives_rescored > 0) {
        std::printf("[day %3d] rescore touched %llu drives / %llu drive-days\n", day,
                    static_cast<unsigned long long>(reply.drives_rescored),
                    static_cast<unsigned long long>(reply.days_scored));
        printed_week = true;
      }
      if (!reply.found || reply.score < alarm_threshold) continue;
      const bool correct = d.failed() && d.fail_day > reply.score_day &&
                           d.fail_day <= reply.score_day + 30;
      decommissioned[i] = true;
      ++alarms_total;
      alarms_correct += correct ? 1 : 0;
      std::printf("[day %3d] ALARM %s score=%.2f (day %d) -> decommission (%s)\n", day,
                  d.drive_id.c_str(), reply.score, reply.score_day,
                  correct ? "fails within 30d"
                          : (d.failed() ? "fails later" : "healthy"));
    }
  }

  if (client.report(reply, &err) && reply.type == daemon::MsgType::kReportOk) {
    std::printf("\ndaemon report: %s\n", reply.text.c_str());
  }
  client.shutdown_server(reply, &err);
  server_thread.join();

  std::printf("\nsummary: %zu alarms, %zu correct (precision %.1f%%); "
              "%zu re-checks, %zu drift detections, %llu reconnects\n",
              alarms_total, alarms_correct,
              alarms_total == 0 ? 0.0
                                : 100.0 * static_cast<double>(alarms_correct) /
                                      static_cast<double>(alarms_total),
              engine.checks().size(), engine.drift_detections().size(),
              static_cast<unsigned long long>(client.reconnects()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "MC1";
  if (model == "--daemon") {
    std::size_t daemon_drives = 400;
    if (argc > 2 && !util::parse_int_as(argv[2], daemon_drives)) {
      std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
      return 2;
    }
    return run_daemon_scenario(daemon_drives);
  }
  if (model == "--churn") {
    std::size_t churn_drives = 600;
    if (argc > 2 && !util::parse_int_as(argv[2], churn_drives)) {
      std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
      return 2;
    }
    const std::string mix = argc > 3 ? argv[3] : "MC1:0.6,MA2:0.4";
    const std::string churn = argc > 4 ? argv[4] : "replace@146:0.5:MC1:3.0";
    return run_churn_scenario(churn_drives, mix, churn);
  }
  std::size_t drives = 500;
  if (argc > 2 && !util::parse_int_as(argv[2], drives)) {
    std::fprintf(stderr, "bad drive count: %s\n", argv[2]);
    return 2;
  }
  const std::string csv_path = argc > 3 ? argv[3] : "";
  const std::string cache_dir = argc > 4 ? argv[4] : "";
  std::size_t shards = 0;
  if (argc > 5 && !util::parse_int_as(argv[5], shards)) {
    std::fprintf(stderr, "bad shard count: %s\n", argv[5]);
    return 2;
  }

  data::FleetData fleet;
  if (csv_path.empty()) {
    smartsim::SimOptions sim;
    sim.num_drives = drives;
    sim.num_days = 220;
    sim.seed = 11;
    sim.afr_scale = 30.0;
    fleet = generate_fleet(smartsim::profile_by_name(model), sim);
  } else {
    data::ReadOptions ropt;
    ropt.policy = data::ParsePolicy::kRecover;
    data::CacheOptions cache;
    cache.dir = cache_dir;
    data::IngestReport report;
    fleet = data::load_fleet_csv_cached(csv_path, model, ropt, cache, &report);
    std::printf("ingest %s: %s\n", csv_path.c_str(), report.summary().c_str());
    if (report.fatal) {
      std::fprintf(stderr, "unusable input: %s\n", report.fatal_detail.c_str());
      return 1;
    }
  }
  std::printf("monitoring %s fleet: %zu drives (%zu will fail)\n\n",
              fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed());

  core::ExperimentConfig cfg;
  cfg.forest.num_trees = 25;
  cfg.negative_keep_prob = 0.08;
  core::WefrOptions wopt;

  const int warmup = 150;       // need history before the first model
  const int week = 7;
  // Training negatives are downsampled, which inflates predicted
  // probabilities — alarm high. (core::FleetMonitor can instead
  // recalibrate this to a fixed-recall point each week.)
  const double alarm_threshold = 0.8;

  double last_threshold = -1.0;
  std::size_t alarms_total = 0, alarms_correct = 0;
  std::vector<bool> decommissioned(fleet.drives.size(), false);

  // One tracer/registry across the whole monitoring run; the lap clock
  // splits each weekly pass into its select / train / score stages.
  obs::Tracer tracer;
  obs::Registry registry;
  obs::Context ctx{&tracer, &registry};
  const obs::Context* obs = &ctx;
  util::Stopwatch lap_clock;

  for (int today = warmup; today + week <= fleet.num_days; today += week) {
    lap_clock.lap();
    const std::size_t spans_before = tracer.size();

    // -- re-check the wear-out change point on data up to 'today' --
    const auto selection = core::build_selection_samples(fleet, 0, today - 1, cfg, obs);
    const auto sel = core::run_wefr(fleet, selection, today - 1, wopt, nullptr, obs);
    const double select_s = lap_clock.lap();

    const double thr = sel.change_point.has_value() ? sel.change_point->mwi_threshold : -1.0;
    if (thr != last_threshold) {
      if (thr >= 0.0) {
        std::printf("[day %3d] wear threshold moved: MWI_N = %.0f; re-selected "
                    "features (all=%zu, low=%zu, high=%zu)\n",
                    today, thr, sel.all.selected.size(),
                    sel.low ? sel.low->selected.size() : 0,
                    sel.high ? sel.high->selected.size() : 0);
      } else {
        std::printf("[day %3d] no wear change point; single feature set (%zu)\n", today,
                    sel.all.selected.size());
      }
      last_threshold = thr;
    }

    // -- retrain and score the coming week --
    const auto predictor = core::train_predictor(fleet, sel, 0, today - 1, cfg, obs);
    const double train_s = lap_clock.lap();
    std::vector<core::DriveDayScores> scores;
    shard::ShardRunStats sstats;
    if (shards > 0) {
      shard::ShardOptions sopt;
      sopt.num_shards = shards;
      scores = shard::score_fleet_sharded(fleet, predictor, today, today + week - 1,
                                          cfg, sopt, nullptr, obs, &sstats, nullptr);
    } else {
      scores =
          core::score_fleet(fleet, predictor, today, today + week - 1, cfg, nullptr, obs);
    }
    const double score_s = lap_clock.lap();
    std::printf("[day %3d] select %.2fs, train %.2fs, score %.2fs (%zu spans)\n",
                today, select_s, train_s, score_s, tracer.size() - spans_before);
    if (shards > 0) {
      // Live shard health for this week's pass: what each worker owned,
      // how long it ran, and how lopsided the partition was.
      if (!sstats.fallback_reason.empty()) {
        std::printf("[day %3d]   shards fell back in-process: %s\n", today,
                    sstats.fallback_reason.c_str());
      } else {
        std::printf("[day %3d]  ", today);
        for (std::size_t s = 0; s < sstats.health.size(); ++s) {
          std::printf(" s%zu=%llu drives/%llu days/%.2fs", s,
                      static_cast<unsigned long long>(sstats.health[s].drives),
                      static_cast<unsigned long long>(sstats.health[s].rows),
                      sstats.health[s].wall_seconds);
        }
        std::printf(" straggler x%.2f\n", sstats.imbalance_ratio);
      }
    }

    for (const auto& ds : scores) {
      if (decommissioned[ds.drive_index]) continue;  // already pulled
      for (std::size_t i = 0; i < ds.scores.size(); ++i) {
        if (ds.scores[i] < alarm_threshold) continue;
        const int day = ds.first_day + static_cast<int>(i);
        const auto& drive = fleet.drives[ds.drive_index];
        const bool correct =
            drive.failed() && drive.fail_day > day && drive.fail_day <= day + 30;
        decommissioned[ds.drive_index] = true;
        ++alarms_total;
        alarms_correct += correct ? 1 : 0;
        std::printf("[day %3d] ALARM %s score=%.2f -> decommission (%s)\n", day,
                    drive.drive_id.c_str(), ds.scores[i],
                    correct ? "fails within 30d"
                            : (drive.failed() ? "fails later" : "healthy"));
        break;  // first alarm per drive per week
      }
    }
  }

  std::printf("\nsummary: %zu alarms, %zu correct (precision %.1f%%); %zu trace "
              "spans collected\n",
              alarms_total, alarms_correct,
              alarms_total == 0 ? 0.0
                                : 100.0 * static_cast<double>(alarms_correct) /
                                      static_cast<double>(alarms_total),
              tracer.size());
  return 0;
}
