// Compares the five preliminary feature-selection approaches and WEFR's
// ensemble against the simulator's planted ground truth, for every
// drive model. Because the generator knows which attributes actually
// carry the failure signature, this example can score each selector's
// top-k hit rate directly — something impossible on a real fleet.
//
//   ./examples/selector_comparison [drives_per_model=600]
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "core/ensemble.h"
#include "core/pipeline.h"
#include "core/ranker.h"
#include "smartsim/generator.h"
#include "stats/ranking.h"
#include "util/strings.h"
#include "util/table.h"

using namespace wefr;

namespace {

/// Ground-truth relevant feature names: both channels of the signature
/// attributes, plus the wear features when the model has a wear regime.
std::set<std::string> relevant_features(const smartsim::DriveModelProfile& profile) {
  std::set<std::string> out;
  for (auto attr : profile.signature_attrs) {
    out.insert(std::string(smartsim::attr_name(attr)) + "_R");
    out.insert(std::string(smartsim::attr_name(attr)) + "_N");
  }
  if (profile.wear_change_point > 0.0) {
    out.insert("MWI_N");
    out.insert("MWI_R");
    out.insert("POH_R");
  }
  return out;
}

double hit_rate(const std::vector<std::size_t>& order,
                const std::vector<std::string>& names,
                const std::set<std::string>& relevant, std::size_t k) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k && i < order.size(); ++i) {
    hits += relevant.count(names[order[i]]) > 0 ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(std::min(k, relevant.size()));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t drives = 600;
  if (argc > 1 && !util::parse_int_as(argv[1], drives)) {
    std::fprintf(stderr, "bad drive count: %s\n", argv[1]);
    return 2;
  }
  std::printf("selector-vs-ground-truth comparison (%zu drives per model)\n\n", drives);

  core::ExperimentConfig cfg;
  cfg.negative_keep_prob = 0.1;

  util::AsciiTable table;
  table.set_header({"Model", "Pearson", "Spearman", "J-index", "RandomForest", "XGBoost",
                    "WEFR ensemble"});

  for (const auto& profile : smartsim::standard_profiles()) {
    smartsim::SimOptions sim;
    sim.num_drives = drives;
    sim.num_days = 220;
    sim.seed = 99 + profile.population_share * 1000;
    sim.afr_scale = 30.0;
    const auto fleet = generate_fleet(profile, sim);
    const auto samples =
        core::build_selection_samples(fleet, 0, fleet.num_days - 1, cfg);
    const auto relevant = relevant_features(profile);
    const std::size_t k = relevant.size();

    const auto rankers = core::make_standard_rankers();
    std::vector<std::string> row = {profile.name};
    for (const auto& ranker : rankers) {
      const auto order = stats::order_by_score(ranker->score(samples.x, samples.y));
      row.push_back(util::format_percent(
          hit_rate(order, samples.feature_names, relevant, k)));
    }
    const auto ensemble = core::ensemble_rank(rankers, samples.x, samples.y);
    row.push_back(util::format_percent(
        hit_rate(ensemble.order, samples.feature_names, relevant, k)));
    table.add_row(row);
    std::printf("[%s] done (%zu relevant features planted)\n", profile.name.c_str(), k);
    std::fflush(stdout);
  }

  std::printf("\ntop-k hit rate against planted ground truth (k = #relevant):\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading: no single selector wins on every model; the ensemble\n"
              "tracks the best of them — the paper's robustness argument.\n");
  return 0;
}
