// wefr_simulate — emit a synthetic SMART-log fleet as CSV.
//
//   wefr_simulate --model MC1 --drives 1000 --days 220 --seed 42 \
//                 --afr-scale 15 --out mc1.csv
//
// The CSV is the long format read back by wefr_select / read_fleet_csv:
//   drive_id,day,failed,fail_day,<feature...>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "data/csv.h"
#include "smartsim/generator.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefr_simulate [--model NAME] [--drives N] [--days N]\n"
               "                     [--seed N] [--afr-scale X] [--out FILE]\n"
               "models: MA1 MA2 MB1 MB2 MC1 MC2 (default MC1)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "MC1";
  std::string out_path;
  smartsim::SimOptions opt;
  opt.num_drives = 1000;
  opt.num_days = 220;
  opt.seed = 42;
  opt.afr_scale = 15.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    double v = 0.0;
    if (arg == "--model") {
      model = next();
    } else if (arg == "--drives" && util::parse_double(next(), v)) {
      opt.num_drives = static_cast<std::size_t>(v);
    } else if (arg == "--days" && util::parse_double(next(), v)) {
      opt.num_days = static_cast<int>(v);
    } else if (arg == "--seed" && util::parse_double(next(), v)) {
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--afr-scale" && util::parse_double(next(), v)) {
      opt.afr_scale = v;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    const auto fleet = generate_fleet(smartsim::profile_by_name(model), opt);
    std::fprintf(stderr, "generated %s: %zu drives, %zu failed, %d days, AFR %.2f%%\n",
                 fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
                 fleet.num_days, fleet.afr_percent());
    if (out_path.empty()) {
      data::write_fleet_csv(fleet, std::cout);
    } else {
      data::write_fleet_csv(fleet, out_path);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
