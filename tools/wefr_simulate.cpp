// wefr_simulate — emit a synthetic SMART-log fleet as CSV.
//
//   wefr_simulate --model MC1 --drives 1000 --days 220 --seed 42
//                 --afr-scale 15 --out mc1.csv
//
// The CSV is the long format read back by wefr_select / read_fleet_csv:
//   drive_id,day,failed,fail_day,<feature...>
//
// --mix replaces the single-model fleet with a heterogeneous pool
// ("MC1:0.5,MA1:0.3,HDD1:0.2"): one sub-fleet per share, schemas
// reconciled into one union namespace. --churn layers a population
// schedule on top ("replace@120:0.3:MC2:2.0" — see parse_churn_spec).
//
// --faults injects seeded corruption into the emitted CSV (testing the
// tolerant ingestion path): a comma-separated name:rate list over
// truncate, nan_burst, stuck, duplicate, out_of_order, bitflip,
// missing_column, or "mix:R" for a blend of all seven.
//
// --cache-dir warms the binary columnar fleet cache right after the
// CSV is written (uncorrupted output only): the snapshot is parsed
// once here so the first wefr_select run against the file starts from
// a cache hit instead of a full parse.
//
// --trace-out / --metrics-out / --report-out mirror wefr_select's obs
// outputs for the generate -> corrupt -> write stages.
//
// --log-level {quiet,info,debug} controls the structured progress log
// on stderr; the CSV itself (stdout when --out is omitted) is never
// affected.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli_common.h"
#include "data/cache.h"
#include "data/csv.h"
#include "obs/context.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "shard/hashring.h"
#include "smartsim/faultsim.h"
#include "smartsim/generator.h"
#include "smartsim/mixed_fleet.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefr_simulate [--model NAME] [--drives N] [--days N]\n"
               "                     [--seed N] [--afr-scale X] [--out FILE]\n"
               "                     [--mix SPEC] [--churn SPEC]\n"
               "                     [--faults SPEC] [--fault-seed N]\n"
               "                     [--cache-dir DIR] [--shards N]\n"
               "                     [--log-level quiet|info|debug]\n"
               "                     [--trace-out FILE] [--metrics-out FILE]\n"
               "                     [--report-out FILE]\n"
               "models: MA1 MA2 MB1 MB2 MC1 MC2 HDD1 (default MC1)\n"
               "mix spec: MODEL:SHARE[,MODEL:SHARE...], e.g. MC1:0.6,HDD1:0.4\n"
               "churn spec: kind@day:fraction[:model[:wear_mult]] with kind\n"
               "            in retire/add/replace, e.g. replace@120:0.3:MC2:2.0\n"
               "fault spec: name:rate[,name:rate...] over truncate nan_burst\n"
               "            stuck duplicate out_of_order bitflip missing_column,\n"
               "            or mix:R\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "MC1";
  std::string mix_spec, churn_spec;
  std::string out_path;
  std::string fault_spec;
  std::string cache_dir;
  std::uint64_t fault_seed = 0x5eedfau;
  int shards = 0;  // 0 = no shard-plan preview
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  smartsim::SimOptions opt;
  opt.num_drives = 1000;
  opt.num_days = 220;
  opt.seed = 42;
  opt.afr_scale = 15.0;
  tools::ToolObs tobs;

  tools::ArgCursor cur(argc, argv, usage);
  while (cur.take()) {
    const std::string& arg = cur.arg();
    double v = 0.0;
    if (arg == "--model") {
      model = cur.value();
    } else if (arg == "--drives" && util::parse_int_as(cur.value(), opt.num_drives)) {
      // parsed in the condition
    } else if (arg == "--days" && util::parse_int_as(cur.value(), opt.num_days)) {
      // parsed in the condition
    } else if (arg == "--seed" && util::parse_int_as(cur.value(), opt.seed)) {
      // parsed in the condition
    } else if (arg == "--afr-scale" && util::parse_double(cur.value(), v)) {
      opt.afr_scale = v;
    } else if (arg == "--out") {
      out_path = cur.value();
    } else if (arg == "--mix") {
      mix_spec = cur.value();
    } else if (arg == "--churn") {
      churn_spec = cur.value();
    } else if (arg == "--faults") {
      fault_spec = cur.value();
    } else if (arg == "--fault-seed" && util::parse_int_as(cur.value(), fault_seed)) {
      // parsed in the condition
    } else if (arg == "--cache-dir") {
      cache_dir = cur.value();
    } else if (arg == "--shards" && util::parse_int_as(cur.value(), shards)) {
      if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
    } else if (arg == "--log-level") {
      if (!tools::parse_log_level_flag(cur.value(), log_level)) {
        usage();
        return 2;
      }
    } else if (arg == "--trace-out") {
      tobs.trace_out = cur.value();
    } else if (arg == "--metrics-out") {
      tobs.metrics_out = cur.value();
    } else if (arg == "--report-out") {
      tobs.report_out = cur.value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  const bool obs_enabled = tobs.enabled();
  const obs::Context* obs = tobs.context();
  obs::Logger logger(log_level);

  try {
    obs::Span root(obs, "wefr_simulate");

    data::FleetData fleet;
    if (mix_spec.empty()) {
      if (!churn_spec.empty()) {
        std::fprintf(stderr, "--churn requires --mix\n");
        return 2;
      }
      obs::Span gen_span(obs, "simulate:generate");
      fleet = generate_fleet(smartsim::profile_by_name(model), opt);
    } else {
      obs::Span gen_span(obs, "simulate:generate_mixed");
      smartsim::MixedFleetSpec spec;
      spec.shares = smartsim::parse_mix_spec(mix_spec);
      spec.churn = smartsim::parse_churn_spec(churn_spec, opt.num_drives);
      spec.sim = opt;
      auto mixed = smartsim::generate_mixed_fleet(spec);
      logger.infof("generate", "schema: %s", mixed.schema.summary().c_str());
      for (const auto& d : mixed.diagnostics)
        logger.infof("generate", "degraded: %s", d.c_str());
      if (mixed.drives_retired + mixed.drives_added > 0)
        logger.infof("generate", "churn: %zu drives retired, %zu added",
                     mixed.drives_retired, mixed.drives_added);
      fleet = std::move(mixed.fleet);
      model = fleet.model_name;  // cache key below follows the pool name
    }
    logger.infof("generate", "%s: %zu drives, %zu failed, %d days, AFR %.2f%%",
                 fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
                 fleet.num_days, fleet.afr_percent());
    if (shards > 0) {
      // Preview of how wefr_select --shards N would own this fleet:
      // the hashring is keyed purely on drive ids, so the plan printed
      // here is exactly the selection-time partition — including the
      // imbalance a straggler-prone partition would show in the shard
      // health ledger.
      const auto plan =
          shard::partition_fleet(fleet, static_cast<std::size_t>(shards));
      std::vector<std::size_t> sizes;
      for (const auto& p : plan) sizes.push_back(p.size());
      std::sort(sizes.begin(), sizes.end());
      const std::size_t max_drives = sizes.empty() ? 0 : sizes.back();
      const double median_drives =
          sizes.empty() ? 0.0
          : sizes.size() % 2 == 1
              ? static_cast<double>(sizes[sizes.size() / 2])
              : 0.5 * static_cast<double>(sizes[sizes.size() / 2 - 1] +
                                          sizes[sizes.size() / 2]);
      logger.infof("shard",
                   "plan: %d workers, max/median %zu/%.1f drives (imbalance x%.2f)",
                   shards, max_drives, median_drives,
                   median_drives > 0.0 ? static_cast<double>(max_drives) / median_drives
                                       : 0.0);
      for (std::size_t s = 0; s < plan.size(); ++s)
        logger.debugf("shard", "  s%zu: %zu drives", s, plan[s].size());
    }
    if (obs_enabled) {
      obs::add_counter(obs, "wefr_sim_drives_total", fleet.drives.size());
      obs::add_counter(obs, "wefr_sim_drives_failed_total", fleet.num_failed());
      std::size_t drive_days = 0;
      for (const auto& d : fleet.drives) drive_days += d.num_days();
      obs::add_counter(obs, "wefr_sim_drive_days_total", drive_days);
    }

    smartsim::FaultLog log;
    const smartsim::FaultPlan plan = smartsim::parse_fault_plan(fault_spec);
    if (plan.empty()) {
      obs::Span write_span(obs, "simulate:write");
      if (out_path.empty()) {
        data::write_fleet_csv(fleet, std::cout);
      } else {
        data::write_fleet_csv(fleet, out_path);
        logger.infof("write", "wrote %s", out_path.c_str());
      }
    } else {
      smartsim::FaultPlan seeded = plan;
      seeded.seed = fault_seed;
      std::ostringstream os;
      data::write_fleet_csv(fleet, os);
      std::string corrupted;
      {
        obs::Span corrupt_span(obs, "simulate:corrupt");
        corrupted = smartsim::corrupt_csv(os.str(), seeded, &log);
      }
      logger.infof("corrupt", "%s", log.summary().c_str());
      if (obs_enabled) {
        obs::add_counter(obs, "wefr_sim_faults_applied_total", log.total_applied());
        obs::add_counter(obs, "wefr_sim_fault_rows_touched_total", log.rows_touched);
        obs::add_counter(obs, "wefr_sim_nonfinite_flips_total", log.nonfinite_flips);
      }
      obs::Span write_span(obs, "simulate:write");
      if (out_path.empty()) {
        std::cout << corrupted;
      } else {
        std::ofstream ofs(out_path);
        if (!ofs) throw std::runtime_error("cannot open " + out_path);
        ofs << corrupted;
        logger.infof("write", "wrote %s", out_path.c_str());
      }
    }

    // Warm the columnar cache for the file just written (clean output
    // only: corrupted CSVs are meant to exercise the parser, not skip
    // it). Snapshots are keyed by parse policy; recover is what the
    // production loaders use, so pair it with
    // `wefr_select --policy recover --cache-dir ...` for a first-run
    // cache hit.
    if (!cache_dir.empty() && !out_path.empty() && plan.empty()) {
      obs::Span warm_span(obs, "simulate:warm_cache");
      data::ReadOptions ropt;
      ropt.policy = data::ParsePolicy::kRecover;
      data::CacheOptions cache;
      cache.dir = cache_dir;
      cache.refresh = true;
      data::IngestReport report;
      data::load_fleet_csv_cached(out_path, model, ropt, cache, &report, obs);
      logger.infof("cache", "warmed fleet cache in %s (%s)", cache_dir.c_str(),
                   report.summary().c_str());
    }

    if (obs_enabled) {
      root.finish();
      tobs.write_outputs(logger);
      if (!tobs.report_out.empty()) {
        obs::RunReport run_report;
        run_report.tool = "wefr_simulate";
        run_report.model = fleet.model_name;
        run_report.run_info["drives"] = static_cast<double>(fleet.drives.size());
        run_report.run_info["drives_failed"] = static_cast<double>(fleet.num_failed());
        run_report.run_info["days"] = static_cast<double>(fleet.num_days);
        run_report.run_info["features"] = static_cast<double>(fleet.num_features());
        run_report.params["seed"] = std::to_string(opt.seed);
        run_report.params["afr_scale"] = std::to_string(opt.afr_scale);
        if (!fault_spec.empty()) {
          run_report.params["faults"] = fault_spec;
          run_report.params["fault_seed"] = std::to_string(fault_seed);
        }
        run_report.tracer = &tobs.tracer;
        run_report.metrics = &tobs.registry;
        run_report.write_json_file(tobs.report_out);
        logger.infof("obs", "wrote run report to %s", tobs.report_out.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
