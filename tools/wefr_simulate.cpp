// wefr_simulate — emit a synthetic SMART-log fleet as CSV.
//
//   wefr_simulate --model MC1 --drives 1000 --days 220 --seed 42
//                 --afr-scale 15 --out mc1.csv
//
// The CSV is the long format read back by wefr_select / read_fleet_csv:
//   drive_id,day,failed,fail_day,<feature...>
//
// --faults injects seeded corruption into the emitted CSV (testing the
// tolerant ingestion path): a comma-separated name:rate list over
// truncate, nan_burst, stuck, duplicate, out_of_order, bitflip, or
// "mix:R" for a blend of all six.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "data/csv.h"
#include "smartsim/faultsim.h"
#include "smartsim/generator.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefr_simulate [--model NAME] [--drives N] [--days N]\n"
               "                     [--seed N] [--afr-scale X] [--out FILE]\n"
               "                     [--faults SPEC] [--fault-seed N]\n"
               "models: MA1 MA2 MB1 MB2 MC1 MC2 (default MC1)\n"
               "fault spec: name:rate[,name:rate...] over truncate nan_burst\n"
               "            stuck duplicate out_of_order bitflip, or mix:R\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "MC1";
  std::string out_path;
  std::string fault_spec;
  std::uint64_t fault_seed = 0x5eedfau;
  smartsim::SimOptions opt;
  opt.num_drives = 1000;
  opt.num_days = 220;
  opt.seed = 42;
  opt.afr_scale = 15.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    double v = 0.0;
    if (arg == "--model") {
      model = next();
    } else if (arg == "--drives" && util::parse_double(next(), v)) {
      opt.num_drives = static_cast<std::size_t>(v);
    } else if (arg == "--days" && util::parse_double(next(), v)) {
      opt.num_days = static_cast<int>(v);
    } else if (arg == "--seed" && util::parse_double(next(), v)) {
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--afr-scale" && util::parse_double(next(), v)) {
      opt.afr_scale = v;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--faults") {
      fault_spec = next();
    } else if (arg == "--fault-seed" && util::parse_double(next(), v)) {
      fault_seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    const auto fleet = generate_fleet(smartsim::profile_by_name(model), opt);
    std::fprintf(stderr, "generated %s: %zu drives, %zu failed, %d days, AFR %.2f%%\n",
                 fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
                 fleet.num_days, fleet.afr_percent());

    const smartsim::FaultPlan plan = smartsim::parse_fault_plan(fault_spec);
    if (plan.empty()) {
      if (out_path.empty()) {
        data::write_fleet_csv(fleet, std::cout);
      } else {
        data::write_fleet_csv(fleet, out_path);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
      }
    } else {
      smartsim::FaultPlan seeded = plan;
      seeded.seed = fault_seed;
      std::ostringstream os;
      data::write_fleet_csv(fleet, os);
      smartsim::FaultLog log;
      const std::string corrupted = smartsim::corrupt_csv(os.str(), seeded, &log);
      std::fprintf(stderr, "%s\n", log.summary().c_str());
      if (out_path.empty()) {
        std::cout << corrupted;
      } else {
        std::ofstream ofs(out_path);
        if (!ofs) throw std::runtime_error("cannot open " + out_path);
        ofs << corrupted;
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
