// wefrd — the resident fleet-scoring daemon.
//
//   wefrd --socket /run/wefrd.sock [--snapshot state.wefrds]
//         [--model MC1] [--check-interval 7] [--warmup 120]
//         [--horizon 30] [--trees 100] [--threads 0]
//         [--no-drift-watch] [--oracle-check]
//         [--log-level quiet|info|debug] [--metrics-out FILE]
//
// Holds the fleet resident in memory so a day of observations costs
// O(changed drives), not a full-pipeline rerun: clients stream
// drive-days over a Unix-domain socket (WEFRDM01 frames; see
// daemon/protocol.h) and ask for scores back, while the daemon keeps
// each drive's streaming-kernel state current and re-runs forest
// inference only for drives whose windows actually changed. The
// paper's periodic re-check (feature re-selection + retrain) and the
// online drift watch run in-process as the day watermark advances.
//
// --snapshot names a WEFRDS01 state file: loaded at startup when it
// exists (a damaged file is refused, not discarded), written on clean
// shutdown and on client kSaveSnapshot requests. SIGINT/SIGTERM stop
// the loop cleanly, so a restart resumes from the last appended day —
// clients reconnect and continue (see daemon/client.h).
//
// --oracle-check makes every rescore verify itself bit-for-bit against
// the from-scratch batch pipeline (expensive; for soak tests).
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cli_common.h"
#include "daemon/engine.h"
#include "daemon/server.h"
#include "data/cache.h"
#include "obs/log.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefrd --socket PATH [--snapshot FILE] [--model NAME]\n"
               "             [--check-interval N] [--warmup N] [--horizon N]\n"
               "             [--trees N] [--threads N] [--no-drift-watch]\n"
               "             [--oracle-check] [--log-level quiet|info|debug]\n"
               "             [--metrics-out FILE]\n");
}

daemon::Server* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  daemon::ServerOptions sopt;
  daemon::EngineOptions eopt;
  std::string model;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  tools::ToolObs tobs;
  eopt.online_drift_check = true;

  tools::ArgCursor cur(argc, argv, usage);
  while (cur.take()) {
    const std::string& arg = cur.arg();
    if (arg == "--socket") {
      sopt.socket_path = cur.value();
    } else if (arg == "--snapshot") {
      sopt.snapshot_path = cur.value();
    } else if (arg == "--model") {
      model = cur.value();
    } else if (arg == "--check-interval" &&
               util::parse_int_as(cur.value(), eopt.check_interval_days)) {
      // parsed in the condition
    } else if (arg == "--warmup" && util::parse_int_as(cur.value(), eopt.warmup_days)) {
      // parsed in the condition
    } else if (arg == "--horizon" &&
               util::parse_int_as(cur.value(), eopt.experiment.horizon_days)) {
      // parsed in the condition
    } else if (arg == "--trees" &&
               util::parse_int_as(cur.value(), eopt.experiment.forest.num_trees)) {
      // parsed in the condition
    } else if (arg == "--threads" &&
               util::parse_int_as(cur.value(), eopt.experiment.num_threads)) {
      // parsed in the condition
    } else if (arg == "--no-drift-watch") {
      eopt.online_drift_check = false;
    } else if (arg == "--oracle-check") {
      eopt.oracle_check = true;
    } else if (arg == "--log-level") {
      if (!tools::parse_log_level_flag(cur.value(), log_level)) {
        usage();
        return 2;
      }
    } else if (arg == "--metrics-out") {
      tobs.metrics_out = cur.value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (sopt.socket_path.empty()) {
    usage();
    return 2;
  }

  obs::Logger log(log_level);
  try {
    daemon::Engine engine(eopt, eopt.experiment.windows, tobs.context(), &log);

    if (!sopt.snapshot_path.empty() && std::filesystem::exists(sopt.snapshot_path)) {
      std::string payload, why;
      if (!data::read_daemon_snapshot(sopt.snapshot_path, payload, &why) ||
          !engine.load_snapshot(payload, &why)) {
        // A damaged snapshot is refused, never silently discarded:
        // restarting fresh would fork the scoring history.
        std::fprintf(stderr, "error: snapshot %s unusable: %s\n",
                     sopt.snapshot_path.c_str(), why.c_str());
        return 1;
      }
      log.infof("wefrd", "restored %zu drives through day %d from %s",
                engine.resident().num_drives(), engine.resident().max_day(),
                sopt.snapshot_path.c_str());
    }
    if (!model.empty() && engine.resident().has_schema() &&
        engine.fleet().model_name != model) {
      std::fprintf(stderr, "error: snapshot holds model %s, --model asked for %s\n",
                   engine.fleet().model_name.c_str(), model.c_str());
      return 1;
    }

    daemon::Server server(engine, sopt, &log);
    std::string err;
    if (!server.listen_unix(&err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    log.infof("wefrd", "listening on %s (check interval %dd, warmup %dd, drift %s)",
              sopt.socket_path.c_str(), eopt.check_interval_days, eopt.warmup_days,
              eopt.online_drift_check ? "on" : "off");

    g_server = &server;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    server.run();
    g_server = nullptr;

    if (!sopt.snapshot_path.empty()) {
      std::string why;
      if (!data::write_daemon_snapshot(sopt.snapshot_path, engine.save_snapshot(),
                                       &why)) {
        std::fprintf(stderr, "error: saving snapshot: %s\n", why.c_str());
        return 1;
      }
      log.infof("wefrd", "saved snapshot to %s", sopt.snapshot_path.c_str());
    }
    log.infof("wefrd",
              "served %llu connections, %llu frames ok, %llu rejected; "
              "%zu checks, %zu drift detections",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_ok()),
              static_cast<unsigned long long>(server.frames_rejected()),
              engine.checks().size(), engine.drift_detections().size());
    tobs.write_outputs(log);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
