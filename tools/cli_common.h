// Shared command-line plumbing for the wefr_* tools.
//
// Every tool speaks the same flag dialect: `--flag VALUE` pairs, a
// missing value prints the tool's usage and exits 2, and the obs
// triple --trace-out/--metrics-out/--report-out switches the run's
// instrumentation on. This header holds the pieces that dialect
// shares — the argv cursor, the small flag parsers, and the obs bundle
// with its output writer — so the tools differ only in what they do,
// not in how they are driven.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "data/csv.h"
#include "obs/context.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wefr::tools {

/// Cursor over argv implementing the tools' flag conventions.
///
///   ArgCursor cur(argc, argv, usage);
///   while (cur.take()) {
///     const std::string& arg = cur.arg();
///     if (arg == "--in") in_path = cur.value();
///     ...
///   }
///
/// value() consumes the current flag's argument; when it is missing the
/// cursor prints the tool's usage and exits 2 (the historical behavior
/// of every tool's `next` lambda).
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv, void (*usage)())
      : argc_(argc), argv_(argv), usage_(usage) {}

  /// Advances to the next argument; false once argv is exhausted.
  bool take() {
    if (i_ + 1 >= argc_) return false;
    arg_ = argv_[++i_];
    return true;
  }

  const std::string& arg() const { return arg_; }

  /// The current flag's value argument.
  const char* value() {
    if (i_ + 1 >= argc_) {
      usage_();
      std::exit(2);
    }
    return argv_[++i_];
  }

 private:
  int argc_;
  char** argv_;
  void (*usage_)();
  int i_ = 0;
  std::string arg_;
};

/// Metrics go out as Prometheus text exposition when the file name says
/// so, JSON otherwise.
inline bool wants_prometheus(const std::string& path) {
  const std::string_view p = path;
  return p.ends_with(".prom") || p.ends_with(".txt");
}

inline std::ofstream open_or_throw(const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("cannot open " + path);
  return ofs;
}

/// Parses a --policy argument (strict | recover | skip-drive). False
/// with a message on stderr for anything else.
inline bool parse_policy_flag(const std::string& name, data::ParsePolicy& policy) {
  if (name == "strict") {
    policy = data::ParsePolicy::kStrict;
  } else if (name == "recover") {
    policy = data::ParsePolicy::kRecover;
  } else if (name == "skip-drive") {
    policy = data::ParsePolicy::kSkipDrive;
  } else {
    std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
    return false;
  }
  return true;
}

/// Parses a --log-level argument. False with a message on stderr for an
/// unknown level name.
inline bool parse_log_level_flag(const std::string& name, obs::LogLevel& level) {
  if (!obs::parse_log_level(name, level)) {
    std::fprintf(stderr, "unknown log level: %s\n", name.c_str());
    return false;
  }
  return true;
}

/// The obs bundle behind --trace-out / --metrics-out / --report-out:
/// instrumentation is enabled when any output path was given, and
/// context() is what the pipeline entry points take (null = off).
struct ToolObs {
  std::string trace_out, metrics_out, report_out;

  obs::Tracer tracer;
  obs::Registry registry;
  obs::Context ctx{&tracer, &registry};

  bool enabled() const {
    return !trace_out.empty() || !metrics_out.empty() || !report_out.empty();
  }
  const obs::Context* context() const { return enabled() ? &ctx : nullptr; }

  /// Writes the trace and metrics outputs. Report writing stays with
  /// the tool — each fills a RunReport of its own shape.
  void write_outputs(obs::Logger& log) {
    if (!trace_out.empty()) {
      auto ofs = open_or_throw(trace_out);
      tracer.write_chrome_trace(ofs);
      log.infof("obs", "wrote %zu trace spans to %s", tracer.size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      auto ofs = open_or_throw(metrics_out);
      if (wants_prometheus(metrics_out)) {
        registry.write_prometheus(ofs);
      } else {
        registry.write_json(ofs);
      }
      log.infof("obs", "wrote metrics to %s", metrics_out.c_str());
    }
  }
};

}  // namespace wefr::tools
