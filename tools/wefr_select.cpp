// wefr_select — run WEFR feature selection over a SMART-log fleet CSV.
//
//   wefr_select --in fleet.csv --model MC1 [--train-end DAY]
//               [--horizon 30] [--no-update] [--save-model model.txt]
//               [--policy strict|recover|skip-drive]
//
// Prints the ensemble diagnostics (per-ranker outlier status), the final
// selection per wear group, and optionally trains and serializes the
// paper's Random Forest predictor over the selected features.
//
// --policy recover (or skip-drive) switches ingestion to the tolerant
// parser: malformed rows are quarantined instead of fatal, the ingest
// report is printed, and the pipeline runs in degraded mode with its
// diagnostics echoed at the end.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/csv.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefr_select --in FILE [--model NAME] [--train-end DAY]\n"
               "                   [--horizon N] [--no-update] [--save-model FILE]\n"
               "                   [--policy strict|recover|skip-drive]\n");
}

void print_group(const core::GroupSelection& g) {
  std::printf("  [%s] %zu features (%zu samples, %zu positive%s%s):",
              g.label.c_str(), g.selected_names.size(), g.num_samples, g.num_positives,
              g.fallback ? "; fallback to whole-model set" : "",
              g.degraded ? "; DEGRADED keep-everything selection" : "");
  for (const auto& name : g.selected_names) std::printf(" %s", name.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, model = "fleet", save_model;
  int train_end = -1;
  core::ExperimentConfig cfg;
  core::WefrOptions wopt;
  data::ReadOptions ropt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    double v = 0.0;
    if (arg == "--in") {
      in_path = next();
    } else if (arg == "--model") {
      model = next();
    } else if (arg == "--train-end" && util::parse_double(next(), v)) {
      train_end = static_cast<int>(v);
    } else if (arg == "--horizon" && util::parse_double(next(), v)) {
      cfg.horizon_days = static_cast<int>(v);
    } else if (arg == "--no-update") {
      wopt.update_with_wearout = false;
    } else if (arg == "--save-model") {
      save_model = next();
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "strict") {
        ropt.policy = data::ParsePolicy::kStrict;
      } else if (p == "recover") {
        ropt.policy = data::ParsePolicy::kRecover;
      } else if (p == "skip-drive") {
        ropt.policy = data::ParsePolicy::kSkipDrive;
      } else {
        std::fprintf(stderr, "unknown policy: %s\n", p.c_str());
        usage();
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (in_path.empty()) {
    usage();
    return 2;
  }

  try {
    data::IngestReport report;
    const auto fleet = data::load_fleet_csv(in_path, model, ropt, &report);
    if (ropt.policy != data::ParsePolicy::kStrict || !report.clean()) {
      std::printf("ingest: %s\n", report.summary().c_str());
    }
    if (report.fatal) {
      std::fprintf(stderr, "error: unusable input: %s\n", report.fatal_detail.c_str());
      return 1;
    }
    if (train_end < 0) train_end = fleet.num_days - 1;
    std::printf("fleet %s: %zu drives, %zu failed, %d days, %zu features; "
                "selecting on days 0-%d\n",
                fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
                fleet.num_days, fleet.num_features(), train_end);

    cfg.negative_keep_prob = 0.15;
    const auto samples = core::build_selection_samples(fleet, 0, train_end, cfg);
    std::printf("selection samples: %zu (%zu positive)\n", samples.size(),
                samples.num_positive());

    core::PipelineDiagnostics diag;
    const auto result = core::run_wefr(fleet, samples, train_end, wopt, &diag);

    std::printf("\npreliminary rankings (Kendall-tau mean distance; * = discarded):\n");
    const auto& ens = result.all.ensemble;
    for (std::size_t k = 0; k < ens.ranker_names.size(); ++k) {
      std::printf("  %-13s D-bar = %7.1f %s\n", ens.ranker_names[k].c_str(),
                  ens.mean_distance[k], ens.discarded[k] ? "*" : "");
    }

    std::printf("\nselection:\n");
    print_group(result.all);
    if (result.change_point.has_value()) {
      std::printf("  wear-out change point: MWI_N = %.0f (z = %.2f)\n",
                  result.change_point->mwi_threshold, result.change_point->zscore);
      if (result.low.has_value()) print_group(*result.low);
      if (result.high.has_value()) print_group(*result.high);
    } else {
      std::printf("  no wear-out change point detected\n");
    }
    if (!diag.empty()) {
      std::printf("\npipeline diagnostics: %s\n", diag.summary().c_str());
    }

    if (!save_model.empty()) {
      std::printf("\ntraining Random Forest (%zu trees, depth %d) on selected "
                  "features...\n",
                  cfg.forest.num_trees, cfg.forest.tree.max_depth);
      const auto predictor = core::train_predictor(fleet, result, 0, train_end, cfg);
      std::ofstream ofs(save_model);
      if (!ofs) throw std::runtime_error("cannot open " + save_model);
      predictor.all.forest.save(ofs);
      std::printf("saved whole-model forest to %s\n", save_model.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
