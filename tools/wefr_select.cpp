// wefr_select — run WEFR feature selection over a SMART-log fleet CSV.
//
//   wefr_select --in fleet.csv --model MC1 [--train-end DAY]
//               [--horizon 30] [--no-update] [--save-model model.txt]
//               [--policy strict|recover|skip-drive]
//               [--cache-dir DIR]
//               [--trace-out trace.json] [--metrics-out metrics.prom]
//               [--report-out report.json]
//
// Prints the ensemble diagnostics (per-ranker outlier status), the final
// selection per wear group, and optionally trains and serializes the
// paper's Random Forest predictor over the selected features.
//
// --policy recover (or skip-drive) switches ingestion to the tolerant
// parser: malformed rows are quarantined instead of fatal, the ingest
// report is printed, and the pipeline runs in degraded mode with its
// diagnostics echoed at the end.
//
// --cache-dir points at a directory for binary columnar fleet
// snapshots: the first run parses the CSV (in parallel, via mmap) and
// writes a snapshot there; later runs replace the parse with a single
// mapped read as long as the source file and parse options are
// unchanged.
//
// --log-level {quiet,info,debug} controls the structured progress log
// on stderr ([+elapsed] [stage] message lines); results always go to
// stdout. Default is info; debug adds the per-shard health ledger and
// obs-merge accounting.
//
// Any of --trace-out / --metrics-out / --report-out enables the obs
// instrumentation: the whole run is traced (Chrome trace-event JSON,
// loadable in chrome://tracing), stage counters are collected (JSON, or
// Prometheus text when the path ends in .prom/.txt), and a
// schema-versioned run report merging span tree + metrics + diagnostics
// + selection + scoring is written. With instrumentation on, the tool
// also trains the predictor and scores the post-training window so the
// report covers ingestion -> selection -> scoring end to end.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "cli_common.h"
#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/cache.h"
#include "data/csv.h"
#include "ml/metrics.h"
#include "obs/context.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "shard/driver.h"
#include "util/strings.h"

using namespace wefr;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: wefr_select --in FILE [--model NAME] [--train-end DAY]\n"
               "                   [--horizon N] [--no-update] [--save-model FILE]\n"
               "                   [--policy strict|recover|skip-drive]\n"
               "                   [--cache-dir DIR] [--shards N]\n"
               "                   [--log-level quiet|info|debug]\n"
               "                   [--trace-out FILE] [--metrics-out FILE]\n"
               "                   [--report-out FILE]\n");
}

/// Folds the selection-stage and scoring-stage driver stats into the
/// report's v3 sharding block: per-shard ledger rows sum across the
/// two runs, the straggler summary is recomputed over the combined
/// wall clocks, and a fallback in either stage surfaces as a non-null
/// fallback_reason (with the per-shard fields left zeroed, per the
/// driver's contract).
obs::RunReport::Sharding make_sharding_block(const shard::ShardRunStats& sel,
                                             const shard::ShardRunStats* score) {
  obs::RunReport::Sharding sh;
  sh.shards = sel.num_shards;
  sh.forked = sel.forked;
  sh.fallback_reason = sel.fallback_reason.empty() ? "" : "selection: " + sel.fallback_reason;
  if (score != nullptr && !score->fallback_reason.empty()) {
    if (!sh.fallback_reason.empty()) sh.fallback_reason += "; ";
    sh.fallback_reason += "scoring: " + score->fallback_reason;
  }
  sh.shard_drives = sel.shard_drives;
  sh.shard_samples = sel.shard_samples;

  const auto fold = [&sh](const shard::ShardRunStats& st) {
    sh.partial_seconds += st.partial_seconds;
    sh.merge_seconds += st.merge_seconds;
    sh.records_verified += st.records_verified;
    sh.obs_spans_merged += st.obs_spans_merged;
    sh.obs_partials_merged += st.obs_partials_merged;
    sh.obs_partials_dropped += st.obs_partials_dropped;
    sh.workers_failed += st.workers_failed;
    if (sh.health.size() < st.health.size()) sh.health.resize(st.health.size());
    for (std::size_t s = 0; s < st.health.size(); ++s) {
      auto& dst = sh.health[s];
      const auto& src = st.health[s];
      dst.wall_seconds += src.wall_seconds;
      dst.cpu_seconds += src.cpu_seconds;
      dst.drives = std::max(dst.drives, src.drives);  // same partition both runs
      dst.rows += src.rows;
      dst.bytes += src.bytes;
      dst.records_verified += src.records_verified;
      dst.obs_merged = dst.obs_merged || src.obs_merged;
      if (src.worker_exit != 0) dst.worker_exit = src.worker_exit;
    }
  };
  fold(sel);
  if (score != nullptr) fold(*score);

  std::vector<double> walls;
  for (const auto& h : sh.health) walls.push_back(h.wall_seconds);
  if (!walls.empty()) {
    std::sort(walls.begin(), walls.end());
    sh.max_shard_seconds = walls.back();
    const std::size_t n = walls.size();
    sh.median_shard_seconds =
        n % 2 == 1 ? walls[n / 2] : 0.5 * (walls[n / 2 - 1] + walls[n / 2]);
    sh.imbalance_ratio = sh.median_shard_seconds > 0.0
                             ? sh.max_shard_seconds / sh.median_shard_seconds
                             : 0.0;
  }
  return sh;
}

/// One info line + optional per-shard debug rows for a driver run.
void log_shard_stats(obs::Logger& log, const char* what,
                     const shard::ShardRunStats& st) {
  if (!st.fallback_reason.empty()) {
    log.infof("shard", "%s fell back to the in-process oracle: %s", what,
              st.fallback_reason.c_str());
    return;
  }
  log.infof("shard",
            "%s: %zu workers (%s), %.3fs partials + %.3fs merge; straggler max/median "
            "%.3fs/%.3fs (x%.2f); %llu records verified, %llu obs partials merged, "
            "%llu dropped",
            what, st.num_shards, st.forked ? "forked" : "in-process",
            st.partial_seconds, st.merge_seconds, st.max_shard_seconds,
            st.median_shard_seconds, st.imbalance_ratio,
            static_cast<unsigned long long>(st.records_verified),
            static_cast<unsigned long long>(st.obs_partials_merged),
            static_cast<unsigned long long>(st.obs_partials_dropped));
  for (std::size_t s = 0; s < st.health.size(); ++s) {
    const auto& h = st.health[s];
    log.debugf("shard",
               "  s%zu: %llu drives, %llu rows, %llu bytes, wall %.3fs, cpu %.3fs, "
               "%llu records, obs %s, exit %lld",
               s, static_cast<unsigned long long>(h.drives),
               static_cast<unsigned long long>(h.rows),
               static_cast<unsigned long long>(h.bytes), h.wall_seconds, h.cpu_seconds,
               static_cast<unsigned long long>(h.records_verified),
               h.obs_merged ? "merged" : "none",
               static_cast<long long>(h.worker_exit));
  }
}

void print_group(const core::GroupSelection& g) {
  std::printf("  [%s] %zu features (%zu samples, %zu positive%s%s):",
              g.label.c_str(), g.selected_names.size(), g.num_samples, g.num_positives,
              g.fallback ? "; fallback to whole-model set" : "",
              g.degraded ? "; DEGRADED keep-everything selection" : "");
  for (const auto& name : g.selected_names) std::printf(" %s", name.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, model = "fleet", save_model, cache_dir;
  int train_end = -1;
  int shards = 0;  // 0 = the historical single-process path
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  core::ExperimentConfig cfg;
  core::WefrOptions wopt;
  data::ReadOptions ropt;
  tools::ToolObs tobs;

  tools::ArgCursor cur(argc, argv, usage);
  while (cur.take()) {
    const std::string& arg = cur.arg();
    if (arg == "--in") {
      in_path = cur.value();
    } else if (arg == "--model") {
      model = cur.value();
    } else if (arg == "--train-end" && util::parse_int_as(cur.value(), train_end)) {
      // parsed in the condition
    } else if (arg == "--horizon" && util::parse_int_as(cur.value(), cfg.horizon_days)) {
      // parsed in the condition
    } else if (arg == "--cache-dir") {
      cache_dir = cur.value();
    } else if (arg == "--shards" && util::parse_int_as(cur.value(), shards)) {
      if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
    } else if (arg == "--log-level") {
      if (!tools::parse_log_level_flag(cur.value(), log_level)) {
        usage();
        return 2;
      }
    } else if (arg == "--no-update") {
      wopt.update_with_wearout = false;
    } else if (arg == "--save-model") {
      save_model = cur.value();
    } else if (arg == "--trace-out") {
      tobs.trace_out = cur.value();
    } else if (arg == "--metrics-out") {
      tobs.metrics_out = cur.value();
    } else if (arg == "--report-out") {
      tobs.report_out = cur.value();
    } else if (arg == "--policy") {
      if (!tools::parse_policy_flag(cur.value(), ropt.policy)) {
        usage();
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (in_path.empty()) {
    usage();
    return 2;
  }

  const bool obs_enabled = tobs.enabled();
  const obs::Context* obs = tobs.context();
  obs::Logger log(log_level);

  try {
    obs::RunReport run_report;
    run_report.tool = "wefr_select";
    core::PipelineDiagnostics diag;
    if (obs_enabled) diag.attach(&tobs.registry);
    obs::Span root(obs, "wefr_select");

    data::IngestReport report;
    data::CacheOptions cache;
    cache.dir = cache_dir;
    const auto fleet =
        data::load_fleet_csv_cached(in_path, model, ropt, cache, &report, obs);
    if (!cache_dir.empty() || ropt.policy != data::ParsePolicy::kStrict ||
        !report.clean()) {
      log.infof("ingest", "%s", report.summary().c_str());
    }
    if (report.fatal) {
      std::fprintf(stderr, "error: unusable input: %s\n", report.fatal_detail.c_str());
      return 1;
    }
    if (train_end < 0) train_end = fleet.num_days - 1;
    log.infof("fleet",
              "%s: %zu drives, %zu failed, %d days, %zu features; selecting on days 0-%d",
              fleet.model_name.c_str(), fleet.drives.size(), fleet.num_failed(),
              fleet.num_days, fleet.num_features(), train_end);

    cfg.negative_keep_prob = 0.15;
    shard::ShardOptions shard_opt;
    shard_opt.num_shards = shards > 0 ? static_cast<std::size_t>(shards) : 1;
    shard::ShardRunStats shard_stats, score_stats;
    core::WefrResult result;
    data::Dataset samples;
    if (shards > 0) {
      result = shard::run_wefr_sharded(fleet, 0, train_end, train_end, wopt, cfg,
                                       shard_opt, &diag, obs, &shard_stats, &samples);
      log_shard_stats(log, "selection", shard_stats);
      log.infof("select", "samples: %zu (%zu positive)", samples.size(),
                samples.num_positive());
    } else {
      samples = core::build_selection_samples(fleet, 0, train_end, cfg, obs);
      log.infof("select", "samples: %zu (%zu positive)", samples.size(),
                samples.num_positive());
      result = core::run_wefr(fleet, samples, train_end, wopt, &diag, obs);
    }

    std::printf("\npreliminary rankings (Kendall-tau mean distance; * = discarded):\n");
    const auto& ens = result.all.ensemble;
    for (std::size_t k = 0; k < ens.ranker_names.size(); ++k) {
      std::printf("  %-13s D-bar = %7.1f %s\n", ens.ranker_names[k].c_str(),
                  ens.mean_distance[k], ens.discarded[k] ? "*" : "");
    }

    std::printf("\nselection:\n");
    print_group(result.all);
    if (result.change_point.has_value()) {
      std::printf("  wear-out change point: MWI_N = %.0f (z = %.2f)\n",
                  result.change_point->mwi_threshold, result.change_point->zscore);
      if (result.low.has_value()) print_group(*result.low);
      if (result.high.has_value()) print_group(*result.high);
    } else {
      std::printf("  no wear-out change point detected\n");
    }
    if (!diag.empty()) {
      std::printf("\npipeline diagnostics: %s\n", diag.summary().c_str());
    }

    if (obs_enabled || !save_model.empty()) {
      log.infof("train", "Random Forest: %zu trees, depth %d, on selected features",
                cfg.forest.num_trees, cfg.forest.tree.max_depth);
      const auto predictor = core::train_predictor(fleet, result, 0, train_end, cfg, obs);
      if (!save_model.empty()) {
        std::ofstream ofs = tools::open_or_throw(save_model);
        predictor.all.forest.save(ofs);
        log.infof("train", "saved whole-model forest to %s", save_model.c_str());
      }

      if (obs_enabled) {
        // Score the held-out window so the report and trace cover the
        // whole ingestion -> selection -> scoring pipeline. When
        // training consumed every day, score the last 30 days instead
        // and flag the result as in-sample.
        int t1 = fleet.num_days - 1;
        int t0 = train_end + 1;
        bool in_sample = false;
        if (t0 > t1) {
          t0 = std::max(0, t1 - 29);
          in_sample = true;
        }
        std::vector<core::DriveDayScores> scores;
        ml::AucPartial auc_partial;
        if (shards > 0) {
          scores = shard::score_fleet_sharded(fleet, predictor, t0, t1, cfg, shard_opt,
                                              &diag, obs, &score_stats, &auc_partial);
          log_shard_stats(log, "scoring", score_stats);
        } else {
          scores = core::score_fleet(fleet, predictor, t0, t1, cfg, &diag, obs);
        }

        obs::RunReport::Scoring sc;
        sc.drives = scores.size();
        sc.day_lo = t0;
        sc.day_hi = t1;
        sc.in_sample = in_sample;
        std::vector<double> flat;
        std::vector<int> labels;
        for (const auto& ds : scores) {
          const auto& drive = fleet.drives[ds.drive_index];
          for (std::size_t i = 0; i < ds.scores.size(); ++i) {
            const int day = ds.first_day + static_cast<int>(i);
            flat.push_back(ds.scores[i]);
            labels.push_back(drive.failed() && drive.fail_day > day &&
                                     drive.fail_day <= day + cfg.horizon_days
                                 ? 1
                                 : 0);
          }
        }
        sc.drive_days = flat.size();
        bool has_pos = false, has_neg = false;
        for (int l : labels) {
          if (l != 0) has_pos = true;
          else has_neg = true;
        }
        if (has_pos && has_neg) {
          // Sharded runs report the AUC finalized from the merged
          // per-shard rank tallies (the mergeable form); it agrees with
          // ml::auc over the flattened scores.
          sc.auc = shards > 0 ? auc_partial.finalize() : ml::auc(flat, labels);
        }
        const auto eval = core::evaluate_fixed_recall(fleet, scores, t0, t1,
                                                      cfg.horizon_days, 0.3);
        sc.precision = eval.precision;
        sc.recall = eval.recall;
        sc.f05 = eval.f05;
        sc.threshold = eval.threshold;
        run_report.scoring = sc;

        std::printf("\nscored days %d-%d%s: %zu drives, %zu drive-days", t0, t1,
                    in_sample ? " (in-sample)" : "", scores.size(), flat.size());
        if (sc.auc.has_value()) std::printf(", day-level AUC %.4f", *sc.auc);
        std::printf("\n");
      }
    }

    if (obs_enabled) {
      root.finish();
      tobs.write_outputs(log);
      if (!tobs.report_out.empty()) {
        run_report.model = fleet.model_name;
        run_report.run_info["drives"] = static_cast<double>(fleet.drives.size());
        run_report.run_info["drives_failed"] = static_cast<double>(fleet.num_failed());
        run_report.run_info["days"] = static_cast<double>(fleet.num_days);
        run_report.run_info["features"] = static_cast<double>(fleet.num_features());
        run_report.run_info["train_end"] = static_cast<double>(train_end);
        run_report.params["policy"] =
            ropt.policy == data::ParsePolicy::kStrict
                ? "strict"
                : (ropt.policy == data::ParsePolicy::kRecover ? "recover" : "skip-drive");
        run_report.params["horizon_days"] = std::to_string(cfg.horizon_days);
        run_report.params["update_with_wearout"] =
            wopt.update_with_wearout ? "true" : "false";
        if (shards > 0) {
          run_report.params["shards"] = std::to_string(shards);
          run_report.sharding = make_sharding_block(
              shard_stats, score_stats.num_shards > 0 ? &score_stats : nullptr);
        }
        report.fill_run_report(run_report);
        diag.fill_run_report(run_report);
        core::fill_run_report(result, run_report);
        run_report.tracer = &tobs.tracer;
        run_report.metrics = &tobs.registry;
        run_report.write_json_file(tobs.report_out);
        log.infof("obs", "wrote run report to %s", tobs.report_out.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
