#include "smartsim/mixed_fleet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace wefr::smartsim {

const char* to_string(ChurnKind k) {
  switch (k) {
    case ChurnKind::kRetire: return "retire";
    case ChurnKind::kAdd: return "add";
    case ChurnKind::kReplace: return "replace";
  }
  return "?";
}

namespace {

/// Largest-remainder apportionment of `total` drives across normalized
/// shares. Every share gets floor(share * total); leftover units go to
/// the largest fractional remainders (ties to the earlier share), so
/// the split is deterministic and sums exactly to `total`.
std::vector<std::size_t> apportion(const std::vector<double>& shares,
                                   std::size_t total) {
  double sum = 0.0;
  for (double s : shares) sum += s;
  std::vector<std::size_t> counts(shares.size(), 0);
  if (sum <= 0.0 || total == 0) return counts;

  std::vector<double> frac(shares.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double exact = shares[i] / sum * static_cast<double>(total);
    counts[i] = static_cast<std::size_t>(exact);
    frac[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<std::size_t> order(shares.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return frac[a] > frac[b]; });
  for (std::size_t i = 0; assigned < total; ++i) {
    counts[order[i % order.size()]] += 1;
    ++assigned;
  }
  return counts;
}

/// Truncates a drive's observation series at fleet day `day`: the drive
/// leaves the window healthy (decommissioned, not failed), so any
/// planted failure at or after `day` is censored away.
void retire_drive(data::DriveSeries& d, int day) {
  const auto keep = static_cast<std::size_t>(day - d.first_day);
  data::Matrix trimmed = data::Matrix::uninitialized(keep, d.values.cols());
  for (std::size_t r = 0; r < keep; ++r) {
    const auto src = d.values.row(r);
    std::copy(src.begin(), src.end(), trimmed.row(r).begin());
  }
  d.values = std::move(trimmed);
  if (d.fail_day >= day) d.fail_day = -1;
}

}  // namespace

MixedFleetResult generate_mixed_fleet(const MixedFleetSpec& spec) {
  MixedFleetResult out;
  util::Rng master(spec.sim.seed);

  // Resolve the mix: drop unknown models and non-positive shares with a
  // tag instead of throwing — a degenerate spec degrades to an empty
  // fleet the caller can inspect.
  std::vector<const DriveModelProfile*> mix_profiles;
  std::vector<double> mix_shares;
  for (const auto& s : spec.shares) {
    if (!(s.share > 0.0)) {
      out.diagnostics.push_back("empty_share:" + s.model);
      continue;
    }
    const DriveModelProfile* p = nullptr;
    try {
      p = &profile_by_name(s.model);
    } catch (const std::out_of_range&) {
      out.diagnostics.push_back("unknown_model:" + s.model);
      continue;
    }
    mix_profiles.push_back(p);
    mix_shares.push_back(s.share);
  }
  if (mix_profiles.empty()) {
    out.diagnostics.push_back("empty_mix");
    out.fleet.model_name = "mixed()";
    out.fleet.num_days = spec.sim.num_days;
    return out;
  }

  // Day-0 sub-fleets, one per share, each with a forked seed. The fork
  // order is fixed by the (filtered) share order, so the whole recipe is
  // a pure function of spec.sim.seed.
  std::vector<data::FleetData> pieces;
  std::vector<std::string> piece_model;
  const std::vector<std::size_t> counts =
      apportion(mix_shares, spec.sim.num_drives);
  for (std::size_t i = 0; i < mix_profiles.size(); ++i) {
    if (counts[i] == 0) {
      out.diagnostics.push_back("share_rounded_to_zero:" + mix_profiles[i]->name);
      continue;
    }
    SimOptions o = spec.sim;
    o.num_drives = counts[i];
    o.seed = master.next_u64();
    pieces.push_back(generate_fleet(*mix_profiles[i], o));
    piece_model.push_back(mix_profiles[i]->name);
  }
  if (pieces.empty()) {
    out.diagnostics.push_back("empty_mix");
    out.fleet.model_name = "mixed()";
    out.fleet.num_days = spec.sim.num_days;
    return out;
  }

  // Churn schedule, in day order (stable for same-day events).
  std::vector<ChurnEvent> events = spec.churn;
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.day < b.day; });

  for (std::size_t ev_idx = 0; ev_idx < events.size(); ++ev_idx) {
    const ChurnEvent& ev = events[ev_idx];
    if (ev.day <= 0 || ev.day >= spec.sim.num_days) {
      out.diagnostics.push_back("event_out_of_window@" + std::to_string(ev.day));
      continue;
    }

    bool applied = false;
    std::size_t retired_now = 0;

    if (ev.kind != ChurnKind::kAdd && ev.retire_fraction > 0.0) {
      // Drives active at ev.day: observed before it (so truncation
      // leaves at least one row) and still under observation on it.
      std::vector<std::pair<std::size_t, std::size_t>> active;
      for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
        for (std::size_t di = 0; di < pieces[pi].drives.size(); ++di) {
          const auto& d = pieces[pi].drives[di];
          if (d.first_day < ev.day && d.last_day() >= ev.day) active.emplace_back(pi, di);
        }
      }
      const double frac = std::min(ev.retire_fraction, 1.0);
      std::size_t k = static_cast<std::size_t>(
          std::floor(frac * static_cast<double>(active.size()) + 1e-9));
      if (ev.retire_fraction >= 1.0) k = active.size();
      if (k > 0) {
        for (std::size_t vi : master.sample_without_replacement(active.size(), k)) {
          retire_drive(pieces[active[vi].first].drives[active[vi].second], ev.day);
        }
        retired_now = k;
        out.drives_retired += k;
        applied = true;
        if (k == active.size()) out.diagnostics.push_back("all_churned");
      } else if (active.empty()) {
        out.diagnostics.push_back("retire_no_active@" + std::to_string(ev.day));
      }
    }

    if (ev.kind != ChurnKind::kRetire) {
      std::size_t count = ev.add_count;
      if (ev.kind == ChurnKind::kReplace && count == 0) count = retired_now;
      if (count > 0) {
        const std::string model =
            ev.add_model.empty() ? piece_model.front() : ev.add_model;
        const DriveModelProfile* base = nullptr;
        try {
          base = &profile_by_name(model);
        } catch (const std::out_of_range&) {
          out.diagnostics.push_back("unknown_model:" + model);
          base = nullptr;
        }
        const int remaining = spec.sim.num_days - ev.day;
        // generate_fleet needs min_fail_day + 10 days of window; a
        // cohort added too late can't be simulated — skip with a tag.
        const int cohort_min_fail = std::max(5, std::min(spec.sim.min_fail_day, remaining / 4));
        if (base != nullptr && remaining < cohort_min_fail + 10) {
          out.diagnostics.push_back("late_add_skipped@" + std::to_string(ev.day));
          base = nullptr;
        }
        if (base != nullptr) {
          DriveModelProfile drifted = *base;
          drifted.wear_rate_lo *= ev.wear_rate_mult;
          drifted.wear_rate_hi *= ev.wear_rate_mult;
          drifted.mwi_start_lo = std::max(1.0, drifted.mwi_start_lo - ev.mwi_start_shift);
          drifted.mwi_start_hi =
              std::max(drifted.mwi_start_lo + 1.0, drifted.mwi_start_hi - ev.mwi_start_shift);

          SimOptions o = spec.sim;
          o.num_drives = count;
          o.num_days = remaining;
          o.min_fail_day = cohort_min_fail;
          o.seed = master.next_u64();
          data::FleetData cohort = generate_fleet(drifted, o);
          // Shift the cohort into fleet-global time and rename its
          // drives so ids never collide with the day-0 sub-fleet of the
          // same model.
          for (std::size_t i = 0; i < cohort.drives.size(); ++i) {
            auto& d = cohort.drives[i];
            d.first_day += ev.day;
            if (d.fail_day >= 0) d.fail_day += ev.day;
            d.drive_id = drifted.name + "_c" + std::to_string(ev_idx) + "_" +
                         std::to_string(i);
          }
          cohort.num_days = spec.sim.num_days;
          pieces.push_back(std::move(cohort));
          piece_model.push_back(drifted.name);
          out.drives_added += count;
          applied = true;
          if (ev.wear_rate_mult != 1.0 || ev.mwi_start_shift != 0.0) {
            out.drift_days.push_back(ev.day);
          }
        }
      } else if (ev.kind == ChurnKind::kAdd) {
        out.diagnostics.push_back("empty_add@" + std::to_string(ev.day));
      }
    }

    if (applied) out.churn_days.push_back(ev.day);
  }
  out.churn_days.erase(std::unique(out.churn_days.begin(), out.churn_days.end()),
                       out.churn_days.end());

  out.fleet = data::reconcile_fleets(pieces, spec.schema, &out.schema, &out.drive_model);
  out.fleet.num_days = std::max(out.fleet.num_days, spec.sim.num_days);
  return out;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_double(const std::string& tok, const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad " + what + " '" + tok + "'");
  }
}

}  // namespace

std::vector<ModelShare> parse_mix_spec(const std::string& spec) {
  std::vector<ModelShare> out;
  if (spec.empty()) return out;
  for (const std::string& tok : split(spec, ',')) {
    if (tok.empty()) continue;
    const std::size_t colon = tok.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("parse_mix_spec: expected MODEL:SHARE, got '" +
                                  tok + "'");
    }
    ModelShare s;
    s.model = tok.substr(0, colon);
    s.share = parse_double(tok.substr(colon + 1), "share");
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ChurnEvent> parse_churn_spec(const std::string& spec,
                                         std::size_t fleet_size) {
  std::vector<ChurnEvent> out;
  if (spec.empty()) return out;
  for (const std::string& tok : split(spec, ',')) {
    if (tok.empty()) continue;
    const std::size_t at = tok.find('@');
    if (at == std::string::npos || at == 0) {
      throw std::invalid_argument(
          "parse_churn_spec: expected kind@day:fraction[:model[:wear_mult]], got '" +
          tok + "'");
    }
    ChurnEvent ev;
    const std::string kind = tok.substr(0, at);
    if (kind == "retire") {
      ev.kind = ChurnKind::kRetire;
    } else if (kind == "add") {
      ev.kind = ChurnKind::kAdd;
    } else if (kind == "replace") {
      ev.kind = ChurnKind::kReplace;
    } else {
      throw std::invalid_argument("parse_churn_spec: unknown kind '" + kind + "'");
    }
    const std::vector<std::string> parts = split(tok.substr(at + 1), ':');
    if (parts.size() < 2 || parts.size() > 4) {
      throw std::invalid_argument(
          "parse_churn_spec: expected kind@day:fraction[:model[:wear_mult]], got '" +
          tok + "'");
    }
    ev.day = static_cast<int>(parse_double(parts[0], "day"));
    const double frac = parse_double(parts[1], "fraction");
    if (ev.kind == ChurnKind::kAdd) {
      ev.add_count = static_cast<std::size_t>(
          std::llround(frac * static_cast<double>(fleet_size)));
    } else {
      ev.retire_fraction = frac;
    }
    if (parts.size() >= 3 && !parts[2].empty()) ev.add_model = parts[2];
    if (parts.size() == 4) ev.wear_rate_mult = parse_double(parts[3], "wear_mult");
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace wefr::smartsim
