#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "smartsim/generator.h"
#include "smartsim/profiles.h"

namespace wefr::smartsim {

/// One model's slice of a heterogeneous fleet.
struct ModelShare {
  std::string model;   ///< profile name (profile_by_name namespace)
  double share = 0.0;  ///< fraction of the day-0 fleet; normalized
};

/// Population-churn event kinds, modeled on how real fleets evolve
/// (PS-WL's array-scaling scenarios): drives leave (decommission
/// waves), arrive (capacity adds), or both at once (hardware refresh).
enum class ChurnKind { kRetire, kAdd, kReplace };

const char* to_string(ChurnKind k);

/// One scheduled churn event. Retirement truncates the observation
/// series of surviving drives at `day` (censored, not failed — a drive
/// that would have failed later leaves the window healthy). Additions
/// generate a fresh cohort observed from `day` on, optionally with a
/// shifted wear distribution — the planted change point the online
/// re-check is expected to track.
struct ChurnEvent {
  int day = 0;
  ChurnKind kind = ChurnKind::kReplace;
  /// Fraction of the drives active at `day` to retire
  /// (kRetire/kReplace). 1.0 retires everything active.
  double retire_fraction = 0.0;
  /// Cohort size for kAdd; for kReplace, 0 means "as many as retired".
  std::size_t add_count = 0;
  /// Model of the added cohort; "" = the first mix share's model.
  /// A model outside the original mix shifts the model mix (its columns
  /// join the union schema).
  std::string add_model;
  /// Drift magnitude: wear-rate multiplier for the added cohort
  /// (values > 1 plant a wear-distribution change point at `day`).
  double wear_rate_mult = 1.0;
  /// Additional drift: shifts the cohort's initial-MWI range down.
  double mwi_start_shift = 0.0;
};

/// A heterogeneous fleet recipe: per-model shares at day 0 plus a
/// seeded churn schedule. Everything is deterministic in `sim.seed`.
struct MixedFleetSpec {
  std::vector<ModelShare> shares;
  std::vector<ChurnEvent> churn;
  /// Base simulation controls; num_drives is the day-0 fleet total
  /// (split across shares by largest remainder), num_days the window.
  SimOptions sim;
  /// How the per-model schemas are aligned into the pooled namespace.
  data::SchemaPolicy schema = data::SchemaPolicy::kUnion;
};

/// Everything generate_mixed_fleet produced, with a full ledger.
struct MixedFleetResult {
  data::FleetData fleet;                 ///< pooled, schema-reconciled
  std::vector<std::string> drive_model;  ///< source model per pooled drive
  data::SchemaReconciliation schema;     ///< what reconciliation did
  std::size_t drives_retired = 0;
  std::size_t drives_added = 0;
  /// Days on which an applied churn event changed the population.
  std::vector<int> churn_days;
  /// Subset of churn_days whose added cohort carries a shifted wear
  /// distribution (wear_rate_mult != 1 or mwi_start_shift != 0) — the
  /// planted change points a drift monitor should detect.
  std::vector<int> drift_days;
  /// Degraded-input tags ("empty_mix", "empty_share:MB1",
  /// "all_churned", "late_add_skipped@230", ...). Degenerate specs
  /// degrade — empty fleet, skipped event — and are tagged here; the
  /// generator itself never throws on them.
  std::vector<std::string> diagnostics;

  bool degraded() const { return !diagnostics.empty(); }
};

/// Generates a heterogeneous fleet: one sub-fleet per (positive-share,
/// known) model, schema-reconciled into a single pool, then the churn
/// schedule applied in day order. Deterministic in `spec.sim.seed` —
/// per-model generation, victim sampling, and cohort generation all
/// draw forked streams from it.
///
/// Degenerate specs never throw: unknown models and non-positive
/// shares are skipped with a diagnostic tag (an entirely empty mix
/// yields an empty fleet), events too close to the window end are
/// skipped, and retiring every active drive leaves a valid all-censored
/// fleet tagged "all_churned".
MixedFleetResult generate_mixed_fleet(const MixedFleetSpec& spec);

/// Parses a mix spec "MA1:0.5,MC1:0.3,HDD1:0.2" into shares. Throws
/// std::invalid_argument on malformed tokens (unknown model names are
/// deferred to generate_mixed_fleet's degraded handling).
std::vector<ModelShare> parse_mix_spec(const std::string& spec);

/// Parses a churn spec: comma-separated events
/// "kind@day:fraction[:model[:wear_mult]]", e.g.
/// "replace@120:0.3:MC2:2.0,add@180:0.1". For kAdd the fraction is the
/// cohort size as a fraction of sim.num_drives. Throws
/// std::invalid_argument on malformed tokens.
std::vector<ChurnEvent> parse_churn_spec(const std::string& spec,
                                         std::size_t fleet_size);

}  // namespace wefr::smartsim
