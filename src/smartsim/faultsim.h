#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace wefr::smartsim {

/// One corruption class injectable into fleet CSV text. Each models a
/// failure actually seen in telemetry collection pipelines:
///
///  - kTruncateRow: a row cut mid-transmission at a field boundary
///    (always structurally invalid — strict parsing must reject it);
///  - kNanBurst: a contiguous run of feature cells replaced by "nan"
///    (a collector that lost sensor contact for part of a poll);
///  - kStuckSensor: one feature column frozen at its current value for
///    the rest of the drive's life. The result is VALID CSV — no parse
///    policy can reject it; it must be survived downstream (constant
///    columns rank neutrally);
///  - kDuplicateRow: the same drive-day reported twice (at-least-once
///    delivery from a message queue);
///  - kOutOfOrderDay: two adjacent rows swapped (reordered delivery);
///  - kBitFlip: one bit of a numeric cell flipped. Usually yields a
///    plausible-but-wrong finite value (valid CSV); exponent-bit flips
///    can yield inf/nan, which strict parsing rejects — those are
///    counted separately in FaultLog::nonfinite_flips;
///  - kMissingColumn: a mixed-schema fleet file — once a drive rolls
///    this fault, every one of its rows from then on drops its 1-3
///    trailing feature fields. The columns stay in the header but are
///    simply absent for that drive's model (an exporter that unioned
///    schemas across models without padding the short ones). Strict
///    parsing rejects the short rows unless
///    ReadOptions::pad_missing_columns is set; recover quarantines
///    them; skip-drive sheds the whole drive.
enum class FaultKind : std::size_t {
  kTruncateRow = 0,
  kNanBurst,
  kStuckSensor,
  kDuplicateRow,
  kOutOfOrderDay,
  kBitFlip,
  kMissingColumn,
  kCount,
};

inline constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kCount);

/// Stable snake_case name ("truncate", "nan_burst", "stuck",
/// "duplicate", "out_of_order", "bitflip", "missing_column") — the
/// same spelling parse_fault_plan() accepts.
const char* to_string(FaultKind kind);

/// One corruption class with its per-row firing probability.
struct FaultSpec {
  FaultKind kind = FaultKind::kNanBurst;
  double rate = 0.0;  ///< per data row, in [0, 1]
};

/// A composable corruption mix. Every data row rolls each spec
/// independently; the header line is never corrupted (a broken header
/// is a different failure class — fatal, not row-recoverable — and has
/// its own dedicated tests).
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 0x5eedfau;

  bool empty() const { return faults.empty(); }
};

/// What corrupt_csv actually did — consumed by chaos tests to assert
/// the corruption was exercised, and to decide whether strict parsing
/// is expected to reject the output.
struct FaultLog {
  /// Rows each fault kind fired on, indexed by FaultKind.
  std::array<std::size_t, kFaultKindCount> applied{};
  /// Data rows with at least one fault applied.
  std::size_t rows_touched = 0;
  /// Bit flips that produced a non-finite value (these make the CSV
  /// strict-rejectable; finite flips do not).
  std::size_t nonfinite_flips = 0;

  std::size_t applied_to(FaultKind kind) const {
    return applied[static_cast<std::size_t>(kind)];
  }
  std::size_t total_applied() const;
  /// True when at least one applied fault makes the text structurally
  /// invalid, i.e. strict parsing is guaranteed to throw on it.
  bool strict_rejectable() const;
  std::string summary() const;
};

/// Applies the plan to fleet CSV text (as produced by write_fleet_csv)
/// and returns the corrupted text. Deterministic in `plan.seed`.
/// Corruption is purely textual — the function never parses the fleet,
/// so it happily operates on already-broken input (faults compose).
std::string corrupt_csv(const std::string& csv, const FaultPlan& plan,
                        FaultLog* log = nullptr);

/// Parses a command-line fault spec: a comma-separated list of
/// `name:rate` pairs, e.g. "nan_burst:0.05,truncate:0.02". Names are
/// the to_string(FaultKind) spellings, plus the shorthand "mix:R"
/// which expands to every kind at rate R / kFaultKindCount (a blended
/// ~R corruption level). "" and "none" yield an empty plan. Throws
/// std::invalid_argument on unknown names or unparseable rates.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace wefr::smartsim
