#pragma once

#include <string>
#include <vector>

namespace wefr::smartsim {

/// SMART attributes appearing in the Alibaba dataset (Table I of the
/// paper). Each attribute contributes two learning features: the raw
/// value ("_R") and the vendor-normalized value ("_N").
enum class Attr {
  RER,   ///< Raw Read Error Rate
  RSC,   ///< Reallocated Sectors Count
  POH,   ///< Power-On Hours
  PCC,   ///< Power Cycle Count
  PFC,   ///< Program Fail Count
  EFC,   ///< Erase Fail Count
  MWI,   ///< Media Wearout Indicator
  PLP,   ///< Power Loss Protection Failure
  UPL,   ///< Unexpected Power Loss Count
  ARS,   ///< Available Reserved Space
  DEC,   ///< Downshift Error Count
  ETE,   ///< End-to-End Error
  UCE,   ///< Reported Uncorrectable Errors
  CMDT,  ///< Command Timeout
  ET,    ///< Enclosure Temperature
  AFT,   ///< Airflow Temperature
  REC,   ///< Reallocated Event Count
  PSC,   ///< Current Pending Sector Count
  OCE,   ///< Offline Scan Uncorrectable Error
  CEC,   ///< UDMA CRC Error Count
  TLW,   ///< Total LBAs Written
  TLR,   ///< Total LBAs Read
};

/// Short name used in feature names ("UCE" -> features "UCE_R"/"UCE_N").
const char* attr_name(Attr a);

/// How the simulator evolves an attribute's underlying process.
enum class AttrKind {
  kErrorCounter,  ///< cumulative event count (RSC, UCE, ...)
  kHours,         ///< power-on hours
  kCycles,        ///< power cycles
  kWear,          ///< media wearout indicator
  kReserve,       ///< available reserved space (depletes with realloc)
  kTemperature,   ///< AR(1) environmental series
  kVolume,        ///< cumulative LBAs written/read
};

AttrKind attr_kind(Attr a);

/// A drive model's simulation profile: the published facts (attribute
/// set, population share, AFR, flash type) plus the planted ground truth
/// that makes the generated fleet reproduce the paper's qualitative
/// findings (which features correlate with failure, and how importance
/// shifts with wear-out).
struct DriveModelProfile {
  std::string name;               ///< "MA1" ... "MC2"
  std::string flash;              ///< "MLC" or "TLC"
  double population_share = 0.0;  ///< Table II "Total %"
  double target_afr = 0.0;        ///< Table II AFR, percent/year

  /// SMART attributes present on this model (Table I).
  std::vector<Attr> attributes;

  /// Ground truth: attributes whose processes carry the pre-failure
  /// degradation signature for failures caused by media/controller
  /// defects (the "error-signature" failure mode). Mirrors the top
  /// features of Table III.
  std::vector<Attr> signature_attrs;

  /// Unstable attributes: correlated with failures only during the
  /// early part of the window (e.g. a transient environmental or
  /// firmware interaction that later disappears). They are the planted
  /// analogue of the paper's "weakly correlated learning features
  /// [that] bring noises into the failure prediction" — a model trained
  /// without feature selection leans on them and loses precision in the
  /// test period.
  std::vector<Attr> unstable_attrs;

  // ---- wear-out model ----
  double mwi_start_lo = 88.0;  ///< initial MWI_N range
  double mwi_start_hi = 100.0;
  double wear_rate_lo = 0.0;   ///< per-day MWI_N decrease range
  double wear_rate_hi = 0.0;

  /// MWI_N value of the planted survival-rate regime shift; 0 = none
  /// (MB1/MB2: wear range too small for a change point).
  double wear_change_point = 0.0;
  /// Hazard multiplier reached deep in the low-MWI regime.
  double low_wear_hazard_mult = 0.0;

  /// MC2-style firmware bug: extra failures among barely-worn drives
  /// (high MWI_N), concentrated early in the window ("gradually fixed").
  bool firmware_bug = false;
  double firmware_bug_mwi = 0.0;     ///< bug affects final MWI_N above this
  double firmware_bug_hazard = 0.0;  ///< hazard multiplier of the bug

  bool has_attr(Attr a) const;
};

/// The six drive-model profiles of the paper (MA1, MA2, MB1, MB2, MC1,
/// MC2) with planted ground truth chosen to reproduce Tables I-V.
const std::vector<DriveModelProfile>& standard_profiles();

/// An HDD-like profile ("HDD1") for heterogeneous-fleet scenarios, after
/// "The Life and Death of SSDs and HDDs": no flash-wear attributes at
/// all (no MWI/EFC/PFC/ARS/PLP/volume counters), failures driven by the
/// mechanical reallocation chain (RSC/PSC/REC), and no wear-out change
/// point. Pooling it with SSD models forces schema reconciliation and
/// exercises every "selected feature missing on this model" degradation
/// path downstream.
const DriveModelProfile& hdd_profile();

/// Every known profile: the six standard SSD models plus HDD1.
const std::vector<DriveModelProfile>& all_profiles();

/// Profile lookup by name over all_profiles(); throws std::out_of_range
/// naming the unknown model and listing every available profile name.
const DriveModelProfile& profile_by_name(const std::string& name);

}  // namespace wefr::smartsim
