#include "smartsim/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace wefr::smartsim {

namespace {

using util::Rng;

enum class FailCause { kNone, kErrorSignature, kWearOut, kFirmwareBug };

/// Everything decided about a drive before its day-by-day simulation.
struct DrivePlan {
  double mwi0 = 100.0;       ///< initial MWI_N
  double wear_rate = 0.0;    ///< baseline MWI_N decrease per day
  double workload = 1.0;     ///< IO intensity multiplier
  double poh0 = 0.0;         ///< prior power-on hours (correlated with wear)
  double final_mwi = 100.0;  ///< MWI_N at window end absent failure
  FailCause cause = FailCause::kNone;
  int fail_day = -1;
  double lead = 40.0;        ///< acute degradation window (days)
  double defect = 1.0;       ///< persistent defect rate multiplier
};

/// Healthy per-day event rate of an error-counter attribute.
double base_rate(Attr a) {
  switch (a) {
    case Attr::RER: return 0.60;
    case Attr::RSC: return 0.030;
    case Attr::PFC: return 0.010;
    case Attr::EFC: return 0.008;
    case Attr::PLP: return 0.008;
    case Attr::UPL: return 0.012;
    case Attr::DEC: return 0.020;
    case Attr::ETE: return 0.003;
    case Attr::UCE: return 0.010;
    case Attr::CMDT: return 0.006;
    case Attr::REC: return 0.020;
    case Attr::PSC: return 0.015;
    case Attr::OCE: return 0.008;
    case Attr::CEC: return 0.005;
    default: return 0.01;
  }
}

/// Scale converting a cumulative count into normalized-value loss.
double norm_scale(Attr a) { return a == Attr::RER ? 0.02 : 0.5; }

/// How strongly the acute pre-failure ramp loads on signature counters.
double ramp_mult(FailCause cause) {
  switch (cause) {
    case FailCause::kErrorSignature: return 25.0;
    case FailCause::kFirmwareBug: return 18.0;
    // Worn-out drives carry only a faint generic error signature — the
    // bulk of their 30-day predictability flows through the wear-specific
    // channels (EFC/PFC, see kWearRampMult), which is what makes
    // per-wear-group feature selection genuinely better (Exp#3).
    case FailCause::kWearOut: return 5.0;
    case FailCause::kNone: return 0.0;
  }
  return 0.0;
}

/// Wear-out failures announce themselves through program/erase fail
/// counts — the physical end-of-life mechanism of NAND.
constexpr double kWearRampMult = 22.0;

/// Unstable features ramp only for failures early in the window
/// (before kUnstableUntilFrac of it) — spurious train-time correlation.
constexpr double kUnstableRampMult = 12.0;
constexpr double kUnstableUntilFrac = 0.6;

}  // namespace

std::vector<std::string> feature_names_for(const DriveModelProfile& profile) {
  std::vector<std::string> names;
  names.reserve(profile.attributes.size() * 2);
  for (Attr a : profile.attributes) {
    names.emplace_back(std::string(attr_name(a)) + "_R");
    names.emplace_back(std::string(attr_name(a)) + "_N");
  }
  return names;
}

data::FleetData generate_fleet(const DriveModelProfile& profile, const SimOptions& opt) {
  if (opt.num_drives == 0) throw std::invalid_argument("generate_fleet: num_drives == 0");
  if (opt.num_days < opt.min_fail_day + 10)
    throw std::invalid_argument("generate_fleet: window too short for min_fail_day");
  if (opt.afr_scale <= 0.0) throw std::invalid_argument("generate_fleet: afr_scale <= 0");

  Rng rng(opt.seed);
  const std::size_t n = opt.num_drives;
  const int days = opt.num_days;

  // ---- pass 1: per-drive latent draws and hazard shape ----
  std::vector<DrivePlan> plans(n);
  std::vector<double> hazard(n);
  std::vector<double> wear_term(n, 0.0), bug_term(n, 0.0);
  double hazard_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    DrivePlan& p = plans[i];
    p.workload = std::exp(rng.normal(0.0, 0.3));
    p.mwi0 = rng.uniform(profile.mwi_start_lo, profile.mwi_start_hi);
    p.wear_rate = rng.uniform(profile.wear_rate_lo, profile.wear_rate_hi) * p.workload;
    p.poh0 = (100.0 - p.mwi0) * 220.0 + std::abs(rng.normal(0.0, 1.0)) * 1500.0;
    p.final_mwi = std::max(0.0, p.mwi0 - p.wear_rate * static_cast<double>(days - 1));

    double g = 1.0;
    if (profile.wear_change_point > 0.0 && p.final_mwi < profile.wear_change_point) {
      // Discontinuous jump at the change point plus a ramp deeper into
      // the low-wear regime — plants a crisp survival-rate change point.
      wear_term[i] = profile.low_wear_hazard_mult *
                     (0.4 + 0.6 * (profile.wear_change_point - p.final_mwi) /
                                profile.wear_change_point);
      g += wear_term[i];
    }
    if (profile.firmware_bug && p.final_mwi > profile.firmware_bug_mwi) {
      bug_term[i] = profile.firmware_bug_hazard *
                    (0.4 + 0.6 * (p.final_mwi - profile.firmware_bug_mwi) /
                               (100.0 - profile.firmware_bug_mwi));
      g += bug_term[i];
    }
    hazard[i] = g;
    hazard_sum += g;
  }

  // ---- pass 2: plant failures matching the (scaled) AFR target ----
  const double expected_failures = opt.afr_scale * profile.target_afr / 100.0 *
                                   static_cast<double>(days) / 365.0 *
                                   static_cast<double>(n);
  const double scale = hazard_sum > 0.0 ? expected_failures / hazard_sum : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    DrivePlan& p = plans[i];
    const double pf = std::min(0.9, scale * hazard[i]);
    if (!rng.bernoulli(pf)) continue;

    // Failure cause ~ categorical over the hazard components.
    const double total = 1.0 + wear_term[i] + bug_term[i];
    const double u = rng.uniform(0.0, total);
    if (u < wear_term[i]) {
      p.cause = FailCause::kWearOut;
    } else if (u < wear_term[i] + bug_term[i]) {
      p.cause = FailCause::kFirmwareBug;
    } else {
      p.cause = FailCause::kErrorSignature;
    }

    p.lead = rng.uniform(opt.lead_lo, opt.lead_hi);
    switch (p.cause) {
      case FailCause::kWearOut: {
        // Fail while worn below the change point (+ small margin).
        const double thr = profile.wear_change_point + 3.0;
        const int cross =
            p.wear_rate > 0.0
                ? static_cast<int>(std::ceil((p.mwi0 - thr) / p.wear_rate))
                : days;
        const int lo = std::max(opt.min_fail_day, std::max(0, cross));
        p.fail_day = lo >= days - 1
                         ? days - 1
                         : static_cast<int>(rng.uniform_int(lo, days - 1));
        p.defect = 1.0 + rng.gamma(2.0, 0.8);
        break;
      }
      case FailCause::kFirmwareBug: {
        // "Gradually fixed": concentrate failures early in the window.
        const int hi = std::max(opt.min_fail_day + 1, (days * 3) / 5);
        const double u2 = rng.uniform();
        p.fail_day = opt.min_fail_day +
                     static_cast<int>(u2 * u2 *
                                      static_cast<double>(hi - opt.min_fail_day));
        p.defect = 1.0 + rng.gamma(2.0, 1.5);
        break;
      }
      case FailCause::kErrorSignature: {
        p.fail_day = static_cast<int>(rng.uniform_int(opt.min_fail_day, days - 1));
        p.defect = 1.0 + rng.gamma(2.0, 1.5);
        break;
      }
      case FailCause::kNone: break;
    }
  }

  // ---- pass 3: day-by-day attribute synthesis ----
  data::FleetData fleet;
  fleet.model_name = profile.name;
  fleet.feature_names = feature_names_for(profile);
  fleet.num_days = days;
  fleet.drives.reserve(n);
  const std::size_t nf = fleet.feature_names.size();
  const std::size_t na = profile.attributes.size();

  auto in_signature = [&](Attr a) {
    return std::find(profile.signature_attrs.begin(), profile.signature_attrs.end(), a) !=
           profile.signature_attrs.end();
  };
  auto in_unstable = [&](Attr a) {
    return std::find(profile.unstable_attrs.begin(), profile.unstable_attrs.end(), a) !=
           profile.unstable_attrs.end();
  };
  const int unstable_until = static_cast<int>(kUnstableUntilFrac * days);

  for (std::size_t i = 0; i < n; ++i) {
    const DrivePlan& p = plans[i];
    Rng drng = rng.fork();

    data::DriveSeries drive;
    drive.drive_id = profile.name + "_" + std::to_string(i);
    drive.first_day = 0;
    drive.fail_day = p.cause == FailCause::kNone ? -1 : p.fail_day;
    // Observed through the day before the trouble ticket.
    const int last_obs = p.cause == FailCause::kNone ? days - 1 : p.fail_day - 1;
    drive.values = data::Matrix(static_cast<std::size_t>(last_obs + 1), nf);

    // Per-(drive, attribute) state.
    std::vector<double> noise(na), counters(na, 0.0);
    for (std::size_t a = 0; a < na; ++a) noise[a] = std::exp(drng.normal(0.0, 0.4));
    double mwi = p.mwi0;
    double reserve = 100.0;
    double reserve_rate = 0.010 * std::exp(drng.normal(0.0, 0.3));
    double temp_mean = drng.normal(35.0, 2.0);
    double temp = temp_mean;
    double volume_w = 0.0, volume_r = 0.0;
    double cycles = std::floor(drng.uniform(5.0, 60.0));
    double poh = p.poh0;

    const bool fails = p.cause != FailCause::kNone;
    const double rmult = ramp_mult(p.cause);

    for (int t = 0; t <= last_obs; ++t) {
      // Acute ramp d(t) over the lead window and slow prodrome e(t)
      // over three lead windows.
      double d_t = 0.0, e_t = 0.0;
      if (fails) {
        const double fd = static_cast<double>(p.fail_day);
        d_t = std::clamp((static_cast<double>(t) - (fd - p.lead)) / p.lead, 0.0, 1.0);
        e_t = std::clamp((static_cast<double>(t) - (fd - 3.0 * p.lead)) / (3.0 * p.lead),
                         0.0, 1.0);
      }

      // Wear progresses, accelerating before a wear-out failure.
      const double wear_accel = p.cause == FailCause::kWearOut ? 1.0 + 1.5 * d_t : 1.0;
      mwi = std::max(0.0, mwi - p.wear_rate * wear_accel);
      poh += 24.0;
      if (drng.bernoulli(0.02)) cycles += 1.0;
      temp = temp_mean + 0.9 * (temp - temp_mean) + drng.normal(0.0, 1.2);
      volume_w += 180.0 * p.workload * std::exp(drng.normal(0.0, 0.2));
      volume_r += 120.0 * p.workload * std::exp(drng.normal(0.0, 0.2));
      {
        double dep = reserve_rate;
        if (fails && in_signature(Attr::ARS))
          dep *= 1.0 + 3.0 * e_t + 20.0 * d_t * d_t;
        reserve = std::max(0.0, reserve - dep);
      }

      auto out = drive.values.row(static_cast<std::size_t>(t));
      for (std::size_t a = 0; a < na; ++a) {
        const Attr attr = profile.attributes[a];
        double raw = 0.0, norm = 0.0;
        switch (attr_kind(attr)) {
          case AttrKind::kErrorCounter: {
            double rate = base_rate(attr) * noise[a];
            if (fails && in_signature(attr)) {
              rate *= 1.0 + (p.defect - 1.0) * std::pow(e_t, 1.5) + rmult * d_t * d_t;
            }
            if (p.cause == FailCause::kWearOut &&
                (attr == Attr::EFC || attr == Attr::PFC)) {
              // End-of-life program/erase failures.
              rate *= 1.0 + (p.defect - 1.0) * std::pow(e_t, 1.5) +
                      kWearRampMult * d_t * d_t;
            }
            if (fails && p.fail_day < unstable_until && in_unstable(attr)) {
              // Spurious early-window correlation (train-only signal).
              rate *= 1.0 + 2.0 * e_t + kUnstableRampMult * d_t * d_t;
            }
            counters[a] += static_cast<double>(drng.poisson(rate));
            raw = counters[a];
            norm = std::max(0.0, 100.0 - counters[a] * norm_scale(attr));
            break;
          }
          case AttrKind::kHours:
            raw = poh;
            norm = std::max(1.0, 100.0 - poh / 2500.0);
            break;
          case AttrKind::kCycles:
            raw = cycles;
            norm = std::max(1.0, 100.0 - cycles / 2.0);
            break;
          case AttrKind::kWear:
            // Raw channel: cumulative erase cycles behind the indicator,
            // with block-placement measurement noise.
            raw = (100.0 - mwi) * 30.0 * std::exp(drng.normal(0.0, 0.05));
            norm = std::round(mwi);
            break;
          case AttrKind::kReserve:
            raw = reserve * 16.0;
            norm = std::round(reserve);
            break;
          case AttrKind::kTemperature:
            raw = temp + (attr == Attr::AFT ? drng.normal(1.5, 0.5) : 0.0);
            norm = 100.0 - raw;
            break;
          case AttrKind::kVolume:
            raw = attr == Attr::TLW ? volume_w : volume_r;
            norm = std::max(0.0, 100.0 - raw / 500000.0 * 100.0);
            break;
        }
        out[2 * a] = raw;
        out[2 * a + 1] = norm;
      }
    }
    fleet.drives.push_back(std::move(drive));
  }
  return fleet;
}

}  // namespace wefr::smartsim
