#pragma once

#include <cstdint>

#include "data/fleet.h"
#include "smartsim/profiles.h"

namespace wefr::smartsim {

/// Fleet-generation controls.
///
/// The paper's dataset spans ~500K drives over 24 months; at laptop
/// scale we compress the window and inflate the hazard (`afr_scale`) so
/// the positive class stays populated. The *relative* AFR ordering
/// across drive models and the coupling between features and failures
/// are preserved, which is what the reproduced tables and figures rest
/// on.
struct SimOptions {
  std::size_t num_drives = 1000;
  int num_days = 240;           ///< observation window length
  std::uint64_t seed = 42;
  double afr_scale = 1.0;       ///< hazard inflation factor
  int min_fail_day = 45;        ///< earliest allowed trouble ticket
  double lead_lo = 25.0;        ///< degradation lead window (days)
  double lead_hi = 55.0;
};

/// Generates a synthetic fleet for one drive model.
///
/// Per drive the generator simulates a wear trajectory (MWI_N), a
/// workload intensity, and every SMART attribute of the model's Table-I
/// set as a coupled stochastic process (cumulative Poisson error
/// counters, AR(1) temperatures, cumulative volumes, depleting reserve
/// space). Failures are planted with three causes:
///
///  - error-signature failures (any wear level): the profile's
///    `signature_attrs` ramp up over a lead window before the ticket;
///  - wear-out failures (only when the profile has a change point):
///    concentrated on drives worn below the change point, with the
///    signature carried mostly by MWI_N/POH and accelerated wear;
///  - firmware-bug failures (MC2): barely-worn drives failing early.
///
/// The per-drive failure probability is shaped by the profile's hazard
/// terms and rescaled so the expected failure count matches
/// `afr_scale * target_afr` over the window.
data::FleetData generate_fleet(const DriveModelProfile& profile, const SimOptions& opt);

/// Feature names for a profile, in generation order:
/// for each attribute A of the profile, "A_R" then "A_N".
std::vector<std::string> feature_names_for(const DriveModelProfile& profile);

}  // namespace wefr::smartsim
