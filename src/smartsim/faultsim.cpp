#include "smartsim/faultsim.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/rng.h"
#include "util/strings.h"

namespace wefr::smartsim {

namespace {

/// Meta columns of the fleet CSV layout (drive_id,day,failed,fail_day).
constexpr std::size_t kMetaCols = 4;

std::string render_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Remembered freeze state for one stuck drive: which feature field is
/// stuck and at what printed value.
struct StuckState {
  std::size_t field = 0;
  std::string value;
};

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncateRow: return "truncate";
    case FaultKind::kNanBurst: return "nan_burst";
    case FaultKind::kStuckSensor: return "stuck";
    case FaultKind::kDuplicateRow: return "duplicate";
    case FaultKind::kOutOfOrderDay: return "out_of_order";
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kMissingColumn: return "missing_column";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

std::size_t FaultLog::total_applied() const {
  std::size_t n = 0;
  for (std::size_t c : applied) n += c;
  return n;
}

bool FaultLog::strict_rejectable() const {
  // Structural faults always break strict parsing; bit flips only when
  // they produced a non-finite value. Stuck sensors never do. Missing
  // columns are rejectable under default options, though
  // pad_missing_columns can legitimize them.
  return applied_to(FaultKind::kTruncateRow) > 0 ||
         applied_to(FaultKind::kNanBurst) > 0 ||
         applied_to(FaultKind::kDuplicateRow) > 0 ||
         applied_to(FaultKind::kOutOfOrderDay) > 0 ||
         applied_to(FaultKind::kMissingColumn) > 0 || nonfinite_flips > 0;
}

std::string FaultLog::summary() const {
  std::ostringstream os;
  os << "faults applied: " << total_applied() << " on " << rows_touched << " rows";
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (applied[k] == 0) continue;
    os << ", " << to_string(static_cast<FaultKind>(k)) << "=" << applied[k];
  }
  if (nonfinite_flips > 0) os << ", nonfinite_flips=" << nonfinite_flips;
  return os.str();
}

std::string corrupt_csv(const std::string& csv, const FaultPlan& plan, FaultLog* log) {
  FaultLog local;
  FaultLog& fl = log != nullptr ? *log : local;
  fl = FaultLog{};

  util::Rng rng(plan.seed);
  std::unordered_map<std::string, StuckState> stuck;  // drive_id -> freeze
  // drive_id -> trailing feature fields this drive's model "lacks".
  std::unordered_map<std::string, std::size_t> short_schema;

  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {
      // The header is never corrupted; see FaultPlan.
      first = false;
      out.push_back(std::move(line));
      continue;
    }
    if (util::trim(line).empty()) {
      out.push_back(std::move(line));
      continue;
    }

    auto fields = util::split(line, ',');
    const std::size_t nf = fields.size() > kMetaCols ? fields.size() - kMetaCols : 0;
    bool touched = false;
    bool truncated = false;
    bool duplicate = false;
    bool swap_prev = false;

    auto tally = [&](FaultKind k) {
      ++fl.applied[static_cast<std::size_t>(k)];
      touched = true;
    };

    // A drive already frozen stays frozen on every later row — that is
    // the point of a stuck sensor — independent of this row's rolls.
    if (nf > 0) {
      if (auto it = stuck.find(fields[0]); it != stuck.end()) {
        fields[kMetaCols + it->second.field] = it->second.value;
      }
    }

    for (const FaultSpec& spec : plan.faults) {
      if (!rng.bernoulli(spec.rate)) continue;
      switch (spec.kind) {
        case FaultKind::kStuckSensor: {
          if (nf == 0 || stuck.count(fields[0]) > 0) break;
          StuckState st;
          st.field = rng.uniform_index(nf);
          st.value = fields[kMetaCols + st.field];
          stuck.emplace(fields[0], std::move(st));
          tally(FaultKind::kStuckSensor);
          break;
        }
        case FaultKind::kBitFlip: {
          if (nf == 0) break;
          const std::size_t f = kMetaCols + rng.uniform_index(nf);
          double v = 0.0;
          if (!util::parse_double(fields[f], v)) break;  // already broken
          std::uint64_t bits = 0;
          std::memcpy(&bits, &v, sizeof(bits));
          bits ^= std::uint64_t{1} << rng.uniform_index(64);
          std::memcpy(&v, &bits, sizeof(v));
          fields[f] = render_double(v);
          double back = 0.0;
          if (!util::parse_double(fields[f], back)) ++fl.nonfinite_flips;
          tally(FaultKind::kBitFlip);
          break;
        }
        case FaultKind::kNanBurst: {
          if (nf == 0) break;
          const std::size_t start = rng.uniform_index(nf);
          const std::size_t len = 1 + rng.uniform_index(nf - start);
          for (std::size_t f = start; f < start + len; ++f)
            fields[kMetaCols + f] = "nan";
          tally(FaultKind::kNanBurst);
          break;
        }
        case FaultKind::kTruncateRow: {
          if (fields.size() < 2) break;
          truncated = true;
          tally(FaultKind::kTruncateRow);
          break;
        }
        case FaultKind::kDuplicateRow: {
          duplicate = true;
          tally(FaultKind::kDuplicateRow);
          break;
        }
        case FaultKind::kOutOfOrderDay: {
          // Swap with the previously emitted data row (reordered
          // delivery). Needs at least one prior data row.
          if (out.size() < 2) break;
          swap_prev = true;
          tally(FaultKind::kOutOfOrderDay);
          break;
        }
        case FaultKind::kMissingColumn: {
          // Persistent per drive, like a stuck sensor: once a drive's
          // model "loses" its trailing columns, all its later rows are
          // short too.
          if (nf < 2 || short_schema.count(fields[0]) > 0) break;
          short_schema.emplace(fields[0],
                               1 + rng.uniform_index(std::min<std::size_t>(3, nf - 1)));
          tally(FaultKind::kMissingColumn);
          break;
        }
        case FaultKind::kCount: break;
      }
    }

    // Drop the short-schema drive's trailing fields after every other
    // fault has seen the full-width row (and never on a truncated row,
    // which is already structurally broken on its own).
    if (!truncated && nf > 0) {
      if (auto it = short_schema.find(fields[0]); it != short_schema.end()) {
        const std::size_t drop =
            std::min(it->second, fields.size() - kMetaCols - 1);
        fields.resize(fields.size() - drop);
      }
    }

    if (truncated) {
      // Cut at a field boundary so the row has the WRONG field count —
      // guaranteed structurally invalid, never accidentally parseable.
      const std::size_t keep = 1 + rng.uniform_index(fields.size() - 1);
      fields.resize(keep);
    }

    fl.rows_touched += touched ? 1 : 0;
    std::string rendered = util::join(fields, ",");
    if (swap_prev) {
      out.push_back(std::move(out.back()));
      out[out.size() - 2] = rendered;
    } else {
      out.push_back(rendered);
    }
    if (duplicate) out.push_back(std::move(rendered));
  }

  std::string joined = util::join(out, "\n");
  joined.push_back('\n');
  return joined;
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  const std::string_view trimmed = util::trim(spec);
  if (trimmed.empty() || trimmed == "none") return plan;

  for (const std::string& token : util::split(trimmed, ',')) {
    const auto colon = token.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("fault spec needs name:rate, got '" + token + "'");
    const std::string name{util::trim(token.substr(0, colon))};
    double rate = 0.0;
    if (!util::parse_double(util::trim(token.substr(colon + 1)), rate) || rate < 0.0 ||
        rate > 1.0)
      throw std::invalid_argument("fault rate outside [0,1] in '" + token + "'");

    if (name == "mix") {
      for (std::size_t k = 0; k < kFaultKindCount; ++k) {
        plan.faults.push_back(
            {static_cast<FaultKind>(k), rate / static_cast<double>(kFaultKindCount)});
      }
      continue;
    }
    bool found = false;
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      if (name == to_string(static_cast<FaultKind>(k))) {
        plan.faults.push_back({static_cast<FaultKind>(k), rate});
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("unknown fault kind '" + name + "'");
  }
  return plan;
}

}  // namespace wefr::smartsim
