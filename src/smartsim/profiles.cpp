#include "smartsim/profiles.h"

#include <algorithm>
#include <stdexcept>

namespace wefr::smartsim {

const char* attr_name(Attr a) {
  switch (a) {
    case Attr::RER: return "RER";
    case Attr::RSC: return "RSC";
    case Attr::POH: return "POH";
    case Attr::PCC: return "PCC";
    case Attr::PFC: return "PFC";
    case Attr::EFC: return "EFC";
    case Attr::MWI: return "MWI";
    case Attr::PLP: return "PLP";
    case Attr::UPL: return "UPL";
    case Attr::ARS: return "ARS";
    case Attr::DEC: return "DEC";
    case Attr::ETE: return "ETE";
    case Attr::UCE: return "UCE";
    case Attr::CMDT: return "CMDT";
    case Attr::ET: return "ET";
    case Attr::AFT: return "AFT";
    case Attr::REC: return "REC";
    case Attr::PSC: return "PSC";
    case Attr::OCE: return "OCE";
    case Attr::CEC: return "CEC";
    case Attr::TLW: return "TLW";
    case Attr::TLR: return "TLR";
  }
  throw std::logic_error("attr_name: unknown attribute");
}

AttrKind attr_kind(Attr a) {
  switch (a) {
    case Attr::POH: return AttrKind::kHours;
    case Attr::PCC: return AttrKind::kCycles;
    case Attr::MWI: return AttrKind::kWear;
    case Attr::ARS: return AttrKind::kReserve;
    case Attr::ET:
    case Attr::AFT: return AttrKind::kTemperature;
    case Attr::TLW:
    case Attr::TLR: return AttrKind::kVolume;
    default: return AttrKind::kErrorCounter;
  }
}

bool DriveModelProfile::has_attr(Attr a) const {
  return std::find(attributes.begin(), attributes.end(), a) != attributes.end();
}

namespace {

// Table I attribute sets. Ambiguous (blank) cells in the published table
// are resolved to "present"; REC is additionally included for MB2 to
// stay consistent with Table III (whose MB2 top feature is REC_N).
std::vector<Attr> attrs_ma1() {
  return {Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC, Attr::EFC,  Attr::MWI,
          Attr::PLP, Attr::UPL, Attr::ARS, Attr::ETE, Attr::UCE,  Attr::CMDT,
          Attr::ET,  Attr::AFT, Attr::REC, Attr::PSC, Attr::OCE,  Attr::CEC};
}
std::vector<Attr> attrs_ma2() {
  return {Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC, Attr::EFC, Attr::MWI,
          Attr::PLP, Attr::UPL, Attr::ARS, Attr::DEC, Attr::ETE, Attr::UCE,
          Attr::ET,  Attr::AFT, Attr::PSC, Attr::CEC, Attr::TLW, Attr::TLR};
}
std::vector<Attr> attrs_mb1() {
  return {Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC, Attr::EFC, Attr::MWI,
          Attr::ARS, Attr::DEC, Attr::ETE, Attr::UCE, Attr::ET,  Attr::AFT,
          Attr::PSC, Attr::CEC, Attr::TLW, Attr::TLR};
}
std::vector<Attr> attrs_mb2() {
  return {Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC, Attr::EFC, Attr::MWI,
          Attr::ARS, Attr::DEC, Attr::ETE, Attr::UCE, Attr::ET,  Attr::AFT,
          Attr::REC, Attr::PSC, Attr::CEC};
}
std::vector<Attr> attrs_mc1() {
  return {Attr::RER, Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC,  Attr::EFC,
          Attr::MWI, Attr::UPL, Attr::ARS, Attr::DEC, Attr::ETE,  Attr::UCE,
          Attr::CMDT, Attr::ET, Attr::AFT, Attr::REC, Attr::PSC,  Attr::OCE,
          Attr::CEC};
}
std::vector<Attr> attrs_mc2() {
  return {Attr::RER, Attr::RSC, Attr::POH, Attr::PCC, Attr::PFC,  Attr::EFC,
          Attr::MWI, Attr::UPL, Attr::ARS, Attr::DEC, Attr::ETE,  Attr::UCE,
          Attr::CMDT, Attr::ET, Attr::AFT, Attr::REC, Attr::PSC,  Attr::OCE,
          Attr::CEC};
}

std::vector<DriveModelProfile> make_profiles() {
  std::vector<DriveModelProfile> out(6);

  // MA1 (MLC): PLP-dominated failures; wide wear range with a regime
  // shift around MWI_N ~ 35 (paper: change point between 20 and 45).
  out[0].name = "MA1";
  out[0].flash = "MLC";
  out[0].population_share = 0.100;
  out[0].target_afr = 2.36;
  out[0].attributes = attrs_ma1();
  out[0].signature_attrs = {Attr::PLP, Attr::REC, Attr::RSC};
  out[0].unstable_attrs = {Attr::UCE, Attr::CMDT};
  out[0].mwi_start_lo = 45.0;
  out[0].mwi_start_hi = 100.0;
  out[0].wear_rate_lo = 0.02;
  out[0].wear_rate_hi = 0.30;
  out[0].wear_change_point = 35.0;
  out[0].low_wear_hazard_mult = 3.5;

  // MA2 (MLC): usage-driven failures (POH/TLR/PLP); change point ~ 30.
  out[1].name = "MA2";
  out[1].flash = "MLC";
  out[1].population_share = 0.257;
  out[1].target_afr = 0.46;
  out[1].attributes = attrs_ma2();
  out[1].signature_attrs = {Attr::PLP, Attr::TLR, Attr::UCE};
  out[1].unstable_attrs = {Attr::CEC, Attr::DEC};
  out[1].mwi_start_lo = 50.0;
  out[1].mwi_start_hi = 100.0;
  out[1].wear_rate_lo = 0.02;
  out[1].wear_rate_hi = 0.26;
  out[1].wear_change_point = 30.0;
  out[1].low_wear_hazard_mult = 3.5;

  // MB1 (MLC): reserve/reallocation-driven failures; MWI_N stays in a
  // narrow high band -> no change point (paper Figure 1).
  out[2].name = "MB1";
  out[2].flash = "MLC";
  out[2].population_share = 0.089;
  out[2].target_afr = 2.52;
  out[2].attributes = attrs_mb1();
  out[2].signature_attrs = {Attr::ARS, Attr::RSC, Attr::DEC};
  out[2].unstable_attrs = {Attr::ETE, Attr::UCE};
  out[2].mwi_start_lo = 97.0;
  out[2].mwi_start_hi = 100.0;
  out[2].wear_rate_lo = 0.0005;
  out[2].wear_rate_hi = 0.004;
  out[2].wear_change_point = 0.0;

  // MB2 (MLC): reallocation-event/uncorrectable-error failures; narrow
  // wear band -> no change point.
  out[3].name = "MB2";
  out[3].flash = "MLC";
  out[3].population_share = 0.104;
  out[3].target_afr = 0.71;
  out[3].attributes = attrs_mb2();
  out[3].signature_attrs = {Attr::REC, Attr::UCE, Attr::RSC};
  out[3].unstable_attrs = {Attr::CEC, Attr::DEC};
  out[3].mwi_start_lo = 97.0;
  out[3].mwi_start_hi = 100.0;
  out[3].wear_rate_lo = 0.0005;
  out[3].wear_rate_hi = 0.004;
  out[3].wear_change_point = 0.0;

  // MC1 (TLC): offline-scan/uncorrectable-error failures; the largest
  // population; change point ~ 25.
  out[4].name = "MC1";
  out[4].flash = "TLC";
  out[4].population_share = 0.404;
  out[4].target_afr = 3.29;
  out[4].attributes = attrs_mc1();
  out[4].signature_attrs = {Attr::OCE, Attr::UCE, Attr::CMDT};
  out[4].unstable_attrs = {Attr::RER, Attr::UPL};
  out[4].mwi_start_lo = 40.0;
  out[4].mwi_start_hi = 100.0;
  out[4].wear_rate_lo = 0.02;
  out[4].wear_rate_hi = 0.32;
  out[4].wear_change_point = 25.0;
  out[4].low_wear_hazard_mult = 3.5;

  // MC2 (TLC): like MC1 plus the firmware bug that elevates failures of
  // barely-worn drives early in the window, putting the most significant
  // change point at MWI_N ~ 72 and making the survival curve
  // non-monotone (paper Figure 1).
  out[5].name = "MC2";
  out[5].flash = "TLC";
  out[5].population_share = 0.046;
  out[5].target_afr = 3.92;
  out[5].attributes = attrs_mc2();
  out[5].signature_attrs = {Attr::UCE, Attr::OCE, Attr::CMDT};
  out[5].unstable_attrs = {Attr::RER, Attr::UPL};
  out[5].mwi_start_lo = 55.0;
  out[5].mwi_start_hi = 100.0;
  out[5].wear_rate_lo = 0.02;
  out[5].wear_rate_hi = 0.18;
  out[5].wear_change_point = 30.0;
  out[5].low_wear_hazard_mult = 2.5;
  out[5].firmware_bug = true;
  out[5].firmware_bug_mwi = 72.0;
  out[5].firmware_bug_hazard = 5.0;

  return out;
}

}  // namespace

const std::vector<DriveModelProfile>& standard_profiles() {
  static const std::vector<DriveModelProfile> profiles = make_profiles();
  return profiles;
}

const DriveModelProfile& hdd_profile() {
  static const DriveModelProfile profile = [] {
    DriveModelProfile p;
    // Attribute set typical of enterprise HDD SMART: the mechanical
    // reallocation chain plus environment/usage counters — none of the
    // flash-wear attributes (MWI, EFC, PFC, ARS, PLP, TLW/TLR), which
    // is what makes a pooled SSD+HDD fleet genuinely mixed-schema.
    p.name = "HDD1";
    p.flash = "HDD";
    p.population_share = 0.0;  // not part of the paper's six-model fleet
    p.target_afr = 1.40;
    p.attributes = {Attr::RER, Attr::RSC, Attr::POH, Attr::PCC, Attr::UCE,
                    Attr::CMDT, Attr::ET, Attr::AFT, Attr::REC, Attr::PSC,
                    Attr::OCE, Attr::CEC};
    p.signature_attrs = {Attr::RSC, Attr::PSC, Attr::REC};
    p.unstable_attrs = {Attr::CMDT};
    // Inert wear band: the latent wear process exists (it correlates
    // POH) but never produces a change point or wear-out failures, and
    // no MWI attribute ever reaches the emitted features.
    p.mwi_start_lo = 97.0;
    p.mwi_start_hi = 100.0;
    p.wear_rate_lo = 0.0005;
    p.wear_rate_hi = 0.002;
    p.wear_change_point = 0.0;
    return p;
  }();
  return profile;
}

const std::vector<DriveModelProfile>& all_profiles() {
  static const std::vector<DriveModelProfile> profiles = [] {
    std::vector<DriveModelProfile> out = standard_profiles();
    out.push_back(hdd_profile());
    return out;
  }();
  return profiles;
}

const DriveModelProfile& profile_by_name(const std::string& name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  std::string available;
  for (const auto& p : all_profiles()) {
    if (!available.empty()) available += ", ";
    available += p.name;
  }
  throw std::out_of_range("profile_by_name: unknown drive model '" + name +
                          "' (available: " + available + ")");
}

}  // namespace wefr::smartsim
