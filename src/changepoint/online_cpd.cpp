#include "changepoint/online_cpd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wefr::changepoint {

OnlineChangePointDetector::OnlineChangePointDetector(const CpdOptions& opt) : opt_(opt) {
  if (opt_.expected_run_length <= 1.0)
    throw std::invalid_argument("OnlineChangePointDetector: expected_run_length <= 1");
  hazard_ = 1.0 / opt_.expected_run_length;
  prior_mean_set_ = opt_.prior_mean != 0.0;
  prior_mean_ = opt_.prior_mean;
}

double OnlineChangePointDetector::predictive_logpdf(const RunStats& s, double x) const {
  const double df = 2.0 * s.alpha;
  const double scale2 = s.beta * (s.kappa + 1.0) / (s.alpha * s.kappa);
  const double z2 = (x - s.mu) * (x - s.mu) / scale2;
  return std::lgamma((df + 1.0) / 2.0) - std::lgamma(df / 2.0) -
         0.5 * std::log(df * M_PI * scale2) - (df + 1.0) / 2.0 * std::log1p(z2 / df);
}

OnlineChangePointDetector::RunStats OnlineChangePointDetector::updated(const RunStats& s,
                                                                       double x) const {
  RunStats out;
  out.kappa = s.kappa + 1.0;
  out.mu = (s.kappa * s.mu + x) / out.kappa;
  out.alpha = s.alpha + 0.5;
  out.beta = s.beta + s.kappa * (x - s.mu) * (x - s.mu) / (2.0 * out.kappa);
  return out;
}

double OnlineChangePointDetector::observe(double x) {
  if (!prior_mean_set_) {
    prior_mean_ = x;  // auto-center on the first observation
    prior_mean_set_ = true;
  }
  const RunStats prior{prior_mean_, opt_.prior_kappa, opt_.prior_alpha,
                       std::max(opt_.prior_beta, 1e-8)};

  if (time_ == 0) {
    r_prob_ = {1.0};
    r_stats_ = {updated(prior, x)};
    last_change_prob_ = 1.0;
    ++time_;
    return last_change_prob_;
  }

  const std::size_t k = r_prob_.size();
  std::vector<double> logs(k);
  double max_log = -INFINITY;
  for (std::size_t r = 0; r < k; ++r) {
    logs[r] = predictive_logpdf(r_stats_[r], x);
    max_log = std::max(max_log, logs[r]);
  }

  std::vector<double> next_prob(k + 1, 0.0);
  double cp_mass = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    const double pred = std::exp(logs[r] - max_log);
    const double joint = r_prob_[r] * pred;
    next_prob[r + 1] = joint * (1.0 - hazard_);
    cp_mass += joint * hazard_;
  }
  next_prob[0] = cp_mass;

  double total = 0.0;
  for (double p : next_prob) total += p;
  if (total <= 0.0 || !std::isfinite(total)) {
    // Degenerate step (e.g. zero-variance stream): fall back to the
    // hazard-only transition.
    std::fill(next_prob.begin(), next_prob.end(), 0.0);
    next_prob[0] = hazard_;
    for (std::size_t r = 0; r < k; ++r) next_prob[r + 1] = r_prob_[r] * (1.0 - hazard_);
    total = 1.0;
  }
  for (double& p : next_prob) p /= total;

  std::vector<RunStats> next_stats(k + 1, prior);
  next_stats[0] = updated(prior, x);
  for (std::size_t r = 0; r < k; ++r) next_stats[r + 1] = updated(r_stats_[r], x);

  r_prob_ = std::move(next_prob);
  r_stats_ = std::move(next_stats);
  // Short-run posterior mass: the run began within the last few steps.
  // Exclude the full-history run lengths when the stream is still short.
  last_change_prob_ = 0.0;
  const std::size_t window = std::min(kShortRunWindow + 1, r_prob_.size());
  for (std::size_t r = 0; r < window; ++r) last_change_prob_ += r_prob_[r];
  if (r_prob_.size() <= kShortRunWindow + 1) last_change_prob_ = 1.0;
  ++time_;
  return last_change_prob_;
}

std::size_t OnlineChangePointDetector::map_run_length() const {
  if (r_prob_.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(r_prob_.begin(), r_prob_.end()) - r_prob_.begin());
}

void OnlineChangePointDetector::reset() {
  r_prob_.clear();
  r_stats_.clear();
  last_change_prob_ = 1.0;
  time_ = 0;
  prior_mean_set_ = opt_.prior_mean != 0.0;
  prior_mean_ = opt_.prior_mean;
}

}  // namespace wefr::changepoint
