#pragma once

#include <cstddef>
#include <vector>

#include "changepoint/bayes_cpd.h"

namespace wefr::changepoint {

/// Streaming Bayesian change-point detector (Adams-MacKay BOCPD with a
/// constant hazard and Normal-Gamma segment marginals) — the online
/// counterpart of the retrospective `change_probabilities`. Feed
/// observations one at a time; after each, the posterior run-length
/// distribution is available and `change_probability()` gives
/// P(run length <= 3 | data so far), i.e. "a new regime began within
/// the last few observations". (Under a constant hazard the posterior
/// P(run = 0) is identically the hazard — the change signal manifests
/// as posterior mass migrating to short run lengths in the steps after
/// the shift, so a short-run window is the meaningful detector.)
///
/// Use this in monitoring loops that cannot re-scan history (the
/// retrospective detector remains the reference for Figure-1 analysis).
/// The mean prior centers on the first observation when
/// `opt.prior_mean == 0` (the auto convention of CpdOptions).
class OnlineChangePointDetector {
 public:
  explicit OnlineChangePointDetector(const CpdOptions& opt = {});

  /// Consumes one observation and returns P(run length <= 3) after it.
  double observe(double x);

  /// Width of the short-run window defining change_probability().
  static constexpr std::size_t kShortRunWindow = 3;

  /// Change probability after the most recent observation (1.0 before
  /// any data, by the convention that a segment starts at t = 0).
  double change_probability() const { return last_change_prob_; }

  /// Posterior over run lengths 0..t after the last observation.
  const std::vector<double>& run_length_distribution() const { return r_prob_; }

  /// Maximum-a-posteriori run length (0 before any data).
  std::size_t map_run_length() const;

  /// Observations consumed so far.
  std::size_t time() const { return time_; }

  /// Forgets all state (fresh stream).
  void reset();

 private:
  struct RunStats {
    double mu, kappa, alpha, beta;
  };
  RunStats updated(const RunStats& s, double x) const;
  double predictive_logpdf(const RunStats& s, double x) const;

  CpdOptions opt_;
  double hazard_;
  std::vector<double> r_prob_;
  std::vector<RunStats> r_stats_;
  double last_change_prob_ = 1.0;
  std::size_t time_ = 0;
  bool prior_mean_set_ = false;
  double prior_mean_ = 0.0;
};

}  // namespace wefr::changepoint
