#include "changepoint/bayes_cpd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"

namespace wefr::changepoint {

namespace {

/// log(exp(a) + exp(b)) without overflow.
double log_add(double a, double b) {
  if (a == -INFINITY) return b;
  if (b == -INFINITY) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// Closed-form log marginal likelihood of a Gaussian segment with
/// unknown mean and variance under a Normal-Gamma(mu0, kappa0, alpha0,
/// beta0) prior, from the segment's sufficient statistics.
class SegmentMarginal {
 public:
  SegmentMarginal(std::span<const double> y, double mu0, double kappa0, double alpha0,
                  double beta0)
      : mu0_(mu0), kappa0_(kappa0), alpha0_(alpha0), beta0_(beta0) {
    prefix_sum_.resize(y.size() + 1, 0.0);
    prefix_sum2_.resize(y.size() + 1, 0.0);
    for (std::size_t i = 0; i < y.size(); ++i) {
      prefix_sum_[i + 1] = prefix_sum_[i] + y[i];
      prefix_sum2_[i + 1] = prefix_sum2_[i] + y[i] * y[i];
    }
  }

  /// log P(y[a..b]) for inclusive 0-based indices.
  double operator()(std::size_t a, std::size_t b) const {
    const double n = static_cast<double>(b - a + 1);
    const double sum = prefix_sum_[b + 1] - prefix_sum_[a];
    const double sum2 = prefix_sum2_[b + 1] - prefix_sum2_[a];
    const double mean = sum / n;
    const double ss = std::max(0.0, sum2 - n * mean * mean);

    const double kappa_n = kappa0_ + n;
    const double alpha_n = alpha0_ + n / 2.0;
    const double beta_n = beta0_ + 0.5 * ss +
                          kappa0_ * n * (mean - mu0_) * (mean - mu0_) / (2.0 * kappa_n);
    return std::lgamma(alpha_n) - std::lgamma(alpha0_) + alpha0_ * std::log(beta0_) -
           alpha_n * std::log(beta_n) + 0.5 * (std::log(kappa0_) - std::log(kappa_n)) -
           n / 2.0 * std::log(2.0 * M_PI);
  }

 private:
  double mu0_, kappa0_, alpha0_, beta0_;
  std::vector<double> prefix_sum_, prefix_sum2_;
};

}  // namespace

std::vector<double> change_probabilities(std::span<const double> series,
                                         const CpdOptions& opt) {
  if (series.empty()) throw std::invalid_argument("change_probabilities: empty series");
  if (opt.expected_run_length <= 1.0)
    throw std::invalid_argument("change_probabilities: expected_run_length must exceed 1");

  const std::size_t n = series.size();
  if (n == 1) return {1.0};

  // Scale-insensitive default: center the mean prior on the series and
  // scale the variance prior to the series' own spread, so survival
  // rates (in [0,1]) and raw sequences both work out of the box.
  double mu0 = opt.prior_mean;
  double beta0 = opt.prior_beta;
  if (opt.prior_mean == 0.0) mu0 = stats::mean(series);
  const double series_var = stats::variance(series);
  if (opt.prior_beta <= 0.0 || opt.prior_beta == CpdOptions{}.prior_beta) {
    beta0 = std::max(1e-8, 0.1 * series_var + 1e-6);
  }
  const SegmentMarginal log_ml(series, mu0, opt.prior_kappa, opt.prior_alpha, beta0);

  // Geometric segment-length prior with hazard h = 1/expected_run_length:
  // g(L) = h (1-h)^(L-1), survival G(L) = (1-h)^(L-1).
  const double h = 1.0 / opt.expected_run_length;
  const double log_h = std::log(h);
  const double log_1mh = std::log1p(-h);
  auto log_g = [&](std::size_t len) {
    return log_h + static_cast<double>(len - 1) * log_1mh;
  };
  auto log_G = [&](std::size_t len) {  // P(length >= len)
    return static_cast<double>(len - 1) * log_1mh;
  };

  // Backward recursion (Fearnhead 2006):
  // Q[t] = P(y[t..n-1] | a segment starts at t).
  std::vector<double> logQ(n + 1, 0.0);
  for (std::size_t t = n; t-- > 0;) {
    double acc = log_ml(t, n - 1) + log_G(n - t);  // final (censored) segment
    for (std::size_t s = t; s + 1 < n; ++s) {
      acc = log_add(acc, log_ml(t, s) + log_g(s - t + 1) + logQ[s + 1]);
    }
    logQ[t] = acc;
  }

  // Forward recursion: A[t] = P(y[0..t-1], a segment starts at t).
  // A[0] = 1 (a segment trivially starts at 0).
  std::vector<double> logA(n, -INFINITY);
  logA[0] = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    double acc = -INFINITY;
    for (std::size_t s = 0; s < t; ++s) {
      acc = log_add(acc, logA[s] + log_ml(s, t - 1) + log_g(t - s));
    }
    logA[t] = acc;
  }

  // Posterior P(a segment starts at t | y) = A[t] * Q[t] / Q[0].
  std::vector<double> out(n, 0.0);
  out[0] = 1.0;
  for (std::size_t t = 1; t < n; ++t) {
    const double logp = logA[t] + logQ[t] - logQ[0];
    out[t] = std::isfinite(logp) ? std::clamp(std::exp(logp), 0.0, 1.0) : 0.0;
  }
  return out;
}

std::vector<ChangePoint> significant_change_points(std::span<const double> series,
                                                   const CpdOptions& opt) {
  const auto probs = change_probabilities(series, opt);
  // z-scores of the change probabilities, excluding the trivial t=0 mass
  // from the statistics so it cannot drown the signal.
  std::span<const double> body(probs.data() + 1, probs.size() - 1);
  std::vector<ChangePoint> out;
  if (body.empty()) return out;
  const double m = stats::mean(body);
  const double sd = stats::sample_stddev(body);
  if (sd <= 0.0) return out;
  for (std::size_t t = 1; t < probs.size(); ++t) {
    const double z = (probs[t] - m) / sd;
    if (std::abs(z) >= opt.z_threshold) {
      out.push_back(ChangePoint{t, probs[t], z});
    }
  }
  return out;
}

std::optional<ChangePoint> most_significant_change(std::span<const double> series,
                                                   const CpdOptions& opt) {
  const auto all = significant_change_points(series, opt);
  if (all.empty()) return std::nullopt;
  const auto best = std::max_element(all.begin(), all.end(),
                                     [](const ChangePoint& a, const ChangePoint& b) {
                                       return std::abs(a.zscore) < std::abs(b.zscore);
                                     });
  return *best;
}

}  // namespace wefr::changepoint
