#pragma once

#include <optional>
#include <span>
#include <vector>

namespace wefr::changepoint {

/// Priors and hazard for the Bayesian change-point model.
///
/// The observation model is piecewise-constant Gaussian with unknown
/// mean and variance per segment, under a Normal-Gamma conjugate prior;
/// segment lengths follow a geometric distribution with expected length
/// `expected_run_length` (constant hazard), the discrete-time analogue
/// of Fearnhead's exact multiple-change-point model.
struct CpdOptions {
  double expected_run_length = 50.0;  ///< 1/hazard
  /// Prior mean; the default 0.0 means "auto": center on the series mean.
  double prior_mean = 0.0;
  double prior_kappa = 1.0;   ///< pseudo-observations for the mean
  double prior_alpha = 1.0;   ///< Gamma shape for the precision
  /// Gamma rate for the precision; leaving the default auto-scales to
  /// the series' own variance so [0,1] survival rates and raw-valued
  /// sequences both work unconfigured.
  double prior_beta = 0.01;
  /// z-score magnitude for a change probability to count as significant
  /// (the paper uses 2.5, i.e. a 98.76% confidence level).
  double z_threshold = 2.5;
};

/// Posterior change probability at each position of `series`:
/// `result[t]` = P(a new segment starts at t | the whole series),
/// computed by the exact forward-backward recursions of Fearnhead 2006
/// over a geometric segment-length prior with Normal-Gamma segment
/// marginals (O(n^2) with O(1) segment likelihoods via prefix sums).
/// `result[0]` is 1 by construction (a segment trivially starts at 0).
/// Throws on an empty series.
std::vector<double> change_probabilities(std::span<const double> series,
                                         const CpdOptions& opt = {});

/// A detected change point.
struct ChangePoint {
  std::size_t index = 0;      ///< position in the series where the new segment starts
  double probability = 0.0;   ///< posterior change probability at that position
  double zscore = 0.0;        ///< z-score of that probability among all positions
};

/// All significant change points: positions (excluding 0) whose change
/// probability deviates from the mean of change probabilities by at
/// least `opt.z_threshold` standard deviations, per the paper's rule.
std::vector<ChangePoint> significant_change_points(std::span<const double> series,
                                                   const CpdOptions& opt = {});

/// The single most significant change point (maximum |z-score| among the
/// significant ones), or nullopt when no position passes the z
/// threshold — e.g. MB1/MB2 in the paper, whose MWI_N range is too
/// small to exhibit a survival-rate regime shift.
std::optional<ChangePoint> most_significant_change(std::span<const double> series,
                                                   const CpdOptions& opt = {});

}  // namespace wefr::changepoint
