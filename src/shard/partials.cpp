#include "shard/partials.h"

#include <cstring>

#include "data/serialize.h"
#include "util/exact_sum.h"

namespace wefr::shard {

namespace {

using data::ByteReader;
using data::ByteWriter;

bool fail(std::string* why, const char* reason) {
  if (why != nullptr) *why = reason;
  return false;
}

// Payloads are produced by a cooperating worker process behind the
// WEFRSH01 digest, so damage is already caught by the framing; these
// caps only keep a logic bug from turning into a giant allocation.
constexpr std::uint64_t kMaxFeatures = 1u << 20;
constexpr std::uint64_t kMaxRows = 1ull << 40;

void write_doubles(ByteWriter& w, std::span<const double> v) {
  w.scalar(static_cast<std::uint64_t>(v.size()));
  w.bytes(v.data(), v.size() * sizeof(double));
}

bool read_doubles(ByteReader& r, std::vector<double>& out, std::uint64_t max_n) {
  std::uint64_t n = 0;
  if (!r.scalar(n) || n > max_n || r.remaining() < n * sizeof(double)) return false;
  out.resize(static_cast<std::size_t>(n));
  const char* p = r.raw(static_cast<std::size_t>(n) * sizeof(double));
  if (p == nullptr) return false;
  std::memcpy(out.data(), p, n * sizeof(double));
  return true;
}

void write_exact_sum(ByteWriter& w, const util::ExactSum& s) {
  s.normalize();  // normalized limbs are the canonical wire form
  for (int l = 0; l < util::ExactSum::kNumLimbs; ++l) w.scalar(s.limb(l));
  w.scalar(s.nonfinite_count());
}

bool read_exact_sum(ByteReader& r, util::ExactSum& s) {
  for (int l = 0; l < util::ExactSum::kNumLimbs; ++l) {
    std::int64_t v = 0;
    if (!r.scalar(v)) return false;
    s.set_limb(l, v);
  }
  std::uint64_t nf = 0;
  if (!r.scalar(nf)) return false;
  s.set_nonfinite_count(nf);
  return true;
}

void write_dataset(ByteWriter& w, const data::Dataset& ds) {
  w.scalar(static_cast<std::uint32_t>(ds.feature_names.size()));
  for (const auto& name : ds.feature_names) w.str(name);
  w.scalar(static_cast<std::uint64_t>(ds.size()));
  for (const int v : ds.y) w.scalar(static_cast<std::int32_t>(v));
  for (const std::int32_t v : ds.drive_index) w.scalar(v);
  for (const std::int32_t v : ds.day) w.scalar(v);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto row = ds.x.row(i);
    w.bytes(row.data(), row.size() * sizeof(double));
  }
}

bool read_dataset(ByteReader& r, data::Dataset& ds) {
  std::uint32_t nf = 0;
  if (!r.scalar(nf) || nf > kMaxFeatures) return false;
  ds.feature_names.resize(nf);
  for (auto& name : ds.feature_names) {
    if (!r.str(name)) return false;
  }
  std::uint64_t rows = 0;
  if (!r.scalar(rows) || rows > kMaxRows) return false;
  // Per row: 3 int32 provenance fields + nf doubles; reject before
  // allocating when the buffer cannot possibly hold that much.
  const std::uint64_t per_row = 3 * sizeof(std::int32_t) +
                                static_cast<std::uint64_t>(nf) * sizeof(double);
  if (per_row > 0 && rows > r.remaining() / per_row) return false;
  const auto n = static_cast<std::size_t>(rows);
  ds.y.resize(n);
  ds.drive_index.resize(n);
  ds.day.resize(n);
  for (auto& v : ds.y) {
    std::int32_t t = 0;
    if (!r.scalar(t)) return false;
    v = t;
  }
  for (auto& v : ds.drive_index) {
    if (!r.scalar(v)) return false;
  }
  for (auto& v : ds.day) {
    if (!r.scalar(v)) return false;
  }
  ds.x = data::Matrix::uninitialized(n, nf);
  for (std::size_t i = 0; i < n; ++i) {
    const char* p = r.raw(nf * sizeof(double));
    if (p == nullptr) return false;
    std::memcpy(ds.x.row(i).data(), p, nf * sizeof(double));
  }
  return true;
}

void write_survival_tally(ByteWriter& w, const core::SurvivalTally& t) {
  w.scalar(static_cast<std::int32_t>(t.bucket_width()));
  w.scalar(t.drives_skipped_nan());
  w.scalar(static_cast<std::uint64_t>(t.buckets().size()));
  for (const auto& [lower, tally] : t.buckets()) {
    w.scalar(static_cast<std::int32_t>(lower));
    w.scalar(tally.first);
    w.scalar(tally.second);
  }
}

bool read_survival_tally(ByteReader& r, core::SurvivalTally& out) {
  std::int32_t width = 0;
  std::uint64_t skipped = 0, nbuckets = 0;
  if (!r.scalar(width) || width < 1 || !r.scalar(skipped) || !r.scalar(nbuckets))
    return false;
  if (nbuckets > r.remaining() / (sizeof(std::int32_t) + 2 * sizeof(std::uint64_t)))
    return false;
  out = core::SurvivalTally(width);
  out.set_drives_skipped_nan(skipped);
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    std::int32_t lower = 0;
    std::uint64_t total = 0, failed = 0;
    if (!r.scalar(lower) || !r.scalar(total) || !r.scalar(failed)) return false;
    out.set_bucket(lower, total, failed);
  }
  return true;
}

void write_sketch(ByteWriter& w, const stats::ComplexitySketch& s) {
  write_doubles(w, s.bin_uppers());
  for (int cls = 0; cls < 2; ++cls) {
    const auto& c = s.class_sketch(cls);
    w.scalar(c.count);
    w.scalar(c.min);
    w.scalar(c.max);
    write_exact_sum(w, c.sum);
    write_exact_sum(w, c.sum2);
    for (const std::uint64_t h : c.hist) w.scalar(h);
  }
}

bool read_sketch(ByteReader& r, stats::ComplexitySketch& out) {
  std::vector<double> bins;
  if (!read_doubles(r, bins, 256)) return false;
  out = bins.empty() ? stats::ComplexitySketch()
                     : stats::ComplexitySketch(std::move(bins));
  const std::size_t nbins = out.bin_uppers().size();
  for (int cls = 0; cls < 2; ++cls) {
    auto& c = out.mutable_class_sketch(cls);
    if (!r.scalar(c.count) || !r.scalar(c.min) || !r.scalar(c.max)) return false;
    if (!read_exact_sum(r, c.sum) || !read_exact_sum(r, c.sum2)) return false;
    c.hist.assign(nbins, 0);
    for (auto& h : c.hist) {
      if (!r.scalar(h)) return false;
    }
  }
  return true;
}

}  // namespace

std::string serialize_wefr_partial(const WefrPartial& p) {
  ByteWriter w;
  w.scalar(p.drives_owned);
  w.scalar(p.build_micros);
  write_dataset(w, p.samples);
  write_survival_tally(w, p.survival);
  w.scalar(static_cast<std::uint64_t>(p.sketches.size()));
  for (const auto& s : p.sketches) write_sketch(w, s);
  return std::move(w.buf());
}

bool deserialize_wefr_partial(std::string_view payload, WefrPartial& out,
                              std::string* why) {
  ByteReader r(payload);
  if (!r.scalar(out.drives_owned) || !r.scalar(out.build_micros))
    return fail(why, "truncated partial header");
  if (!read_dataset(r, out.samples)) return fail(why, "bad sample payload");
  if (!read_survival_tally(r, out.survival)) return fail(why, "bad survival tally");
  std::uint64_t nsketch = 0;
  if (!r.scalar(nsketch) || nsketch > kMaxFeatures)
    return fail(why, "bad sketch count");
  out.sketches.resize(static_cast<std::size_t>(nsketch));
  for (auto& s : out.sketches) {
    if (!read_sketch(r, s)) return fail(why, "bad complexity sketch");
  }
  if (r.remaining() != 0) return fail(why, "trailing bytes");
  return true;
}

std::string serialize_ranker_jobs(std::span<const RankerJobResult> jobs,
                                  std::uint64_t build_micros) {
  ByteWriter w;
  w.scalar(build_micros);
  w.scalar(static_cast<std::uint64_t>(jobs.size()));
  for (const auto& j : jobs) {
    w.str(j.population);
    w.scalar(j.ranker_index);
    w.str(j.ranker_name);
    w.scalar(j.failed);
    w.str(j.failure_reason);
    write_doubles(w, j.scores);
  }
  return std::move(w.buf());
}

bool deserialize_ranker_jobs(std::string_view payload, std::vector<RankerJobResult>& out,
                             std::uint64_t* build_micros, std::string* why) {
  ByteReader r(payload);
  std::uint64_t micros = 0, njobs = 0;
  if (!r.scalar(micros) || !r.scalar(njobs) || njobs > kMaxFeatures)
    return fail(why, "truncated job header");
  if (build_micros != nullptr) *build_micros = micros;
  out.resize(static_cast<std::size_t>(njobs));
  for (auto& j : out) {
    if (!r.str(j.population) || !r.scalar(j.ranker_index) || !r.str(j.ranker_name) ||
        !r.scalar(j.failed) || !r.str(j.failure_reason) ||
        !read_doubles(r, j.scores, kMaxFeatures))
      return fail(why, "bad ranker job");
  }
  if (r.remaining() != 0) return fail(why, "trailing bytes");
  return true;
}

std::string serialize_score_partial(const ScorePartial& p) {
  ByteWriter w;
  w.scalar(p.build_micros);
  w.scalar(p.days_rerouted);
  w.scalar(p.drives_missing_features);
  w.scalar(static_cast<std::uint64_t>(p.blocks.size()));
  for (const auto& b : p.blocks) {
    w.scalar(static_cast<std::uint64_t>(b.drive_index));
    w.scalar(static_cast<std::int32_t>(b.first_day));
    write_doubles(w, b.scores);
  }
  write_doubles(w, p.auc.pos_scores());
  write_doubles(w, p.auc.neg_scores());
  return std::move(w.buf());
}

bool deserialize_score_partial(std::string_view payload, ScorePartial& out,
                               std::string* why) {
  ByteReader r(payload);
  std::uint64_t nblocks = 0;
  if (!r.scalar(out.build_micros) || !r.scalar(out.days_rerouted) ||
      !r.scalar(out.drives_missing_features) || !r.scalar(nblocks) ||
      nblocks > kMaxRows)
    return fail(why, "truncated score header");
  out.blocks.resize(static_cast<std::size_t>(nblocks));
  for (auto& b : out.blocks) {
    std::uint64_t di = 0;
    std::int32_t first = 0;
    if (!r.scalar(di) || !r.scalar(first) || !read_doubles(r, b.scores, kMaxRows))
      return fail(why, "bad score block");
    b.drive_index = static_cast<std::size_t>(di);
    b.first_day = first;
  }
  std::vector<double> pos, neg;
  if (!read_doubles(r, pos, kMaxRows) || !read_doubles(r, neg, kMaxRows))
    return fail(why, "bad auc tallies");
  out.auc.set_scores(std::move(pos), std::move(neg));
  if (r.remaining() != 0) return fail(why, "trailing bytes");
  return true;
}

}  // namespace wefr::shard
