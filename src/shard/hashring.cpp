#include "shard/hashring.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "data/serialize.h"

namespace wefr::shard {

namespace {

/// Final avalanche of splitmix64: FNV-1a alone clusters short similar
/// keys (sequential drive ids differ in one byte), and clustered ring
/// points would skew shard ownership; the mix spreads them uniformly.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

HashRing::HashRing(std::size_t num_shards, std::size_t vnodes_per_shard)
    : num_shards_(num_shards) {
  if (num_shards == 0) throw std::invalid_argument("HashRing: num_shards == 0");
  if (vnodes_per_shard == 0) throw std::invalid_argument("HashRing: vnodes == 0");
  ring_.reserve(num_shards * vnodes_per_shard);
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      const std::string key =
          "shard-" + std::to_string(s) + "-vnode-" + std::to_string(v);
      ring_.emplace_back(mix64(data::fnv1a(key)), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::shard_for(std::string_view key) const {
  const std::uint64_t h = mix64(data::fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

std::vector<std::vector<std::size_t>> partition_fleet(const data::FleetData& fleet,
                                                      std::size_t num_shards,
                                                      std::size_t vnodes_per_shard) {
  const HashRing ring(num_shards, vnodes_per_shard);
  std::vector<std::vector<std::size_t>> owned(num_shards);
  for (std::size_t di = 0; di < fleet.drives.size(); ++di) {
    owned[ring.shard_for(fleet.drives[di].drive_id)].push_back(di);
  }
  return owned;
}

}  // namespace wefr::shard
