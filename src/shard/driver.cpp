#include "shard/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "data/cache.h"
#include "data/labeling.h"
#include "data/mmap_file.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wire.h"
#include "shard/hashring.h"
#include "shard/partials.h"
#include "util/subprocess.h"

namespace wefr::shard {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t micros_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
}

/// Scratch directory for WEFRSH01 exchange files, removed on scope
/// exit. Only the forked driver needs one; the in-process driver
/// round-trips records in memory.
class ExchangeDir {
 public:
  explicit ExchangeDir(const std::string& configured) {
    if (!configured.empty()) {
      fs::create_directories(configured);
      path_ = configured;
      owned_ = false;
      return;
    }
    static std::atomic<std::uint64_t> seq{0};
    const auto tag = std::to_string(Clock::now().time_since_epoch().count()) + "_" +
                     std::to_string(seq.fetch_add(1));
    path_ = (fs::temp_directory_path() / ("wefr_shard_" + tag)).string();
    fs::create_directories(path_);
    owned_ = true;
  }
  ~ExchangeDir() {
    if (owned_) {
      std::error_code ec;
      fs::remove_all(path_, ec);  // best effort; a leak is not a failure
    }
  }
  std::string file(const char* kind, std::size_t index) const {
    return (fs::path(path_) / (std::string(kind) + "_" + std::to_string(index) + ".bin"))
        .string();
  }

 private:
  std::string path_;
  bool owned_ = false;
};

/// Chaos hook: WEFR_SHARD_FAIL_WORKER=<k> makes shard k's worker fail
/// (forked mode: nonzero exit; in-process mode: a synthetic failure
/// before the partial builds), so tests exercise the fallback path
/// deterministically whether or not fork() is available.
bool worker_failure_injected(std::size_t shard) {
  const char* env = std::getenv("WEFR_SHARD_FAIL_WORKER");
  if (env == nullptr || *env == '\0') return false;
  return std::strtoull(env, nullptr, 10) == shard;
}

/// Worker-side observability bundle: a full local tracer/registry/
/// diagnostics ledger the worker's phase runs under, snapshotted into
/// an ObsPartial when the phase ends. Only constructed when the parent
/// run has obs enabled, so the zero-overhead-when-disabled contract
/// extends across the fork boundary.
struct WorkerObs {
  obs::Tracer tracer;
  obs::Registry registry;
  obs::Context ctx{&tracer, &registry};
  core::PipelineDiagnostics diag;
  std::clock_t cpu0 = std::clock();
  Clock::time_point t0 = Clock::now();

  WorkerObs() { diag.attach(&registry); }

  obs::ObsPartial finish(const obs::TraceContext& tctx, std::size_t shard,
                         const char* phase) {
    obs::ObsPartial p;
    p.ctx = tctx;
    p.shard_index = static_cast<std::uint32_t>(shard);
    p.phase = phase;
    p.wall_micros = micros_since(t0);
    const std::clock_t cpu1 = std::clock();
    if (cpu0 != static_cast<std::clock_t>(-1) && cpu1 != static_cast<std::clock_t>(-1))
      p.cpu_micros =
          static_cast<std::uint64_t>(static_cast<double>(cpu1 - cpu0) * 1e6 /
                                     CLOCKS_PER_SEC);
    p.spans = tracer.snapshot();
    p.metrics = registry.snapshot();
    p.events.reserve(diag.events.size());
    for (const auto& e : diag.events) p.events.push_back({e.stage, e.code, e.detail});
    return p;
  }
};

/// Observes one worker-stage duration into the per-stage latency
/// histogram (`wefr_worker_stage_seconds{stage="..."}`) that rides the
/// obs partial back to the parent.
void observe_stage(const obs::Context* obs, const char* stage, Clock::time_point t0) {
  if (obs == nullptr || obs->metrics == nullptr) return;
  obs->metrics
      ->histogram(obs::labeled("wefr_worker_stage_seconds", "stage", stage),
                  {0.001, 0.01, 0.1, 1.0, 10.0})
      .observe(seconds_since(t0));
}

/// Parent-side merge state for one fan-out's WEFROB01 sidecars.
struct ObsMerge {
  const obs::Context* obs = nullptr;
  core::PipelineDiagnostics* diag = nullptr;
  obs::TraceContext tctx;
  std::uint64_t dispatch_span = 0;   ///< phase's dispatch span to re-parent under
  double dispatch_offset_us = 0.0;   ///< parent-clock instant the fan-out began
};

/// Decodes one worker's framed WEFROB01 sidecar and merges it into the
/// parent obs state: spans land under a "shard:<k>" container in
/// Chrome-trace lane 2+k, metrics absorb as `...{shard="k"}` series,
/// and diagnostics events bridge with a "shard<k>:" stage prefix. A
/// damaged, stale, or missing sidecar only bumps the dropped count —
/// observability is best-effort and must never fail the run.
void merge_obs_record(const ObsMerge& m, ShardRunStats& st, std::size_t s,
                      std::uint32_t num_shards, std::string_view framed,
                      const char* phase) {
  std::string payload, why;
  obs::ObsPartial p;
  bool ok = data::decode_obs_record(framed, data::ObsRecordKind::kWorkerObs,
                                    static_cast<std::uint32_t>(s), num_shards, payload,
                                    &why) &&
            obs::deserialize_obs_partial(payload, p, &why);
  if (ok && p.ctx.run_id != m.tctx.run_id) {
    ok = false;
    why = "stale run id";
  }
  if (!ok) {
    ++st.obs_partials_dropped;
    if (m.diag != nullptr)
      m.diag->note("shard", "obs_partial_dropped",
                   std::string(phase) + " shard " + std::to_string(s) + ": " + why);
    return;
  }
  ++st.obs_partials_merged;
  if (s < st.health.size()) {
    st.health[s].obs_merged = true;
    st.health[s].cpu_seconds += static_cast<double>(p.cpu_micros) / 1e6;
  }
  if (m.obs != nullptr && m.obs->tracer != nullptr) {
    m.obs->tracer->absorb(p.spans, m.dispatch_span, "shard:" + std::to_string(s),
                          static_cast<std::uint32_t>(2 + s), m.dispatch_offset_us);
    st.obs_spans_merged += p.spans.size();
  }
  if (m.obs != nullptr && m.obs->metrics != nullptr)
    m.obs->metrics->absorb(p.metrics, "shard=\"" + std::to_string(s) + "\"");
  if (m.diag != nullptr && !p.events.empty()) {
    std::vector<core::DiagnosticEvent> events;
    events.reserve(p.events.size());
    for (const auto& e : p.events) events.push_back({e.stage, e.code, e.detail});
    m.diag->bridge("shard" + std::to_string(s) + ":", events);
  }
}

/// Merges the sidecar a forked worker left in the exchange directory.
void merge_obs_file(const ObsMerge& m, ShardRunStats& st, std::size_t s,
                    std::uint32_t num_shards, const std::string& path,
                    const char* phase) {
  data::MappedFile file;
  if (!file.open(path) || file.size() == 0) {
    ++st.obs_partials_dropped;
    if (m.diag != nullptr)
      m.diag->note("shard", "obs_partial_dropped",
                   std::string(phase) + " shard " + std::to_string(s) +
                       ": missing sidecar");
    return;
  }
  if (s < st.health.size()) st.health[s].bytes += file.size();
  merge_obs_record(m, st, s, num_shards, file.view(), phase);
}

/// Fills the derived straggler/imbalance summary from the per-shard
/// wall clocks.
void finalize_shard_stats(ShardRunStats& st) {
  std::vector<double> walls;
  walls.reserve(st.health.size());
  for (const auto& h : st.health) walls.push_back(h.wall_seconds);
  if (walls.empty()) return;
  std::sort(walls.begin(), walls.end());
  st.max_shard_seconds = walls.back();
  const std::size_t n = walls.size();
  st.median_shard_seconds =
      n % 2 == 1 ? walls[n / 2] : 0.5 * (walls[n / 2 - 1] + walls[n / 2]);
  st.imbalance_ratio =
      st.median_shard_seconds > 0.0 ? st.max_shard_seconds / st.median_shard_seconds : 0.0;
}

/// The oracle's sampling options with a shard-ownership row filter.
/// Must mirror core::build_selection_samples exactly (same keep
/// probability, same per-drive seed derivation) — the per-drive RNG is
/// what makes the kept rows a pure function of the drive, so owned
/// subsets of the fleet sample identically to the whole fleet.
data::SamplingOptions selection_sampling(const core::ExperimentConfig& cfg, int day_lo,
                                         int day_hi) {
  data::SamplingOptions opt;
  opt.horizon_days = cfg.horizon_days;
  opt.day_lo = day_lo;
  opt.day_hi = day_hi;
  opt.negative_keep_prob = cfg.negative_keep_prob;
  opt.expand_windows = false;
  opt.per_drive_rng = true;
  opt.per_drive_seed = cfg.seed ^ 0x5e1ec7104b15ULL;
  return opt;
}

WefrPartial build_wefr_partial(const data::FleetData& fleet,
                               std::span<const std::size_t> owned, int day_lo, int day_hi,
                               int train_day_end, const core::ExperimentConfig& cfg,
                               const core::WefrOptions& wopt, int mwi_col,
                               const obs::Context* wobs = nullptr) {
  obs::Span span(wobs, "worker:wefr_partial");
  const auto t0 = Clock::now();
  auto stage_t = t0;
  WefrPartial p;
  p.drives_owned = owned.size();

  std::vector<char> mask(fleet.drives.size(), 0);
  for (const std::size_t di : owned) mask[di] = 1;
  data::SamplingOptions sopt = selection_sampling(cfg, day_lo, day_hi);
  sopt.keep = [&mask](std::size_t di, int) { return mask[di] != 0; };
  p.samples = data::build_samples(fleet, sopt, nullptr, wobs);
  observe_stage(wobs, "samples", stage_t);

  stage_t = Clock::now();
  p.survival = core::SurvivalTally(wopt.survival_bucket_width);
  if (mwi_col >= 0) {
    for (const std::size_t di : owned) {
      p.survival.add_drive(fleet.drives[di], static_cast<std::size_t>(mwi_col),
                           train_day_end);
    }
  }
  observe_stage(wobs, "survival", stage_t);

  stage_t = Clock::now();
  p.sketches.resize(p.samples.num_features());
  for (std::size_t r = 0; r < p.samples.size(); ++r) {
    for (std::size_t f = 0; f < p.samples.num_features(); ++f) {
      p.sketches[f].add(p.samples.x(r, f), p.samples.y[r]);
    }
  }
  observe_stage(wobs, "sketches", stage_t);
  obs::add_counter(wobs, "wefr_worker_drives_total", owned.size());
  obs::add_counter(wobs, "wefr_worker_rows_total", p.samples.size());
  p.build_micros = micros_since(t0);
  return p;
}

/// Merges shard sample sets into the canonical training population:
/// all rows, ordered by global (drive_index, day) — exactly the order
/// the oracle's single fleet pass emits, whatever the shard count.
data::Dataset merge_samples(std::vector<WefrPartial>& partials) {
  data::Dataset merged;
  merged.feature_names = partials.front().samples.feature_names;
  const std::size_t nf = merged.feature_names.size();
  std::size_t total = 0;
  for (const auto& p : partials) total += p.samples.size();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (shard, row)
  order.reserve(total);
  for (std::uint32_t s = 0; s < partials.size(); ++s) {
    for (std::uint32_t r = 0; r < partials[s].samples.size(); ++r) order.emplace_back(s, r);
  }
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    const auto& da = partials[a.first].samples;
    const auto& db = partials[b.first].samples;
    const auto ka = std::make_pair(da.drive_index[a.second], da.day[a.second]);
    const auto kb = std::make_pair(db.drive_index[b.second], db.day[b.second]);
    return ka < kb;  // (drive, day) pairs are unique across shards
  });

  merged.x = data::Matrix::uninitialized(total, nf);
  merged.y.reserve(total);
  merged.drive_index.reserve(total);
  merged.day.reserve(total);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& src = partials[order[i].first].samples;
    const std::size_t r = order[i].second;
    std::copy(src.x.row(r).begin(), src.x.row(r).end(), merged.x.row(i).begin());
    merged.y.push_back(src.y[r]);
    merged.drive_index.push_back(src.drive_index[r]);
    merged.day.push_back(src.day[r]);
  }
  return merged;
}

/// One scoring population Phase B fans ranker jobs over.
struct Population {
  std::string label;
  const data::Dataset* ds = nullptr;
};

void tally_shard_counters(const obs::Context* obs, const ShardRunStats& stats) {
  if (obs == nullptr) return;
  obs::add_counter(obs, "wefr_shard_workers_total", stats.num_shards);
  std::uint64_t drives = 0, samples = 0, bytes = 0;
  for (const std::uint64_t n : stats.shard_drives) drives += n;
  for (const std::uint64_t n : stats.shard_samples) samples += n;
  for (const auto& h : stats.health) bytes += h.bytes;
  obs::add_counter(obs, "wefr_shard_drives_total", drives);
  obs::add_counter(obs, "wefr_shard_samples_total", samples);
  obs::add_counter(obs, "wefr_shard_bytes_total", bytes);
  obs::add_counter(obs, "wefr_shard_records_verified_total", stats.records_verified);
  obs::add_counter(obs, "wefr_shard_obs_partials_merged_total", stats.obs_partials_merged);
  obs::add_counter(obs, "wefr_shard_obs_partials_dropped_total",
                   stats.obs_partials_dropped);
  obs::add_counter(obs, "wefr_shard_workers_failed_total", stats.workers_failed);
  obs::add_counter(obs, "wefr_shard_fallback_total", stats.fallback_reason.empty() ? 0 : 1);
  obs::add_counter(obs, "wefr_shard_partial_micros_total",
                   static_cast<std::uint64_t>(stats.partial_seconds * 1e6));
  obs::add_counter(obs, "wefr_shard_merge_micros_total",
                   static_cast<std::uint64_t>(stats.merge_seconds * 1e6));
  obs::add_counter(obs, "wefr_shard_forked_runs_total", stats.forked ? 1 : 0);
  if (obs->metrics == nullptr) return;
  // Per-shard ledger gauges. Their values across shards sum exactly to
  // the *_total counters this run added (integer sources on both
  // sides) — the exact-sum contract the shard tests assert.
  for (std::size_t s = 0; s < stats.health.size(); ++s) {
    const ShardHealth& h = stats.health[s];
    const std::string k = std::to_string(s);
    obs->metrics->gauge(obs::labeled("wefr_shard_drives", "shard", k))
        .set(static_cast<double>(h.drives));
    obs->metrics->gauge(obs::labeled("wefr_shard_rows", "shard", k))
        .set(static_cast<double>(h.rows));
    obs->metrics->gauge(obs::labeled("wefr_shard_bytes", "shard", k))
        .set(static_cast<double>(h.bytes));
    obs->metrics->gauge(obs::labeled("wefr_shard_wall_seconds", "shard", k))
        .set(h.wall_seconds);
    obs->metrics->gauge(obs::labeled("wefr_shard_cpu_seconds", "shard", k))
        .set(h.cpu_seconds);
  }
}

}  // namespace

core::WefrResult run_wefr_sharded(const data::FleetData& fleet, int day_lo, int day_hi,
                                  int train_day_end, const core::WefrOptions& wopt,
                                  const core::ExperimentConfig& cfg,
                                  const ShardOptions& shards,
                                  core::PipelineDiagnostics* diag, const obs::Context* obs,
                                  ShardRunStats* stats, data::Dataset* merged_train) {
  obs::Span span(obs, "run_wefr_sharded");
  const std::size_t num_shards = shards.num_shards;
  if (num_shards == 0) throw std::invalid_argument("run_wefr_sharded: num_shards == 0");

  ShardRunStats local_stats;
  ShardRunStats& st = stats != nullptr ? *stats : local_stats;
  st = ShardRunStats{};
  st.num_shards = num_shards;
  st.forked = num_shards > 1 && !shards.force_in_process && util::fork_supported();
  st.health.assign(num_shards, ShardHealth{});

  const bool obs_on = obs != nullptr && (obs->tracer != nullptr || obs->metrics != nullptr);
  obs::TraceContext tctx;
  if (obs_on) {
    tctx.run_id = static_cast<std::uint64_t>(Clock::now().time_since_epoch().count()) ^
                  0x9e3779b97f4a7c15ULL;
    tctx.parent_span = span.id();
  }
  const auto num_shards_u32 = static_cast<std::uint32_t>(num_shards);

  const int mwi_col = fleet.feature_index("MWI_N");
  const auto partition = partition_fleet(fleet, num_shards, shards.vnodes_per_shard);

  // The whole-fleet in-process oracle, also the safety valve: any
  // worker or exchange failure redoes everything here rather than
  // returning a partial result. The per-shard ledger is zeroed — those
  // numbers would describe work that was thrown away — and
  // fallback_reason records why; only the failure accounting
  // (workers_failed, obs drop counts) survives.
  const auto fallback = [&](const std::string& reason) {
    if (diag != nullptr) diag->note("shard", "in_process_fallback", reason);
    st.forked = false;
    st.fallback_reason = reason;
    st.shard_drives.clear();
    st.shard_samples.clear();
    st.health.clear();
    st.partial_seconds = 0.0;
    st.merge_seconds = 0.0;
    st.max_shard_seconds = st.median_shard_seconds = st.imbalance_ratio = 0.0;
    tally_shard_counters(obs, st);
    core::ExperimentConfig cfg2 = cfg;
    cfg2.per_drive_sampling = true;
    data::Dataset samples = core::build_selection_samples(fleet, day_lo, day_hi, cfg2, obs);
    auto result = run_wefr(fleet, samples, train_day_end, wopt, diag, obs);
    if (merged_train != nullptr) *merged_train = std::move(samples);
    return result;
  };

  // --- Phase A: per-shard partials ---------------------------------
  auto phase_start = Clock::now();
  obs::Span dispatch_a(obs, "shard:dispatch:partials");
  ObsMerge om_a;
  om_a.obs = obs;
  om_a.diag = diag;
  om_a.tctx = tctx;
  om_a.dispatch_span = dispatch_a.id();
  om_a.dispatch_offset_us =
      obs != nullptr && obs->tracer != nullptr ? obs->tracer->now_us() : 0.0;
  std::vector<WefrPartial> partials(num_shards);
  if (st.forked) {
    const ExchangeDir exchange(shards.exchange_dir);
    const auto outcomes = util::run_forked(num_shards, [&](std::size_t s) -> int {
      if (worker_failure_injected(s)) return 7;
      std::unique_ptr<WorkerObs> wobs;
      if (obs_on) wobs = std::make_unique<WorkerObs>();
      const WefrPartial p =
          build_wefr_partial(fleet, partition[s], day_lo, day_hi, train_day_end, cfg,
                             wopt, mwi_col, wobs != nullptr ? &wobs->ctx : nullptr);
      const std::string payload = serialize_wefr_partial(p);
      if (!data::write_shard_record(exchange.file("wefr_partial", s),
                                    data::ShardRecordKind::kWefrPartial,
                                    static_cast<std::uint32_t>(s), num_shards_u32,
                                    payload))
        return 3;
      if (wobs != nullptr) {
        // Best-effort sidecar: a failed write degrades to one dropped
        // obs partial on the parent side, never a failed worker.
        data::write_obs_record(
            exchange.file("obs_wefr", s), data::ObsRecordKind::kWorkerObs,
            static_cast<std::uint32_t>(s), num_shards_u32,
            obs::serialize_obs_partial(wobs->finish(tctx, s, "wefr_partial")));
      }
      return 0;
    });
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!outcomes[s].ok || outcomes[s].exit_code != 0) {
        ++st.workers_failed;
        st.health[s].worker_exit = outcomes[s].exit_code != 0 ? outcomes[s].exit_code : -1;
        return fallback("phase A worker " + std::to_string(s) + " failed: " +
                        (outcomes[s].error.empty() ? "nonzero exit" : outcomes[s].error));
      }
      std::string payload, why;
      if (!data::read_shard_record(exchange.file("wefr_partial", s),
                                   data::ShardRecordKind::kWefrPartial,
                                   static_cast<std::uint32_t>(s), num_shards_u32, payload,
                                   &why) ||
          !deserialize_wefr_partial(payload, partials[s], &why))
        return fallback("phase A record " + std::to_string(s) + ": " + why);
      ++st.records_verified;
      ++st.health[s].records_verified;
      std::error_code ec;
      const auto fsize = fs::file_size(exchange.file("wefr_partial", s), ec);
      if (!ec) st.health[s].bytes += fsize;
      if (obs_on)
        merge_obs_file(om_a, st, s, num_shards_u32, exchange.file("obs_wefr", s),
                       "wefr_partial");
    }
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (worker_failure_injected(s)) {
        ++st.workers_failed;
        st.health[s].worker_exit = 7;
        return fallback("phase A worker " + std::to_string(s) +
                        " failed: injected failure");
      }
      std::unique_ptr<WorkerObs> wobs;
      if (obs_on) wobs = std::make_unique<WorkerObs>();
      const WefrPartial p =
          build_wefr_partial(fleet, partition[s], day_lo, day_hi, train_day_end, cfg,
                             wopt, mwi_col, wobs != nullptr ? &wobs->ctx : nullptr);
      // In-memory WEFRSH01 roundtrip: the serial driver exercises the
      // same wire path the forked one ships through files.
      const std::string record = data::encode_shard_record(
          data::ShardRecordKind::kWefrPartial, static_cast<std::uint32_t>(s),
          num_shards_u32, serialize_wefr_partial(p));
      std::string payload, why;
      if (!data::decode_shard_record(record, data::ShardRecordKind::kWefrPartial,
                                     static_cast<std::uint32_t>(s), num_shards_u32,
                                     payload, &why) ||
          !deserialize_wefr_partial(payload, partials[s], &why))
        return fallback("in-process record " + std::to_string(s) + ": " + why);
      ++st.records_verified;
      ++st.health[s].records_verified;
      st.health[s].bytes += record.size();
      if (wobs != nullptr) {
        const std::string orec = data::encode_obs_record(
            data::ObsRecordKind::kWorkerObs, static_cast<std::uint32_t>(s),
            num_shards_u32,
            obs::serialize_obs_partial(wobs->finish(tctx, s, "wefr_partial")));
        st.health[s].bytes += orec.size();
        merge_obs_record(om_a, st, s, num_shards_u32, orec, "wefr_partial");
      }
    }
  }
  dispatch_a.finish();
  st.partial_seconds += seconds_since(phase_start);

  // --- Merge, strictly in shard-index order ------------------------
  const auto merge_start = Clock::now();
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (partials[s].samples.feature_names != fleet.feature_names)
      return fallback("shard " + std::to_string(s) + " feature schema mismatch");
    st.shard_drives.push_back(partials[s].drives_owned);
    st.shard_samples.push_back(partials[s].samples.size());
    st.health[s].drives = partials[s].drives_owned;
    st.health[s].rows = partials[s].samples.size();
    st.health[s].wall_seconds += static_cast<double>(partials[s].build_micros) / 1e6;
  }

  data::Dataset merged = merge_samples(partials);

  core::SurvivalTally tally(wopt.survival_bucket_width);
  for (const auto& p : partials) tally.merge(p.survival);
  const core::SurvivalCurve curve = tally.finalize(wopt.survival_min_count);

  // Merge-integrity cross-check: the complexity sketches count every
  // row a shard contributed, independently of the sample merge. A
  // mismatch means rows were lost or duplicated somewhere on the wire.
  std::vector<stats::ComplexitySketch> sketches(merged.num_features());
  for (const auto& p : partials) {
    if (p.sketches.size() != sketches.size())
      return fallback("sketch count mismatch");
    for (std::size_t f = 0; f < sketches.size(); ++f) sketches[f].merge(p.sketches[f]);
  }
  const std::size_t pos = merged.num_positive();
  for (std::size_t f = 0; f < sketches.size(); ++f) {
    if (sketches[f].count(0) != merged.size() - pos || sketches[f].count(1) != pos)
      return fallback("merge integrity: sketch row counts disagree with merged samples");
  }
  st.merge_seconds += seconds_since(merge_start);

  // --- Phase B: fan ranker-score jobs over the populations ----------
  // Mirrors run_wefr's own control flow (degenerate populations, wear
  // split, min-positives guard) to predict which populations will be
  // ranked; the hook below re-validates, so a miss only costs an
  // in-process re-score, never a wrong answer.
  const bool all_degenerate = merged.size() == 0 || pos == 0 || pos == merged.size();
  std::vector<Population> pops;
  data::Dataset low_ds, high_ds;
  if (!all_degenerate) {
    pops.push_back({"all", &merged});
    if (wopt.update_with_wearout && mwi_col >= 0) {
      const auto cp = core::detect_wear_change_point(curve, wopt.cpd);
      if (cp.has_value()) {
        const double thr = cp->mwi_threshold;
        const auto mwi = static_cast<std::size_t>(mwi_col);
        std::vector<std::size_t> low_idx, high_idx;
        for (std::size_t i = 0; i < merged.size(); ++i) {
          const double v = merged.x(i, mwi);
          if (v != v) continue;  // NaN wear: unroutable, as in run_wefr
          (v <= thr ? low_idx : high_idx).push_back(i);
        }
        const auto add_group = [&](const std::vector<std::size_t>& idx,
                                   data::Dataset& slot, const char* label) {
          if (idx.empty()) return;
          slot = data::subset(merged, idx);
          const std::size_t gpos = slot.num_positive();
          // Jobs only for groups run_wefr will actually rank: big
          // enough, and not single-class (those degrade before the
          // ensemble and would just waste worker time).
          if (gpos >= wopt.min_group_positives && gpos > 0 && gpos < slot.size())
            pops.push_back({label, &slot});
        };
        add_group(low_idx, low_ds, "low");
        add_group(high_idx, high_ds, "high");
      }
    }
  }

  core::EnsembleOptions ens_opt = wopt.ensemble;
  if (ens_opt.num_threads == 0) ens_opt.num_threads = wopt.num_threads;
  const auto proto_rankers = core::make_standard_rankers(wopt.ranker_seed, wopt.num_threads);
  const std::size_t num_rankers = proto_rankers.size();

  struct Job {
    std::size_t pop, ranker;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < pops.size(); ++p) {
    for (std::size_t k = 0; k < num_rankers; ++k) jobs.push_back({p, k});
  }

  // Worker w scores jobs j with j % W == w; populations and the
  // ranker construction are identical to what select_features_for
  // would run in-process, so every score vector is bit-reproducible.
  const auto score_jobs = [&](std::size_t w,
                              const obs::Context* wctx) -> std::vector<RankerJobResult> {
    obs::Span wspan(wctx, "worker:ranker_scores");
    const auto rankers = core::make_standard_rankers(wopt.ranker_seed, wopt.num_threads);
    std::vector<RankerJobResult> results;
    for (std::size_t j = w; j < jobs.size(); j += num_shards) {
      const Population& pop = pops[jobs[j].pop];
      const auto one = core::ensemble_score_rankers(
          std::span<const std::unique_ptr<core::FeatureRanker>>(&rankers[jobs[j].ranker],
                                                                1),
          pop.ds->x, pop.ds->y, ens_opt, wctx, wspan.id());
      RankerJobResult res;
      res.population = pop.label;
      res.ranker_index = static_cast<std::uint32_t>(jobs[j].ranker);
      res.ranker_name = one.names[0];
      res.failed = one.failed[0];
      res.failure_reason = one.failure_reasons[0];
      res.scores = one.scores[0];
      results.push_back(std::move(res));
    }
    return results;
  };

  phase_start = Clock::now();
  obs::Span dispatch_b(obs, "shard:dispatch:rankers");
  ObsMerge om_b;
  om_b.obs = obs;
  om_b.diag = diag;
  om_b.tctx = tctx;
  om_b.dispatch_span = dispatch_b.id();
  om_b.dispatch_offset_us =
      obs != nullptr && obs->tracer != nullptr ? obs->tracer->now_us() : 0.0;
  std::vector<std::vector<RankerJobResult>> worker_results(num_shards);
  if (!jobs.empty()) {
    if (st.forked) {
      const ExchangeDir exchange(shards.exchange_dir);
      const auto outcomes = util::run_forked(num_shards, [&](std::size_t w) -> int {
        std::unique_ptr<WorkerObs> wobs;
        if (obs_on) wobs = std::make_unique<WorkerObs>();
        const auto t0 = Clock::now();
        const auto results = score_jobs(w, wobs != nullptr ? &wobs->ctx : nullptr);
        const std::string payload = serialize_ranker_jobs(results, micros_since(t0));
        if (!data::write_shard_record(exchange.file("ranker_scores", w),
                                      data::ShardRecordKind::kRankerScores,
                                      static_cast<std::uint32_t>(w), num_shards_u32,
                                      payload))
          return 3;
        if (wobs != nullptr) {
          data::write_obs_record(
              exchange.file("obs_ranker", w), data::ObsRecordKind::kWorkerObs,
              static_cast<std::uint32_t>(w), num_shards_u32,
              obs::serialize_obs_partial(wobs->finish(tctx, w, "ranker_scores")));
        }
        return 0;
      });
      for (std::size_t w = 0; w < num_shards; ++w) {
        if (!outcomes[w].ok || outcomes[w].exit_code != 0) {
          ++st.workers_failed;
          st.health[w].worker_exit =
              outcomes[w].exit_code != 0 ? outcomes[w].exit_code : -1;
          return fallback("phase B worker " + std::to_string(w) + " failed: " +
                          (outcomes[w].error.empty() ? "nonzero exit" : outcomes[w].error));
        }
        std::string payload, why;
        std::uint64_t job_micros = 0;
        if (!data::read_shard_record(exchange.file("ranker_scores", w),
                                     data::ShardRecordKind::kRankerScores,
                                     static_cast<std::uint32_t>(w), num_shards_u32,
                                     payload, &why) ||
            !deserialize_ranker_jobs(payload, worker_results[w], &job_micros, &why))
          return fallback("phase B record " + std::to_string(w) + ": " + why);
        ++st.records_verified;
        ++st.health[w].records_verified;
        st.health[w].wall_seconds += static_cast<double>(job_micros) / 1e6;
        std::error_code ec;
        const auto fsize = fs::file_size(exchange.file("ranker_scores", w), ec);
        if (!ec) st.health[w].bytes += fsize;
        if (obs_on)
          merge_obs_file(om_b, st, w, num_shards_u32, exchange.file("obs_ranker", w),
                         "ranker_scores");
      }
    } else {
      for (std::size_t w = 0; w < num_shards; ++w) {
        std::unique_ptr<WorkerObs> wobs;
        if (obs_on) wobs = std::make_unique<WorkerObs>();
        const auto t0 = Clock::now();
        const std::string record = data::encode_shard_record(
            data::ShardRecordKind::kRankerScores, static_cast<std::uint32_t>(w),
            num_shards_u32,
            serialize_ranker_jobs(score_jobs(w, wobs != nullptr ? &wobs->ctx : nullptr),
                                  micros_since(t0)));
        std::string payload, why;
        std::uint64_t job_micros = 0;
        if (!data::decode_shard_record(record, data::ShardRecordKind::kRankerScores,
                                       static_cast<std::uint32_t>(w), num_shards_u32,
                                       payload, &why) ||
            !deserialize_ranker_jobs(payload, worker_results[w], &job_micros, &why))
          return fallback("in-process ranker record " + std::to_string(w) + ": " + why);
        ++st.records_verified;
        ++st.health[w].records_verified;
        st.health[w].wall_seconds += static_cast<double>(job_micros) / 1e6;
        st.health[w].bytes += record.size();
        if (wobs != nullptr) {
          const std::string orec = data::encode_obs_record(
              data::ObsRecordKind::kWorkerObs, static_cast<std::uint32_t>(w),
              num_shards_u32,
              obs::serialize_obs_partial(wobs->finish(tctx, w, "ranker_scores")));
          st.health[w].bytes += orec.size();
          merge_obs_record(om_b, st, w, num_shards_u32, orec, "ranker_scores");
        }
      }
    }
  }
  dispatch_b.finish();
  st.partial_seconds += seconds_since(phase_start);

  // Assemble per-population raw score sets, workers in index order.
  const auto assemble_start = Clock::now();
  std::map<std::string, core::RankerRawScores> raw_by_label;
  std::map<std::string, std::size_t> pop_rows;
  for (const Population& pop : pops) {
    auto& raw = raw_by_label[pop.label];
    raw.names.resize(num_rankers);
    raw.scores.resize(num_rankers);
    raw.failed.assign(num_rankers, 0);
    raw.failure_reasons.resize(num_rankers);
    pop_rows[pop.label] = pop.ds->size();
  }
  std::size_t delivered = 0;
  for (const auto& results : worker_results) {
    for (const auto& res : results) {
      const auto it = raw_by_label.find(res.population);
      if (it == raw_by_label.end() || res.ranker_index >= num_rankers)
        return fallback("ranker job for unknown population/slot");
      it->second.names[res.ranker_index] = res.ranker_name;
      it->second.scores[res.ranker_index] = res.scores;
      it->second.failed[res.ranker_index] = res.failed;
      it->second.failure_reasons[res.ranker_index] = res.failure_reason;
      ++delivered;
    }
  }
  if (delivered != jobs.size()) return fallback("ranker jobs lost in exchange");
  st.merge_seconds += seconds_since(assemble_start);

  // --- Phase C: finalize through run_wefr itself --------------------
  core::WefrRunHooks hooks;
  hooks.survival = mwi_col >= 0 ? &curve : nullptr;
  hooks.ranker_scores = [&](const std::string& label,
                            const data::Dataset& ds) -> const core::RankerRawScores* {
    const auto it = raw_by_label.find(label);
    if (it == raw_by_label.end()) return nullptr;
    // Safety valve: if run_wefr's population disagrees with the one the
    // workers scored (it cannot, by construction — but a wrong score
    // set would silently corrupt the selection), score in-process.
    const auto rows = pop_rows.find(label);
    if (rows == pop_rows.end() || rows->second != ds.size()) return nullptr;
    return &it->second;
  };

  auto result = run_wefr(fleet, merged, train_day_end, wopt, diag, obs, &hooks);
  finalize_shard_stats(st);
  tally_shard_counters(obs, st);
  if (merged_train != nullptr) *merged_train = std::move(merged);
  return result;
}

std::vector<core::DriveDayScores> score_fleet_sharded(
    const data::FleetData& fleet, const core::WefrPredictor& predictor, int t0, int t1,
    const core::ExperimentConfig& cfg, const ShardOptions& shards,
    core::PipelineDiagnostics* diag, const obs::Context* obs, ShardRunStats* stats,
    ml::AucPartial* auc_out) {
  obs::Span span(obs, "score_fleet_sharded");
  const std::size_t num_shards = shards.num_shards;
  if (num_shards == 0) throw std::invalid_argument("score_fleet_sharded: num_shards == 0");

  ShardRunStats local_stats;
  ShardRunStats& st = stats != nullptr ? *stats : local_stats;
  st = ShardRunStats{};
  st.num_shards = num_shards;
  st.forked = num_shards > 1 && !shards.force_in_process && util::fork_supported();
  st.health.assign(num_shards, ShardHealth{});

  const bool obs_on = obs != nullptr && (obs->tracer != nullptr || obs->metrics != nullptr);
  obs::TraceContext tctx;
  if (obs_on) {
    tctx.run_id = static_cast<std::uint64_t>(Clock::now().time_since_epoch().count()) ^
                  0x9e3779b97f4a7c15ULL;
    tctx.parent_span = span.id();
  }
  const auto num_shards_u32 = static_cast<std::uint32_t>(num_shards);

  const auto partition = partition_fleet(fleet, num_shards, shards.vnodes_per_shard);

  const auto build_score_partial = [&](std::size_t s, WorkerObs* wobs) -> ScorePartial {
    obs::Span wspan(wobs != nullptr ? &wobs->ctx : nullptr, "worker:score_partial");
    const auto start = Clock::now();
    ScorePartial p;
    core::PipelineDiagnostics ldiag;
    core::PipelineDiagnostics& d = wobs != nullptr ? wobs->diag : ldiag;
    p.blocks = score_fleet(fleet, predictor, partition[s], t0, t1, cfg, &d,
                           wobs != nullptr ? &wobs->ctx : nullptr);
    p.days_rerouted = d.score_days_rerouted;
    p.drives_missing_features = d.score_drives_missing_features;
    for (const auto& b : p.blocks) {
      const auto& drive = fleet.drives[b.drive_index];
      for (std::size_t i = 0; i < b.scores.size(); ++i) {
        const int day = b.first_day + static_cast<int>(i);
        const bool positive = drive.failed() && drive.fail_day > day &&
                              drive.fail_day <= day + cfg.horizon_days;
        p.auc.add(b.scores[i], positive ? 1 : 0);
      }
    }
    p.build_micros = micros_since(start);
    return p;
  };

  const auto fallback = [&](const std::string& reason) {
    if (diag != nullptr) diag->note("shard", "in_process_fallback", reason);
    st.forked = false;
    st.fallback_reason = reason;
    st.shard_drives.clear();
    st.shard_samples.clear();
    st.health.clear();
    st.partial_seconds = 0.0;
    st.merge_seconds = 0.0;
    st.max_shard_seconds = st.median_shard_seconds = st.imbalance_ratio = 0.0;
    tally_shard_counters(obs, st);
    auto blocks = score_fleet(fleet, predictor, t0, t1, cfg, diag, obs);
    if (auc_out != nullptr) {
      *auc_out = ml::AucPartial();
      for (const auto& b : blocks) {
        const auto& drive = fleet.drives[b.drive_index];
        for (std::size_t i = 0; i < b.scores.size(); ++i) {
          const int day = b.first_day + static_cast<int>(i);
          const bool positive = drive.failed() && drive.fail_day > day &&
                                drive.fail_day <= day + cfg.horizon_days;
          auc_out->add(b.scores[i], positive ? 1 : 0);
        }
      }
    }
    return blocks;
  };

  auto phase_start = Clock::now();
  obs::Span dispatch(obs, "shard:dispatch:score");
  ObsMerge om;
  om.obs = obs;
  om.diag = diag;
  om.tctx = tctx;
  om.dispatch_span = dispatch.id();
  om.dispatch_offset_us =
      obs != nullptr && obs->tracer != nullptr ? obs->tracer->now_us() : 0.0;
  std::vector<ScorePartial> partials(num_shards);
  if (st.forked) {
    const ExchangeDir exchange(shards.exchange_dir);
    const auto outcomes = util::run_forked(num_shards, [&](std::size_t s) -> int {
      if (worker_failure_injected(s)) return 7;
      std::unique_ptr<WorkerObs> wobs;
      if (obs_on) wobs = std::make_unique<WorkerObs>();
      const std::string payload =
          serialize_score_partial(build_score_partial(s, wobs.get()));
      if (!data::write_shard_record(exchange.file("score_partial", s),
                                    data::ShardRecordKind::kScorePartial,
                                    static_cast<std::uint32_t>(s), num_shards_u32,
                                    payload))
        return 3;
      if (wobs != nullptr) {
        data::write_obs_record(
            exchange.file("obs_score", s), data::ObsRecordKind::kWorkerObs,
            static_cast<std::uint32_t>(s), num_shards_u32,
            obs::serialize_obs_partial(wobs->finish(tctx, s, "score_partial")));
      }
      return 0;
    });
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!outcomes[s].ok || outcomes[s].exit_code != 0) {
        ++st.workers_failed;
        st.health[s].worker_exit = outcomes[s].exit_code != 0 ? outcomes[s].exit_code : -1;
        return fallback("score worker " + std::to_string(s) + " failed: " +
                        (outcomes[s].error.empty() ? "nonzero exit" : outcomes[s].error));
      }
      std::string payload, why;
      if (!data::read_shard_record(exchange.file("score_partial", s),
                                   data::ShardRecordKind::kScorePartial,
                                   static_cast<std::uint32_t>(s), num_shards_u32, payload,
                                   &why) ||
          !deserialize_score_partial(payload, partials[s], &why))
        return fallback("score record " + std::to_string(s) + ": " + why);
      ++st.records_verified;
      ++st.health[s].records_verified;
      std::error_code ec;
      const auto fsize = fs::file_size(exchange.file("score_partial", s), ec);
      if (!ec) st.health[s].bytes += fsize;
      if (obs_on)
        merge_obs_file(om, st, s, num_shards_u32, exchange.file("obs_score", s),
                       "score_partial");
    }
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (worker_failure_injected(s)) {
        ++st.workers_failed;
        st.health[s].worker_exit = 7;
        return fallback("score worker " + std::to_string(s) +
                        " failed: injected failure");
      }
      std::unique_ptr<WorkerObs> wobs;
      if (obs_on) wobs = std::make_unique<WorkerObs>();
      const std::string record = data::encode_shard_record(
          data::ShardRecordKind::kScorePartial, static_cast<std::uint32_t>(s),
          num_shards_u32, serialize_score_partial(build_score_partial(s, wobs.get())));
      std::string payload, why;
      if (!data::decode_shard_record(record, data::ShardRecordKind::kScorePartial,
                                     static_cast<std::uint32_t>(s), num_shards_u32,
                                     payload, &why) ||
          !deserialize_score_partial(payload, partials[s], &why))
        return fallback("in-process score record " + std::to_string(s) + ": " + why);
      ++st.records_verified;
      ++st.health[s].records_verified;
      st.health[s].bytes += record.size();
      if (wobs != nullptr) {
        const std::string orec = data::encode_obs_record(
            data::ObsRecordKind::kWorkerObs, static_cast<std::uint32_t>(s),
            num_shards_u32,
            obs::serialize_obs_partial(wobs->finish(tctx, s, "score_partial")));
        st.health[s].bytes += orec.size();
        merge_obs_record(om, st, s, num_shards_u32, orec, "score_partial");
      }
    }
  }
  dispatch.finish();
  st.partial_seconds += seconds_since(phase_start);

  const auto merge_start = Clock::now();
  std::vector<core::DriveDayScores> merged;
  ml::AucPartial auc;
  std::uint64_t rerouted = 0, drives_missing = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {  // strict shard-index order
    auto& p = partials[s];
    st.shard_drives.push_back(partition[s].size());
    std::uint64_t days = 0;
    for (auto& b : p.blocks) {
      days += b.scores.size();
      merged.push_back(std::move(b));
    }
    st.shard_samples.push_back(days);
    st.health[s].drives = partition[s].size();
    st.health[s].rows = days;
    st.health[s].wall_seconds += static_cast<double>(p.build_micros) / 1e6;
    auc.merge(p.auc);
    rerouted += p.days_rerouted;
    drives_missing += p.drives_missing_features;
  }
  // Ascending drive index = the order the unsharded sweep's eligible
  // list walks the fleet; one block per drive, so the sort is total.
  std::sort(merged.begin(), merged.end(),
            [](const core::DriveDayScores& a, const core::DriveDayScores& b) {
              return a.drive_index < b.drive_index;
            });
  st.merge_seconds += seconds_since(merge_start);

  if (diag != nullptr && rerouted > 0) {
    diag->score_days_rerouted += rerouted;
    diag->note("score", "days_rerouted_nan_mwi",
               std::to_string(rerouted) + " drive-days -> whole-model bundle");
  }
  if (diag != nullptr && drives_missing > 0) {
    diag->score_drives_missing_features += drives_missing;
    diag->note("score", "drives_missing_features",
               std::to_string(drives_missing) +
                   " drives scored with missing selected feature columns");
  }
  if (obs != nullptr) {
    std::size_t total_days = 0;
    auto* hist = obs::histogram_or_null(obs, "wefr_score_days_per_drive",
                                        {1.0, 7.0, 30.0, 90.0, 365.0, 1825.0});
    for (const auto& ds : merged) {
      total_days += ds.scores.size();
      if (hist != nullptr) hist->observe(static_cast<double>(ds.scores.size()));
    }
    obs::add_counter(obs, "wefr_score_drives_total", merged.size());
    obs::add_counter(obs, "wefr_score_days_total", total_days);
    obs::add_counter(obs, "wefr_score_days_rerouted_total", rerouted);
    obs::add_counter(obs, "wefr_inference_rows_total", total_days);
  }
  finalize_shard_stats(st);
  tally_shard_counters(obs, st);
  if (auc_out != nullptr) *auc_out = std::move(auc);
  return merged;
}

}  // namespace wefr::shard
