#include "shard/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "data/cache.h"
#include "data/labeling.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "shard/hashring.h"
#include "shard/partials.h"
#include "util/subprocess.h"

namespace wefr::shard {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t micros_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
}

/// Scratch directory for WEFRSH01 exchange files, removed on scope
/// exit. Only the forked driver needs one; the in-process driver
/// round-trips records in memory.
class ExchangeDir {
 public:
  explicit ExchangeDir(const std::string& configured) {
    if (!configured.empty()) {
      fs::create_directories(configured);
      path_ = configured;
      owned_ = false;
      return;
    }
    static std::atomic<std::uint64_t> seq{0};
    const auto tag = std::to_string(Clock::now().time_since_epoch().count()) + "_" +
                     std::to_string(seq.fetch_add(1));
    path_ = (fs::temp_directory_path() / ("wefr_shard_" + tag)).string();
    fs::create_directories(path_);
    owned_ = true;
  }
  ~ExchangeDir() {
    if (owned_) {
      std::error_code ec;
      fs::remove_all(path_, ec);  // best effort; a leak is not a failure
    }
  }
  std::string file(const char* kind, std::size_t index) const {
    return (fs::path(path_) / (std::string(kind) + "_" + std::to_string(index) + ".bin"))
        .string();
  }

 private:
  std::string path_;
  bool owned_ = false;
};

/// The oracle's sampling options with a shard-ownership row filter.
/// Must mirror core::build_selection_samples exactly (same keep
/// probability, same per-drive seed derivation) — the per-drive RNG is
/// what makes the kept rows a pure function of the drive, so owned
/// subsets of the fleet sample identically to the whole fleet.
data::SamplingOptions selection_sampling(const core::ExperimentConfig& cfg, int day_lo,
                                         int day_hi) {
  data::SamplingOptions opt;
  opt.horizon_days = cfg.horizon_days;
  opt.day_lo = day_lo;
  opt.day_hi = day_hi;
  opt.negative_keep_prob = cfg.negative_keep_prob;
  opt.expand_windows = false;
  opt.per_drive_rng = true;
  opt.per_drive_seed = cfg.seed ^ 0x5e1ec7104b15ULL;
  return opt;
}

WefrPartial build_wefr_partial(const data::FleetData& fleet,
                               std::span<const std::size_t> owned, int day_lo, int day_hi,
                               int train_day_end, const core::ExperimentConfig& cfg,
                               const core::WefrOptions& wopt, int mwi_col) {
  const auto t0 = Clock::now();
  WefrPartial p;
  p.drives_owned = owned.size();

  std::vector<char> mask(fleet.drives.size(), 0);
  for (const std::size_t di : owned) mask[di] = 1;
  data::SamplingOptions sopt = selection_sampling(cfg, day_lo, day_hi);
  sopt.keep = [&mask](std::size_t di, int) { return mask[di] != 0; };
  p.samples = data::build_samples(fleet, sopt, nullptr, nullptr);

  p.survival = core::SurvivalTally(wopt.survival_bucket_width);
  if (mwi_col >= 0) {
    for (const std::size_t di : owned) {
      p.survival.add_drive(fleet.drives[di], static_cast<std::size_t>(mwi_col),
                           train_day_end);
    }
  }

  p.sketches.resize(p.samples.num_features());
  for (std::size_t r = 0; r < p.samples.size(); ++r) {
    for (std::size_t f = 0; f < p.samples.num_features(); ++f) {
      p.sketches[f].add(p.samples.x(r, f), p.samples.y[r]);
    }
  }
  p.build_micros = micros_since(t0);
  return p;
}

/// Merges shard sample sets into the canonical training population:
/// all rows, ordered by global (drive_index, day) — exactly the order
/// the oracle's single fleet pass emits, whatever the shard count.
data::Dataset merge_samples(std::vector<WefrPartial>& partials) {
  data::Dataset merged;
  merged.feature_names = partials.front().samples.feature_names;
  const std::size_t nf = merged.feature_names.size();
  std::size_t total = 0;
  for (const auto& p : partials) total += p.samples.size();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (shard, row)
  order.reserve(total);
  for (std::uint32_t s = 0; s < partials.size(); ++s) {
    for (std::uint32_t r = 0; r < partials[s].samples.size(); ++r) order.emplace_back(s, r);
  }
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    const auto& da = partials[a.first].samples;
    const auto& db = partials[b.first].samples;
    const auto ka = std::make_pair(da.drive_index[a.second], da.day[a.second]);
    const auto kb = std::make_pair(db.drive_index[b.second], db.day[b.second]);
    return ka < kb;  // (drive, day) pairs are unique across shards
  });

  merged.x = data::Matrix::uninitialized(total, nf);
  merged.y.reserve(total);
  merged.drive_index.reserve(total);
  merged.day.reserve(total);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& src = partials[order[i].first].samples;
    const std::size_t r = order[i].second;
    std::copy(src.x.row(r).begin(), src.x.row(r).end(), merged.x.row(i).begin());
    merged.y.push_back(src.y[r]);
    merged.drive_index.push_back(src.drive_index[r]);
    merged.day.push_back(src.day[r]);
  }
  return merged;
}

/// One scoring population Phase B fans ranker jobs over.
struct Population {
  std::string label;
  const data::Dataset* ds = nullptr;
};

void tally_shard_counters(const obs::Context* obs, const ShardRunStats& stats) {
  if (obs == nullptr) return;
  obs::add_counter(obs, "wefr_shard_workers_total", stats.num_shards);
  std::uint64_t drives = 0, samples = 0;
  for (const std::uint64_t n : stats.shard_drives) drives += n;
  for (const std::uint64_t n : stats.shard_samples) samples += n;
  obs::add_counter(obs, "wefr_shard_drives_total", drives);
  obs::add_counter(obs, "wefr_shard_samples_total", samples);
  obs::add_counter(obs, "wefr_shard_partial_micros_total",
                   static_cast<std::uint64_t>(stats.partial_seconds * 1e6));
  obs::add_counter(obs, "wefr_shard_merge_micros_total",
                   static_cast<std::uint64_t>(stats.merge_seconds * 1e6));
  obs::add_counter(obs, "wefr_shard_forked_runs_total", stats.forked ? 1 : 0);
}

}  // namespace

core::WefrResult run_wefr_sharded(const data::FleetData& fleet, int day_lo, int day_hi,
                                  int train_day_end, const core::WefrOptions& wopt,
                                  const core::ExperimentConfig& cfg,
                                  const ShardOptions& shards,
                                  core::PipelineDiagnostics* diag, const obs::Context* obs,
                                  ShardRunStats* stats, data::Dataset* merged_train) {
  obs::Span span(obs, "run_wefr_sharded");
  const std::size_t num_shards = shards.num_shards;
  if (num_shards == 0) throw std::invalid_argument("run_wefr_sharded: num_shards == 0");

  ShardRunStats local_stats;
  ShardRunStats& st = stats != nullptr ? *stats : local_stats;
  st = ShardRunStats{};
  st.num_shards = num_shards;
  st.forked = num_shards > 1 && !shards.force_in_process && util::fork_supported();

  const int mwi_col = fleet.feature_index("MWI_N");
  const auto partition = partition_fleet(fleet, num_shards, shards.vnodes_per_shard);

  // The whole-fleet in-process oracle, also the safety valve: any
  // worker or exchange failure redoes everything here rather than
  // returning a partial result.
  const auto fallback = [&](const std::string& reason) {
    if (diag != nullptr) diag->note("shard", "in_process_fallback", reason);
    st.forked = false;
    core::ExperimentConfig cfg2 = cfg;
    cfg2.per_drive_sampling = true;
    data::Dataset samples = core::build_selection_samples(fleet, day_lo, day_hi, cfg2, obs);
    auto result = run_wefr(fleet, samples, train_day_end, wopt, diag, obs);
    if (merged_train != nullptr) *merged_train = std::move(samples);
    return result;
  };

  // --- Phase A: per-shard partials ---------------------------------
  auto phase_start = Clock::now();
  std::vector<WefrPartial> partials(num_shards);
  if (st.forked) {
    const ExchangeDir exchange(shards.exchange_dir);
    const auto outcomes = util::run_forked(num_shards, [&](std::size_t s) -> int {
      const WefrPartial p = build_wefr_partial(fleet, partition[s], day_lo, day_hi,
                                               train_day_end, cfg, wopt, mwi_col);
      const std::string payload = serialize_wefr_partial(p);
      return data::write_shard_record(exchange.file("wefr_partial", s),
                                      data::ShardRecordKind::kWefrPartial,
                                      static_cast<std::uint32_t>(s),
                                      static_cast<std::uint32_t>(num_shards), payload)
                 ? 0
                 : 3;
    });
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!outcomes[s].ok || outcomes[s].exit_code != 0)
        return fallback("phase A worker " + std::to_string(s) + " failed: " +
                        (outcomes[s].error.empty() ? "nonzero exit" : outcomes[s].error));
      std::string payload, why;
      if (!data::read_shard_record(exchange.file("wefr_partial", s),
                                   data::ShardRecordKind::kWefrPartial,
                                   static_cast<std::uint32_t>(s),
                                   static_cast<std::uint32_t>(num_shards), payload, &why) ||
          !deserialize_wefr_partial(payload, partials[s], &why))
        return fallback("phase A record " + std::to_string(s) + ": " + why);
    }
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) {
      const WefrPartial p = build_wefr_partial(fleet, partition[s], day_lo, day_hi,
                                               train_day_end, cfg, wopt, mwi_col);
      // In-memory WEFRSH01 roundtrip: the serial driver exercises the
      // same wire path the forked one ships through files.
      const std::string record = data::encode_shard_record(
          data::ShardRecordKind::kWefrPartial, static_cast<std::uint32_t>(s),
          static_cast<std::uint32_t>(num_shards), serialize_wefr_partial(p));
      std::string payload, why;
      if (!data::decode_shard_record(record, data::ShardRecordKind::kWefrPartial,
                                     static_cast<std::uint32_t>(s),
                                     static_cast<std::uint32_t>(num_shards), payload,
                                     &why) ||
          !deserialize_wefr_partial(payload, partials[s], &why))
        return fallback("in-process record " + std::to_string(s) + ": " + why);
    }
  }
  st.partial_seconds += seconds_since(phase_start);

  // --- Merge, strictly in shard-index order ------------------------
  const auto merge_start = Clock::now();
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (partials[s].samples.feature_names != fleet.feature_names)
      return fallback("shard " + std::to_string(s) + " feature schema mismatch");
    st.shard_drives.push_back(partials[s].drives_owned);
    st.shard_samples.push_back(partials[s].samples.size());
  }

  data::Dataset merged = merge_samples(partials);

  core::SurvivalTally tally(wopt.survival_bucket_width);
  for (const auto& p : partials) tally.merge(p.survival);
  const core::SurvivalCurve curve = tally.finalize(wopt.survival_min_count);

  // Merge-integrity cross-check: the complexity sketches count every
  // row a shard contributed, independently of the sample merge. A
  // mismatch means rows were lost or duplicated somewhere on the wire.
  std::vector<stats::ComplexitySketch> sketches(merged.num_features());
  for (const auto& p : partials) {
    if (p.sketches.size() != sketches.size())
      return fallback("sketch count mismatch");
    for (std::size_t f = 0; f < sketches.size(); ++f) sketches[f].merge(p.sketches[f]);
  }
  const std::size_t pos = merged.num_positive();
  for (std::size_t f = 0; f < sketches.size(); ++f) {
    if (sketches[f].count(0) != merged.size() - pos || sketches[f].count(1) != pos)
      return fallback("merge integrity: sketch row counts disagree with merged samples");
  }
  st.merge_seconds += seconds_since(merge_start);

  // --- Phase B: fan ranker-score jobs over the populations ----------
  // Mirrors run_wefr's own control flow (degenerate populations, wear
  // split, min-positives guard) to predict which populations will be
  // ranked; the hook below re-validates, so a miss only costs an
  // in-process re-score, never a wrong answer.
  const bool all_degenerate = merged.size() == 0 || pos == 0 || pos == merged.size();
  std::vector<Population> pops;
  data::Dataset low_ds, high_ds;
  if (!all_degenerate) {
    pops.push_back({"all", &merged});
    if (wopt.update_with_wearout && mwi_col >= 0) {
      const auto cp = core::detect_wear_change_point(curve, wopt.cpd);
      if (cp.has_value()) {
        const double thr = cp->mwi_threshold;
        const auto mwi = static_cast<std::size_t>(mwi_col);
        std::vector<std::size_t> low_idx, high_idx;
        for (std::size_t i = 0; i < merged.size(); ++i) {
          const double v = merged.x(i, mwi);
          if (v != v) continue;  // NaN wear: unroutable, as in run_wefr
          (v <= thr ? low_idx : high_idx).push_back(i);
        }
        const auto add_group = [&](const std::vector<std::size_t>& idx,
                                   data::Dataset& slot, const char* label) {
          if (idx.empty()) return;
          slot = data::subset(merged, idx);
          const std::size_t gpos = slot.num_positive();
          // Jobs only for groups run_wefr will actually rank: big
          // enough, and not single-class (those degrade before the
          // ensemble and would just waste worker time).
          if (gpos >= wopt.min_group_positives && gpos > 0 && gpos < slot.size())
            pops.push_back({label, &slot});
        };
        add_group(low_idx, low_ds, "low");
        add_group(high_idx, high_ds, "high");
      }
    }
  }

  core::EnsembleOptions ens_opt = wopt.ensemble;
  if (ens_opt.num_threads == 0) ens_opt.num_threads = wopt.num_threads;
  const auto proto_rankers = core::make_standard_rankers(wopt.ranker_seed, wopt.num_threads);
  const std::size_t num_rankers = proto_rankers.size();

  struct Job {
    std::size_t pop, ranker;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < pops.size(); ++p) {
    for (std::size_t k = 0; k < num_rankers; ++k) jobs.push_back({p, k});
  }

  // Worker w scores jobs j with j % W == w; populations and the
  // ranker construction are identical to what select_features_for
  // would run in-process, so every score vector is bit-reproducible.
  const auto score_jobs = [&](std::size_t w) -> std::vector<RankerJobResult> {
    const auto rankers = core::make_standard_rankers(wopt.ranker_seed, wopt.num_threads);
    std::vector<RankerJobResult> results;
    for (std::size_t j = w; j < jobs.size(); j += num_shards) {
      const Population& pop = pops[jobs[j].pop];
      const auto one = core::ensemble_score_rankers(
          std::span<const std::unique_ptr<core::FeatureRanker>>(&rankers[jobs[j].ranker],
                                                                1),
          pop.ds->x, pop.ds->y, ens_opt, nullptr, 0);
      RankerJobResult res;
      res.population = pop.label;
      res.ranker_index = static_cast<std::uint32_t>(jobs[j].ranker);
      res.ranker_name = one.names[0];
      res.failed = one.failed[0];
      res.failure_reason = one.failure_reasons[0];
      res.scores = one.scores[0];
      results.push_back(std::move(res));
    }
    return results;
  };

  phase_start = Clock::now();
  std::vector<std::vector<RankerJobResult>> worker_results(num_shards);
  if (!jobs.empty()) {
    if (st.forked) {
      const ExchangeDir exchange(shards.exchange_dir);
      const auto outcomes = util::run_forked(num_shards, [&](std::size_t w) -> int {
        const auto t0 = Clock::now();
        const auto results = score_jobs(w);
        const std::string payload = serialize_ranker_jobs(results, micros_since(t0));
        return data::write_shard_record(exchange.file("ranker_scores", w),
                                        data::ShardRecordKind::kRankerScores,
                                        static_cast<std::uint32_t>(w),
                                        static_cast<std::uint32_t>(num_shards), payload)
                   ? 0
                   : 3;
      });
      for (std::size_t w = 0; w < num_shards; ++w) {
        if (!outcomes[w].ok || outcomes[w].exit_code != 0)
          return fallback("phase B worker " + std::to_string(w) + " failed: " +
                          (outcomes[w].error.empty() ? "nonzero exit" : outcomes[w].error));
        std::string payload, why;
        if (!data::read_shard_record(exchange.file("ranker_scores", w),
                                     data::ShardRecordKind::kRankerScores,
                                     static_cast<std::uint32_t>(w),
                                     static_cast<std::uint32_t>(num_shards), payload,
                                     &why) ||
            !deserialize_ranker_jobs(payload, worker_results[w], nullptr, &why))
          return fallback("phase B record " + std::to_string(w) + ": " + why);
      }
    } else {
      for (std::size_t w = 0; w < num_shards; ++w) {
        const auto t0 = Clock::now();
        const std::string record = data::encode_shard_record(
            data::ShardRecordKind::kRankerScores, static_cast<std::uint32_t>(w),
            static_cast<std::uint32_t>(num_shards),
            serialize_ranker_jobs(score_jobs(w), micros_since(t0)));
        std::string payload, why;
        if (!data::decode_shard_record(record, data::ShardRecordKind::kRankerScores,
                                       static_cast<std::uint32_t>(w),
                                       static_cast<std::uint32_t>(num_shards), payload,
                                       &why) ||
            !deserialize_ranker_jobs(payload, worker_results[w], nullptr, &why))
          return fallback("in-process ranker record " + std::to_string(w) + ": " + why);
      }
    }
  }
  st.partial_seconds += seconds_since(phase_start);

  // Assemble per-population raw score sets, workers in index order.
  const auto assemble_start = Clock::now();
  std::map<std::string, core::RankerRawScores> raw_by_label;
  std::map<std::string, std::size_t> pop_rows;
  for (const Population& pop : pops) {
    auto& raw = raw_by_label[pop.label];
    raw.names.resize(num_rankers);
    raw.scores.resize(num_rankers);
    raw.failed.assign(num_rankers, 0);
    raw.failure_reasons.resize(num_rankers);
    pop_rows[pop.label] = pop.ds->size();
  }
  std::size_t delivered = 0;
  for (const auto& results : worker_results) {
    for (const auto& res : results) {
      const auto it = raw_by_label.find(res.population);
      if (it == raw_by_label.end() || res.ranker_index >= num_rankers)
        return fallback("ranker job for unknown population/slot");
      it->second.names[res.ranker_index] = res.ranker_name;
      it->second.scores[res.ranker_index] = res.scores;
      it->second.failed[res.ranker_index] = res.failed;
      it->second.failure_reasons[res.ranker_index] = res.failure_reason;
      ++delivered;
    }
  }
  if (delivered != jobs.size()) return fallback("ranker jobs lost in exchange");
  st.merge_seconds += seconds_since(assemble_start);

  // --- Phase C: finalize through run_wefr itself --------------------
  core::WefrRunHooks hooks;
  hooks.survival = mwi_col >= 0 ? &curve : nullptr;
  hooks.ranker_scores = [&](const std::string& label,
                            const data::Dataset& ds) -> const core::RankerRawScores* {
    const auto it = raw_by_label.find(label);
    if (it == raw_by_label.end()) return nullptr;
    // Safety valve: if run_wefr's population disagrees with the one the
    // workers scored (it cannot, by construction — but a wrong score
    // set would silently corrupt the selection), score in-process.
    const auto rows = pop_rows.find(label);
    if (rows == pop_rows.end() || rows->second != ds.size()) return nullptr;
    return &it->second;
  };

  auto result = run_wefr(fleet, merged, train_day_end, wopt, diag, obs, &hooks);
  tally_shard_counters(obs, st);
  if (merged_train != nullptr) *merged_train = std::move(merged);
  return result;
}

std::vector<core::DriveDayScores> score_fleet_sharded(
    const data::FleetData& fleet, const core::WefrPredictor& predictor, int t0, int t1,
    const core::ExperimentConfig& cfg, const ShardOptions& shards,
    core::PipelineDiagnostics* diag, const obs::Context* obs, ShardRunStats* stats,
    ml::AucPartial* auc_out) {
  obs::Span span(obs, "score_fleet_sharded");
  const std::size_t num_shards = shards.num_shards;
  if (num_shards == 0) throw std::invalid_argument("score_fleet_sharded: num_shards == 0");

  ShardRunStats local_stats;
  ShardRunStats& st = stats != nullptr ? *stats : local_stats;
  st = ShardRunStats{};
  st.num_shards = num_shards;
  st.forked = num_shards > 1 && !shards.force_in_process && util::fork_supported();

  const auto partition = partition_fleet(fleet, num_shards, shards.vnodes_per_shard);

  const auto build_score_partial = [&](std::size_t s) -> ScorePartial {
    const auto start = Clock::now();
    ScorePartial p;
    core::PipelineDiagnostics ldiag;
    p.blocks = score_fleet(fleet, predictor, partition[s], t0, t1, cfg, &ldiag, nullptr);
    p.days_rerouted = ldiag.score_days_rerouted;
    p.drives_missing_features = ldiag.score_drives_missing_features;
    for (const auto& b : p.blocks) {
      const auto& drive = fleet.drives[b.drive_index];
      for (std::size_t i = 0; i < b.scores.size(); ++i) {
        const int day = b.first_day + static_cast<int>(i);
        const bool positive = drive.failed() && drive.fail_day > day &&
                              drive.fail_day <= day + cfg.horizon_days;
        p.auc.add(b.scores[i], positive ? 1 : 0);
      }
    }
    p.build_micros = micros_since(start);
    return p;
  };

  const auto fallback = [&](const std::string& reason) {
    if (diag != nullptr) diag->note("shard", "in_process_fallback", reason);
    st.forked = false;
    auto blocks = score_fleet(fleet, predictor, t0, t1, cfg, diag, obs);
    if (auc_out != nullptr) {
      *auc_out = ml::AucPartial();
      for (const auto& b : blocks) {
        const auto& drive = fleet.drives[b.drive_index];
        for (std::size_t i = 0; i < b.scores.size(); ++i) {
          const int day = b.first_day + static_cast<int>(i);
          const bool positive = drive.failed() && drive.fail_day > day &&
                                drive.fail_day <= day + cfg.horizon_days;
          auc_out->add(b.scores[i], positive ? 1 : 0);
        }
      }
    }
    return blocks;
  };

  auto phase_start = Clock::now();
  std::vector<ScorePartial> partials(num_shards);
  if (st.forked) {
    const ExchangeDir exchange(shards.exchange_dir);
    const auto outcomes = util::run_forked(num_shards, [&](std::size_t s) -> int {
      const std::string payload = serialize_score_partial(build_score_partial(s));
      return data::write_shard_record(exchange.file("score_partial", s),
                                      data::ShardRecordKind::kScorePartial,
                                      static_cast<std::uint32_t>(s),
                                      static_cast<std::uint32_t>(num_shards), payload)
                 ? 0
                 : 3;
    });
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!outcomes[s].ok || outcomes[s].exit_code != 0)
        return fallback("score worker " + std::to_string(s) + " failed: " +
                        (outcomes[s].error.empty() ? "nonzero exit" : outcomes[s].error));
      std::string payload, why;
      if (!data::read_shard_record(exchange.file("score_partial", s),
                                   data::ShardRecordKind::kScorePartial,
                                   static_cast<std::uint32_t>(s),
                                   static_cast<std::uint32_t>(num_shards), payload, &why) ||
          !deserialize_score_partial(payload, partials[s], &why))
        return fallback("score record " + std::to_string(s) + ": " + why);
    }
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::string record = data::encode_shard_record(
          data::ShardRecordKind::kScorePartial, static_cast<std::uint32_t>(s),
          static_cast<std::uint32_t>(num_shards),
          serialize_score_partial(build_score_partial(s)));
      std::string payload, why;
      if (!data::decode_shard_record(record, data::ShardRecordKind::kScorePartial,
                                     static_cast<std::uint32_t>(s),
                                     static_cast<std::uint32_t>(num_shards), payload,
                                     &why) ||
          !deserialize_score_partial(payload, partials[s], &why))
        return fallback("in-process score record " + std::to_string(s) + ": " + why);
    }
  }
  st.partial_seconds += seconds_since(phase_start);

  const auto merge_start = Clock::now();
  std::vector<core::DriveDayScores> merged;
  ml::AucPartial auc;
  std::uint64_t rerouted = 0, drives_missing = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {  // strict shard-index order
    auto& p = partials[s];
    st.shard_drives.push_back(partition[s].size());
    std::uint64_t days = 0;
    for (auto& b : p.blocks) {
      days += b.scores.size();
      merged.push_back(std::move(b));
    }
    st.shard_samples.push_back(days);
    auc.merge(p.auc);
    rerouted += p.days_rerouted;
    drives_missing += p.drives_missing_features;
  }
  // Ascending drive index = the order the unsharded sweep's eligible
  // list walks the fleet; one block per drive, so the sort is total.
  std::sort(merged.begin(), merged.end(),
            [](const core::DriveDayScores& a, const core::DriveDayScores& b) {
              return a.drive_index < b.drive_index;
            });
  st.merge_seconds += seconds_since(merge_start);

  if (diag != nullptr && rerouted > 0) {
    diag->score_days_rerouted += rerouted;
    diag->note("score", "days_rerouted_nan_mwi",
               std::to_string(rerouted) + " drive-days -> whole-model bundle");
  }
  if (diag != nullptr && drives_missing > 0) {
    diag->score_drives_missing_features += drives_missing;
    diag->note("score", "drives_missing_features",
               std::to_string(drives_missing) +
                   " drives scored with missing selected feature columns");
  }
  if (obs != nullptr) {
    std::size_t total_days = 0;
    auto* hist = obs::histogram_or_null(obs, "wefr_score_days_per_drive",
                                        {1.0, 7.0, 30.0, 90.0, 365.0, 1825.0});
    for (const auto& ds : merged) {
      total_days += ds.scores.size();
      if (hist != nullptr) hist->observe(static_cast<double>(ds.scores.size()));
    }
    obs::add_counter(obs, "wefr_score_drives_total", merged.size());
    obs::add_counter(obs, "wefr_score_days_total", total_days);
    obs::add_counter(obs, "wefr_score_days_rerouted_total", rerouted);
    obs::add_counter(obs, "wefr_inference_rows_total", total_days);
  }
  tally_shard_counters(obs, st);
  if (auc_out != nullptr) *auc_out = std::move(auc);
  return merged;
}

}  // namespace wefr::shard
