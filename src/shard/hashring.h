#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "data/fleet.h"

namespace wefr::shard {

/// Consistent-hash ring assigning string keys (drive ids) to shards.
///
/// Each shard owns `vnodes_per_shard` points on a 64-bit ring; a key
/// maps to the shard owning the first point at or clockwise after the
/// key's hash. The construction is fully deterministic — vnode points
/// are splitmix64-dispersed FNV-1a hashes of "shard-<s>-vnode-<v>",
/// never std::hash — so the same (num_shards, vnodes) always yields
/// the same assignment on every build and platform, which is what lets
/// shard plans be checked into tests.
///
/// Consistency under fleet churn: a drive's shard depends only on its
/// own id and the ring shape, never on which other drives exist, so
/// adding or retiring drives moves nothing. Growing the ring from N to
/// N+1 shards relocates only the keys captured by the new shard's
/// vnodes (~1/(N+1) of them) — the hashring property, pinned by the
/// stability-under-growth test.
class HashRing {
 public:
  /// Throws std::invalid_argument when num_shards or vnodes is 0.
  explicit HashRing(std::size_t num_shards, std::size_t vnodes_per_shard = 64);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t shard_for(std::string_view key) const;

 private:
  std::size_t num_shards_;
  /// (ring point, shard), sorted ascending by point (ties by shard).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// Partitions a fleet's drive indices across `num_shards` shards by
/// drive id through a HashRing. Result[s] holds the fleet drive
/// indices owned by shard s, ascending (fleet iteration order), every
/// drive in exactly one shard.
std::vector<std::vector<std::size_t>> partition_fleet(const data::FleetData& fleet,
                                                      std::size_t num_shards,
                                                      std::size_t vnodes_per_shard = 64);

}  // namespace wefr::shard
