#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/fleet.h"
#include "ml/metrics.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::shard {

/// Controls for the multi-worker shard driver.
struct ShardOptions {
  /// Worker count. 1 runs the same partial/merge machinery on a single
  /// shard (the equivalence anchor), still through the WEFRSH01 wire
  /// format.
  std::size_t num_shards = 1;
  /// Force the serial in-process driver even when fork() is available
  /// (sanitizer builds set this through util::fork_supported()).
  bool force_in_process = false;
  /// Directory for WEFRSH01 exchange files in forked mode; empty uses
  /// a fresh directory under the system temp dir, removed afterwards.
  std::string exchange_dir;
  /// Hashring vnodes per shard (partition granularity).
  std::size_t vnodes_per_shard = 64;
};

/// One shard's row in the health ledger: what the worker did, what it
/// cost, and whether its exchange records and obs sidecars arrived
/// intact.
struct ShardHealth {
  std::uint64_t drives = 0;  ///< drives the shard owned
  std::uint64_t rows = 0;    ///< sample rows (selection) / drive-days (scoring)
  std::uint64_t bytes = 0;   ///< WEFRSH01 + WEFROB01 record bytes exchanged
  std::uint64_t records_verified = 0;  ///< digest-checked records decoded
  double wall_seconds = 0.0;  ///< worker wall clock summed over its phases
  double cpu_seconds = 0.0;   ///< worker CPU clock (0 when obs was disabled)
  bool obs_merged = false;    ///< >=1 obs sidecar from this shard merged
  int worker_exit = 0;        ///< worker exit status (forked mode; 0 otherwise)
};

/// What the driver did, for reports and benches.
struct ShardRunStats {
  std::size_t num_shards = 0;
  bool forked = false;  ///< false = serial in-process driver ran
  std::vector<std::uint64_t> shard_drives;   ///< drives owned per shard
  std::vector<std::uint64_t> shard_samples;  ///< rows contributed per shard
  double partial_seconds = 0.0;  ///< worker fan-outs, wall clock
  double merge_seconds = 0.0;    ///< shard-index-ordered merges

  /// Health ledger, one row per shard. Cleared (with the per-shard
  /// vectors and timings above) when the run falls back to the
  /// in-process oracle — the sharded numbers would describe work that
  /// was thrown away; `fallback_reason` says why instead.
  std::vector<ShardHealth> health;
  std::string fallback_reason;  ///< "" = sharding held end to end

  // Run-level exchange + worker-obs accounting.
  std::uint64_t records_verified = 0;     ///< digest-checked records decoded
  std::uint64_t obs_spans_merged = 0;     ///< worker spans re-parented in
  std::uint64_t obs_partials_merged = 0;  ///< WEFROB01 sidecars merged
  std::uint64_t obs_partials_dropped = 0; ///< damaged/stale sidecars dropped
  std::uint64_t workers_failed = 0;       ///< forked workers that died/exited nonzero

  // Derived straggler/imbalance summary over per-shard wall time.
  double max_shard_seconds = 0.0;
  double median_shard_seconds = 0.0;
  double imbalance_ratio = 0.0;  ///< max / median (0 when undefined)
};

/// Sharded run_wefr: partitions drives across `shards.num_shards`
/// workers by consistent-hashing their drive ids, builds per-shard
/// partials (selection-sample rows with partition-invariant per-drive
/// downsampling, survival tallies, complexity sketches), merges them
/// strictly in shard-index order into the canonical training
/// population, fans the per-population ranker scoring jobs back out,
/// and finalizes through run_wefr itself via WefrRunHooks.
///
/// Bit-determinism contract: the returned WefrResult is identical —
/// every selected feature, ranking, survival point, and change point,
/// bit for bit — to
///
///   cfg2 = cfg; cfg2.per_drive_sampling = true;
///   run_wefr(fleet, build_selection_samples(fleet, day_lo, day_hi, cfg2),
///            train_day_end, wopt)
///
/// for ANY shard count, thread count, or fork/in-process mode: sample
/// rows re-sort into global (drive_index, day) order, integer tallies
/// and ExactSum limbs merge exactly, and ranker scores finalize
/// through the same ensemble_rank_from_scores code path the oracle
/// uses. Workers exchange WEFRSH01 records (fork() + files when
/// available, an in-memory roundtrip otherwise); any worker failure or
/// merge-integrity mismatch falls back to the full in-process oracle,
/// noted in `diag`, so the call never returns a partial result.
///
/// `train_day_end` is the survival-curve cut-off (usually day_hi).
/// `stats` (nullable) receives the shard plan and timings;
/// `merged_train` (nullable) receives the merged training population
/// (what the oracle's build_selection_samples would have returned).
core::WefrResult run_wefr_sharded(const data::FleetData& fleet, int day_lo, int day_hi,
                                  int train_day_end, const core::WefrOptions& wopt,
                                  const core::ExperimentConfig& cfg,
                                  const ShardOptions& shards,
                                  core::PipelineDiagnostics* diag = nullptr,
                                  const obs::Context* obs = nullptr,
                                  ShardRunStats* stats = nullptr,
                                  data::Dataset* merged_train = nullptr);

/// Sharded score_fleet: each worker scores its owned drives through
/// the drive-subset score_fleet overload and ships back a ScorePartial
/// (score blocks + AUC rank tallies + degraded-mode counters); the
/// parent concatenates blocks in ascending drive-index order — the
/// exact order the unsharded sweep emits — and merges the AUC tallies
/// in shard-index order. Per-drive scoring never reads another drive,
/// so the merged blocks are bit-identical to score_fleet over the
/// whole fleet at any shard count.
///
/// `auc_out` (nullable) receives the merged day-level AUC tallies,
/// labeled with cfg.horizon_days ("fails within the horizon after the
/// scored day"). Emits the same wefr_score_* counters score_fleet
/// would, plus the wefr_shard_* counters.
std::vector<core::DriveDayScores> score_fleet_sharded(
    const data::FleetData& fleet, const core::WefrPredictor& predictor, int t0, int t1,
    const core::ExperimentConfig& cfg, const ShardOptions& shards,
    core::PipelineDiagnostics* diag = nullptr, const obs::Context* obs = nullptr,
    ShardRunStats* stats = nullptr, ml::AucPartial* auc_out = nullptr);

}  // namespace wefr::shard
