#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "core/survival.h"
#include "data/dataset.h"
#include "ml/metrics.h"
#include "stats/complexity.h"

namespace wefr::shard {

// The three shard-partial payloads workers exchange with the merging
// parent, each framed on the wire as a WEFRSH01 record (data/cache.h).
// Serialization goes through data::ByteWriter / ByteReader — native
// endianness behind the record's endian sentinel, bounds-checked reads
// — and every deserialize returns false with a reason instead of
// faulting on damage. The partial forms are chosen so that merging in
// shard-index order is bit-deterministic: integer tallies and ExactSum
// limbs merge exactly, sample rows re-sort into the canonical global
// (drive_index, day) order, and per-class AUC tallies merge as sorted
// multisets.

/// Selection-stage partial: everything shard s contributes to building
/// the training population and the survival curve.
struct WefrPartial {
  /// Selection-sample rows for the shard's owned drives only, built
  /// with partition-invariant per-drive downsampling.
  data::Dataset samples;
  /// Per-bucket (total, failed) drive tallies for the owned drives.
  core::SurvivalTally survival;
  /// Per-base-feature moment/overlap sketches over `samples` — the
  /// merge-integrity cross-check: merged per-class sketch counts must
  /// equal the merged sample set's class counts.
  std::vector<stats::ComplexitySketch> sketches;
  std::uint64_t drives_owned = 0;
  std::uint64_t build_micros = 0;
};

std::string serialize_wefr_partial(const WefrPartial& p);
bool deserialize_wefr_partial(std::string_view payload, WefrPartial& out,
                              std::string* why = nullptr);

/// One worker-scored ranker job: raw importance scores for one
/// (population, ranker) pair, with the same failure capture semantics
/// as core::ensemble_score_rankers (which the worker runs verbatim).
struct RankerJobResult {
  std::string population;  ///< "all" / "low" / "high"
  std::uint32_t ranker_index = 0;
  std::string ranker_name;
  std::uint8_t failed = 0;
  std::string failure_reason;
  std::vector<double> scores;
};

std::string serialize_ranker_jobs(std::span<const RankerJobResult> jobs,
                                  std::uint64_t build_micros);
bool deserialize_ranker_jobs(std::string_view payload, std::vector<RankerJobResult>& out,
                             std::uint64_t* build_micros = nullptr,
                             std::string* why = nullptr);

/// Fleet-scoring partial: the shard's per-drive score blocks plus its
/// AUC rank tallies and degraded-mode counters.
struct ScorePartial {
  std::vector<core::DriveDayScores> blocks;
  ml::AucPartial auc;
  std::uint64_t days_rerouted = 0;
  std::uint64_t drives_missing_features = 0;
  std::uint64_t build_micros = 0;
};

std::string serialize_score_partial(const ScorePartial& p);
bool deserialize_score_partial(std::string_view payload, ScorePartial& out,
                               std::string* why = nullptr);

}  // namespace wefr::shard
