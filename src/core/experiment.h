#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/fleet.h"

namespace wefr::core {

/// One testing phase: train on days [0, test_start-1] (8:2 train:val by
/// day), test on [test_start, test_end].
struct PhaseSpec {
  int test_start = 0;
  int test_end = 0;
};

/// Shared configuration for the evaluation experiments (Section V).
struct CompareConfig {
  ExperimentConfig exp;
  WefrOptions wefr;
  /// Fixed selected-feature fractions tried for the single-selector
  /// baselines (the paper sweeps 10%..100%; the default grid keeps the
  /// bench runtimes sane and can be widened).
  std::vector<double> percent_sweep = {0.2, 0.4, 0.6, 0.8, 1.0};
  /// The fixed recall at which methods are compared (paper Table VI
  /// fixes per-model recalls: 37/32/34/32/18/19%).
  double target_recall = 0.30;
};

/// Result of one method in the Exp#1 comparison.
struct MethodEval {
  std::string method;
  DriveLevelEval test;              ///< test-phase metrics at fixed recall
  double selected_fraction = 1.0;   ///< fraction of base features used
  std::size_t selected_count = 0;
  double best_validation_f05 = 0.0; ///< for tuned baselines
};

/// Exp#1 outcome: per-method metrics plus the WEFR diagnostics.
struct CompareOutcome {
  std::vector<MethodEval> methods;  ///< no-selection, 5 baselines, WEFR
  WefrResult wefr;
};

/// Runs the Exp#1 protocol on one fleet and test phase: no selection,
/// the five preliminary selectors (selected fraction tuned on the
/// validation period), and WEFR; each method trains the paper's Random
/// Forest predictor and is evaluated drive-level at the fixed recall.
CompareOutcome compare_methods(const data::FleetData& fleet, const PhaseSpec& phase,
                               const CompareConfig& cfg);

/// One point of the Exp#2 fixed-fraction sweep.
struct SweepPoint {
  double fraction = 0.0;
  std::size_t count = 0;
  DriveLevelEval test;
};

/// Exp#2 outcome: F0.5 for fixed fractions of the WEFR final ranking,
/// plus the automated WEFR operating point.
struct AutoSweepOutcome {
  std::vector<SweepPoint> fixed;
  SweepPoint wefr;  ///< fraction = the automatically determined one
};

/// Runs the Exp#2 protocol: sweep fixed fractions of WEFR's final
/// ensemble ranking against WEFR's automatically selected count.
AutoSweepOutcome sweep_fixed_fractions(const data::FleetData& fleet, const PhaseSpec& phase,
                                       const CompareConfig& cfg);

/// Exp#3 outcome: WEFR with and without wear-out updating, evaluated on
/// all drives and on the low-MWI_N drives only.
struct UpdateComparison {
  std::optional<double> wear_threshold;  ///< nullopt when no change point
  DriveLevelEval no_update_all;
  DriveLevelEval no_update_low;
  DriveLevelEval update_all;
  DriveLevelEval update_low;
};

/// Runs the Exp#3 protocol. "Low" rows evaluate only drives whose
/// MWI_N at the start of the test phase is at or below the detected
/// change-point threshold.
UpdateComparison compare_update(const data::FleetData& fleet, const PhaseSpec& phase,
                                const CompareConfig& cfg);

/// Standard phase layout used by the benches: the last `num_phases`
/// months (30-day blocks) of the window are the test phases, mirroring
/// the paper's last-three-months protocol.
std::vector<PhaseSpec> standard_phases(int num_days, int num_phases = 1,
                                       int phase_len = 30);

}  // namespace wefr::core
