#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace wefr::core {

/// A preliminary feature-selection approach: assigns every learning
/// feature an importance score (higher = more important). WEFR runs
/// five of these (Section II-C) and combines their rankings.
class FeatureRanker {
 public:
  virtual ~FeatureRanker() = default;

  /// Human-readable name ("Pearson", "XGBoost", ...).
  virtual std::string name() const = 0;

  /// Importance score per feature column of `x` against labels `y`.
  virtual std::vector<double> score(const data::Matrix& x, std::span<const int> y) const = 0;

  /// 1-based fractional ranking derived from score() (rank 1 = most
  /// important; ties averaged).
  std::vector<double> ranking(const data::Matrix& x, std::span<const int> y) const;

  /// Worker threads for this ranker's internal per-feature (statistical
  /// rankers) or per-tree (forest ranker) fan-out; 0 = sequential. Every
  /// ranker writes per-feature slots or pre-forks RNG streams, so scores
  /// are identical for any thread count.
  void set_num_threads(std::size_t n) { num_threads_ = n; }
  std::size_t num_threads() const { return num_threads_; }

 protected:
  std::size_t num_threads_ = 0;
};

/// |Pearson correlation| between each feature and the target.
class PearsonRanker final : public FeatureRanker {
 public:
  std::string name() const override { return "Pearson"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;
};

/// |Spearman correlation| between each feature and the target.
class SpearmanRanker final : public FeatureRanker {
 public:
  std::string name() const override { return "Spearman"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;
};

/// Youden J-index of each feature as a single-threshold classifier.
class JIndexRanker final : public FeatureRanker {
 public:
  std::string name() const override { return "J-index"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;
};

/// Random-Forest feature-importance evaluation. `use_permutation`
/// selects Breiman's noise-injection (permutation) importance, the
/// variant the paper describes; impurity importance is the faster
/// default for repeated selection runs.
class RandomForestRanker final : public FeatureRanker {
 public:
  explicit RandomForestRanker(ml::ForestOptions opt = default_options(),
                              bool use_permutation = false, std::uint64_t seed = 7)
      : opt_(opt), use_permutation_(use_permutation), seed_(seed) {}

  std::string name() const override { return "RandomForest"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;

  /// Lighter forest than the prediction model: selection only needs a
  /// stable importance ordering, not a calibrated classifier.
  static ml::ForestOptions default_options();

 private:
  ml::ForestOptions opt_;
  bool use_permutation_;
  std::uint64_t seed_;
};

/// XGBoost-style gradient-boosting importance (weight + gain combined).
class XgboostRanker final : public FeatureRanker {
 public:
  explicit XgboostRanker(ml::GbdtOptions opt = default_options(), std::uint64_t seed = 11)
      : opt_(opt), seed_(seed) {}

  std::string name() const override { return "XGBoost"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;

  static ml::GbdtOptions default_options();

 private:
  ml::GbdtOptions opt_;
  std::uint64_t seed_;
};

/// Mutual information between the equal-frequency-binned feature and
/// the target. Not one of the paper's five; WEFR's ensemble accepts any
/// set of "common feature selection approaches", and this is a common
/// one — see make_extended_rankers().
class MutualInformationRanker final : public FeatureRanker {
 public:
  explicit MutualInformationRanker(int bins = 10) : bins_(bins) {}
  std::string name() const override { return "MutualInfo"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;

 private:
  int bins_;
};

/// Chi-square statistic of independence between the binned feature and
/// the target (extended set).
class ChiSquareRanker final : public FeatureRanker {
 public:
  explicit ChiSquareRanker(int bins = 10) : bins_(bins) {}
  std::string name() const override { return "ChiSquare"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;

 private:
  int bins_;
};

/// |standardized logistic-regression coefficient| per feature (extended
/// set): a linear-model importance complementing the tree ensembles.
class LogisticRanker final : public FeatureRanker {
 public:
  explicit LogisticRanker(std::uint64_t seed = 19) : seed_(seed) {}
  std::string name() const override { return "Logistic"; }
  std::vector<double> score(const data::Matrix& x, std::span<const int> y) const override;

 private:
  std::uint64_t seed_;
};

/// The paper's five preliminary approaches, in Section II-C order.
/// `num_threads` is applied to every ranker's internal fan-out (see
/// FeatureRanker::set_num_threads); results are thread-count invariant.
std::vector<std::unique_ptr<FeatureRanker>> make_standard_rankers(std::uint64_t seed = 7,
                                                                  std::size_t num_threads = 0);

/// The five plus three further common approaches (mutual information,
/// chi-square, logistic coefficients) — demonstrates that WEFR's
/// ensemble is open to any preliminary selector set.
std::vector<std::unique_ptr<FeatureRanker>> make_extended_rankers(std::uint64_t seed = 7,
                                                                  std::size_t num_threads = 0);

}  // namespace wefr::core
