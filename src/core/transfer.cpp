#include "core/transfer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/metrics.h"
#include "obs/trace.h"

namespace wefr::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Normalized Kendall distance between two rank-value vectors over the
/// same items: discordant pairs / all pairs. Ties (either side) are
/// neither concordant nor discordant. NaN for fewer than two items.
double kendall_distance(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n < 2) return kNaN;
  std::size_t discordant = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if ((a[i] - a[j]) * (b[i] - b[j]) < 0.0) ++discordant;
    }
  }
  return static_cast<double>(discordant) / (static_cast<double>(n) * (n - 1) / 2.0);
}

/// Day-level test AUC on `fleet` of a forest trained on days
/// [0, train_day_end] over `base_cols`. NaN (with a tagged note) when
/// training or evaluation is impossible.
double day_level_auc(const data::FleetData& fleet, const std::vector<std::size_t>& base_cols,
                     int train_day_end, const ExperimentConfig& cfg, const char* what,
                     PipelineDiagnostics* diag, const obs::Context* obs) {
  if (base_cols.empty()) {
    if (diag != nullptr)
      diag->note("transfer", "no_features", std::string(what) + ": empty feature set");
    return kNaN;
  }
  try {
    const WefrPredictor pred =
        train_predictor(fleet, base_cols, 0, train_day_end, cfg, obs);
    int t1 = fleet.num_days - 1;
    int t0 = train_day_end + 1;
    if (t0 > t1) {
      t0 = std::max(0, t1 - 29);
      if (diag != nullptr)
        diag->note("transfer", "in_sample_auc",
                   std::string(what) + ": no test days after " +
                       std::to_string(train_day_end));
    }
    const auto scores = score_fleet(fleet, pred, t0, t1, cfg, diag, obs);
    std::vector<double> flat;
    std::vector<int> labels;
    for (const auto& ds : scores) {
      const auto& drive = fleet.drives[ds.drive_index];
      for (std::size_t i = 0; i < ds.scores.size(); ++i) {
        const int day = ds.first_day + static_cast<int>(i);
        flat.push_back(ds.scores[i]);
        labels.push_back(drive.failed() && drive.fail_day > day &&
                                 drive.fail_day <= day + cfg.horizon_days
                             ? 1
                             : 0);
      }
    }
    bool has_pos = false, has_neg = false;
    for (int l : labels) (l != 0 ? has_pos : has_neg) = true;
    if (!has_pos || !has_neg) {
      if (diag != nullptr)
        diag->note("transfer", "single_class_test",
                   std::string(what) + ": test window has one label class");
      return kNaN;
    }
    return ml::auc(flat, labels);
  } catch (const std::exception& e) {
    if (diag != nullptr)
      diag->note("transfer", "train_failed", std::string(what) + ": " + e.what());
    return kNaN;
  }
}

}  // namespace

RankingTransferResult evaluate_ranking_transfer(
    const data::FleetData& source, const WefrResult& source_sel,
    const data::FleetData& target, const WefrResult& target_sel, int train_day_end,
    const ExperimentConfig& cfg, PipelineDiagnostics* diag, const obs::Context* obs) {
  obs::Span span(obs, "ranking_transfer");
  RankingTransferResult out;
  out.source_model = source.model_name;
  out.target_model = target.model_name;
  out.kendall_distance = kNaN;
  out.auc_native = out.auc_transferred = out.auc_delta = kNaN;

  // Shared namespace + rank vectors for the Kendall agreement. Both
  // ensembles rank base columns, so final_ranking is indexed by the
  // fleet's feature order.
  std::vector<double> src_ranks, tgt_ranks;
  for (std::size_t si = 0; si < source.feature_names.size(); ++si) {
    const int ti = target.feature_index(source.feature_names[si]);
    if (ti < 0) continue;
    if (si >= source_sel.all.ensemble.final_ranking.size() ||
        static_cast<std::size_t>(ti) >= target_sel.all.ensemble.final_ranking.size())
      continue;
    out.shared_features.push_back(source.feature_names[si]);
    src_ranks.push_back(source_sel.all.ensemble.final_ranking[si]);
    tgt_ranks.push_back(target_sel.all.ensemble.final_ranking[ti]);
  }
  if (out.shared_features.size() < 2) {
    out.degraded = true;
    if (diag != nullptr)
      diag->note("transfer", "too_few_shared",
                 out.source_model + "->" + out.target_model + ": " +
                     std::to_string(out.shared_features.size()) + " shared features");
  } else {
    out.kendall_distance = kendall_distance(src_ranks, tgt_ranks);
  }

  // Map the source's selection onto the target schema by name.
  std::vector<std::size_t> mapped;
  std::string missing_names;
  for (const std::string& name : source_sel.all.selected_names) {
    const int ti = target.feature_index(name);
    if (ti < 0) {
      ++out.missing_on_target;
      if (!missing_names.empty()) missing_names += ",";
      missing_names += name;
      continue;
    }
    mapped.push_back(static_cast<std::size_t>(ti));
  }
  out.transferred_features = mapped.size();
  if (out.missing_on_target > 0 && diag != nullptr) {
    diag->note("transfer", "features_missing_on_target",
               out.source_model + "->" + out.target_model + ": " + missing_names);
  }
  if (mapped.empty()) {
    out.degraded = true;
    if (diag != nullptr)
      diag->note("transfer", "no_transferable_features",
                 out.source_model + "->" + out.target_model);
    return out;
  }

  out.auc_native = day_level_auc(target, target_sel.all.selected, train_day_end, cfg,
                                 "native", diag, obs);
  out.auc_transferred =
      day_level_auc(target, mapped, train_day_end, cfg, "transferred", diag, obs);
  if (std::isnan(out.auc_native) || std::isnan(out.auc_transferred)) {
    out.degraded = true;
  } else {
    out.auc_delta = out.auc_native - out.auc_transferred;
  }
  return out;
}

}  // namespace wefr::core
