#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ranking.h"

namespace wefr::core {

namespace {

/// Day layout of a phase: train on [0, boundary], validate on
/// (boundary, test_start), test on [test_start, test_end].
struct DayLayout {
  int train_end = 0;  ///< last training day
  int val_start = 0;
  int val_end = 0;
};

DayLayout layout_for(const PhaseSpec& phase, double train_frac) {
  if (phase.test_start < 20)
    throw std::invalid_argument("layout_for: test phase starts too early");
  DayLayout out;
  const int train_days = phase.test_start;  // days [0, test_start-1]
  out.train_end = static_cast<int>(train_days * train_frac) - 1;
  out.train_end = std::clamp(out.train_end, 1, phase.test_start - 2);
  out.val_start = out.train_end + 1;
  out.val_end = phase.test_start - 1;
  return out;
}

std::vector<std::size_t> top_fraction(const std::vector<std::size_t>& order, double frac) {
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(frac * static_cast<double>(order.size()))));
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(std::min(k, order.size()))};
}

/// WEFR options with the experiment-level thread knob applied when the
/// selection-level knob is unset (mirrors forest_options_for).
WefrOptions wefr_options_for(const CompareConfig& cfg) {
  WefrOptions opt = cfg.wefr;
  if (opt.num_threads == 0) opt.num_threads = cfg.exp.num_threads;
  return opt;
}

}  // namespace

std::vector<PhaseSpec> standard_phases(int num_days, int num_phases, int phase_len) {
  if (num_phases < 1 || phase_len < 1)
    throw std::invalid_argument("standard_phases: bad phase spec");
  if (num_days < (num_phases + 2) * phase_len)
    throw std::invalid_argument("standard_phases: window too short");
  std::vector<PhaseSpec> out;
  for (int p = num_phases; p >= 1; --p) {
    PhaseSpec spec;
    spec.test_end = num_days - 1 - (p - 1) * phase_len;
    spec.test_start = spec.test_end - phase_len + 1;
    out.push_back(spec);
  }
  return out;
}

CompareOutcome compare_methods(const data::FleetData& fleet, const PhaseSpec& phase,
                               const CompareConfig& cfg) {
  const DayLayout days = layout_for(phase, cfg.exp.train_frac);
  CompareOutcome out;

  // Selection operates on training-period samples of the base features.
  const data::Dataset selection = build_selection_samples(fleet, 0, days.train_end, cfg.exp);
  const std::size_t nf = fleet.num_features();

  auto eval_bundle_on = [&](const WefrPredictor& pred, int lo, int hi,
                            const std::vector<bool>* mask = nullptr) {
    const auto scores = score_fleet(fleet, pred, lo, hi, cfg.exp);
    return evaluate_fixed_recall(fleet, scores, lo, hi, cfg.exp.horizon_days,
                                 cfg.target_recall, mask);
  };

  // --- no feature selection ---
  {
    const auto cols = data::all_feature_columns(fleet);
    const WefrPredictor pred = train_predictor(fleet, cols, 0, days.train_end, cfg.exp);
    MethodEval me;
    me.method = "No feature selection";
    me.selected_fraction = 1.0;
    me.selected_count = nf;
    me.test = eval_bundle_on(pred, phase.test_start, phase.test_end);
    out.methods.push_back(std::move(me));
  }

  // --- five single selectors, fraction tuned on the validation period ---
  const auto rankers = make_standard_rankers(cfg.wefr.ranker_seed, cfg.exp.num_threads);
  for (const auto& ranker : rankers) {
    const auto scores_vec = ranker->score(selection.x, selection.y);
    const auto order = stats::order_by_score(scores_vec);

    MethodEval me;
    me.method = ranker->name();
    double best_f05 = -1.0;
    WefrPredictor best_pred;
    for (double frac : cfg.percent_sweep) {
      const auto cols = top_fraction(order, frac);
      WefrPredictor pred = train_predictor(fleet, cols, 0, days.train_end, cfg.exp);
      const DriveLevelEval val = eval_bundle_on(pred, days.val_start, days.val_end);
      if (val.f05 > best_f05) {
        best_f05 = val.f05;
        me.selected_fraction = frac;
        me.selected_count = cols.size();
        best_pred = std::move(pred);
      }
    }
    me.best_validation_f05 = best_f05;
    me.test = eval_bundle_on(best_pred, phase.test_start, phase.test_end);
    out.methods.push_back(std::move(me));
  }

  // --- WEFR ---
  {
    out.wefr = run_wefr(fleet, selection, days.train_end, wefr_options_for(cfg));
    const WefrPredictor pred =
        train_predictor(fleet, out.wefr, 0, days.train_end, cfg.exp);
    MethodEval me;
    me.method = "WEFR";
    me.selected_count = out.wefr.all.selected.size();
    me.selected_fraction =
        static_cast<double>(me.selected_count) / static_cast<double>(nf);
    me.test = eval_bundle_on(pred, phase.test_start, phase.test_end);
    out.methods.push_back(std::move(me));
  }
  return out;
}

AutoSweepOutcome sweep_fixed_fractions(const data::FleetData& fleet, const PhaseSpec& phase,
                                       const CompareConfig& cfg) {
  const DayLayout days = layout_for(phase, cfg.exp.train_frac);
  const data::Dataset selection = build_selection_samples(fleet, 0, days.train_end, cfg.exp);

  // Fixed fractions cut the WEFR final ranking; updating is irrelevant
  // to the count question, so both arms run without wear grouping.
  WefrOptions wopt = wefr_options_for(cfg);
  wopt.update_with_wearout = false;
  const WefrResult sel = run_wefr(fleet, selection, days.train_end, wopt);
  const auto& order = sel.all.ensemble.order;
  const std::size_t nf = order.size();

  auto eval_cols = [&](const std::vector<std::size_t>& cols) {
    const WefrPredictor pred = train_predictor(fleet, cols, 0, days.train_end, cfg.exp);
    const auto scores = score_fleet(fleet, pred, phase.test_start, phase.test_end, cfg.exp);
    return evaluate_fixed_recall(fleet, scores, phase.test_start, phase.test_end,
                                 cfg.exp.horizon_days, cfg.target_recall);
  };

  AutoSweepOutcome out;
  for (double frac : cfg.percent_sweep) {
    SweepPoint pt;
    pt.fraction = frac;
    const auto cols = top_fraction(order, frac);
    pt.count = cols.size();
    pt.test = eval_cols(cols);
    out.fixed.push_back(std::move(pt));
  }

  out.wefr.count = sel.all.selected.size();
  out.wefr.fraction = static_cast<double>(out.wefr.count) / static_cast<double>(nf);
  out.wefr.test = eval_cols(sel.all.selected);
  return out;
}

UpdateComparison compare_update(const data::FleetData& fleet, const PhaseSpec& phase,
                                const CompareConfig& cfg) {
  const DayLayout days = layout_for(phase, cfg.exp.train_frac);
  const data::Dataset selection = build_selection_samples(fleet, 0, days.train_end, cfg.exp);

  WefrOptions with = wefr_options_for(cfg);
  with.update_with_wearout = true;
  WefrOptions without = wefr_options_for(cfg);
  without.update_with_wearout = false;

  const WefrResult sel_with = run_wefr(fleet, selection, days.train_end, with);
  const WefrResult sel_without = run_wefr(fleet, selection, days.train_end, without);

  UpdateComparison out;
  if (sel_with.change_point.has_value())
    out.wear_threshold = sel_with.change_point->mwi_threshold;

  // Low-group mask: drives whose MWI_N entering the test phase is at or
  // below the detected threshold.
  std::vector<bool> low_mask(fleet.drives.size(), false);
  if (out.wear_threshold.has_value()) {
    const int mwi_col = fleet.feature_index("MWI_N");
    for (std::size_t di = 0; di < fleet.drives.size(); ++di) {
      const auto& drive = fleet.drives[di];
      if (drive.num_days() == 0 || drive.first_day > phase.test_start) continue;
      const int day = std::min(phase.test_start, drive.last_day());
      const std::size_t local = static_cast<std::size_t>(day - drive.first_day);
      low_mask[di] =
          drive.values(local, static_cast<std::size_t>(mwi_col)) <= *out.wear_threshold;
    }
  }

  auto eval_pred = [&](const WefrResult& sel, const std::vector<bool>* mask) {
    const WefrPredictor pred = train_predictor(fleet, sel, 0, days.train_end, cfg.exp);
    const auto scores = score_fleet(fleet, pred, phase.test_start, phase.test_end, cfg.exp);
    return evaluate_fixed_recall(fleet, scores, phase.test_start, phase.test_end,
                                 cfg.exp.horizon_days, cfg.target_recall, mask);
  };

  out.no_update_all = eval_pred(sel_without, nullptr);
  out.update_all = eval_pred(sel_with, nullptr);
  if (out.wear_threshold.has_value()) {
    out.no_update_low = eval_pred(sel_without, &low_mask);
    out.update_low = eval_pred(sel_with, &low_mask);
  }
  return out;
}

}  // namespace wefr::core
