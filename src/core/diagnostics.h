#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wefr::obs {
class Registry;
struct RunReport;
}

namespace wefr::core {

/// One degraded-mode event recorded while the pipeline ran: a stage hit
/// a degenerate input (constant feature, single-class labels, starved
/// population, ...) and substituted a tagged fallback instead of
/// throwing.
struct DiagnosticEvent {
  std::string stage;   ///< "selection", "ensemble", "survival", "cpd",
                       ///< "group:low", "group:high", "scoring"
  std::string code;    ///< stable machine-readable tag ("single_class", ...)
  std::string detail;  ///< human-readable context
};

/// Degraded-mode ledger threaded through run_wefr / score_fleet (and
/// every stage they call). A clean run leaves it empty; every fallback
/// the pipeline takes on degenerate or corrupted input is enumerated
/// here, so callers can complete on noisy fleets and still account for
/// exactly what was dropped or skipped.
struct PipelineDiagnostics {
  std::vector<DiagnosticEvent> events;

  // Structured counters mirroring the most common events, for cheap
  // programmatic checks (chaos tests, monitoring).
  std::size_t rankers_failed = 0;        ///< rankers that threw; neutral-ranked
  std::size_t scores_sanitized = 0;      ///< non-finite ranker scores zeroed
  std::size_t constant_features = 0;     ///< constant columns at selection time
  std::size_t survival_drives_skipped = 0;  ///< drives without usable MWI_N
  std::size_t score_days_rerouted = 0;   ///< NaN-MWI days routed to the
                                         ///< whole-model bundle
  std::size_t score_drives_missing_features = 0;  ///< scored drives whose
                                                  ///< model lacks >=1
                                                  ///< selected feature
  bool selection_degraded = false;       ///< a selection fell back wholesale
  bool wearout_skipped = false;          ///< Lines 9-15 skipped entirely

  void note(std::string stage, std::string code, std::string detail = {}) {
    if (registry_ != nullptr) bump(code);
    events.push_back({std::move(stage), std::move(code), std::move(detail)});
  }
  bool empty() const { return events.empty(); }

  /// Bridges future note() calls into `registry` as live counters:
  /// every event increments wefr_diag_events_total plus a per-code
  /// wefr_diag_<code>_total. Pass nullptr to detach. Events recorded
  /// before attaching are not replayed.
  void attach(obs::Registry* registry) { registry_ = registry; }

  /// Bridges events a shard worker recorded in its own ledger into this
  /// one, with the worker's stage prefixed ("shard3:score"). The
  /// registry mirror is deliberately NOT bumped: the merging driver
  /// derives the parent's structured counters and summary notes from
  /// the merged partials itself, so replaying worker events through
  /// note() would double count them.
  void bridge(std::string_view stage_prefix, const std::vector<DiagnosticEvent>& worker_events) {
    for (const auto& e : worker_events)
      events.push_back({std::string(stage_prefix) + e.stage, e.code, e.detail});
  }

  /// Copies the events and structured counters into `report`
  /// (report.diagnostics / report.diagnostic_counters).
  void fill_run_report(obs::RunReport& report) const;

  /// Events recorded for one stage (prefix match, so "group" covers
  /// "group:low" and "group:high").
  std::size_t count_stage(std::string_view stage) const {
    std::size_t n = 0;
    for (const auto& e : events) n += e.stage.rfind(stage, 0) == 0 ? 1 : 0;
    return n;
  }

  /// True when any event carries the given code.
  bool has(std::string_view code) const {
    for (const auto& e : events) {
      if (e.code == code) return true;
    }
    return false;
  }

  /// "stage/code: detail; ..." one-liner for CLI output and logs.
  std::string summary() const;

 private:
  void bump(const std::string& code) const;

  obs::Registry* registry_ = nullptr;
};

}  // namespace wefr::core
