#include "core/auto_select.h"

#include <cmath>
#include <stdexcept>

#include "obs/context.h"
#include "obs/trace.h"
#include "stats/complexity.h"

namespace wefr::core {

AutoSelectResult auto_select(const data::Matrix& x, std::span<const int> y,
                             std::span<const std::size_t> order,
                             const AutoSelectOptions& opt, const obs::Context* obs) {
  obs::Span span(obs, "auto_select");
  if (order.empty()) throw std::invalid_argument("auto_select: empty feature order");
  if (opt.alpha < 0.0 || opt.alpha > 1.0)
    throw std::invalid_argument("auto_select: alpha outside [0,1]");

  const std::size_t nf = order.size();

  // Ensemble complexity F per feature (normalized across the features
  // under consideration), evaluated on the columns in scan order.
  std::vector<std::vector<double>> columns(nf);
  for (std::size_t i = 0; i < nf; ++i) columns[i] = x.column(order[i]);
  const auto f_measure = stats::ensemble_complexity(columns, y, opt.num_threads);

  AutoSelectResult out;
  out.complexity.resize(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    const double xi = static_cast<double>(i + 1) / static_cast<double>(nf);
    out.complexity[i] = opt.alpha * f_measure[i] + (1.0 - opt.alpha) * xi;
  }

  // Seed: the top log2(n) features are always selected.
  const std::size_t seed =
      std::min(nf, std::max<std::size_t>(
                       1, static_cast<std::size_t>(std::log2(static_cast<double>(nf)))));

  std::size_t count = seed;
  if (opt.rule == AutoSelectOptions::Rule::kComplexityMeanCut) {
    double total = 0.0;
    for (double e : out.complexity) total += e;
    const double mean_e = total / static_cast<double>(nf);
    for (std::size_t i = seed; i < nf; ++i) {
      if (out.complexity[i] >= mean_e) break;
      ++count;
    }
  } else {
    // Literal Algorithm-1 recurrences: E_p := E_p + e; E := E + E_p.
    double ep = 0.0, e_total = 0.0;
    for (std::size_t i = 0; i < seed; ++i) {
      ep += out.complexity[i];
      e_total += ep;
    }
    for (std::size_t i = seed; i < nf; ++i) {
      ep += out.complexity[i];
      if (ep >= e_total) break;
      e_total += ep;
      ++count;
    }
  }

  out.count = count;
  out.selected.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count));
  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_features_scanned_total", nf);
    obs::add_counter(obs, "wefr_features_selected_total", count);
  }
  return out;
}

}  // namespace wefr::core
