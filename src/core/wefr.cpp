#include "core/wefr.h"

#include <stdexcept>

#include "obs/context.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace wefr::core {

namespace {

/// Keep-every-feature fallback used when a population is too degenerate
/// to rank (empty or single-class).
void degrade_to_all_features(GroupSelection& out, const data::Dataset& samples) {
  out.degraded = true;
  out.selected.clear();
  for (std::size_t c = 0; c < samples.feature_names.size(); ++c) out.selected.push_back(c);
  out.selected_names = samples.feature_names;
  out.selection = AutoSelectResult{};
  out.selection.count = out.selected.size();
  out.selection.selected = out.selected;
}

/// Constant feature columns cannot separate classes; they are legal
/// input but worth surfacing (a stuck sensor shows up here).
std::size_t count_constant_columns(const data::Dataset& samples) {
  std::size_t n = 0;
  for (std::size_t c = 0; c < samples.num_features(); ++c) {
    bool constant = true;
    for (std::size_t r = 1; r < samples.size() && constant; ++r) {
      constant = samples.x(r, c) == samples.x(0, c);
    }
    n += constant ? 1 : 0;
  }
  return n;
}

}  // namespace

GroupSelection select_features_for(const data::Dataset& samples, const WefrOptions& opt,
                                   const std::string& label, PipelineDiagnostics* diag,
                                   const obs::Context* obs,
                                   const RankerRawScores* precomputed_scores) {
  obs::Span span(obs, ("select:" + label).c_str());
  if (samples.size() == 0 && diag == nullptr)
    throw std::invalid_argument("select_features_for: empty sample set");

  GroupSelection out;
  out.label = label;
  out.num_samples = samples.size();
  out.num_positives = samples.num_positive();

  if (samples.size() == 0) {
    degrade_to_all_features(out, samples);
    diag->selection_degraded = true;
    diag->note("selection:" + label, "empty_population", "no samples to rank");
    return out;
  }
  if (out.num_positives == 0 || out.num_positives == out.num_samples) {
    // Single-class labels: every ranker and complexity measure is blind
    // here; ranking would be arbitrary. Keep every feature instead.
    degrade_to_all_features(out, samples);
    if (diag != nullptr) {
      diag->selection_degraded = true;
      diag->note("selection:" + label, "single_class",
                 out.num_positives == 0 ? "no positive samples" : "no negative samples");
    }
    return out;
  }

  if (diag != nullptr) {
    const std::size_t constant = count_constant_columns(samples);
    if (constant > 0) {
      diag->constant_features += constant;
      diag->note("selection:" + label, "constant_features",
                 std::to_string(constant) + " constant columns ranked neutrally");
    }
  }

  // The experiment-level thread knob flows into every stage that is
  // left at its sequential default (ranker internals, ranker-level
  // fan-out, complexity scan); per-wear-group re-selection re-enters
  // here, so Lines 9-15 parallelize the same way.
  EnsembleOptions ens_opt = opt.ensemble;
  if (ens_opt.num_threads == 0) ens_opt.num_threads = opt.num_threads;
  AutoSelectOptions sel_opt = opt.auto_select;
  if (sel_opt.num_threads == 0) sel_opt.num_threads = opt.num_threads;
  if (precomputed_scores != nullptr) {
    // Sharded path: ranker scores arrived from worker processes;
    // finalize them through the same code ensemble_rank uses.
    obs::Span ensemble_span(obs, "ensemble");
    RankerRawScores raw = *precomputed_scores;
    out.ensemble = ensemble_rank_from_scores(std::move(raw), samples.num_features(),
                                             ens_opt, diag, obs);
  } else {
    const auto rankers = make_standard_rankers(opt.ranker_seed, opt.num_threads);
    out.ensemble = ensemble_rank(rankers, samples.x, samples.y, ens_opt, diag, obs);
  }
  out.selection = auto_select(samples.x, samples.y, out.ensemble.order, sel_opt, obs);
  out.selected = out.selection.selected;
  out.selected_names.reserve(out.selected.size());
  for (std::size_t c : out.selected) out.selected_names.push_back(samples.feature_names[c]);
  return out;
}

WefrResult run_wefr(const data::FleetData& fleet, const data::Dataset& train,
                    int train_day_end, const WefrOptions& opt,
                    PipelineDiagnostics* diag, const obs::Context* obs,
                    const WefrRunHooks* hooks) {
  obs::Span run_span(obs, "run_wefr");
  if (train.feature_names != fleet.feature_names)
    throw std::invalid_argument(
        "run_wefr: train dataset must carry the fleet's base features");

  const auto precomputed_for =
      [&](const std::string& label, const data::Dataset& ds) -> const RankerRawScores* {
    if (hooks == nullptr || !hooks->ranker_scores) return nullptr;
    return hooks->ranker_scores(label, ds);
  };

  WefrResult out;
  // Lines 1-8: ensemble ranking + automated selection on all samples.
  out.all = select_features_for(train, opt, "all", diag, obs,
                                precomputed_for("all", train));

  if (!opt.update_with_wearout) return out;
  if (out.all.degraded) {
    // A population that could not be ranked cannot be re-ranked per
    // wear group either; skip Lines 9-15 instead of compounding the
    // degradation.
    if (diag != nullptr) {
      diag->wearout_skipped = true;
      diag->note("wearout", "skipped_degraded_selection");
    }
    return out;
  }

  // Lines 9-15: change-point detection on the survival-rate curve and
  // per-wear-group re-selection.
  const int mwi_col = fleet.feature_index("MWI_N");
  if (mwi_col < 0) {
    // Model without a wear indicator: nothing to update.
    if (diag != nullptr) {
      diag->wearout_skipped = true;
      diag->note("survival", "no_mwi_feature");
    }
    return out;
  }

  {
    obs::Span survival_span(obs, "survival");
    if (hooks != nullptr && hooks->survival != nullptr) {
      // Sharded path: the curve was finalized from merged per-shard
      // tallies — bit-identical to the in-process computation, since
      // both run through SurvivalTally.
      out.survival = *hooks->survival;
    } else {
      out.survival = survival_vs_mwi(fleet, train_day_end, opt.survival_min_count,
                                     opt.survival_bucket_width);
    }
  }
  if (diag != nullptr && out.survival.drives_skipped_nan > 0) {
    diag->survival_drives_skipped += out.survival.drives_skipped_nan;
    diag->note("survival", "drives_skipped_nan_mwi",
               std::to_string(out.survival.drives_skipped_nan) + " drives");
  }
  {
    obs::Span cpd_span(obs, "cpd");
    out.change_point = detect_wear_change_point(out.survival, opt.cpd);
  }
  if (!out.change_point.has_value()) {
    if (diag != nullptr) {
      diag->wearout_skipped = true;
      diag->note("cpd",
                 out.survival.mwi.size() < 8 ? "curve_too_short" : "no_significant_change",
                 std::to_string(out.survival.mwi.size()) + " curve points");
    }
    return out;
  }

  const double thr = out.change_point->mwi_threshold;
  const std::size_t mwi = static_cast<std::size_t>(mwi_col);
  std::vector<std::size_t> low_idx, high_idx;
  std::size_t nan_mwi_samples = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const double v = train.x(i, mwi);
    if (v != v) {
      // NaN wear indicator: the sample cannot be routed to a group.
      ++nan_mwi_samples;
      continue;
    }
    (v <= thr ? low_idx : high_idx).push_back(i);
  }
  if (diag != nullptr && nan_mwi_samples > 0) {
    diag->note("wearout", "samples_unroutable_nan_mwi",
               std::to_string(nan_mwi_samples) + " samples");
  }

  auto select_group = [&](const std::vector<std::size_t>& idx,
                          const std::string& label) -> GroupSelection {
    GroupSelection gs;
    if (!idx.empty()) {
      const data::Dataset group = data::subset(train, idx);
      if (group.num_positive() >= opt.min_group_positives) {
        gs = select_features_for(group, opt, label, diag, obs,
                                 precomputed_for(label, group));
        // A single-class group (all positives) degrades inside
        // select_features_for; inherit the whole-model set instead of
        // keeping every feature for just one wear regime.
        if (!gs.degraded) return gs;
      }
      gs.num_samples = group.size();
      gs.num_positives = group.num_positive();
    }
    // Too small (or too degenerate) to re-select robustly: inherit the
    // whole-model features.
    gs.label = label;
    gs.fallback = true;
    gs.selected = out.all.selected;
    gs.selected_names = out.all.selected_names;
    if (diag != nullptr)
      diag->note("group:" + label, "fallback_whole_model",
                 std::to_string(gs.num_positives) + " positives of " +
                     std::to_string(gs.num_samples) + " samples");
    return gs;
  };

  out.low = select_group(low_idx, "low");
  out.high = select_group(high_idx, "high");
  return out;
}

void fill_run_report(const WefrResult& result, obs::RunReport& report) {
  const auto add_group = [&report](const GroupSelection& gs) {
    obs::RunReport::Group g;
    g.label = gs.label;
    g.features = gs.selected_names;
    g.num_samples = gs.num_samples;
    g.num_positives = gs.num_positives;
    g.fallback = gs.fallback;
    g.degraded = gs.degraded;
    report.selection.push_back(std::move(g));
  };
  add_group(result.all);
  if (result.low.has_value()) add_group(*result.low);
  if (result.high.has_value()) add_group(*result.high);
  if (result.change_point.has_value()) {
    report.change_point_mwi = result.change_point->mwi_threshold;
    report.change_point_z = result.change_point->zscore;
  }
}

}  // namespace wefr::core
