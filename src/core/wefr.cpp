#include "core/wefr.h"

#include <stdexcept>

namespace wefr::core {

GroupSelection select_features_for(const data::Dataset& samples, const WefrOptions& opt,
                                   const std::string& label) {
  if (samples.size() == 0) throw std::invalid_argument("select_features_for: empty sample set");
  GroupSelection out;
  out.label = label;
  out.num_samples = samples.size();
  out.num_positives = samples.num_positive();

  const auto rankers = make_standard_rankers(opt.ranker_seed);
  out.ensemble = ensemble_rank(rankers, samples.x, samples.y, opt.ensemble);
  out.selection = auto_select(samples.x, samples.y, out.ensemble.order, opt.auto_select);
  out.selected = out.selection.selected;
  out.selected_names.reserve(out.selected.size());
  for (std::size_t c : out.selected) out.selected_names.push_back(samples.feature_names[c]);
  return out;
}

WefrResult run_wefr(const data::FleetData& fleet, const data::Dataset& train,
                    int train_day_end, const WefrOptions& opt) {
  if (train.feature_names != fleet.feature_names)
    throw std::invalid_argument(
        "run_wefr: train dataset must carry the fleet's base features");

  WefrResult out;
  // Lines 1-8: ensemble ranking + automated selection on all samples.
  out.all = select_features_for(train, opt, "all");

  if (!opt.update_with_wearout) return out;

  // Lines 9-15: change-point detection on the survival-rate curve and
  // per-wear-group re-selection.
  const int mwi_col = fleet.feature_index("MWI_N");
  if (mwi_col < 0) return out;  // model without a wear indicator: nothing to update

  out.survival = survival_vs_mwi(fleet, train_day_end, opt.survival_min_count,
                                 opt.survival_bucket_width);
  out.change_point = detect_wear_change_point(out.survival, opt.cpd);
  if (!out.change_point.has_value()) return out;

  const double thr = out.change_point->mwi_threshold;
  std::vector<std::size_t> low_idx, high_idx;
  for (std::size_t i = 0; i < train.size(); ++i) {
    (train.x(i, static_cast<std::size_t>(mwi_col)) <= thr ? low_idx : high_idx).push_back(i);
  }

  auto select_group = [&](const std::vector<std::size_t>& idx,
                          const std::string& label) -> GroupSelection {
    GroupSelection gs;
    if (!idx.empty()) {
      const data::Dataset group = data::subset(train, idx);
      if (group.num_positive() >= opt.min_group_positives) {
        gs = select_features_for(group, opt, label);
        return gs;
      }
      gs.num_samples = group.size();
      gs.num_positives = group.num_positive();
    }
    // Too small to re-select robustly: inherit the whole-model features.
    gs.label = label;
    gs.fallback = true;
    gs.selected = out.all.selected;
    gs.selected_names = out.all.selected_names;
    return gs;
  };

  out.low = select_group(low_idx, "low");
  out.high = select_group(high_idx, "high");
  return out;
}

}  // namespace wefr::core
