#include "core/diagnostics.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/report.h"

namespace wefr::core {

std::string PipelineDiagnostics::summary() const {
  if (events.empty()) return "clean";
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << "; ";
    os << events[i].stage << '/' << events[i].code;
    if (!events[i].detail.empty()) os << ": " << events[i].detail;
  }
  return os.str();
}

void PipelineDiagnostics::bump(const std::string& code) const {
  registry_->counter("wefr_diag_events_total").add(1);
  registry_->counter("wefr_diag_" + code + "_total").add(1);
}

void PipelineDiagnostics::fill_run_report(obs::RunReport& report) const {
  for (const auto& e : events) {
    report.diagnostics.push_back({e.stage, e.code, e.detail});
  }
  auto& out = report.diagnostic_counters;
  out["rankers_failed"] = static_cast<double>(rankers_failed);
  out["scores_sanitized"] = static_cast<double>(scores_sanitized);
  out["constant_features"] = static_cast<double>(constant_features);
  out["survival_drives_skipped"] = static_cast<double>(survival_drives_skipped);
  out["score_days_rerouted"] = static_cast<double>(score_days_rerouted);
  out["score_drives_missing_features"] =
      static_cast<double>(score_drives_missing_features);
  out["selection_degraded"] = selection_degraded ? 1.0 : 0.0;
  out["wearout_skipped"] = wearout_skipped ? 1.0 : 0.0;
}

}  // namespace wefr::core
