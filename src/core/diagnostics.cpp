#include "core/diagnostics.h"

#include <sstream>

namespace wefr::core {

std::string PipelineDiagnostics::summary() const {
  if (events.empty()) return "clean";
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << "; ";
    os << events[i].stage << '/' << events[i].code;
    if (!events[i].detail.empty()) os << ": " << events[i].detail;
  }
  return os.str();
}

}  // namespace wefr::core
