#include "core/monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wefr::core {

FleetMonitor::FleetMonitor(const data::FleetData& fleet, MonitorOptions options)
    : fleet_(fleet), opt_(std::move(options)), alarmed_(fleet.drives.size(), false) {
  if (opt_.check_interval_days < 1)
    throw std::invalid_argument("FleetMonitor: check_interval_days < 1");
  if (opt_.warmup_days < 30) throw std::invalid_argument("FleetMonitor: warmup too short");
  if (opt_.alarm_threshold <= 0.0 || opt_.alarm_threshold > 1.0)
    throw std::invalid_argument("FleetMonitor: alarm_threshold outside (0,1]");
  if (opt_.target_recall < 0.0 || opt_.target_recall > 1.0)
    throw std::invalid_argument("FleetMonitor: target_recall outside [0,1]");
  if (opt_.validation_frac <= 0.0 || opt_.validation_frac >= 1.0)
    throw std::invalid_argument("FleetMonitor: validation_frac outside (0,1)");
  if (opt_.drift_cooldown_days < 1)
    throw std::invalid_argument("FleetMonitor: drift_cooldown_days < 1");
  current_day_ = opt_.warmup_days;
  next_check_day_ = opt_.warmup_days;
  threshold_ = opt_.alarm_threshold;
  mwi_col_ = fleet_.feature_index("MWI_N");
  drift_cpd_ = changepoint::OnlineChangePointDetector(opt_.drift_cpd);
}

double FleetMonitor::active_mean_mwi(int day) const {
  double sum = 0.0;
  std::size_t n = 0;
  const auto col = static_cast<std::size_t>(mwi_col_);
  for (const auto& drive : fleet_.drives) {
    if (drive.first_day > day || drive.last_day() < day) continue;
    const double v = drive.values(static_cast<std::size_t>(day - drive.first_day), col);
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : std::nan("");
}

void FleetMonitor::run_check(int day) {
  // Select features on everything observed strictly before `day`.
  const int train_end = day - 1;
  const auto samples = build_selection_samples(fleet_, 0, train_end, opt_.experiment);
  if (samples.num_positive() == 0) return;  // nothing to learn from yet
  WefrResult sel = run_wefr(fleet_, samples, train_end, opt_.wefr);

  UpdateEvent ev;
  ev.day = day;
  if (sel.change_point.has_value()) ev.wear_threshold = sel.change_point->mwi_threshold;
  ev.selected_all = sel.all.selected_names;
  if (sel.low.has_value()) ev.selected_low = sel.low->selected_names;
  if (sel.high.has_value()) ev.selected_high = sel.high->selected_names;
  ev.features_changed =
      !selection_.has_value() ||
      selection_->all.selected != sel.all.selected ||
      selection_->change_point.has_value() != sel.change_point.has_value();
  ev.drift_triggered = drift_pending_;
  ev.change_probability = drift_probability_;
  updates_.push_back(ev);

  const bool need_retrain =
      opt_.retrain_every_check || ev.features_changed || !predictor_.has_value();
  selection_ = std::move(sel);
  if (need_retrain) {
    predictor_ = train_predictor(fleet_, *selection_, 0, train_end, opt_.experiment);
  }

  // Recalibrate the alarm threshold to the fixed-recall operating point
  // on the trailing validation slice.
  if (opt_.target_recall > 0.0 && predictor_.has_value()) {
    const int val_days =
        std::max(7, static_cast<int>(opt_.validation_frac * static_cast<double>(day)));
    const int val_start = std::max(0, train_end - val_days + 1);
    const auto scores =
        score_fleet(fleet_, *predictor_, val_start, train_end, opt_.experiment);
    const auto eval =
        evaluate_fixed_recall(fleet_, scores, val_start, train_end,
                              opt_.experiment.horizon_days, opt_.target_recall);
    if (eval.confusion.total() > 0 && eval.threshold > 0.0) {
      threshold_ = eval.threshold;
    }
  }
}

std::vector<Alarm> FleetMonitor::advance_to(int day) {
  if (day < current_day_) throw std::invalid_argument("FleetMonitor::advance_to: rewind");
  day = std::min(day, fleet_.num_days);

  std::vector<Alarm> alarms;
  while (current_day_ < day) {
    if (current_day_ >= next_check_day_) {
      run_check(current_day_);
      next_check_day_ = current_day_ + opt_.check_interval_days;
      drift_pending_ = false;
      drift_probability_ = 0.0;
    }
    // Score the interval until the next check (or the advance target).
    int until = std::min(day, next_check_day_) - 1;

    // Online drift watch: walk the interval's days through the
    // detector before scoring. On a detection, cut the interval at the
    // triggering day and pull the re-check to the next one — the loop's
    // next iteration runs it, so re-check lag behind a population
    // change is bounded by the detector's own lag instead of the weekly
    // cadence. Only days inside the advanced window are read (d <=
    // until < day), preserving the no-lookahead contract.
    if (opt_.online_drift_check && mwi_col_ >= 0) {
      for (int d = current_day_; d <= until; ++d) {
        const double m = active_mean_mwi(d);
        if (std::isnan(m)) continue;
        double prob = -1.0;
        if (have_last_mwi_) prob = drift_cpd_.observe(m - last_mean_mwi_);
        last_mean_mwi_ = m;
        have_last_mwi_ = true;
        const bool cooled =
            last_drift_day_ < 0 || d - last_drift_day_ >= opt_.drift_cooldown_days;
        // Burn-in: with only a handful of observations the posterior is
        // trivially concentrated on short run lengths (every stream
        // "just changed" at t=0), so the first week of deltas can never
        // fire a detection.
        const bool burned_in =
            drift_cpd_.time() > changepoint::OnlineChangePointDetector::kShortRunWindow + 4;
        if (prob >= opt_.drift_probability_threshold && cooled && burned_in) {
          last_drift_day_ = d;
          drift_detections_.push_back(DriftDetection{d, prob});
          drift_pending_ = true;
          drift_probability_ = prob;
          next_check_day_ = d + 1;
          until = d;
          break;
        }
      }
    }
    if (predictor_.has_value()) {
      const auto scores =
          score_fleet(fleet_, *predictor_, current_day_, until, opt_.experiment);
      for (const auto& ds : scores) {
        if (alarmed_[ds.drive_index]) continue;
        for (std::size_t i = 0; i < ds.scores.size(); ++i) {
          if (ds.scores[i] < threshold_) continue;
          alarmed_[ds.drive_index] = true;
          alarms.push_back(Alarm{ds.drive_index, ds.first_day + static_cast<int>(i),
                                 ds.scores[i]});
          break;
        }
      }
    }
    current_day_ = until + 1;
  }
  std::sort(alarms.begin(), alarms.end(), [](const Alarm& a, const Alarm& b) {
    return a.day != b.day ? a.day < b.day : a.drive_index < b.drive_index;
  });
  return alarms;
}

std::vector<Alarm> FleetMonitor::run_to_end() { return advance_to(fleet_.num_days); }

}  // namespace wefr::core
