#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/wefr.h"
#include "data/fleet.h"
#include "data/labeling.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace wefr::core {

/// End-to-end experiment controls (Section V-A methodology).
struct ExperimentConfig {
  /// Prediction horizon: "fail within the next 30 days".
  int horizon_days = 30;
  /// Train : validation ratio inside the training phase, by day (8:2).
  double train_frac = 0.8;
  /// Training-negative downsampling probability (positives always kept);
  /// the class skew at fleet scale would otherwise swamp the trees.
  double negative_keep_prob = 0.15;
  /// Prediction model (paper: Random Forest, 100 trees, max depth 13).
  ml::ForestOptions forest;
  /// Statistical feature generation over 3- and 7-day windows.
  data::WindowFeatureConfig windows;
  bool expand_windows = true;
  std::uint64_t seed = 99;
  /// Worker threads for fleet scoring (per-drive fan-out) and, when
  /// `forest.num_threads` is left at 0, for forest fitting too.
  /// 0 or 1 = sequential; results are identical either way.
  std::size_t num_threads = 0;
  /// Draw the selection-sample negative-downsampling coin per drive
  /// (keyed on the drive id) instead of from one sequential stream, so
  /// the kept sample set is invariant to how drives are partitioned
  /// across shards. Off by default: the historical single-stream draw
  /// is the seed behavior. Sharded runs and their single-process
  /// equivalence oracle both turn this on.
  bool per_drive_sampling = false;

  ExperimentConfig() {
    forest.num_trees = 100;
    forest.tree.max_depth = 13;
    forest.tree.min_samples_leaf = 2;
  }
};

/// A trained Random Forest over one set of selected base features
/// (window-expanded at train and predict time).
struct PredictorBundle {
  std::vector<std::size_t> base_cols;
  ml::RandomForest forest;
};

/// A full predictor: a whole-model bundle plus optional per-wear-group
/// bundles routed by the drive's current MWI_N.
struct WefrPredictor {
  PredictorBundle all;
  std::optional<double> wear_threshold;  ///< route when set
  std::optional<PredictorBundle> low;    ///< MWI_N <= threshold
  std::optional<PredictorBundle> high;   ///< MWI_N >  threshold
  int mwi_col = -1;                      ///< MWI_N column in fleet features
};

/// Trains one bundle on fleet days [day_lo, day_hi] using the given base
/// features. `sample_filter` (optional) keeps only sample rows for which
/// it returns true (used to train per-wear-group bundles); it receives
/// (drive_index, day). `obs` (nullable) wraps sampling and forest
/// fitting in a "train_bundle" span.
PredictorBundle train_bundle(const data::FleetData& fleet,
                             std::span<const std::size_t> base_cols, int day_lo, int day_hi,
                             const ExperimentConfig& cfg,
                             const std::function<bool(std::size_t, int)>& sample_filter = {},
                             const obs::Context* obs = nullptr);

/// Trains the predictor corresponding to a WEFR selection result:
/// whole-model bundle from `sel.all`, and per-group bundles when the
/// selection has a change point with per-group features. `obs`
/// (nullable) wraps the whole step in a "train_predictor" span.
WefrPredictor train_predictor(const data::FleetData& fleet, const WefrResult& sel,
                              int day_lo, int day_hi, const ExperimentConfig& cfg,
                              const obs::Context* obs = nullptr);

/// Convenience: predictor over a fixed feature set (no wear routing).
WefrPredictor train_predictor(const data::FleetData& fleet,
                              std::span<const std::size_t> base_cols, int day_lo,
                              int day_hi, const ExperimentConfig& cfg,
                              const obs::Context* obs = nullptr);

/// Daily failure-probability scores for one drive over a day window.
struct DriveDayScores {
  std::size_t drive_index = 0;
  int first_day = 0;  ///< fleet-global day of scores[0]
  std::vector<double> scores;
};

/// Scores every drive-day in [t0, t1] (drives without observations in
/// the window are omitted). Routing between wear-group bundles happens
/// per day on the drive's MWI_N value; a day whose MWI_N is NaN cannot
/// be routed and scores against the whole-model bundle instead (tallied
/// as `score_days_rerouted` in `diag` when given). Per-drive work is
/// independent, so `cfg.num_threads > 1` fans drives out over a
/// ThreadPool; output order and values are identical to the sequential
/// run.
///
/// `obs` (nullable) wraps the sweep in a "score_fleet" span, counts
/// drives and drive-days scored (plus NaN-MWI days rerouted), and
/// records per-drive day counts in the wefr_score_days_per_drive
/// histogram. Counters are tallied once after the fan-out, so the
/// scoring inner loop is untouched.
std::vector<DriveDayScores> score_fleet(const data::FleetData& fleet,
                                        const WefrPredictor& predictor, int t0, int t1,
                                        const ExperimentConfig& cfg,
                                        PipelineDiagnostics* diag = nullptr,
                                        const obs::Context* obs = nullptr);

/// Scores only the drives in `drives` (fleet drive indices; order is
/// preserved, in-window eligibility is still filtered here). The
/// whole-fleet entry above delegates here with every index, so a
/// sharded run that partitions the fleet's index space and concatenates
/// the per-shard outputs in ascending drive-index order reproduces the
/// unsharded output bit-for-bit — per-drive scoring never looks at any
/// other drive.
std::vector<DriveDayScores> score_fleet(const data::FleetData& fleet,
                                        const WefrPredictor& predictor,
                                        std::span<const std::size_t> drives, int t0, int t1,
                                        const ExperimentConfig& cfg,
                                        PipelineDiagnostics* diag = nullptr,
                                        const obs::Context* obs = nullptr);

/// Drive-level evaluation result at one operating point.
struct DriveLevelEval {
  ml::Confusion confusion;
  double precision = 0.0;
  double recall = 0.0;
  double f05 = 0.0;
  double threshold = 0.0;
  double achieved_recall = 0.0;  ///< same as recall; kept for clarity
};

/// Drive-level "first alarm" evaluation at a fixed recall (Section V-A):
/// a drive is predicted failed at the first day its score crosses the
/// threshold; the prediction is correct when the drive fails within
/// `horizon` days after that first alarm. The threshold is swept and the
/// operating point with recall >= `target_recall` and maximum precision
/// is returned (falling back to the maximum-recall point when the target
/// is unreachable). `drive_mask`, when given, restricts evaluation to
/// drives with mask[drive_index] == true (Exp#3's "Low" rows).
DriveLevelEval evaluate_fixed_recall(const data::FleetData& fleet,
                                     std::span<const DriveDayScores> scores, int t0, int t1,
                                     int horizon, double target_recall,
                                     const std::vector<bool>* drive_mask = nullptr);

/// Builds the base-feature training sample set for WEFR selection
/// (no window expansion, negatives downsampled).
data::Dataset build_selection_samples(const data::FleetData& fleet, int day_lo, int day_hi,
                                      const ExperimentConfig& cfg,
                                      const obs::Context* obs = nullptr);

}  // namespace wefr::core
