#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "data/window_features.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wefr::core {

namespace {

/// Forest options with the experiment-level thread knob applied when the
/// forest's own knob is unset.
ml::ForestOptions forest_options_for(const ExperimentConfig& cfg) {
  ml::ForestOptions opt = cfg.forest;
  if (opt.num_threads == 0) opt.num_threads = cfg.num_threads;
  return opt;
}

data::SamplingOptions sampling_for(const ExperimentConfig& cfg, int day_lo, int day_hi,
                                   bool downsample) {
  data::SamplingOptions opt;
  opt.horizon_days = cfg.horizon_days;
  opt.day_lo = day_lo;
  opt.day_hi = day_hi;
  opt.negative_keep_prob = downsample ? cfg.negative_keep_prob : 1.0;
  opt.expand_windows = cfg.expand_windows;
  opt.window_config = cfg.windows;
  return opt;
}

}  // namespace

data::Dataset build_selection_samples(const data::FleetData& fleet, int day_lo, int day_hi,
                                      const ExperimentConfig& cfg, const obs::Context* obs) {
  util::Rng rng(cfg.seed ^ 0x5e1ec7104b15ULL);
  data::SamplingOptions opt;
  opt.horizon_days = cfg.horizon_days;
  opt.day_lo = day_lo;
  opt.day_hi = day_hi;
  opt.negative_keep_prob = cfg.negative_keep_prob;
  opt.expand_windows = false;  // selection operates on the original features
  opt.per_drive_rng = cfg.per_drive_sampling;
  opt.per_drive_seed = cfg.seed ^ 0x5e1ec7104b15ULL;
  return data::build_samples(fleet, opt, &rng, obs);
}

PredictorBundle train_bundle(const data::FleetData& fleet,
                             std::span<const std::size_t> base_cols, int day_lo, int day_hi,
                             const ExperimentConfig& cfg,
                             const std::function<bool(std::size_t, int)>& sample_filter,
                             const obs::Context* obs) {
  obs::Span span(obs, "train_bundle");
  if (base_cols.empty()) throw std::invalid_argument("train_bundle: no base features");
  util::Rng rng(cfg.seed ^ (0x9e3779b9ULL + base_cols.size() * 131 + base_cols[0]));

  data::SamplingOptions opt = sampling_for(cfg, day_lo, day_hi, /*downsample=*/true);
  opt.keep = sample_filter;
  data::Dataset train = data::build_samples(fleet, base_cols, opt, &rng, obs);
  if (train.size() == 0) throw std::runtime_error("train_bundle: no training samples");

  PredictorBundle bundle;
  bundle.base_cols.assign(base_cols.begin(), base_cols.end());
  bundle.forest.fit(train.x, train.y, forest_options_for(cfg), rng, obs);
  return bundle;
}

WefrPredictor train_predictor(const data::FleetData& fleet,
                              std::span<const std::size_t> base_cols, int day_lo, int day_hi,
                              const ExperimentConfig& cfg, const obs::Context* obs) {
  obs::Span span(obs, "train_predictor");
  WefrPredictor pred;
  pred.all = train_bundle(fleet, base_cols, day_lo, day_hi, cfg, {}, obs);
  pred.mwi_col = fleet.feature_index("MWI_N");
  return pred;
}

WefrPredictor train_predictor(const data::FleetData& fleet, const WefrResult& sel,
                              int day_lo, int day_hi, const ExperimentConfig& cfg,
                              const obs::Context* obs) {
  obs::Span span(obs, "train_predictor");
  WefrPredictor pred;
  pred.mwi_col = fleet.feature_index("MWI_N");
  pred.all = train_bundle(fleet, sel.all.selected, day_lo, day_hi, cfg, {}, obs);

  if (!sel.change_point.has_value() || !sel.low.has_value() || !sel.high.has_value() ||
      pred.mwi_col < 0) {
    return pred;
  }
  const double thr = sel.change_point->mwi_threshold;
  const std::size_t mwi = static_cast<std::size_t>(pred.mwi_col);

  auto group_filter = [&fleet, mwi, thr](bool want_low) {
    return [&fleet, mwi, thr, want_low](std::size_t drive_index, int day) {
      const auto& drive = fleet.drives[drive_index];
      const std::size_t local = static_cast<std::size_t>(day - drive.first_day);
      const double v = drive.values(local, mwi);
      // A NaN wear indicator belongs to neither group (it would land in
      // "high" via NaN <= thr == false); such days train only the
      // whole-model bundle.
      if (std::isnan(v)) return false;
      return (v <= thr) == want_low;
    };
  };

  // A wear group gets its own model only when its training slice holds
  // enough positives to learn from; otherwise scoring falls back to the
  // whole-model bundle for that group.
  auto try_group = [&](const GroupSelection& gs,
                       bool want_low) -> std::optional<PredictorBundle> {
    // A group whose selection fell back to the whole-model feature set
    // has too few positives to support a specialized model either —
    // route it to the whole-model bundle (updating then degrades to
    // no-updating for that group instead of hurting it).
    if (gs.fallback) return std::nullopt;
    try {
      util::Rng rng(cfg.seed ^ (want_low ? 0xa5a5ULL : 0x5a5aULL));
      data::SamplingOptions opt = sampling_for(cfg, day_lo, day_hi, /*downsample=*/true);
      opt.keep = group_filter(want_low);
      data::Dataset train = data::build_samples(fleet, gs.selected, opt, &rng, obs);
      // A specialized model must beat the whole-model bundle it replaces;
      // starved groups (few positives) reliably do worse, so fall back.
      if (train.size() < 400 || train.num_positive() < 25) return std::nullopt;
      PredictorBundle bundle;
      bundle.base_cols = gs.selected;
      bundle.forest.fit(train.x, train.y, forest_options_for(cfg), rng, obs);
      return bundle;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  pred.low = try_group(*sel.low, /*want_low=*/true);
  pred.high = try_group(*sel.high, /*want_low=*/false);
  if (pred.low.has_value() || pred.high.has_value()) pred.wear_threshold = thr;
  return pred;
}

std::vector<DriveDayScores> score_fleet(const data::FleetData& fleet,
                                        const WefrPredictor& predictor, int t0, int t1,
                                        const ExperimentConfig& cfg,
                                        PipelineDiagnostics* diag, const obs::Context* obs) {
  std::vector<std::size_t> all(fleet.drives.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return score_fleet(fleet, predictor, all, t0, t1, cfg, diag, obs);
}

std::vector<DriveDayScores> score_fleet(const data::FleetData& fleet,
                                        const WefrPredictor& predictor,
                                        std::span<const std::size_t> drives, int t0, int t1,
                                        const ExperimentConfig& cfg,
                                        PipelineDiagnostics* diag, const obs::Context* obs) {
  obs::Span span(obs, "score_fleet");
  if (t0 > t1) throw std::invalid_argument("score_fleet: t0 > t1");

  const bool routed = predictor.wear_threshold.has_value() && predictor.mwi_col >= 0;

  // Collect candidate drives with observations in [t0, t1] first so the
  // parallel fan-out below writes each drive's scores into a fixed slot
  // — output order (and every value) matches the sequential run.
  std::vector<std::size_t> eligible;
  for (std::size_t di : drives) {
    if (di >= fleet.drives.size())
      throw std::invalid_argument("score_fleet: drive index out of range");
    const auto& drive = fleet.drives[di];
    if (drive.num_days() == 0) continue;
    if (std::max(t0, drive.first_day) > std::min(t1, drive.last_day())) continue;
    eligible.push_back(di);
  }

  std::vector<DriveDayScores> out(eligible.size());
  // Per-slot tallies folded into `diag` after the (possibly parallel)
  // loop, so the sink is never written concurrently.
  std::vector<std::size_t> rerouted(eligible.size(), 0);
  std::vector<std::size_t> missing_feats(eligible.size(), 0);
  auto score_drive = [&](std::size_t slot) {
    const std::size_t di = eligible[slot];
    const auto& drive = fleet.drives[di];
    const int lo = std::max(t0, drive.first_day);
    const int hi = std::min(t1, drive.last_day());

    // Heterogeneous-fleet degradation check: in a schema-reconciled
    // pool, a column the drive's model never reports is NaN over its
    // whole series (forward_fill leaves all-NaN columns untouched), so
    // first-and-last-row NaN detects it in O(base_cols). Such drives
    // still score — tree splits send NaN down the right child, a
    // deterministic neutral path — but the degradation is tallied so
    // callers know which scores rest on a partial feature set.
    if (drive.num_days() > 0) {
      for (std::size_t c : predictor.all.base_cols) {
        if (std::isnan(drive.values(0, c)) &&
            std::isnan(drive.values(drive.num_days() - 1, c))) {
          ++missing_feats[slot];
        }
      }
    }

    // Expand the drive's full history once per needed bundle. The
    // streaming kernels make that O(1) per day, and full-history
    // expansion keeps scores bit-identical no matter how the scored
    // range is chunked (running sums would otherwise drift ~1e-15
    // relative depending on where a slice started — enough to flip a
    // discrete alarm near a threshold).
    auto expand_for = [&](const PredictorBundle& b) {
      return cfg.expand_windows
                 ? data::expand_series(drive.values, b.base_cols, cfg.windows, obs)
                 : drive.values.select_columns(b.base_cols);
    };

    const data::Matrix all_feats = expand_for(predictor.all);
    data::Matrix low_feats, high_feats;
    if (routed && predictor.low.has_value()) low_feats = expand_for(*predictor.low);
    if (routed && predictor.high.has_value()) high_feats = expand_for(*predictor.high);

    DriveDayScores& ds = out[slot];
    ds.drive_index = di;
    ds.first_day = lo;
    const std::size_t num_days = static_cast<std::size_t>(hi - lo + 1);
    ds.scores.assign(num_days, 0.0);

    // Batch the drive's scored days through the flattened engine: one
    // contiguous batch when unrouted, otherwise one batch per bundle
    // with the per-day routing decision (NaN wear indicator -> the
    // whole-model bundle, as before) deciding which list a day joins.
    // Scores are scattered back by day position, and each probability
    // is bit-identical to the historical per-day recursive walk.
    // Workers pass obs = nullptr: inference rows are tallied once after
    // the fan-out so tracing adds no work to the scoring hot path.
    if (!routed) {
      std::vector<std::size_t> rows(num_days);
      std::iota(rows.begin(), rows.end(), static_cast<std::size_t>(lo - drive.first_day));
      predictor.all.forest.predict_proba(all_feats, rows, ds.scores);
      return;
    }

    std::vector<std::size_t> rows_all, rows_low, rows_high;
    std::vector<std::size_t> pos_all, pos_low, pos_high;
    for (int day = lo; day <= hi; ++day) {
      const std::size_t local = static_cast<std::size_t>(day - drive.first_day);
      const std::size_t pos = static_cast<std::size_t>(day - lo);
      const double mwi = drive.values(local, static_cast<std::size_t>(predictor.mwi_col));
      if (std::isnan(mwi)) {
        // Unroutable wear indicator: score with the whole-model bundle
        // rather than silently landing in the high-wear group.
        ++rerouted[slot];
        rows_all.push_back(local);
        pos_all.push_back(pos);
        continue;
      }
      const bool is_low = mwi <= *predictor.wear_threshold;
      if (is_low && predictor.low.has_value()) {
        rows_low.push_back(local);
        pos_low.push_back(pos);
      } else if (!is_low && predictor.high.has_value()) {
        rows_high.push_back(local);
        pos_high.push_back(pos);
      } else {
        rows_all.push_back(local);
        pos_all.push_back(pos);
      }
    }

    std::vector<double> batch;
    auto score_bundle = [&](const PredictorBundle& bundle, const data::Matrix& feats,
                            const std::vector<std::size_t>& rows,
                            const std::vector<std::size_t>& pos) {
      if (rows.empty()) return;
      batch.assign(rows.size(), 0.0);
      bundle.forest.predict_proba(feats, rows, batch);
      for (std::size_t i = 0; i < pos.size(); ++i) ds.scores[pos[i]] = batch[i];
    };
    score_bundle(predictor.all, all_feats, rows_all, pos_all);
    if (predictor.low.has_value()) score_bundle(*predictor.low, low_feats, rows_low, pos_low);
    if (predictor.high.has_value())
      score_bundle(*predictor.high, high_feats, rows_high, pos_high);
  };

  // One task per drive drowned the pool in atomic traffic and task
  // dispatch for short test windows (each drive scores only a few
  // days): batch drives per worker instead, and stay serial outright
  // when the fleet is too small to cover even two batches.
  constexpr std::size_t kDriveChunk = 16;
  if (cfg.num_threads > 1 && eligible.size() >= 2 * kDriveChunk) {
    util::ThreadPool pool(cfg.num_threads);
    pool.parallel_for_chunked(eligible.size(), kDriveChunk, score_drive);
  } else {
    for (std::size_t slot = 0; slot < eligible.size(); ++slot) score_drive(slot);
  }
  std::size_t total_rerouted = 0;
  for (std::size_t n : rerouted) total_rerouted += n;
  if (diag != nullptr && total_rerouted > 0) {
    diag->score_days_rerouted += total_rerouted;
    diag->note("score", "days_rerouted_nan_mwi",
               std::to_string(total_rerouted) + " drive-days -> whole-model bundle");
  }
  std::size_t drives_partial = 0, cols_missing = 0;
  for (std::size_t n : missing_feats) {
    drives_partial += n > 0 ? 1 : 0;
    cols_missing += n;
  }
  if (diag != nullptr && drives_partial > 0) {
    diag->score_drives_missing_features += drives_partial;
    diag->note("score", "drives_missing_features",
               std::to_string(drives_partial) + " drives scored without " +
                   std::to_string(cols_missing) + " selected feature columns");
  }
  if (obs != nullptr) {
    // Tallied once here (not in the per-day loop) so tracing adds no
    // work to the scoring hot path.
    std::size_t total_days = 0;
    auto* hist = obs::histogram_or_null(obs, "wefr_score_days_per_drive",
                                        {1.0, 7.0, 30.0, 90.0, 365.0, 1825.0});
    for (const auto& ds : out) {
      total_days += ds.scores.size();
      if (hist != nullptr) hist->observe(static_cast<double>(ds.scores.size()));
    }
    obs::add_counter(obs, "wefr_score_drives_total", out.size());
    obs::add_counter(obs, "wefr_score_days_total", total_days);
    obs::add_counter(obs, "wefr_score_days_rerouted_total", total_rerouted);
    obs::add_counter(obs, "wefr_inference_rows_total", total_days);
  }
  return out;
}

namespace {

/// Per-drive alarm lookup: earliest day whose score reaches a threshold.
struct AlarmIndex {
  std::size_t drive_index = 0;
  bool actual_positive = false;
  int fail_day = -1;
  std::vector<double> scores_desc;
  std::vector<int> earliest_day;  ///< earliest day among the top-k scores

  /// Earliest alarm day at threshold thr, or -1 when no score reaches it.
  int alarm_day(double thr) const {
    // Count scores >= thr in the descending array.
    const auto it = std::lower_bound(scores_desc.begin(), scores_desc.end(), thr,
                                     [](double s, double t) { return s >= t; });
    const std::size_t k = static_cast<std::size_t>(it - scores_desc.begin());
    return k == 0 ? -1 : earliest_day[k - 1];
  }
};

}  // namespace

DriveLevelEval evaluate_fixed_recall(const data::FleetData& fleet,
                                     std::span<const DriveDayScores> scores, int t0, int t1,
                                     int horizon, double target_recall,
                                     const std::vector<bool>* drive_mask) {
  if (target_recall < 0.0 || target_recall > 1.0)
    throw std::invalid_argument("evaluate_fixed_recall: target outside [0,1]");

  std::vector<AlarmIndex> drives;
  std::vector<double> all_scores;
  for (const auto& ds : scores) {
    if (drive_mask != nullptr &&
        (ds.drive_index >= drive_mask->size() || !(*drive_mask)[ds.drive_index]))
      continue;
    const auto& drive = fleet.drives[ds.drive_index];
    AlarmIndex ai;
    ai.drive_index = ds.drive_index;
    ai.fail_day = drive.fail_day;
    ai.actual_positive = drive.failed() && drive.fail_day > t0 &&
                         drive.fail_day <= t1 + horizon;

    std::vector<std::pair<double, int>> pairs;
    pairs.reserve(ds.scores.size());
    for (std::size_t i = 0; i < ds.scores.size(); ++i) {
      pairs.emplace_back(ds.scores[i], ds.first_day + static_cast<int>(i));
      all_scores.push_back(ds.scores[i]);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    ai.scores_desc.reserve(pairs.size());
    ai.earliest_day.reserve(pairs.size());
    int earliest = INT32_MAX;
    for (const auto& [s, d] : pairs) {
      earliest = std::min(earliest, d);
      ai.scores_desc.push_back(s);
      ai.earliest_day.push_back(earliest);
    }
    drives.push_back(std::move(ai));
  }

  DriveLevelEval best;
  if (drives.empty() || all_scores.empty()) return best;

  // Candidate thresholds: up to ~400 quantiles of all scores plus a
  // sentinel above the maximum (predict nothing).
  std::sort(all_scores.begin(), all_scores.end());
  all_scores.erase(std::unique(all_scores.begin(), all_scores.end()), all_scores.end());
  std::vector<double> candidates;
  const std::size_t want = 400;
  if (all_scores.size() <= want) {
    candidates = all_scores;
  } else {
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t j = i * (all_scores.size() - 1) / (want - 1);
      candidates.push_back(all_scores[j]);
    }
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  }
  candidates.push_back(all_scores.back() + 1.0);

  // Paper-style drive-level accounting: precision is over predicted
  // drives (first alarm must be followed by the failure within the
  // horizon), recall is over ALL actually-failing drives — a premature
  // alarm therefore counts against both (fp and fn).
  auto eval_at = [&](double thr) {
    ml::Confusion c;
    for (const auto& ai : drives) {
      const int alarm = ai.alarm_day(thr);
      const bool predicted = alarm >= 0;
      const bool correct =
          predicted && ai.fail_day > alarm && ai.fail_day <= alarm + horizon;
      if (correct) ++c.tp;
      if (predicted && !correct) ++c.fp;
      if (ai.actual_positive && !correct) ++c.fn;
      if (!predicted && !ai.actual_positive) ++c.tn;
    }
    return c;
  };

  // Fixed-recall semantics: among operating points reaching the target,
  // take the one with the SMALLEST recall (the point just past the
  // target — methods are then compared at matched recall, as in the
  // paper's tables), breaking ties by precision then threshold. When the
  // target is unreachable, fall back to the maximum-recall point.
  bool have_target = false;
  bool have_any = false;
  for (double thr : candidates) {
    const ml::Confusion c = eval_at(thr);
    const double p = ml::precision(c);
    const double r = ml::recall(c);
    const bool meets = r >= target_recall;
    bool better = false;
    if (!have_any) {
      better = true;
    } else if (meets && !have_target) {
      better = true;
    } else if (meets == have_target) {
      if (meets) {
        better = r < best.recall ||
                 (r == best.recall &&
                  (p > best.precision ||
                   (p == best.precision && thr > best.threshold)));
      } else {
        better = r > best.recall || (r == best.recall && p > best.precision);
      }
    }
    if (better) {
      best.confusion = c;
      best.precision = p;
      best.recall = r;
      best.f05 = ml::f05(c);
      best.threshold = thr;
      best.achieved_recall = r;
      have_any = true;
      have_target = have_target || meets;
    }
  }
  return best;
}

}  // namespace wefr::core
