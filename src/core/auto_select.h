#pragma once

#include <span>
#include <vector>

#include "data/matrix.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::core {

/// Controls for WEFR's automated feature-count selection (Section IV-C).
struct AutoSelectOptions {
  /// Blend between the complexity ensemble F and the scan fraction xi:
  /// e = alpha * F + (1 - alpha) * xi (paper: alpha = 0.75).
  double alpha = 0.75;

  /// Stopping rule variant.
  ///
  /// kComplexityMeanCut (default): after the top log2(n) seed features,
  /// a feature is accepted while its blended complexity `e` stays below
  /// the mean `e` across all features; the first feature at or above
  /// that mean stops the scan. Blended complexity grows along the
  /// ranking (weak features are more complex and the scan fraction xi
  /// rises), so this cuts where features turn "hard" relative to the
  /// model — reproducing the paper's 26-63% selected fractions.
  ///
  /// kPaperLiteral: the literal E_p/E recurrences of Algorithm 1
  /// (E_p += e; E += E_p; stop when E_p >= E). The literal recurrences
  /// make E grow quadratically in the scan position, so this variant
  /// nearly always selects every feature — kept for ablation, and as
  /// documentation of why a faithful-in-spirit rule is used instead.
  enum class Rule { kComplexityMeanCut, kPaperLiteral };
  Rule rule = Rule::kComplexityMeanCut;

  /// Worker threads for the per-feature F1/F2/F3 complexity scan; 0 =
  /// sequential. The selected features are identical for any value.
  std::size_t num_threads = 0;
};

/// Output of automated feature selection.
struct AutoSelectResult {
  /// Number of selected features n.
  std::size_t count = 0;
  /// The selected feature indices: the first n entries of the scan
  /// order handed in.
  std::vector<std::size_t> selected;
  /// Blended complexity e of each feature, in scan order.
  std::vector<double> complexity;
};

/// Scans features in `order` (most important first, from the ensemble
/// ranking), computing each feature's ensemble complexity measure and
/// blending it with the scan fraction, and determines the cut-off
/// count automatically. The top log2(#features) features are always
/// selected (the paper's initialization).
///
/// `obs` (nullable) wraps the scan in an "auto_select" span and counts
/// features scanned / selected.
AutoSelectResult auto_select(const data::Matrix& x, std::span<const int> y,
                             std::span<const std::size_t> order,
                             const AutoSelectOptions& opt = {},
                             const obs::Context* obs = nullptr);

}  // namespace wefr::core
