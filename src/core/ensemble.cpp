#include "core/ensemble.h"

#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/kendall.h"
#include "stats/ranking.h"
#include "util/thread_pool.h"

namespace wefr::core {

EnsembleResult ensemble_rank(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                             const data::Matrix& x, std::span<const int> y,
                             const EnsembleOptions& opt) {
  if (rankers.empty()) throw std::invalid_argument("ensemble_rank: no rankers");
  if (x.rows() != y.size()) throw std::invalid_argument("ensemble_rank: shape mismatch");

  const std::size_t k = rankers.size();
  const std::size_t nf = x.cols();

  EnsembleResult out;
  out.ranker_names.resize(k);
  out.rankings.resize(k);
  out.scores.resize(k);

  auto run_one = [&](std::size_t i) {
    out.ranker_names[i] = rankers[i]->name();
    out.scores[i] = rankers[i]->score(x, y);
    if (out.scores[i].size() != nf)
      throw std::runtime_error("ensemble_rank: ranker returned wrong score count");
    out.rankings[i] = stats::ranking_from_scores(out.scores[i]);
  };
  if (opt.num_threads > 1 && k > 1) {
    util::ThreadPool pool(std::min(opt.num_threads, k));
    pool.parallel_for(k, run_one);
  } else {
    for (std::size_t i = 0; i < k; ++i) run_one(i);
  }

  // Pairwise Kendall-tau distances and per-ranker mean distance D-bar.
  out.mean_distance.assign(k, 0.0);
  if (k > 1) {
    std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        const double d = static_cast<double>(
            stats::kendall_tau_distance(out.rankings[a], out.rankings[b]));
        dist[a][b] = dist[b][a] = d;
      }
    }
    for (std::size_t a = 0; a < k; ++a) {
      double sum = 0.0;
      for (std::size_t b = 0; b < k; ++b) {
        if (b != a) sum += dist[a][b];
      }
      out.mean_distance[a] = sum / static_cast<double>(k - 1);
    }
  }

  // Outlier pruning: drop rankers whose D-bar is more than outlier_z
  // standard deviations ABOVE the mean of D-bar (one-sided — a ranker
  // unusually close to the others is agreement, not bias). Population
  // stddev: with k = 5 rankers the maximum sample-stddev z-score is
  // (k-1)/sqrt(k) = 1.79 < 1.96, i.e. the paper's rule could never fire.
  out.discarded.assign(k, false);
  if (k > 2) {
    const double m = stats::mean(out.mean_distance);
    const double sd = stats::stddev(out.mean_distance);
    if (sd > 0.0) {
      for (std::size_t a = 0; a < k; ++a) {
        if (out.mean_distance[a] > m + opt.outlier_z * sd) out.discarded[a] = true;
      }
    }
    // Guard: never discard everything.
    bool any_kept = false;
    for (std::size_t a = 0; a < k; ++a) any_kept = any_kept || !out.discarded[a];
    if (!any_kept) out.discarded.assign(k, false);
  }

  // Final ranking: mean of surviving rankings per feature.
  out.final_ranking.assign(nf, 0.0);
  std::size_t kept = 0;
  for (std::size_t a = 0; a < k; ++a) {
    if (out.discarded[a]) continue;
    ++kept;
    for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] += out.rankings[a][f];
  }
  for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] /= static_cast<double>(kept);

  // Most-important-first order (smaller mean rank first; ties by index).
  std::vector<double> neg(nf);
  for (std::size_t f = 0; f < nf; ++f) neg[f] = -out.final_ranking[f];
  out.order = stats::order_by_score(neg);
  return out;
}

}  // namespace wefr::core
