#include "core/ensemble.h"

#include <cmath>
#include <stdexcept>

#include "obs/context.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "stats/kendall.h"
#include "stats/ranking.h"
#include "util/thread_pool.h"

namespace wefr::core {

RankerRawScores ensemble_score_rankers(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                                       const data::Matrix& x, std::span<const int> y,
                                       const EnsembleOptions& opt, const obs::Context* obs,
                                       std::uint64_t parent_span) {
  const std::size_t k = rankers.size();
  const std::size_t nf = x.cols();

  RankerRawScores raw;
  raw.names.resize(k);
  raw.scores.resize(k);
  raw.failed.assign(k, 0);
  raw.failure_reasons.resize(k);

  // Ranker spans are parented on the caller's span explicitly: in
  // threaded mode the pool workers have no open-span stack of their
  // own, so implicit (thread-local) parentage would orphan them.
  auto run_one = [&](std::size_t i) {
    raw.names[i] = rankers[i]->name();
    obs::Span ranker_span(obs, ("ranker:" + raw.names[i]).c_str(), parent_span);
    try {
      raw.scores[i] = rankers[i]->score(x, y);
      if (raw.scores[i].size() != nf)
        throw std::runtime_error("returned " + std::to_string(raw.scores[i].size()) +
                                 " scores for " + std::to_string(nf) + " features");
    } catch (const std::exception& e) {
      raw.failed[i] = 1;
      raw.failure_reasons[i] = e.what();
      raw.scores[i].assign(nf, 0.0);
    }
  };
  // Fan out only when the pool can actually win: on a single hardware
  // thread the workers just take turns (BENCH_hotpath measured a ~2%
  // *slowdown* from pool overhead), and for tiny sample matrices the
  // per-ranker work is smaller than the thread handoff it would buy.
  const bool pool_can_win =
      util::default_thread_count() > 1 && x.rows() * x.cols() >= 4096;
  if (opt.num_threads > 1 && k > 1 && pool_can_win) {
    util::ThreadPool pool(std::min(opt.num_threads, k));
    pool.parallel_for(k, run_one);
  } else {
    for (std::size_t i = 0; i < k; ++i) run_one(i);
  }
  return raw;
}

EnsembleResult ensemble_rank_from_scores(RankerRawScores raw, std::size_t num_features,
                                         const EnsembleOptions& opt,
                                         PipelineDiagnostics* diag,
                                         const obs::Context* obs) {
  const std::size_t k = raw.names.size();
  if (k == 0) throw std::invalid_argument("ensemble_rank_from_scores: no rankers");
  if (raw.scores.size() != k || raw.failed.size() != k || raw.failure_reasons.size() != k)
    throw std::invalid_argument("ensemble_rank_from_scores: ragged raw scores");

  const std::size_t nf = num_features;
  const double neutral_rank = (static_cast<double>(nf) + 1.0) / 2.0;

  EnsembleResult out;
  out.ranker_names = std::move(raw.names);
  out.scores = std::move(raw.scores);
  out.rankings.resize(k);
  out.failed.assign(k, false);

  for (std::size_t i = 0; i < k; ++i) {
    if (raw.failed[i] != 0) {
      out.failed[i] = true;
      out.scores[i].assign(nf, 0.0);
      out.rankings[i].assign(nf, neutral_rank);
      if (diag != nullptr) {
        ++diag->rankers_failed;
        diag->note("ensemble", "ranker_failed",
                   out.ranker_names[i] + ": " + raw.failure_reasons[i]);
      }
      continue;
    }
    if (out.scores[i].size() != nf)
      throw std::invalid_argument("ensemble_rank_from_scores: score length mismatch");
    // Degenerate inputs can yield NaN/inf importances (zero-variance
    // columns, vanishing denominators); zero them so the fractional
    // ranking stays well ordered.
    for (double& s : out.scores[i]) {
      if (!std::isfinite(s)) {
        s = 0.0;
        ++out.sanitized_scores;
      }
    }
    out.rankings[i] = stats::ranking_from_scores(out.scores[i]);
  }
  if (out.sanitized_scores > 0 && diag != nullptr) {
    diag->scores_sanitized += out.sanitized_scores;
    diag->note("ensemble", "scores_sanitized",
               std::to_string(out.sanitized_scores) + " non-finite importances -> 0");
  }

  std::vector<std::size_t> live;  // rankers that actually produced a ranking
  for (std::size_t a = 0; a < k; ++a) {
    if (!out.failed[a]) live.push_back(a);
  }

  // Pairwise Kendall-tau distances and per-ranker mean distance D-bar,
  // over the live rankers only (a failed ranker's neutral ranking would
  // otherwise drag the distance statistics). Sort cache: each live
  // ranking is argsorted once and the order is shared across its k-1
  // pairings (the merge-sort tau itself is O(n log n) per pair).
  out.mean_distance.assign(k, 0.0);
  if (live.size() > 1) {
    std::vector<std::vector<std::size_t>> sorted(k);
    for (std::size_t a : live) sorted[a] = stats::argsort_ascending(out.rankings[a]);
    std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
    for (std::size_t ia = 0; ia < live.size(); ++ia) {
      for (std::size_t ib = ia + 1; ib < live.size(); ++ib) {
        const std::size_t a = live[ia], b = live[ib];
        const double d = static_cast<double>(stats::kendall_tau_distance_presorted(
            out.rankings[a], out.rankings[b], sorted[a]));
        dist[a][b] = dist[b][a] = d;
      }
    }
    for (std::size_t a : live) {
      double sum = 0.0;
      for (std::size_t b : live) {
        if (b != a) sum += dist[a][b];
      }
      out.mean_distance[a] = sum / static_cast<double>(live.size() - 1);
    }
  }

  // Outlier pruning: drop rankers whose D-bar is more than outlier_z
  // standard deviations ABOVE the mean of D-bar (one-sided — a ranker
  // unusually close to the others is agreement, not bias). Population
  // stddev: with k = 5 rankers the maximum sample-stddev z-score is
  // (k-1)/sqrt(k) = 1.79 < 1.96, i.e. the paper's rule could never fire.
  out.discarded.assign(k, false);
  for (std::size_t a = 0; a < k; ++a) out.discarded[a] = out.failed[a];
  if (live.size() > 2) {
    std::vector<double> live_dbar;
    for (std::size_t a : live) live_dbar.push_back(out.mean_distance[a]);
    const double m = stats::mean(live_dbar);
    const double sd = stats::stddev(live_dbar);
    if (sd > 0.0) {
      for (std::size_t a : live) {
        if (out.mean_distance[a] > m + opt.outlier_z * sd) {
          out.discarded[a] = true;
          if (diag != nullptr)
            diag->note("ensemble", "ranker_outlier", out.ranker_names[a]);
        }
      }
    }
    // Guard: never discard every live ranking.
    bool any_kept = false;
    for (std::size_t a : live) any_kept = any_kept || !out.discarded[a];
    if (!any_kept) {
      for (std::size_t a : live) out.discarded[a] = false;
    }
  }

  // Final ranking: mean of surviving rankings per feature. When every
  // ranker failed there is nothing to average — fall back to the
  // neutral ranking (identity order), tagged in the diagnostics.
  out.final_ranking.assign(nf, 0.0);
  std::size_t kept = 0;
  for (std::size_t a = 0; a < k; ++a) {
    if (out.discarded[a]) continue;
    ++kept;
    for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] += out.rankings[a][f];
  }
  if (kept == 0) {
    out.final_ranking.assign(nf, neutral_rank);
    if (diag != nullptr)
      diag->note("ensemble", "all_rankers_failed", "neutral final ranking");
  } else {
    for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] /= static_cast<double>(kept);
  }

  // Most-important-first order (smaller mean rank first; ties by index).
  std::vector<double> neg(nf);
  for (std::size_t f = 0; f < nf; ++f) neg[f] = -out.final_ranking[f];
  out.order = stats::order_by_score(neg);

  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_rankers_run_total", k);
    std::size_t discarded = 0;
    for (std::size_t a = 0; a < k; ++a) discarded += out.discarded[a] ? 1 : 0;
    obs::add_counter(obs, "wefr_rankers_discarded_total", discarded);
  }
  return out;
}

EnsembleResult ensemble_rank(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                             const data::Matrix& x, std::span<const int> y,
                             const EnsembleOptions& opt, PipelineDiagnostics* diag,
                             const obs::Context* obs) {
  obs::Span ensemble_span(obs, "ensemble");
  if (rankers.empty()) throw std::invalid_argument("ensemble_rank: no rankers");
  if (x.rows() != y.size()) throw std::invalid_argument("ensemble_rank: shape mismatch");

  RankerRawScores raw =
      ensemble_score_rankers(rankers, x, y, opt, obs, ensemble_span.id());
  return ensemble_rank_from_scores(std::move(raw), x.cols(), opt, diag, obs);
}

}  // namespace wefr::core
