#include "core/ensemble.h"

#include <cmath>
#include <stdexcept>

#include "obs/context.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "stats/kendall.h"
#include "stats/ranking.h"
#include "util/thread_pool.h"

namespace wefr::core {

EnsembleResult ensemble_rank(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                             const data::Matrix& x, std::span<const int> y,
                             const EnsembleOptions& opt, PipelineDiagnostics* diag,
                             const obs::Context* obs) {
  obs::Span ensemble_span(obs, "ensemble");
  if (rankers.empty()) throw std::invalid_argument("ensemble_rank: no rankers");
  if (x.rows() != y.size()) throw std::invalid_argument("ensemble_rank: shape mismatch");

  const std::size_t k = rankers.size();
  const std::size_t nf = x.cols();
  const double neutral_rank = (static_cast<double>(nf) + 1.0) / 2.0;

  EnsembleResult out;
  out.ranker_names.resize(k);
  out.rankings.resize(k);
  out.scores.resize(k);
  out.failed.assign(k, false);

  // Collected per ranker inside the (possibly parallel) loop and folded
  // into the diagnostics afterwards, so `diag` is never touched
  // concurrently.
  std::vector<std::string> failure_reason(k);
  std::vector<std::size_t> sanitized(k, 0);

  // Ranker spans are parented on the ensemble span explicitly: in
  // threaded mode the pool workers have no open-span stack of their
  // own, so implicit (thread-local) parentage would orphan them.
  const std::uint64_t ensemble_id = ensemble_span.id();
  auto run_one = [&](std::size_t i) {
    out.ranker_names[i] = rankers[i]->name();
    obs::Span ranker_span(obs, ("ranker:" + out.ranker_names[i]).c_str(), ensemble_id);
    try {
      out.scores[i] = rankers[i]->score(x, y);
      if (out.scores[i].size() != nf)
        throw std::runtime_error("returned " + std::to_string(out.scores[i].size()) +
                                 " scores for " + std::to_string(nf) + " features");
      // Degenerate inputs can yield NaN/inf importances (zero-variance
      // columns, vanishing denominators); zero them so the fractional
      // ranking stays well ordered.
      for (double& s : out.scores[i]) {
        if (!std::isfinite(s)) {
          s = 0.0;
          ++sanitized[i];
        }
      }
      out.rankings[i] = stats::ranking_from_scores(out.scores[i]);
    } catch (const std::exception& e) {
      out.failed[i] = true;
      failure_reason[i] = e.what();
      out.scores[i].assign(nf, 0.0);
      out.rankings[i].assign(nf, neutral_rank);
    }
  };
  // Fan out only when the pool can actually win: on a single hardware
  // thread the workers just take turns (BENCH_hotpath measured a ~2%
  // *slowdown* from pool overhead), and for tiny sample matrices the
  // per-ranker work is smaller than the thread handoff it would buy.
  const bool pool_can_win =
      util::default_thread_count() > 1 && x.rows() * x.cols() >= 4096;
  if (opt.num_threads > 1 && k > 1 && pool_can_win) {
    util::ThreadPool pool(std::min(opt.num_threads, k));
    pool.parallel_for(k, run_one);
  } else {
    for (std::size_t i = 0; i < k; ++i) run_one(i);
  }

  for (std::size_t i = 0; i < k; ++i) {
    out.sanitized_scores += sanitized[i];
    if (out.failed[i] && diag != nullptr) {
      ++diag->rankers_failed;
      diag->note("ensemble", "ranker_failed",
                 out.ranker_names[i] + ": " + failure_reason[i]);
    }
  }
  if (out.sanitized_scores > 0 && diag != nullptr) {
    diag->scores_sanitized += out.sanitized_scores;
    diag->note("ensemble", "scores_sanitized",
               std::to_string(out.sanitized_scores) + " non-finite importances -> 0");
  }

  std::vector<std::size_t> live;  // rankers that actually produced a ranking
  for (std::size_t a = 0; a < k; ++a) {
    if (!out.failed[a]) live.push_back(a);
  }

  // Pairwise Kendall-tau distances and per-ranker mean distance D-bar,
  // over the live rankers only (a failed ranker's neutral ranking would
  // otherwise drag the distance statistics). Sort cache: each live
  // ranking is argsorted once and the order is shared across its k-1
  // pairings (the merge-sort tau itself is O(n log n) per pair).
  out.mean_distance.assign(k, 0.0);
  if (live.size() > 1) {
    std::vector<std::vector<std::size_t>> sorted(k);
    for (std::size_t a : live) sorted[a] = stats::argsort_ascending(out.rankings[a]);
    std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
    for (std::size_t ia = 0; ia < live.size(); ++ia) {
      for (std::size_t ib = ia + 1; ib < live.size(); ++ib) {
        const std::size_t a = live[ia], b = live[ib];
        const double d = static_cast<double>(stats::kendall_tau_distance_presorted(
            out.rankings[a], out.rankings[b], sorted[a]));
        dist[a][b] = dist[b][a] = d;
      }
    }
    for (std::size_t a : live) {
      double sum = 0.0;
      for (std::size_t b : live) {
        if (b != a) sum += dist[a][b];
      }
      out.mean_distance[a] = sum / static_cast<double>(live.size() - 1);
    }
  }

  // Outlier pruning: drop rankers whose D-bar is more than outlier_z
  // standard deviations ABOVE the mean of D-bar (one-sided — a ranker
  // unusually close to the others is agreement, not bias). Population
  // stddev: with k = 5 rankers the maximum sample-stddev z-score is
  // (k-1)/sqrt(k) = 1.79 < 1.96, i.e. the paper's rule could never fire.
  out.discarded.assign(k, false);
  for (std::size_t a = 0; a < k; ++a) out.discarded[a] = out.failed[a];
  if (live.size() > 2) {
    std::vector<double> live_dbar;
    for (std::size_t a : live) live_dbar.push_back(out.mean_distance[a]);
    const double m = stats::mean(live_dbar);
    const double sd = stats::stddev(live_dbar);
    if (sd > 0.0) {
      for (std::size_t a : live) {
        if (out.mean_distance[a] > m + opt.outlier_z * sd) {
          out.discarded[a] = true;
          if (diag != nullptr)
            diag->note("ensemble", "ranker_outlier", out.ranker_names[a]);
        }
      }
    }
    // Guard: never discard every live ranking.
    bool any_kept = false;
    for (std::size_t a : live) any_kept = any_kept || !out.discarded[a];
    if (!any_kept) {
      for (std::size_t a : live) out.discarded[a] = false;
    }
  }

  // Final ranking: mean of surviving rankings per feature. When every
  // ranker failed there is nothing to average — fall back to the
  // neutral ranking (identity order), tagged in the diagnostics.
  out.final_ranking.assign(nf, 0.0);
  std::size_t kept = 0;
  for (std::size_t a = 0; a < k; ++a) {
    if (out.discarded[a]) continue;
    ++kept;
    for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] += out.rankings[a][f];
  }
  if (kept == 0) {
    out.final_ranking.assign(nf, neutral_rank);
    if (diag != nullptr)
      diag->note("ensemble", "all_rankers_failed", "neutral final ranking");
  } else {
    for (std::size_t f = 0; f < nf; ++f) out.final_ranking[f] /= static_cast<double>(kept);
  }

  // Most-important-first order (smaller mean rank first; ties by index).
  std::vector<double> neg(nf);
  for (std::size_t f = 0; f < nf; ++f) neg[f] = -out.final_ranking[f];
  out.order = stats::order_by_score(neg);

  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_rankers_run_total", k);
    std::size_t discarded = 0;
    for (std::size_t a = 0; a < k; ++a) discarded += out.discarded[a] ? 1 : 0;
    obs::add_counter(obs, "wefr_rankers_discarded_total", discarded);
  }
  return out;
}

}  // namespace wefr::core
