#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "core/ranker.h"
#include "data/matrix.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::core {

/// Controls for WEFR's robust ensemble ranking (Section IV-B).
struct EnsembleOptions {
  /// z threshold on a ranker's mean Kendall-tau distance for it to be
  /// discarded as an outlier (paper: 1.96, the 95% confidence level).
  double outlier_z = 1.96;
  /// Worker threads for running rankers in parallel (the deployment mode
  /// measured by Exp#4); 0 = sequential.
  std::size_t num_threads = 0;
};

/// Output of the ensemble ranking step.
struct EnsembleResult {
  std::vector<std::string> ranker_names;
  /// Per ranker: 1-based fractional ranking of every feature.
  std::vector<std::vector<double>> rankings;
  /// Per ranker: raw importance scores (diagnostics / Table IV).
  std::vector<std::vector<double>> scores;
  /// Mean Kendall-tau distance of each ranker to the others.
  std::vector<double> mean_distance;
  /// True for rankers discarded as outliers.
  std::vector<bool> discarded;
  /// True for rankers that threw on degenerate input (constant
  /// features, single-class labels); they contribute a neutral ranking
  /// and are excluded from the distance statistics and the average.
  std::vector<bool> failed;
  /// Count of non-finite ranker scores replaced by 0 before ranking.
  std::size_t sanitized_scores = 0;
  /// Final ranking per feature: mean of the surviving rankings
  /// (smaller = more important).
  std::vector<double> final_ranking;
  /// Features ordered most-important first under the final ranking.
  std::vector<std::size_t> order;
};

/// Runs every ranker, prunes ranking outliers by Kendall-tau distance
/// (a ranker is dropped when its mean distance to the others exceeds
/// the across-ranker mean by `outlier_z` standard deviations), and
/// averages the surviving rankings into the final ranking.
///
/// At least one ranking always survives: if the rule would discard all
/// (impossible with a one-sided test, but guarded anyway) the pruning
/// step is skipped.
///
/// Degraded inputs never throw past this function: a ranker that throws
/// is recorded as failed (neutral ranking, excluded from the average),
/// non-finite scores are zeroed, and when every ranker fails the final
/// ranking is neutral. Each fallback is noted in `diag` when given.
///
/// `obs` (nullable) wraps the step in an "ensemble" span with one
/// "ranker:<name>" child per ranker (children are parented explicitly,
/// so the tree is correct in threaded mode too) and counts rankers run
/// and discarded.
EnsembleResult ensemble_rank(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                             const data::Matrix& x, std::span<const int> y,
                             const EnsembleOptions& opt = {},
                             PipelineDiagnostics* diag = nullptr,
                             const obs::Context* obs = nullptr);

/// Raw per-ranker score vectors: the transportable half of the
/// ensemble. A sharded run computes these in worker processes (one
/// (population, ranker) job at a time), ships them back as WEFRSH01
/// records, and finalizes through ensemble_rank_from_scores — the
/// exact code path ensemble_rank itself uses, so a score vector
/// produced anywhere finalizes to the same EnsembleResult bit for bit.
struct RankerRawScores {
  std::vector<std::string> names;            ///< per ranker
  std::vector<std::vector<double>> scores;   ///< per ranker: raw importances
  std::vector<std::uint8_t> failed;          ///< 1 = ranker threw on this input
  std::vector<std::string> failure_reasons;  ///< exception text when failed
};

/// Runs every ranker and collects raw scores without finalizing:
/// failures are captured (zero scores + reason), but sanitization,
/// ranking, distance pruning, and averaging are deferred to
/// ensemble_rank_from_scores. `parent_span` (when non-zero) parents
/// the per-ranker spans, matching ensemble_rank's span tree.
RankerRawScores ensemble_score_rankers(std::span<const std::unique_ptr<FeatureRanker>> rankers,
                                       const data::Matrix& x, std::span<const int> y,
                                       const EnsembleOptions& opt = {},
                                       const obs::Context* obs = nullptr,
                                       std::uint64_t parent_span = 0);

/// Deterministic finalization of raw ranker scores: sanitize non-finite
/// importances, derive fractional rankings, prune Kendall-tau outliers,
/// and average the survivors. ensemble_rank is exactly
/// ensemble_score_rankers + this, so feeding scores computed in another
/// process reproduces the in-process EnsembleResult bitwise.
EnsembleResult ensemble_rank_from_scores(RankerRawScores raw, std::size_t num_features,
                                         const EnsembleOptions& opt = {},
                                         PipelineDiagnostics* diag = nullptr,
                                         const obs::Context* obs = nullptr);

}  // namespace wefr::core
