#include "core/ranker.h"

#include <cmath>

#include "ml/linear.h"
#include "stats/correlation.h"
#include "stats/information.h"
#include "stats/jindex.h"
#include "stats/ranking.h"

namespace wefr::core {

namespace {

std::vector<double> labels_as_double(std::span<const int> y) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = static_cast<double>(y[i]);
  return out;
}

}  // namespace

std::vector<double> FeatureRanker::ranking(const data::Matrix& x,
                                           std::span<const int> y) const {
  return stats::ranking_from_scores(score(x, y));
}

std::vector<double> PearsonRanker::score(const data::Matrix& x,
                                         std::span<const int> y) const {
  const auto yd = labels_as_double(y);
  std::vector<double> out(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out[c] = std::abs(stats::pearson(x.column(c), yd));
  }
  return out;
}

std::vector<double> SpearmanRanker::score(const data::Matrix& x,
                                          std::span<const int> y) const {
  const auto yd = labels_as_double(y);
  std::vector<double> out(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out[c] = std::abs(stats::spearman(x.column(c), yd));
  }
  return out;
}

std::vector<double> JIndexRanker::score(const data::Matrix& x,
                                        std::span<const int> y) const {
  std::vector<double> out(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out[c] = stats::youden_j_index(x.column(c), y);
  }
  return out;
}

ml::ForestOptions RandomForestRanker::default_options() {
  ml::ForestOptions opt;
  opt.num_trees = 32;
  opt.tree.max_depth = 10;
  opt.tree.min_samples_leaf = 5;
  return opt;
}

std::vector<double> RandomForestRanker::score(const data::Matrix& x,
                                              std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::RandomForest forest;
  forest.fit(x, y, opt_, rng);
  if (use_permutation_) return forest.permutation_importance(x, y, rng);
  return forest.impurity_importance();
}

ml::GbdtOptions XgboostRanker::default_options() {
  ml::GbdtOptions opt;
  opt.num_rounds = 30;
  opt.max_depth = 4;
  opt.learning_rate = 0.25;
  opt.colsample = 0.7;
  return opt;
}

std::vector<double> XgboostRanker::score(const data::Matrix& x,
                                         std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::Gbdt booster;
  booster.fit(x, y, opt_, rng);
  return booster.combined_importance();
}

std::vector<double> MutualInformationRanker::score(const data::Matrix& x,
                                                   std::span<const int> y) const {
  std::vector<double> out(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out[c] = stats::mutual_information(x.column(c), y, bins_);
  }
  return out;
}

std::vector<double> ChiSquareRanker::score(const data::Matrix& x,
                                           std::span<const int> y) const {
  std::vector<double> out(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    out[c] = stats::chi_square_statistic(x.column(c), y, bins_);
  }
  return out;
}

std::vector<double> LogisticRanker::score(const data::Matrix& x,
                                          std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::LogisticRegression model;
  model.fit(x, y, ml::LogisticOptions{}, rng);
  std::vector<double> out(model.coefficients().size());
  for (std::size_t f = 0; f < out.size(); ++f) out[f] = std::abs(model.coefficients()[f]);
  return out;
}

std::vector<std::unique_ptr<FeatureRanker>> make_standard_rankers(std::uint64_t seed) {
  std::vector<std::unique_ptr<FeatureRanker>> out;
  out.push_back(std::make_unique<PearsonRanker>());
  out.push_back(std::make_unique<SpearmanRanker>());
  out.push_back(std::make_unique<JIndexRanker>());
  out.push_back(std::make_unique<RandomForestRanker>(RandomForestRanker::default_options(),
                                                     /*use_permutation=*/false, seed));
  out.push_back(std::make_unique<XgboostRanker>(XgboostRanker::default_options(), seed + 4));
  return out;
}

std::vector<std::unique_ptr<FeatureRanker>> make_extended_rankers(std::uint64_t seed) {
  auto out = make_standard_rankers(seed);
  out.push_back(std::make_unique<MutualInformationRanker>());
  out.push_back(std::make_unique<ChiSquareRanker>());
  out.push_back(std::make_unique<LogisticRanker>(seed + 12));
  return out;
}

}  // namespace wefr::core
