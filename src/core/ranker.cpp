#include "core/ranker.h"

#include <cmath>
#include <functional>

#include "ml/linear.h"
#include "stats/correlation.h"
#include "stats/information.h"
#include "stats/jindex.h"
#include "stats/ranking.h"
#include "util/thread_pool.h"

namespace wefr::core {

namespace {

std::vector<double> labels_as_double(std::span<const int> y) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = static_cast<double>(y[i]);
  return out;
}

/// Per-feature fan-out shared by the statistical rankers: runs
/// `score_col(c)` for every column, over a ThreadPool when asked. Each
/// column writes its own slot, so output is thread-count invariant.
std::vector<double> score_per_column(const data::Matrix& x, std::size_t num_threads,
                                     const std::function<double(std::size_t)>& score_col) {
  std::vector<double> out(x.cols());
  auto run_one = [&](std::size_t c) { out[c] = score_col(c); };
  if (num_threads > 1 && x.cols() > 1) {
    util::ThreadPool pool(std::min(num_threads, x.cols()));
    pool.parallel_for_chunked(x.cols(), 4, run_one);
  } else {
    for (std::size_t c = 0; c < x.cols(); ++c) run_one(c);
  }
  return out;
}

}  // namespace

std::vector<double> FeatureRanker::ranking(const data::Matrix& x,
                                           std::span<const int> y) const {
  return stats::ranking_from_scores(score(x, y));
}

std::vector<double> PearsonRanker::score(const data::Matrix& x,
                                         std::span<const int> y) const {
  const auto yd = labels_as_double(y);
  return score_per_column(x, num_threads_, [&](std::size_t c) {
    return std::abs(stats::pearson(x.column(c), yd));
  });
}

std::vector<double> SpearmanRanker::score(const data::Matrix& x,
                                          std::span<const int> y) const {
  // Rank cache: the label vector is rank-transformed once, not once per
  // feature column (the column itself is ranked inside the scan).
  const auto yr = stats::fractional_ranks(labels_as_double(y));
  return score_per_column(x, num_threads_, [&](std::size_t c) {
    return std::abs(stats::spearman_with_ranks(x.column(c), yr));
  });
}

std::vector<double> JIndexRanker::score(const data::Matrix& x,
                                        std::span<const int> y) const {
  return score_per_column(x, num_threads_, [&](std::size_t c) {
    return stats::youden_j_index(x.column(c), y);
  });
}

ml::ForestOptions RandomForestRanker::default_options() {
  ml::ForestOptions opt;
  opt.num_trees = 32;
  opt.tree.max_depth = 10;
  opt.tree.min_samples_leaf = 5;
  return opt;
}

std::vector<double> RandomForestRanker::score(const data::Matrix& x,
                                              std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::ForestOptions opt = opt_;
  if (opt.num_threads == 0) opt.num_threads = num_threads_;
  ml::RandomForest forest;
  forest.fit(x, y, opt, rng);
  if (use_permutation_)
    return forest.permutation_importance(x, y, rng, /*repeats=*/1, num_threads_);
  return forest.impurity_importance();
}

ml::GbdtOptions XgboostRanker::default_options() {
  ml::GbdtOptions opt;
  opt.num_rounds = 30;
  opt.max_depth = 4;
  opt.learning_rate = 0.25;
  opt.colsample = 0.7;
  return opt;
}

std::vector<double> XgboostRanker::score(const data::Matrix& x,
                                         std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::Gbdt booster;
  booster.fit(x, y, opt_, rng);
  return booster.combined_importance();
}

std::vector<double> MutualInformationRanker::score(const data::Matrix& x,
                                                   std::span<const int> y) const {
  return score_per_column(x, num_threads_, [&](std::size_t c) {
    return stats::mutual_information(x.column(c), y, bins_);
  });
}

std::vector<double> ChiSquareRanker::score(const data::Matrix& x,
                                           std::span<const int> y) const {
  return score_per_column(x, num_threads_, [&](std::size_t c) {
    return stats::chi_square_statistic(x.column(c), y, bins_);
  });
}

std::vector<double> LogisticRanker::score(const data::Matrix& x,
                                          std::span<const int> y) const {
  util::Rng rng(seed_);
  ml::LogisticRegression model;
  model.fit(x, y, ml::LogisticOptions{}, rng);
  std::vector<double> out(model.coefficients().size());
  for (std::size_t f = 0; f < out.size(); ++f) out[f] = std::abs(model.coefficients()[f]);
  return out;
}

std::vector<std::unique_ptr<FeatureRanker>> make_standard_rankers(std::uint64_t seed,
                                                                  std::size_t num_threads) {
  std::vector<std::unique_ptr<FeatureRanker>> out;
  out.push_back(std::make_unique<PearsonRanker>());
  out.push_back(std::make_unique<SpearmanRanker>());
  out.push_back(std::make_unique<JIndexRanker>());
  out.push_back(std::make_unique<RandomForestRanker>(RandomForestRanker::default_options(),
                                                     /*use_permutation=*/false, seed));
  out.push_back(std::make_unique<XgboostRanker>(XgboostRanker::default_options(), seed + 4));
  for (auto& r : out) r->set_num_threads(num_threads);
  return out;
}

std::vector<std::unique_ptr<FeatureRanker>> make_extended_rankers(std::uint64_t seed,
                                                                  std::size_t num_threads) {
  auto out = make_standard_rankers(seed, num_threads);
  out.push_back(std::make_unique<MutualInformationRanker>());
  out.push_back(std::make_unique<ChiSquareRanker>());
  out.push_back(std::make_unique<LogisticRanker>(seed + 12));
  for (auto& r : out) r->set_num_threads(num_threads);
  return out;
}

}  // namespace wefr::core
