#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "changepoint/bayes_cpd.h"
#include "data/fleet.h"

namespace wefr::core {

/// Survival rate as a function of MWI_N (Figure 1 of the paper).
///
/// For each integer value v of MWI_N: the drives whose last-observed
/// MWI_N (as of the cut-off day) rounds to v, and the fraction of them
/// still healthy. Values are sorted ascending.
struct SurvivalCurve {
  std::vector<double> mwi;           ///< distinct MWI_N values, ascending
  std::vector<double> rate;          ///< survival rate per value
  std::vector<std::size_t> total;    ///< drives per value
  /// Drives excluded because their last-observed MWI_N was NaN
  /// (unrepaired missing data) — a degraded-mode tally, not an error.
  std::size_t drives_skipped_nan = 0;

  bool empty() const { return mwi.empty(); }
};

/// Builds the survival curve from fleet state as of `as_of_day`
/// (inclusive; pass fleet.num_days - 1 for the full window). A drive
/// counts as failed when its trouble ticket is on or before that day.
/// Buckets with fewer than `min_count` drives are dropped (they produce
/// unstable rates at the range edges). `bucket_width` groups adjacent
/// MWI_N values (width 1 = per integer value, as in the paper's figure;
/// wider buckets trade resolution for stability on small fleets); the
/// reported MWI_N of a bucket is its lower edge.
///
/// Throws std::invalid_argument when the fleet lacks an MWI_N feature.
SurvivalCurve survival_vs_mwi(const data::FleetData& fleet, int as_of_day,
                              std::size_t min_count = 5, int bucket_width = 1);

/// Mergeable shard-partial form of the survival curve: per-bucket
/// (total, failed) drive tallies keyed by the bucket's lower MWI_N
/// edge. The tallies are integers, so merge() is exactly associative
/// and commutative, and finalize() over merged tallies is bit-identical
/// to survival_vs_mwi over the whole fleet no matter how drives were
/// partitioned — the invariant the sharded driver gates on. (The fixed
/// bucket width is part of the contract: shards must agree on it, and
/// merge() rejects mismatches.)
///
/// survival_vs_mwi itself is implemented on this type, so single-shard
/// and sharded runs share one add/finalize code path by construction.
class SurvivalTally {
 public:
  explicit SurvivalTally(int bucket_width = 1);

  /// Folds one drive's terminal state as of `as_of_day` into the
  /// tallies; `mwi_col` is the fleet's MWI_N column. Drives that start
  /// after the cut-off or have no rows are ignored; a NaN last-observed
  /// MWI_N bumps drives_skipped_nan instead of landing in a bucket.
  void add_drive(const data::DriveSeries& drive, std::size_t mwi_col, int as_of_day);

  /// Bucket-wise integer add. Throws std::invalid_argument when the
  /// bucket widths disagree.
  void merge(const SurvivalTally& other);

  /// Drops buckets under `min_count` and converts to rates.
  SurvivalCurve finalize(std::size_t min_count) const;

  int bucket_width() const { return bucket_width_; }
  std::uint64_t drives_skipped_nan() const { return drives_skipped_nan_; }

  /// bucket lower edge -> (total, failed); exposed for serialization.
  using BucketMap = std::map<int, std::pair<std::uint64_t, std::uint64_t>>;
  const BucketMap& buckets() const { return buckets_; }
  void set_bucket(int lower_edge, std::uint64_t total, std::uint64_t failed) {
    buckets_[lower_edge] = {total, failed};
  }
  void set_drives_skipped_nan(std::uint64_t n) { drives_skipped_nan_ = n; }

 private:
  int bucket_width_ = 1;
  BucketMap buckets_;
  std::uint64_t drives_skipped_nan_ = 0;
};

/// A survival-rate regime shift located on the MWI_N axis.
struct WearChangePoint {
  double mwi_threshold = 0.0;  ///< MWI_N value where the new regime starts
  double zscore = 0.0;
  double probability = 0.0;    ///< posterior change probability
};

/// Runs Bayesian change-point detection over the survival-rate sequence
/// (ordered by ascending MWI_N) and returns the most significant change
/// point mapped back to its MWI_N value, or nullopt when no change is
/// significant (paper: MB1/MB2) or the curve is too short.
std::optional<WearChangePoint> detect_wear_change_point(
    const SurvivalCurve& curve, const changepoint::CpdOptions& opt = {});

}  // namespace wefr::core
