#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/wefr.h"

namespace wefr::core {

/// Cross-model ranking-transfer evaluation: how well does one drive
/// model's WEFR feature selection carry over to another model?
///
/// The paper selects features per drive model; a heterogeneous fleet
/// raises the operational question of whether a new (or
/// under-represented) model can borrow an established model's
/// selection. Two measurements answer it:
///
///  - ranking agreement: the normalized Kendall distance between the
///    two models' ensemble rankings restricted to their shared feature
///    namespace (0 = identical order, 1 = reversed);
///  - predictive transfer: the day-level test AUC on the target fleet
///    of a model trained with the SOURCE's selected features
///    (name-mapped onto the target schema) versus one trained with the
///    target's own selection. `auc_delta = native - transferred`; small
///    deltas mean the selection transfers.
struct RankingTransferResult {
  std::string source_model;
  std::string target_model;
  /// Feature names present on both models, in source order.
  std::vector<std::string> shared_features;
  /// Normalized Kendall distance over shared_features; NaN when fewer
  /// than two features are shared.
  double kendall_distance = 0.0;
  /// Source-selected features with no column on the target (these
  /// simply cannot transfer; each is tagged in the diagnostics).
  std::size_t missing_on_target = 0;
  /// Source-selected features that did map onto the target schema.
  std::size_t transferred_features = 0;
  /// Day-level test AUC of the target's own selection on the target.
  double auc_native = 0.0;
  /// Day-level test AUC of the source's selection on the target.
  double auc_transferred = 0.0;
  /// auc_native - auc_transferred (positive = transfer costs accuracy).
  double auc_delta = 0.0;
  /// True when any measurement had to be skipped (no shared features,
  /// single-class test labels, ...); the reasons are in the diag sink.
  bool degraded = false;
};

/// Evaluates how `source_sel` (WEFR output on `source`) transfers to
/// `target`. Both fleets must carry their own day windows; training
/// uses target days [0, train_day_end], AUC the days after it (falling
/// back, tagged, to the last 30 in-sample days when no test days
/// remain). Total on degenerate inputs: unmappable selections,
/// single-class test windows, and failed trainings degrade to NaN
/// metrics with `degraded` set and the reason noted in `diag` —
/// never an exception.
RankingTransferResult evaluate_ranking_transfer(
    const data::FleetData& source, const WefrResult& source_sel,
    const data::FleetData& target, const WefrResult& target_sel,
    int train_day_end, const ExperimentConfig& cfg,
    PipelineDiagnostics* diag = nullptr, const obs::Context* obs = nullptr);

}  // namespace wefr::core
