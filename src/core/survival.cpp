#include "core/survival.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace wefr::core {

SurvivalTally::SurvivalTally(int bucket_width) : bucket_width_(bucket_width) {
  if (bucket_width < 1) throw std::invalid_argument("SurvivalTally: bucket_width < 1");
}

void SurvivalTally::add_drive(const data::DriveSeries& drive, std::size_t mwi_col,
                              int as_of_day) {
  if (drive.first_day > as_of_day || drive.num_days() == 0) return;
  const int last = std::min(as_of_day, drive.last_day());
  const std::size_t local = static_cast<std::size_t>(last - drive.first_day);
  const double mwi_value = drive.values(local, mwi_col);
  if (std::isnan(mwi_value)) {
    // Unrepaired missing wear indicator: the drive cannot be placed
    // on the curve (lround(NaN) is undefined behavior anyway).
    ++drives_skipped_nan_;
    return;
  }
  const int raw = static_cast<int>(std::lround(mwi_value));
  const int v = raw / bucket_width_ * bucket_width_;
  auto& [total, failed] = buckets_[v];
  ++total;
  if (drive.failed() && drive.fail_day <= as_of_day) ++failed;
}

void SurvivalTally::merge(const SurvivalTally& other) {
  if (other.bucket_width_ != bucket_width_)
    throw std::invalid_argument("SurvivalTally::merge: bucket_width mismatch");
  for (const auto& [v, counts] : other.buckets_) {
    auto& [total, failed] = buckets_[v];
    total += counts.first;
    failed += counts.second;
  }
  drives_skipped_nan_ += other.drives_skipped_nan_;
}

SurvivalCurve SurvivalTally::finalize(std::size_t min_count) const {
  SurvivalCurve curve;
  curve.drives_skipped_nan = static_cast<std::size_t>(drives_skipped_nan_);
  for (const auto& [v, counts] : buckets_) {
    const auto [total, failed] = counts;
    if (total < min_count) continue;
    curve.mwi.push_back(static_cast<double>(v));
    curve.rate.push_back(static_cast<double>(total - failed) / static_cast<double>(total));
    curve.total.push_back(static_cast<std::size_t>(total));
  }
  return curve;
}

SurvivalCurve survival_vs_mwi(const data::FleetData& fleet, int as_of_day,
                              std::size_t min_count, int bucket_width) {
  const int mwi_col = fleet.feature_index("MWI_N");
  if (mwi_col < 0) throw std::invalid_argument("survival_vs_mwi: fleet lacks MWI_N");
  if (as_of_day < 0) throw std::invalid_argument("survival_vs_mwi: negative as_of_day");
  if (bucket_width < 1) throw std::invalid_argument("survival_vs_mwi: bucket_width < 1");

  SurvivalTally tally(bucket_width);
  for (const auto& drive : fleet.drives)
    tally.add_drive(drive, static_cast<std::size_t>(mwi_col), as_of_day);
  return tally.finalize(min_count);
}

std::optional<WearChangePoint> detect_wear_change_point(const SurvivalCurve& curve,
                                                        const changepoint::CpdOptions& opt) {
  // Too few distinct MWI_N values (paper: MB1/MB2's narrow wear band)
  // cannot support a meaningful regime shift.
  if (curve.mwi.size() < 8) return std::nullopt;
  const auto cp = changepoint::most_significant_change(curve.rate, opt);
  if (!cp.has_value()) return std::nullopt;
  WearChangePoint out;
  out.mwi_threshold = curve.mwi[cp->index];
  out.zscore = cp->zscore;
  out.probability = cp->probability;
  return out;
}

}  // namespace wefr::core
