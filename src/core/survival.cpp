#include "core/survival.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace wefr::core {

SurvivalCurve survival_vs_mwi(const data::FleetData& fleet, int as_of_day,
                              std::size_t min_count, int bucket_width) {
  const int mwi_col = fleet.feature_index("MWI_N");
  if (mwi_col < 0) throw std::invalid_argument("survival_vs_mwi: fleet lacks MWI_N");
  if (as_of_day < 0) throw std::invalid_argument("survival_vs_mwi: negative as_of_day");
  if (bucket_width < 1) throw std::invalid_argument("survival_vs_mwi: bucket_width < 1");

  // bucket lower edge -> (total, failed)
  std::map<int, std::pair<std::size_t, std::size_t>> buckets;
  SurvivalCurve curve;
  for (const auto& drive : fleet.drives) {
    if (drive.first_day > as_of_day || drive.num_days() == 0) continue;
    const int last = std::min(as_of_day, drive.last_day());
    const std::size_t local = static_cast<std::size_t>(last - drive.first_day);
    const double mwi_value = drive.values(local, static_cast<std::size_t>(mwi_col));
    if (std::isnan(mwi_value)) {
      // Unrepaired missing wear indicator: the drive cannot be placed
      // on the curve (lround(NaN) is undefined behavior anyway).
      ++curve.drives_skipped_nan;
      continue;
    }
    const int raw = static_cast<int>(std::lround(mwi_value));
    const int v = raw / bucket_width * bucket_width;
    auto& [total, failed] = buckets[v];
    ++total;
    if (drive.failed() && drive.fail_day <= as_of_day) ++failed;
  }

  for (const auto& [v, counts] : buckets) {
    const auto [total, failed] = counts;
    if (total < min_count) continue;
    curve.mwi.push_back(static_cast<double>(v));
    curve.rate.push_back(static_cast<double>(total - failed) / static_cast<double>(total));
    curve.total.push_back(total);
  }
  return curve;
}

std::optional<WearChangePoint> detect_wear_change_point(const SurvivalCurve& curve,
                                                        const changepoint::CpdOptions& opt) {
  // Too few distinct MWI_N values (paper: MB1/MB2's narrow wear band)
  // cannot support a meaningful regime shift.
  if (curve.mwi.size() < 8) return std::nullopt;
  const auto cp = changepoint::most_significant_change(curve.rate, opt);
  if (!cp.has_value()) return std::nullopt;
  WearChangePoint out;
  out.mwi_threshold = curve.mwi[cp->index];
  out.zscore = cp->zscore;
  out.probability = cp->probability;
  return out;
}

}  // namespace wefr::core
