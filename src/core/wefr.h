#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "changepoint/bayes_cpd.h"
#include "core/auto_select.h"
#include "core/diagnostics.h"
#include "core/ensemble.h"
#include "core/survival.h"
#include "data/dataset.h"
#include "data/fleet.h"

namespace wefr::obs {
struct Context;
struct RunReport;
}

namespace wefr::core {

/// Controls for the full WEFR algorithm (Algorithm 1 of the paper).
struct WefrOptions {
  EnsembleOptions ensemble;
  AutoSelectOptions auto_select;
  changepoint::CpdOptions cpd;
  /// Lines 9-15 of Algorithm 1: detect the MWI_N change point and
  /// re-select features per wear group. false = "WEFR (No update)".
  bool update_with_wearout = true;
  /// A wear group re-selects its own features only when it holds at
  /// least this many positive samples; otherwise it inherits the
  /// whole-model selection (robustness guard for tiny groups).
  std::size_t min_group_positives = 30;
  /// Seed for the stochastic rankers (Random Forest / XGBoost).
  std::uint64_t ranker_seed = 7;
  /// Worker threads for the whole selection hot path: ranker-level
  /// fan-out, each ranker's internal per-feature/per-tree fan-out, and
  /// the F1/F2/F3 complexity scan — including the per-wear-group
  /// re-selection of Lines 9-15. Applied wherever the nested
  /// `ensemble.num_threads` / `auto_select.num_threads` knobs are left
  /// at 0; results are identical for any thread count. 0 = sequential.
  std::size_t num_threads = 0;
  /// Survival-curve construction for change-point detection: minimum
  /// drives per MWI_N bucket, and bucket width (1 = per integer value
  /// as in the paper; wider stabilizes small fleets).
  std::size_t survival_min_count = 5;
  int survival_bucket_width = 1;
};

/// Feature selection for one population (whole model, or one wear group).
struct GroupSelection {
  std::string label;                       ///< "all", "low", or "high"
  EnsembleResult ensemble;                 ///< preliminary rankings + pruning
  AutoSelectResult selection;              ///< automated count choice
  std::vector<std::size_t> selected;       ///< selected base-feature columns
  std::vector<std::string> selected_names; ///< same, as names
  std::size_t num_samples = 0;
  std::size_t num_positives = 0;
  /// True when this group fell back to the whole-model selection
  /// because it had too few positives.
  bool fallback = false;
  /// True when the sample population was too degenerate to rank at all
  /// (empty, or single-class labels): the selection keeps every feature
  /// and the reason is recorded in the PipelineDiagnostics.
  bool degraded = false;
};

/// Full WEFR output for one drive model.
struct WefrResult {
  GroupSelection all;                       ///< Lines 1-8 on the full population
  SurvivalCurve survival;                   ///< survival-rate-vs-MWI_N curve
  std::optional<WearChangePoint> change_point;
  std::optional<GroupSelection> low;        ///< MWI_N <= threshold
  std::optional<GroupSelection> high;       ///< MWI_N >  threshold
};

/// Runs the ensemble ranking + automated selection (Lines 1-8) on one
/// sample population.
///
/// Total on degenerate populations: an empty or single-class sample set
/// cannot be ranked, so the selection degrades to "keep every feature"
/// with `degraded` set and the reason noted in `diag`. Passing a `diag`
/// sink opts into full degraded-mode semantics; without one an empty
/// sample set still throws std::invalid_argument (the historical
/// strict contract for programmatic callers).
///
/// `obs` (nullable) wraps the call in a "select:<label>" span and flows
/// into the ensemble and auto_select stages beneath it.
/// `precomputed_scores` (nullable) substitutes raw ranker score
/// vectors computed elsewhere — the sharded driver's worker processes
/// — for the in-process ranker run; finalization flows through
/// ensemble_rank_from_scores, the same code ensemble_rank uses, so a
/// correct precomputed set reproduces the in-process result bitwise.
GroupSelection select_features_for(const data::Dataset& samples, const WefrOptions& opt,
                                   const std::string& label = "all",
                                   PipelineDiagnostics* diag = nullptr,
                                   const obs::Context* obs = nullptr,
                                   const RankerRawScores* precomputed_scores = nullptr);

/// Runs full WEFR (Algorithm 1). `train` must be a base-feature sample
/// set (no window expansion) whose feature names match `fleet`'s; the
/// survival curve is computed from fleet state as of `train_day_end`
/// (no test-period leakage). When a significant change point exists and
/// updating is enabled, samples are grouped by their MWI_N value on the
/// sample day and features are re-selected per group.
///
/// Every stage is total on degenerate inputs (constant features,
/// single-class labels, all-NaN wear indicators, populations too small
/// for change-point detection): the affected stage substitutes a tagged
/// fallback — neutral ranking, keep-everything selection, skipped
/// wear-out split — and records it in `diag` when given.
///
/// `obs` (nullable) wraps the run in a "run_wefr" span with children
/// for the whole-model selection ("select:all"), the survival-curve
/// construction ("survival"), change-point detection ("cpd"), and the
/// per-group re-selections ("select:low" / "select:high").
/// Precomputed inputs a sharded run substitutes into run_wefr. Both
/// are optional; anything absent is computed in-process. The contract
/// for both is bit-identity: a merged SurvivalTally finalizes to
/// exactly what survival_vs_mwi computes, and worker-scored ranker
/// vectors finalize to exactly what the in-process rankers produce, so
/// run_wefr's control flow (degradation, fallbacks, diagnostics)
/// stays byte-for-byte the single-process oracle.
struct WefrRunHooks {
  /// Returns raw ranker scores for the population labeled `label`
  /// ("all" / "low" / "high") over `samples`, or nullptr to score
  /// in-process (the safety valve when a worker's partition disagrees).
  std::function<const RankerRawScores*(const std::string& label,
                                       const data::Dataset& samples)>
      ranker_scores;
  /// Survival curve finalized from merged shard tallies.
  const SurvivalCurve* survival = nullptr;
};

WefrResult run_wefr(const data::FleetData& fleet, const data::Dataset& train,
                    int train_day_end, const WefrOptions& opt = {},
                    PipelineDiagnostics* diag = nullptr,
                    const obs::Context* obs = nullptr,
                    const WefrRunHooks* hooks = nullptr);

/// Copies the selection outcome into `report`: one selection group per
/// population ranked ("all" plus "low"/"high" when the wear-out update
/// ran) and the detected change point, if any.
void fill_run_report(const WefrResult& result, obs::RunReport& report);

}  // namespace wefr::core
