#pragma once

#include <optional>
#include <vector>

#include "changepoint/online_cpd.h"
#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/fleet.h"

namespace wefr::core {

/// Controls for the operational monitoring loop (Section IV-D: WEFR
/// "periodically checks the change points of MWI_N (one week in our
/// case) and updates the selected features").
struct MonitorOptions {
  /// Days between change-point re-checks / feature updates.
  int check_interval_days = 7;
  /// Days of history required before the first model is trained.
  int warmup_days = 120;
  /// Retrain the predictor on every check even when the selected
  /// features did not change (tracks drift); when false, retraining
  /// happens only on feature-set changes.
  bool retrain_every_check = true;
  /// Alarm when the predicted failure probability reaches this value.
  /// With `target_recall` set this is only the starting value — each
  /// check recalibrates it.
  double alarm_threshold = 0.5;
  /// When positive, the alarm threshold is recalibrated at every check
  /// to the fixed-recall operating point measured on the validation
  /// slice (the trailing `validation_frac` of the training window) —
  /// the paper's "subject to a fixed recall" deployment policy.
  double target_recall = 0.0;
  double validation_frac = 0.2;
  /// Online drift watch: stream the day-over-day delta of the active
  /// fleet's mean MWI_N through an OnlineChangePointDetector every day
  /// the monitor advances. The level series drifts slowly under normal
  /// wear, so its first difference is near-stationary — a population
  /// change (churn wave, cohort with a shifted wear distribution)
  /// shows up as a level jump in the delta stream. A detection pulls
  /// the next scheduled re-check forward to the following day instead
  /// of waiting out the weekly cadence.
  bool online_drift_check = false;
  /// Detection fires when P(run length <= 3) reaches this value.
  double drift_probability_threshold = 0.6;
  /// Minimum days between drift-triggered re-checks (the posterior
  /// keeps short-run mass for a few days after a real change).
  int drift_cooldown_days = 14;
  changepoint::CpdOptions drift_cpd;
  ExperimentConfig experiment;
  WefrOptions wefr;
};

/// A decommission recommendation emitted by the monitor.
struct Alarm {
  std::size_t drive_index = 0;
  int day = 0;          ///< day the alarm fired
  double score = 0.0;   ///< predicted failure probability
};

/// One feature-update event (for audit logs / Exp#3-style analysis).
struct UpdateEvent {
  int day = 0;
  std::optional<double> wear_threshold;
  std::vector<std::string> selected_all;
  std::vector<std::string> selected_low;
  std::vector<std::string> selected_high;
  bool features_changed = false;
  /// True when the online drift watch pulled this check forward.
  bool drift_triggered = false;
  /// The detector's change probability at the triggering observation.
  double change_probability = 0.0;
};

/// One firing of the online drift watch.
struct DriftDetection {
  int day = 0;
  double probability = 0.0;
};

/// The paper's deployment loop as a reusable component: feed it a fleet
/// and step it through time; it re-checks the MWI_N change point on the
/// configured cadence, re-selects features per wear group, retrains the
/// wear-routed Random Forest, and emits first-alarm decommission
/// recommendations. Each drive alarms at most once (the paper evaluates
/// on the first prediction).
///
/// The monitor only ever reads fleet data up to the day it has been
/// stepped to — no lookahead into future observations.
class FleetMonitor {
 public:
  FleetMonitor(const data::FleetData& fleet, MonitorOptions options);

  /// Advances the monitor to `day` (exclusive of future days), running
  /// any scheduled checks and scoring the elapsed days. Returns the
  /// alarms raised in the advanced interval, in day order. `day` must
  /// not decrease across calls.
  std::vector<Alarm> advance_to(int day);

  /// Runs the whole observation window; convenience for offline replay.
  std::vector<Alarm> run_to_end();

  /// Update (re-selection) events seen so far.
  const std::vector<UpdateEvent>& updates() const { return updates_; }

  /// Latest WEFR selection (empty optional before the first check).
  const std::optional<WefrResult>& selection() const { return selection_; }

  /// Day the monitor has been advanced to.
  int current_day() const { return current_day_; }

  /// The alarm threshold currently in force (recalibrated when
  /// `target_recall` is set).
  double active_threshold() const { return threshold_; }

  /// Firings of the online drift watch (empty unless
  /// `online_drift_check` is set), in day order.
  const std::vector<DriftDetection>& drift_detections() const {
    return drift_detections_;
  }

 private:
  void run_check(int day);
  double active_mean_mwi(int day) const;

  const data::FleetData& fleet_;
  MonitorOptions opt_;
  int current_day_ = 0;
  int next_check_day_ = 0;
  double threshold_ = 0.5;
  std::optional<WefrResult> selection_;
  std::optional<WefrPredictor> predictor_;
  std::vector<UpdateEvent> updates_;
  std::vector<bool> alarmed_;
  // Online drift watch state.
  int mwi_col_ = -1;
  changepoint::OnlineChangePointDetector drift_cpd_;
  double last_mean_mwi_ = 0.0;
  bool have_last_mwi_ = false;
  int last_drift_day_ = -1;
  bool drift_pending_ = false;
  double drift_probability_ = 0.0;
  std::vector<DriftDetection> drift_detections_;
};

}  // namespace wefr::core
