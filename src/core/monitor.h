#pragma once

#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "core/wefr.h"
#include "data/fleet.h"

namespace wefr::core {

/// Controls for the operational monitoring loop (Section IV-D: WEFR
/// "periodically checks the change points of MWI_N (one week in our
/// case) and updates the selected features").
struct MonitorOptions {
  /// Days between change-point re-checks / feature updates.
  int check_interval_days = 7;
  /// Days of history required before the first model is trained.
  int warmup_days = 120;
  /// Retrain the predictor on every check even when the selected
  /// features did not change (tracks drift); when false, retraining
  /// happens only on feature-set changes.
  bool retrain_every_check = true;
  /// Alarm when the predicted failure probability reaches this value.
  /// With `target_recall` set this is only the starting value — each
  /// check recalibrates it.
  double alarm_threshold = 0.5;
  /// When positive, the alarm threshold is recalibrated at every check
  /// to the fixed-recall operating point measured on the validation
  /// slice (the trailing `validation_frac` of the training window) —
  /// the paper's "subject to a fixed recall" deployment policy.
  double target_recall = 0.0;
  double validation_frac = 0.2;
  ExperimentConfig experiment;
  WefrOptions wefr;
};

/// A decommission recommendation emitted by the monitor.
struct Alarm {
  std::size_t drive_index = 0;
  int day = 0;          ///< day the alarm fired
  double score = 0.0;   ///< predicted failure probability
};

/// One feature-update event (for audit logs / Exp#3-style analysis).
struct UpdateEvent {
  int day = 0;
  std::optional<double> wear_threshold;
  std::vector<std::string> selected_all;
  std::vector<std::string> selected_low;
  std::vector<std::string> selected_high;
  bool features_changed = false;
};

/// The paper's deployment loop as a reusable component: feed it a fleet
/// and step it through time; it re-checks the MWI_N change point on the
/// configured cadence, re-selects features per wear group, retrains the
/// wear-routed Random Forest, and emits first-alarm decommission
/// recommendations. Each drive alarms at most once (the paper evaluates
/// on the first prediction).
///
/// The monitor only ever reads fleet data up to the day it has been
/// stepped to — no lookahead into future observations.
class FleetMonitor {
 public:
  FleetMonitor(const data::FleetData& fleet, MonitorOptions options);

  /// Advances the monitor to `day` (exclusive of future days), running
  /// any scheduled checks and scoring the elapsed days. Returns the
  /// alarms raised in the advanced interval, in day order. `day` must
  /// not decrease across calls.
  std::vector<Alarm> advance_to(int day);

  /// Runs the whole observation window; convenience for offline replay.
  std::vector<Alarm> run_to_end();

  /// Update (re-selection) events seen so far.
  const std::vector<UpdateEvent>& updates() const { return updates_; }

  /// Latest WEFR selection (empty optional before the first check).
  const std::optional<WefrResult>& selection() const { return selection_; }

  /// Day the monitor has been advanced to.
  int current_day() const { return current_day_; }

  /// The alarm threshold currently in force (recalibrated when
  /// `target_recall` is set).
  double active_threshold() const { return threshold_; }

 private:
  void run_check(int day);

  const data::FleetData& fleet_;
  MonitorOptions opt_;
  int current_day_ = 0;
  int next_check_day_ = 0;
  double threshold_ = 0.5;
  std::optional<WefrResult> selection_;
  std::optional<WefrPredictor> predictor_;
  std::vector<UpdateEvent> updates_;
  std::vector<bool> alarmed_;
};

}  // namespace wefr::core
