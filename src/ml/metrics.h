#pragma once

#include <span>
#include <vector>

namespace wefr::ml {

/// Binary confusion counts.
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
};

/// Precision = tp / (tp + fp); 0 when no positive predictions.
double precision(const Confusion& c);
/// Recall = tp / (tp + fn); 0 when no actual positives.
double recall(const Confusion& c);
/// F-beta score; the paper reports F0.5 (beta = 0.5, precision weighted
/// twice as heavily as recall). 0 when precision and recall are both 0.
double fbeta(const Confusion& c, double beta);
/// Convenience F0.5.
double f05(const Confusion& c);
/// Accuracy = (tp + tn) / total; 0 on empty confusion.
double accuracy(const Confusion& c);

/// Confusion at a probability threshold: predict positive when
/// score >= threshold.
Confusion confusion_at_threshold(std::span<const double> scores, std::span<const int> labels,
                                 double threshold);

/// Largest threshold whose recall is still >= `target_recall` — the
/// precision-maximizing operating point at a fixed recall, matching the
/// paper's "subject to a fixed recall" comparisons. Returns 0 when even
/// threshold 0 misses the target (predict-everything fallback), and NaN
/// when the labels hold no positives at all — recall is undefined there,
/// and a silent 0 would mean "alarm on every drive".
double threshold_for_recall(std::span<const double> scores, std::span<const int> labels,
                            double target_recall);

/// One point of a precision-recall sweep.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f05 = 0.0;
};

/// Precision/recall/F0.5 at every distinct score cut (descending
/// thresholds, so recall is non-decreasing along the result).
std::vector<PrPoint> pr_sweep(std::span<const double> scores, std::span<const int> labels);

/// Area under the ROC curve via the rank-sum (Mann-Whitney) identity,
/// ties handled by average ranks. Returns NaN when either class is
/// empty (including empty input): the ROC curve is undefined without
/// both classes, and a silent 0.5 reads as "coin-flip classifier"
/// rather than "unanswerable question".
double auc(std::span<const double> scores, std::span<const int> labels);

/// Mergeable shard-partial AUC: per-class score tallies whose merge is
/// a sorted-sequence union, finalized by one canonical midrank walk in
/// ascending score order. Because the finalize order is a pure
/// function of the merged multiset (never of insertion or shard
/// order), the result is bit-identical at any shard count — unlike
/// feeding concatenated score spans to auc(), whose rank_sum
/// accumulates in input order. finalize() agrees with auc() to
/// accumulation-order rounding (~1 ulp) and is NaN on single-class
/// inputs, matching auc()'s contract.
class AucPartial {
 public:
  void add(double score, int label);
  void merge(const AucPartial& other);
  double finalize() const;

  std::size_t num_pos() const { return pos_.size(); }
  std::size_t num_neg() const { return neg_.size(); }
  /// Sorted-ascending tallies (canonical form; exposed for serialization).
  const std::vector<double>& pos_scores() const;
  const std::vector<double>& neg_scores() const;
  void set_scores(std::vector<double> pos, std::vector<double> neg);

 private:
  void canonicalize() const;
  mutable std::vector<double> pos_, neg_;
  mutable bool sorted_ = true;
};

}  // namespace wefr::ml
