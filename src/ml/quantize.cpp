#include "ml/quantize.h"

#include <algorithm>
#include <stdexcept>

namespace wefr::ml {

void QuantizedDataset::build(const data::Matrix& x, std::size_t max_bins) {
  if (x.rows() == 0 || x.cols() == 0)
    throw std::invalid_argument("QuantizedDataset::build: empty matrix");
  max_bins = std::clamp<std::size_t>(max_bins, 2, 256);

  rows_ = x.rows();
  cols_ = x.cols();
  codes_.assign(rows_ * cols_, 0);
  lower_.assign(cols_, {});
  upper_.assign(cols_, {});

  std::vector<double> sorted(rows_);
  for (std::size_t f = 0; f < cols_; ++f) {
    for (std::size_t r = 0; r < rows_; ++r) sorted[r] = x(r, f);
    std::sort(sorted.begin(), sorted.end());

    auto& lo = lower_[f];
    auto& hi = upper_[f];

    std::size_t uniques = 1;
    for (std::size_t r = 1; r < rows_; ++r) {
      if (sorted[r] != sorted[r - 1]) ++uniques;
    }

    if (uniques <= max_bins) {
      // One bin per distinct value: histogram splits reproduce the
      // exact splitter bit-for-bit on this feature.
      lo.reserve(uniques);
      hi.reserve(uniques);
      for (std::size_t r = 0; r < rows_; ++r) {
        if (r == 0 || sorted[r] != sorted[r - 1]) {
          lo.push_back(sorted[r]);
          hi.push_back(sorted[r]);
        }
      }
    } else {
      // Equal-frequency bins: close a bin once it holds ~rows/max_bins
      // values and the next value differs (ties never straddle bins).
      const std::size_t target = (rows_ + max_bins - 1) / max_bins;
      std::size_t bin_start = 0;
      for (std::size_t r = 0; r < rows_; ++r) {
        const bool last = r + 1 == rows_;
        const bool boundary = !last && sorted[r] != sorted[r + 1];
        const bool full = r + 1 - bin_start >= target;
        const bool budget_left = lo.size() + 1 < max_bins;
        if (last || (boundary && full && budget_left)) {
          lo.push_back(sorted[bin_start]);
          hi.push_back(sorted[r]);
          bin_start = r + 1;
        }
      }
      // Budget exhaustion folds the tail into the final bin above.
    }

    // Code every row by binary search over the bin upper edges.
    std::uint8_t* col = codes_.data() + f * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double v = x(r, f);
      const auto it = std::lower_bound(hi.begin(), hi.end(), v);
      col[r] = static_cast<std::uint8_t>(it == hi.end() ? hi.size() - 1
                                                        : static_cast<std::size_t>(it - hi.begin()));
    }
  }
}

}  // namespace wefr::ml
