#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/matrix.h"
#include "util/rng.h"

namespace wefr::ml {

/// Training controls for a single CART classification tree.
struct TreeOptions {
  int max_depth = 13;             ///< paper setting for the RF predictor
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 means all, otherwise a
  /// random subset of this size is drawn per node (used by the forest).
  std::size_t max_features = 0;
};

/// Binary CART classification tree (Gini impurity, axis-aligned splits,
/// exact greedy split search). Produces calibrated leaf probabilities
/// (positive-class fraction) and accumulates impurity-decrease feature
/// importance during training.
class DecisionTree {
 public:
  /// Fits the tree on rows `sample_idx` of `x` (indices may repeat — the
  /// forest passes bootstrap samples). `rng` is consumed only when
  /// `opt.max_features > 0`.
  void fit(const data::Matrix& x, std::span<const int> y,
           std::span<const std::size_t> sample_idx, const TreeOptions& opt, util::Rng& rng);

  /// Convenience fit over all rows.
  void fit(const data::Matrix& x, std::span<const int> y, const TreeOptions& opt,
           util::Rng& rng);

  /// Probability that `row` belongs to the positive class.
  double predict_proba(std::span<const double> row) const;

  /// Per-feature total weighted Gini decrease accumulated over the
  /// tree's splits; length = number of training features. Unnormalized.
  const std::vector<double>& impurity_importance() const { return importance_; }

  /// Number of nodes (0 before fit).
  std::size_t node_count() const { return nodes_.size(); }
  /// Depth of the deepest leaf (0 for a single-leaf tree).
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Writes the tree as one line per node (see RandomForest::save).
  void save(std::ostream& os) const;
  /// Restores a tree written by save(); throws std::runtime_error on
  /// malformed input.
  void load(std::istream& is);

 private:
  struct Node {
    // Leaf when feature < 0.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double prob = 0.0;
    std::int32_t depth = 0;
  };

  std::int32_t build(const data::Matrix& x, std::span<const int> y,
                     std::vector<std::size_t>& idx, std::size_t begin, std::size_t end,
                     int depth, const TreeOptions& opt, util::Rng& rng,
                     std::size_t n_total);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace wefr::ml
