#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/matrix.h"
#include "util/rng.h"

namespace wefr::ml {

class FlatForest;
class QuantizedDataset;

/// How a tree searches for split thresholds.
enum class SplitMethod {
  /// Per fit, pick histogram when the sample count reaches
  /// `TreeOptions::histogram_cutoff`, exact below it.
  kAuto,
  /// Sort every candidate feature's node values — O(F n log n) per node.
  kExact,
  /// Accumulate per-bin histograms over quantized codes — O(F (n + bins))
  /// per node, no per-node sorting.
  kHistogram,
};

/// Training controls for a single CART classification tree.
struct TreeOptions {
  int max_depth = 13;             ///< paper setting for the RF predictor
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 means all, otherwise a
  /// random subset of this size is drawn per node (used by the forest).
  std::size_t max_features = 0;
  /// Split-search strategy; kAuto keeps small fits bit-identical to the
  /// historical exact behaviour while large fits get histogram speed.
  SplitMethod split_method = SplitMethod::kAuto;
  /// Histogram bin budget per feature (clamped to [2, 256]).
  std::size_t max_bins = 256;
  /// kAuto switches to histogram at this many fit samples.
  std::size_t histogram_cutoff = 2048;
  /// In histogram mode, nodes with fewer samples than this fall back to
  /// the exact sort-based search: sorting is cheap on small nodes and
  /// recovers the fine-grained thresholds global bins cannot offer deep
  /// in the tree. 0 disables the fallback.
  std::size_t exact_node_cutoff = 512;
};

/// Binary CART classification tree (Gini impurity, axis-aligned splits,
/// exact greedy or histogram split search). Produces calibrated leaf
/// probabilities (positive-class fraction) and accumulates
/// impurity-decrease feature importance during training.
class DecisionTree {
 public:
  /// Fits the tree on rows `sample_idx` of `x` (indices may repeat — the
  /// forest passes bootstrap samples). `rng` is consumed only when
  /// `opt.max_features > 0`. When histogram splitting is in effect a
  /// caller that already quantized `x` (the forest quantizes once and
  /// shares across trees) passes it as `quantized`; otherwise the tree
  /// quantizes locally.
  void fit(const data::Matrix& x, std::span<const int> y,
           std::span<const std::size_t> sample_idx, const TreeOptions& opt, util::Rng& rng,
           const QuantizedDataset* quantized = nullptr);

  /// Convenience fit over all rows.
  void fit(const data::Matrix& x, std::span<const int> y, const TreeOptions& opt,
           util::Rng& rng);

  /// Probability that `row` belongs to the positive class.
  double predict_proba(std::span<const double> row) const;

  /// Per-feature total weighted Gini decrease accumulated over the
  /// tree's splits; length = number of training features. Unnormalized.
  const std::vector<double>& impurity_importance() const { return importance_; }

  /// Number of nodes (0 before fit).
  std::size_t node_count() const { return nodes_.size(); }
  /// Depth of the deepest leaf (0 for a single-leaf tree).
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Writes the tree as one line per node (see RandomForest::save).
  void save(std::ostream& os) const;
  /// Restores a tree written by save(); throws std::runtime_error on
  /// malformed input.
  void load(std::istream& is);

  /// Buffers reused across every node of one fit (defined in tree.cpp;
  /// public so the file-local split helpers can name it).
  struct BuildContext;

 private:
  /// The flattening pass (ml::FlatForest) recompiles nodes_ into SoA
  /// form; the recursive walk above stays the equivalence oracle.
  friend class FlatForest;

  struct Node {
    // Leaf when feature < 0.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double prob = 0.0;
    std::int32_t depth = 0;
  };

  std::int32_t build(BuildContext& ctx, std::vector<std::size_t>& idx, std::size_t begin,
                     std::size_t end, int depth);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace wefr::ml
