#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wefr::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const data::Matrix& x, std::span<const int> y,
                             const LogisticOptions& opt, util::Rng& rng) {
  if (x.rows() == 0 || x.rows() != y.size())
    throw std::invalid_argument("LogisticRegression::fit: shape mismatch or empty");
  if (opt.batch_size == 0 || opt.epochs == 0)
    throw std::invalid_argument("LogisticRegression::fit: bad options");

  const std::size_t n = x.rows();
  const std::size_t nf = x.cols();

  // Standardization statistics.
  mean_.assign(nf, 0.0);
  scale_.assign(nf, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = x.row(i);
    for (std::size_t f = 0; f < nf; ++f) mean_[f] += row[f];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(nf, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = x.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = row[f] - mean_[f];
      var[f] += d * d;
    }
  }
  for (std::size_t f = 0; f < nf; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(n));
    scale_[f] = sd > 0.0 ? 1.0 / sd : 0.0;
  }

  weights_.assign(nf, 0.0);
  bias_ = 0.0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> grad(nf);

  for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    rng.shuffle(order);
    const double lr = opt.learning_rate / (1.0 + opt.decay * static_cast<double>(epoch));
    for (std::size_t start = 0; start < n; start += opt.batch_size) {
      const std::size_t end = std::min(n, start + opt.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_bias = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        auto row = x.row(i);
        double z = bias_;
        for (std::size_t f = 0; f < nf; ++f) {
          z += weights_[f] * (row[f] - mean_[f]) * scale_[f];
        }
        const double err = sigmoid(z) - static_cast<double>(y[i]);
        for (std::size_t f = 0; f < nf; ++f) {
          grad[f] += err * (row[f] - mean_[f]) * scale_[f];
        }
        grad_bias += err;
      }
      const double inv_b = 1.0 / static_cast<double>(end - start);
      for (std::size_t f = 0; f < nf; ++f) {
        weights_[f] -= lr * (grad[f] * inv_b + opt.l2 * weights_[f]);
      }
      bias_ -= lr * grad_bias * inv_b;
    }
  }
}

double LogisticRegression::predict_proba(std::span<const double> row) const {
  if (weights_.empty()) throw std::logic_error("LogisticRegression: not trained");
  double z = bias_;
  for (std::size_t f = 0; f < weights_.size(); ++f) {
    z += weights_[f] * (row[f] - mean_[f]) * scale_[f];
  }
  return sigmoid(z);
}

std::vector<double> LogisticRegression::predict_proba(const data::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_proba(x.row(i));
  return out;
}

}  // namespace wefr::ml
