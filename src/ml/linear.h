#pragma once

#include <span>
#include <vector>

#include "data/matrix.h"
#include "util/rng.h"

namespace wefr::ml {

/// Training controls for L2-regularized logistic regression.
struct LogisticOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t batch_size = 64;
  /// Decay the step size as lr / (1 + decay * epoch).
  double decay = 0.1;
};

/// L2-regularized logistic regression trained with mini-batch SGD.
///
/// Features are standardized internally (mean/stddev learned at fit
/// time), so the learned |coefficients| are comparable across features —
/// which is what makes this model usable as a linear feature-importance
/// baseline alongside the tree ensembles.
class LogisticRegression {
 public:
  /// Fits on (x, y); deterministic for a given Rng.
  void fit(const data::Matrix& x, std::span<const int> y, const LogisticOptions& opt,
           util::Rng& rng);

  /// P(y = 1 | row) for a raw (unstandardized) feature row.
  double predict_proba(std::span<const double> row) const;
  std::vector<double> predict_proba(const data::Matrix& x) const;

  /// Coefficients in standardized feature space (excludes the bias).
  const std::vector<double>& coefficients() const { return weights_; }
  double bias() const { return bias_; }
  bool trained() const { return !weights_.empty(); }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> scale_;  // 1/stddev, 0 for constant features
};

}  // namespace wefr::ml
