#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/ranking.h"

namespace wefr::ml {

double precision(const Confusion& c) {
  const std::size_t denom = c.tp + c.fp;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / static_cast<double>(denom);
}

double recall(const Confusion& c) {
  const std::size_t denom = c.tp + c.fn;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / static_cast<double>(denom);
}

double fbeta(const Confusion& c, double beta) {
  const double p = precision(c);
  const double r = recall(c);
  const double b2 = beta * beta;
  const double denom = b2 * p + r;
  return denom <= 0.0 ? 0.0 : (1.0 + b2) * p * r / denom;
}

double f05(const Confusion& c) { return fbeta(c, 0.5); }

double accuracy(const Confusion& c) {
  const std::size_t n = c.total();
  return n == 0 ? 0.0 : static_cast<double>(c.tp + c.tn) / static_cast<double>(n);
}

Confusion confusion_at_threshold(std::span<const double> scores, std::span<const int> labels,
                                 double threshold) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("confusion_at_threshold: length mismatch");
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    const bool actual = labels[i] != 0;
    if (pred && actual)
      ++c.tp;
    else if (pred && !actual)
      ++c.fp;
    else if (!pred && actual)
      ++c.fn;
    else
      ++c.tn;
  }
  return c;
}

double threshold_for_recall(std::span<const double> scores, std::span<const int> labels,
                            double target_recall) {
  if (scores.size() != labels.size())
    throw std::invalid_argument("threshold_for_recall: length mismatch");
  if (target_recall < 0.0 || target_recall > 1.0)
    throw std::invalid_argument("threshold_for_recall: target outside [0,1]");
  std::size_t n_pos = 0;
  for (int v : labels) n_pos += v != 0 ? 1 : 0;
  if (n_pos == 0) return std::numeric_limits<double>::quiet_NaN();

  if (target_recall == 0.0) {
    // Any threshold above the max score yields recall 0.
    return scores.empty() ? 0.0 : *std::max_element(scores.begin(), scores.end()) + 1.0;
  }

  // Walk thresholds from the highest score downward; recall grows as the
  // threshold drops. The first threshold reaching the target is the
  // largest such threshold.
  const auto order = stats::argsort_descending(scores);
  std::size_t tp = 0;
  const std::size_t tp_needed = std::min(
      n_pos, static_cast<std::size_t>(
                 std::ceil(target_recall * static_cast<double>(n_pos) - 1e-9)));
  for (std::size_t k = 0; k < order.size(); ++k) {
    tp += labels[order[k]] != 0 ? 1 : 0;
    // Include everything tied with this score.
    if (k + 1 < order.size() && scores[order[k + 1]] == scores[order[k]]) continue;
    if (tp >= tp_needed) return scores[order[k]];
  }
  return 0.0;
}

std::vector<PrPoint> pr_sweep(std::span<const double> scores, std::span<const int> labels) {
  if (scores.size() != labels.size()) throw std::invalid_argument("pr_sweep: length mismatch");
  std::size_t n_pos = 0;
  for (int v : labels) n_pos += v != 0 ? 1 : 0;

  const auto order = stats::argsort_descending(scores);
  std::vector<PrPoint> out;
  std::size_t tp = 0, fp = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    (labels[order[k]] != 0 ? tp : fp) += 1;
    if (k + 1 < order.size() && scores[order[k + 1]] == scores[order[k]]) continue;
    Confusion c;
    c.tp = tp;
    c.fp = fp;
    c.fn = n_pos - tp;
    c.tn = (order.size() - n_pos) - fp;
    PrPoint pt;
    pt.threshold = scores[order[k]];
    pt.precision = precision(c);
    pt.recall = recall(c);
    pt.f05 = f05(c);
    out.push_back(pt);
  }
  return out;
}

double auc(std::span<const double> scores, std::span<const int> labels) {
  if (scores.size() != labels.size()) throw std::invalid_argument("auc: length mismatch");
  std::size_t n_pos = 0;
  for (int v : labels) n_pos += v != 0 ? 1 : 0;
  const std::size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return std::numeric_limits<double>::quiet_NaN();

  const auto ranks = stats::fractional_ranks(scores);  // ascending, ties averaged
  double rank_sum = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0) rank_sum += ranks[i];
  }
  const double np = static_cast<double>(n_pos);
  return (rank_sum - np * (np + 1.0) / 2.0) / (np * static_cast<double>(n_neg));
}

void AucPartial::add(double score, int label) {
  (label != 0 ? pos_ : neg_).push_back(score);
  sorted_ = false;
}

void AucPartial::canonicalize() const {
  if (sorted_) return;
  std::sort(pos_.begin(), pos_.end());
  std::sort(neg_.begin(), neg_.end());
  sorted_ = true;
}

void AucPartial::merge(const AucPartial& other) {
  canonicalize();
  other.canonicalize();
  std::vector<double> pos(pos_.size() + other.pos_.size());
  std::merge(pos_.begin(), pos_.end(), other.pos_.begin(), other.pos_.end(), pos.begin());
  std::vector<double> neg(neg_.size() + other.neg_.size());
  std::merge(neg_.begin(), neg_.end(), other.neg_.begin(), other.neg_.end(), neg.begin());
  pos_ = std::move(pos);
  neg_ = std::move(neg);
}

double AucPartial::finalize() const {
  if (pos_.empty() || neg_.empty()) return std::numeric_limits<double>::quiet_NaN();
  canonicalize();
  // One midrank walk over the merged multiset in ascending score
  // order: each tie group of g = gp + gn equal scores starting at
  // 1-based rank r contributes midrank r + (g-1)/2 for each of its gp
  // positives. The accumulation order is a pure function of the score
  // multiset, which is what makes the result shard-count invariant.
  double rank_sum = 0.0;
  std::size_t i = 0, j = 0, rank = 1;
  while (i < pos_.size() || j < neg_.size()) {
    double v;
    if (i < pos_.size() && (j >= neg_.size() || pos_[i] <= neg_[j])) {
      v = pos_[i];
    } else {
      v = neg_[j];
    }
    std::size_t gp = 0, gn = 0;
    while (i < pos_.size() && pos_[i] == v) ++i, ++gp;
    while (j < neg_.size() && neg_[j] == v) ++j, ++gn;
    const std::size_t g = gp + gn;
    const double midrank = static_cast<double>(rank) + (static_cast<double>(g) - 1.0) / 2.0;
    rank_sum += midrank * static_cast<double>(gp);
    rank += g;
  }
  const double np = static_cast<double>(pos_.size());
  const double nn = static_cast<double>(neg_.size());
  return (rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

const std::vector<double>& AucPartial::pos_scores() const {
  canonicalize();
  return pos_;
}

const std::vector<double>& AucPartial::neg_scores() const {
  canonicalize();
  return neg_;
}

void AucPartial::set_scores(std::vector<double> pos, std::vector<double> neg) {
  pos_ = std::move(pos);
  neg_ = std::move(neg);
  sorted_ = false;
}

}  // namespace wefr::ml
