#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/forest_infer.h"
#include "ml/quantize.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace wefr::ml {

void RandomForest::fit(const data::Matrix& x, std::span<const int> y, const ForestOptions& opt,
                       util::Rng& rng, const obs::Context* obs) {
  obs::Span span(obs, "forest:fit");
  util::Stopwatch timer;
  if (x.rows() == 0 || x.rows() != y.size())
    throw std::invalid_argument("RandomForest::fit: shape mismatch or empty data");
  if (opt.num_trees == 0) throw std::invalid_argument("RandomForest::fit: num_trees == 0");

  num_features_ = x.cols();
  TreeOptions topt = opt.tree;
  topt.max_features = opt.max_features == 0
                          ? std::max<std::size_t>(
                                1, static_cast<std::size_t>(std::sqrt(
                                       static_cast<double>(x.cols()))))
                          : std::min(opt.max_features, x.cols());

  const std::size_t n = x.rows();
  const std::size_t boot =
      std::max<std::size_t>(1, static_cast<std::size_t>(opt.bootstrap_fraction *
                                                        static_cast<double>(n)));

  // Quantize once per fit and share across trees: bootstrap indices
  // address the same rows, so the codes are tree-independent.
  const bool histogram =
      topt.split_method == SplitMethod::kHistogram ||
      (topt.split_method == SplitMethod::kAuto && boot >= topt.histogram_cutoff);
  QuantizedDataset quantized;
  if (histogram) quantized.build(x, topt.max_bins);
  const QuantizedDataset* q = histogram ? &quantized : nullptr;

  trees_.assign(opt.num_trees, DecisionTree{});
  inbag_.assign(opt.num_trees, {});
  // Pre-fork one stream per tree so threaded and sequential runs agree.
  std::vector<util::Rng> streams;
  streams.reserve(opt.num_trees);
  for (std::size_t t = 0; t < opt.num_trees; ++t) streams.push_back(rng.fork());

  auto fit_tree = [&](std::size_t t) {
    util::Rng& local = streams[t];
    std::vector<std::size_t> idx(boot);
    for (auto& i : idx) i = local.uniform_index(n);
    trees_[t].fit(x, y, idx, topt, local, q);
    // Record the in-bag set (sorted, unique) for OOB importance.
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    inbag_[t] = std::move(idx);
  };

  if (opt.num_threads > 1) {
    util::ThreadPool pool(opt.num_threads);
    pool.parallel_for(opt.num_trees, fit_tree);
  } else {
    for (std::size_t t = 0; t < opt.num_trees; ++t) fit_tree(t);
  }

  // Compile the fitted trees into the flattened SoA inference engine;
  // every batch scorer below routes through it.
  flat_ = std::make_shared<const FlatForest>(FlatForest::from(*this, obs));

  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_forest_trees_fitted_total", opt.num_trees);
    if (auto* hist = obs::histogram_or_null(
            obs, "wefr_forest_fit_seconds",
            {0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0})) {
      hist->observe(timer.seconds());
    }
  }
}

const FlatForest& RandomForest::flat_ref() const {
  if (flat_ == nullptr)
    throw std::logic_error("RandomForest: no flattened engine (not trained?)");
  return *flat_;
}

double RandomForest::predict_proba(std::span<const double> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict_proba: not trained");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict_proba(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_proba(const data::Matrix& x,
                                                std::size_t num_threads,
                                                const obs::Context* obs) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict_proba: not trained");
  obs::Span span(obs, "forest:predict_batch");
  obs::add_counter(obs, "wefr_forest_rows_scored_total", x.rows());
  obs::add_counter(obs, "wefr_inference_rows_total", x.rows());
  const FlatForest& flat = flat_ref();
  const double count = static_cast<double>(trees_.size());
  std::vector<double> out(x.rows(), 0.0);
  // Each block accumulates leaf probabilities through the flattened
  // engine and divides by the tree count afterwards — the same sum
  // order and division the recursive per-row walk performs, so the
  // scores are bit-identical at any block boundary or thread count.
  auto score_rows = [&](std::size_t begin, std::size_t end) {
    std::span<double> chunk(out.data() + begin, end - begin);
    flat.accumulate(x, begin, end, chunk);
    for (double& v : chunk) v /= count;
  };
  if (num_threads > 1 && x.rows() > 1) {
    // Block per task so each iteration amortizes the pool's dispatch.
    const std::size_t block = 256;
    const std::size_t num_blocks = (x.rows() + block - 1) / block;
    util::ThreadPool pool(num_threads);
    pool.parallel_for(num_blocks, [&](std::size_t b) {
      score_rows(b * block, std::min(x.rows(), (b + 1) * block));
    });
  } else {
    score_rows(0, x.rows());
  }
  return out;
}

void RandomForest::predict_proba(const data::Matrix& x, std::span<const std::size_t> rows,
                                 std::span<double> out, const obs::Context* obs) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict_proba: not trained");
  if (out.size() != rows.size())
    throw std::invalid_argument("RandomForest::predict_proba: out/rows size mismatch");
  obs::Span span(obs, "forest:predict_batch");
  obs::add_counter(obs, "wefr_forest_rows_scored_total", rows.size());
  obs::add_counter(obs, "wefr_inference_rows_total", rows.size());
  const FlatForest& flat = flat_ref();
  const double count = static_cast<double>(trees_.size());
  std::fill(out.begin(), out.end(), 0.0);
  flat.accumulate(x, rows, out);
  for (double& v : out) v /= count;
}

std::vector<double> RandomForest::impurity_importance() const {
  if (trees_.empty()) throw std::logic_error("RandomForest::impurity_importance: not trained");
  std::vector<double> imp(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& ti = tree.impurity_importance();
    for (std::size_t f = 0; f < num_features_; ++f) imp[f] += ti[f];
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

std::vector<double> RandomForest::permutation_importance(const data::Matrix& x,
                                                         std::span<const int> y,
                                                         util::Rng& rng, int repeats,
                                                         std::size_t num_threads) const {
  if (trees_.empty())
    throw std::logic_error("RandomForest::permutation_importance: not trained");
  if (x.cols() != num_features_ || x.rows() != y.size())
    throw std::invalid_argument("RandomForest::permutation_importance: shape mismatch");
  if (repeats < 1) throw std::invalid_argument("permutation_importance: repeats < 1");

  const std::size_t n = x.rows();
  auto accuracy_of = [&](const std::vector<double>& probs) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      correct += ((probs[i] >= 0.5 ? 1 : 0) == y[i]) ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(n);
  };

  const double baseline = accuracy_of(predict_proba(x, num_threads));

  // One stream per feature, pre-forked so the parallel fan-out below
  // produces the same shuffles as a serial pass.
  std::vector<util::Rng> streams;
  streams.reserve(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) streams.push_back(rng.fork());

  const FlatForest& flat = flat_ref();
  const double count = static_cast<double>(trees_.size());
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  std::vector<double> imp(num_features_, 0.0);
  auto score_feature = [&](std::size_t f) {
    util::Rng& local = streams[f];
    std::vector<double> shuffled(n);
    std::vector<double> probs(n);
    std::vector<std::size_t> perm(n);
    double drop_sum = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < n; ++i) perm[i] = i;
      local.shuffle(perm);
      // Batch-score all rows with the shuffled column substituted in
      // via ColumnOverride — no matrix or row copies, same shuffles and
      // bit-identical probabilities as the historical per-row walk.
      for (std::size_t i = 0; i < n; ++i) shuffled[i] = x(perm[i], f);
      const ColumnOverride override_col{f, shuffled};
      std::fill(probs.begin(), probs.end(), 0.0);
      flat.accumulate(x, all_rows, probs, &override_col);
      for (double& p : probs) p /= count;
      drop_sum += baseline - accuracy_of(probs);
    }
    imp[f] = std::max(0.0, drop_sum / static_cast<double>(repeats));
  };

  if (num_threads > 1 && num_features_ > 1) {
    util::ThreadPool pool(num_threads);
    pool.parallel_for(num_features_, score_feature);
  } else {
    for (std::size_t f = 0; f < num_features_; ++f) score_feature(f);
  }
  return imp;
}

std::vector<double> RandomForest::oob_permutation_importance(const data::Matrix& x,
                                                             std::span<const int> y,
                                                             util::Rng& rng,
                                                             std::size_t num_threads) const {
  if (trees_.empty())
    throw std::logic_error("RandomForest::oob_permutation_importance: not trained");
  if (x.cols() != num_features_ || x.rows() != y.size())
    throw std::invalid_argument("oob_permutation_importance: shape mismatch");
  if (inbag_.size() != trees_.size())
    throw std::logic_error("oob_permutation_importance: no in-bag records (loaded forest?)");

  const std::size_t n = x.rows();

  const FlatForest& flat = flat_ref();

  // OOB rows (complement of the sorted in-bag list) and baseline OOB
  // accuracy per tree, computed once and shared by every feature. Each
  // tree scores its own OOB rows in one flattened batch
  // (accumulate_tree); a single tree's accumulated value is its exact
  // leaf probability, so the 0.5 cut matches the recursive walk.
  std::vector<std::vector<std::size_t>> oob(trees_.size());
  std::vector<double> base_acc(trees_.size(), 0.0);
  std::size_t trees_with_oob = 0;
  std::vector<double> tree_probs;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const auto& inbag = inbag_[t];
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      while (k < inbag.size() && inbag[k] < i) ++k;
      if (k >= inbag.size() || inbag[k] != i) oob[t].push_back(i);
    }
    if (oob[t].empty()) continue;
    ++trees_with_oob;
    tree_probs.assign(oob[t].size(), 0.0);
    flat.accumulate_tree(t, x, oob[t], tree_probs);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < oob[t].size(); ++i) {
      correct += ((tree_probs[i] >= 0.5 ? 1 : 0) == y[oob[t][i]]) ? 1 : 0;
    }
    base_acc[t] = static_cast<double>(correct) / static_cast<double>(oob[t].size());
  }

  std::vector<util::Rng> streams;
  streams.reserve(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) streams.push_back(rng.fork());

  std::vector<double> imp(num_features_, 0.0);
  auto score_feature = [&](std::size_t f) {
    util::Rng& local = streams[f];
    std::vector<double> shuffled;
    std::vector<double> probs;
    std::vector<std::size_t> perm;
    double drop_sum = 0.0;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      if (oob[t].empty()) continue;
      perm.assign(oob[t].begin(), oob[t].end());
      local.shuffle(perm);
      shuffled.resize(oob[t].size());
      for (std::size_t i = 0; i < oob[t].size(); ++i) shuffled[i] = x(perm[i], f);
      const ColumnOverride override_col{f, shuffled};
      probs.assign(oob[t].size(), 0.0);
      flat.accumulate_tree(t, x, oob[t], probs, &override_col);
      std::size_t correct = 0;
      for (std::size_t i = 0; i < oob[t].size(); ++i) {
        correct += ((probs[i] >= 0.5 ? 1 : 0) == y[oob[t][i]]) ? 1 : 0;
      }
      drop_sum +=
          base_acc[t] - static_cast<double>(correct) / static_cast<double>(oob[t].size());
    }
    imp[f] = drop_sum;
  };

  if (num_threads > 1 && num_features_ > 1) {
    util::ThreadPool pool(num_threads);
    pool.parallel_for(num_features_, score_feature);
  } else {
    for (std::size_t f = 0; f < num_features_; ++f) score_feature(f);
  }

  if (trees_with_oob > 0) {
    for (double& v : imp) v = std::max(0.0, v / static_cast<double>(trees_with_oob));
  }
  return imp;
}

void RandomForest::save(std::ostream& os) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::save: not trained");
  os << "wefr-random-forest v1 " << trees_.size() << ' ' << num_features_ << '\n';
  for (const auto& tree : trees_) tree.save(os);
  if (!os) throw std::runtime_error("RandomForest::save: write failed");
}

void RandomForest::load(std::istream& is) {
  std::string magic, version;
  std::size_t n_trees = 0, n_features = 0;
  if (!(is >> magic >> version >> n_trees >> n_features) || magic != "wefr-random-forest" ||
      version != "v1" || n_trees == 0)
    throw std::runtime_error("RandomForest::load: bad header");
  std::vector<DecisionTree> trees(n_trees);
  for (auto& tree : trees) tree.load(is);
  trees_ = std::move(trees);
  num_features_ = n_features;
  inbag_.clear();  // OOB information is not serialized
  flat_ = std::make_shared<const FlatForest>(FlatForest::from(*this));
}

}  // namespace wefr::ml
