#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/matrix.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::ml {

class FlatForest;

/// Gradient-boosted-tree training controls (XGBoost-style second-order
/// boosting with logistic loss).
struct GbdtOptions {
  std::size_t num_rounds = 50;
  int max_depth = 4;
  double learning_rate = 0.1;
  double reg_lambda = 1.0;        ///< L2 on leaf weights
  double gamma = 0.0;             ///< min gain to split
  double min_child_weight = 1.0;  ///< min sum of hessians per child
  /// Row subsample per round in (0, 1]; 1 disables subsampling.
  double subsample = 1.0;
  /// Feature subsample per tree in (0, 1]; 1 disables subsampling.
  double colsample = 1.0;
  /// Split-search strategy, shared with the CART tree (ml::SplitMethod):
  /// histogram accumulates per-bin gradient/hessian sums over codes
  /// quantized once per fit instead of sorting each node.
  SplitMethod split_method = SplitMethod::kAuto;
  /// Histogram bin budget per feature (clamped to [2, 256]).
  std::size_t max_bins = 256;
  /// kAuto switches to histogram at this many training rows.
  std::size_t histogram_cutoff = 2048;
  /// In histogram mode, nodes with fewer rows than this fall back to the
  /// exact sort-based search (see TreeOptions::exact_node_cutoff).
  std::size_t exact_node_cutoff = 512;
};

/// Gradient-boosted decision trees for binary classification.
///
/// Boosts regression trees on the logistic loss using first and second
/// order gradients; leaf weight = -G / (H + lambda); split gain is the
/// standard XGBoost structure-score improvement. Exposes the two
/// XGBoost importance notions the paper uses as a preliminary selector:
/// "weight" (number of splits on a feature) and "gain" (total gain of
/// those splits).
class Gbdt {
 public:
  void fit(const data::Matrix& x, std::span<const int> y, const GbdtOptions& opt,
           util::Rng& rng);

  /// P(y = 1) for a single row.
  double predict_proba(std::span<const double> row) const;
  /// P(y = 1) for every row of `x`, scored through the flattened SoA
  /// engine (ml::FlatForest) built at fit time — bit-identical to the
  /// per-row recursive walk. `num_threads > 1` fans row blocks out over
  /// a ThreadPool (deterministic chunking, results identical at any
  /// thread count); `obs` (nullable) wraps the call in a
  /// "forest:predict_batch" span and counts wefr_inference_rows_total.
  std::vector<double> predict_proba(const data::Matrix& x,
                                    std::size_t num_threads = 0,
                                    const obs::Context* obs = nullptr) const;

  /// Split-count ("weight") importance, normalized to sum 1 unless all 0.
  std::vector<double> weight_importance() const;
  /// Total-gain importance, normalized to sum 1 unless all 0.
  std::vector<double> gain_importance() const;
  /// Combined importance used by the XGBoost ranker: normalized
  /// weight + gain averaged (both signals the paper cites).
  std::vector<double> combined_importance() const;

  std::size_t num_trees() const { return trees_.size(); }
  bool trained() const { return !trees_.empty(); }
  std::size_t num_features() const { return num_features_; }

  /// The flattened inference engine compiled from this model at fit
  /// time (null before fit). Exposed for benches and tests.
  const FlatForest* flat() const { return flat_.get(); }

 private:
  /// The flattening pass recompiles trees_ into SoA form; the recursive
  /// Tree::predict stays the equivalence oracle.
  friend class FlatForest;

  struct Node {
    std::int32_t feature = -1;  // leaf when < 0
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double weight = 0.0;  // leaf output
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(std::span<const double> row) const;
  };

  /// Buffers reused across every node and round of one fit (defined in
  /// gbdt.cpp).
  struct BuildContext;

  std::int32_t build_node(BuildContext& ctx, std::vector<std::size_t>& idx,
                          std::size_t begin, std::size_t end, int depth,
                          std::span<const std::size_t> features, Tree& tree);

  double raw_score(std::span<const double> row) const;

  std::vector<Tree> trees_;
  double base_score_ = 0.0;  // log-odds prior
  std::size_t num_features_ = 0;
  std::vector<double> split_count_;
  std::vector<double> split_gain_;
  /// SoA-compiled twin of trees_, rebuilt at the end of fit(); shared
  /// so copies of a fitted model share one flat image.
  std::shared_ptr<const FlatForest> flat_;
};

}  // namespace wefr::ml
