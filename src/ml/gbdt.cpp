#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/forest_infer.h"
#include "ml/quantize.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace wefr::ml {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double structure_score(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

/// Per-fit state shared by every round's tree build: gradients, the
/// optional quantized codes, and scratch buffers hoisted out of the
/// per-node hot path.
struct Gbdt::BuildContext {
  const data::Matrix& x;
  const GbdtOptions& opt;
  std::span<const double> grad;
  std::span<const double> hess;
  /// Non-null selects histogram split finding.
  const QuantizedDataset* quantized = nullptr;

  std::vector<std::pair<double, std::size_t>> sorted;  ///< exact: (value, row)
  std::vector<double> bin_grad;                        ///< histogram: grad sum per bin
  std::vector<double> bin_hess;                        ///< histogram: hess sum per bin
  std::vector<std::size_t> bin_count;                  ///< histogram: rows per bin
};

double Gbdt::Tree::predict(std::span<const double> row) const {
  std::int32_t node = 0;
  for (;;) {
    const Node& nd = nodes[node];
    if (nd.feature < 0) return nd.weight;
    node = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
}

void Gbdt::fit(const data::Matrix& x, std::span<const int> y, const GbdtOptions& opt,
               util::Rng& rng) {
  if (x.rows() == 0 || x.rows() != y.size())
    throw std::invalid_argument("Gbdt::fit: shape mismatch or empty data");
  if (opt.num_rounds == 0) throw std::invalid_argument("Gbdt::fit: num_rounds == 0");
  if (opt.subsample <= 0.0 || opt.subsample > 1.0 || opt.colsample <= 0.0 ||
      opt.colsample > 1.0)
    throw std::invalid_argument("Gbdt::fit: subsample/colsample outside (0,1]");

  const std::size_t n = x.rows();
  num_features_ = x.cols();
  trees_.clear();
  split_count_.assign(num_features_, 0.0);
  split_gain_.assign(num_features_, 0.0);

  // Log-odds prior, clamped away from degenerate all-one-class inputs.
  std::size_t pos = 0;
  for (int v : y) pos += v != 0 ? 1 : 0;
  const double p = std::clamp(static_cast<double>(pos) / static_cast<double>(n), 1e-6,
                              1.0 - 1e-6);
  base_score_ = std::log(p / (1.0 - p));

  std::vector<double> score(n, base_score_);
  std::vector<double> grad(n), hess(n);

  const std::size_t cols_per_tree = std::max<std::size_t>(
      1, static_cast<std::size_t>(opt.colsample * static_cast<double>(num_features_)));

  // Quantize once per fit; all rounds share the codes (gradients change
  // per round, bin memberships do not).
  const bool histogram =
      opt.split_method == SplitMethod::kHistogram ||
      (opt.split_method == SplitMethod::kAuto && n >= opt.histogram_cutoff);
  QuantizedDataset quantized;
  if (histogram) quantized.build(x, opt.max_bins);

  BuildContext ctx{x, opt, grad, hess, histogram ? &quantized : nullptr, {}, {}, {}, {}};
  if (histogram) {
    std::size_t most_bins = 0;
    for (std::size_t f = 0; f < num_features_; ++f)
      most_bins = std::max(most_bins, quantized.num_bins(f));
    ctx.bin_grad.resize(most_bins);
    ctx.bin_hess.resize(most_bins);
    ctx.bin_count.resize(most_bins);
  }

  for (std::size_t round = 0; round < opt.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double pr = sigmoid(score[i]);
      grad[i] = pr - static_cast<double>(y[i]);
      hess[i] = std::max(pr * (1.0 - pr), 1e-12);
    }

    std::vector<std::size_t> idx;
    if (opt.subsample < 1.0) {
      idx.reserve(static_cast<std::size_t>(opt.subsample * static_cast<double>(n)) + 1);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(opt.subsample)) idx.push_back(i);
      }
      if (idx.empty()) idx.push_back(rng.uniform_index(n));
    } else {
      idx.resize(n);
      std::iota(idx.begin(), idx.end(), 0);
    }

    std::vector<std::size_t> features;
    if (cols_per_tree < num_features_) {
      features = rng.sample_without_replacement(num_features_, cols_per_tree);
    } else {
      features.resize(num_features_);
      std::iota(features.begin(), features.end(), 0);
    }

    Tree tree;
    build_node(ctx, idx, 0, idx.size(), 0, features, tree);
    // Apply shrinkage by scaling leaf weights once.
    for (auto& nd : tree.nodes) {
      if (nd.feature < 0) nd.weight *= opt.learning_rate;
    }
    for (std::size_t i = 0; i < n; ++i) score[i] += tree.predict(x.row(i));
    trees_.push_back(std::move(tree));
  }

  // Compile the boosted trees into the flattened SoA inference engine;
  // the batch predict_proba below routes through it.
  flat_ = std::make_shared<const FlatForest>(FlatForest::from(*this));
}

std::int32_t Gbdt::build_node(BuildContext& ctx, std::vector<std::size_t>& idx,
                              std::size_t begin, std::size_t end, int depth,
                              std::span<const std::size_t> features, Tree& tree) {
  const data::Matrix& x = ctx.x;
  const GbdtOptions& opt = ctx.opt;
  std::span<const double> grad = ctx.grad;
  std::span<const double> hess = ctx.hess;

  double g_sum = 0.0, h_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    g_sum += grad[idx[i]];
    h_sum += hess[idx[i]];
  }

  const std::int32_t me = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[me].weight = -g_sum / (h_sum + opt.reg_lambda);

  if (depth >= opt.max_depth || end - begin < 2) return me;

  const double parent_score = structure_score(g_sum, h_sum, opt.reg_lambda);

  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  // Histogram search on large nodes; small nodes fall back to the exact
  // sort (cheap there, and global bin edges are too coarse for them).
  const bool use_histogram =
      ctx.quantized != nullptr &&
      (opt.exact_node_cutoff == 0 || end - begin >= opt.exact_node_cutoff);
  if (use_histogram) {
    const QuantizedDataset& q = *ctx.quantized;
    for (std::size_t f : features) {
      const std::size_t bins = q.num_bins(f);
      if (bins < 2) continue;
      const std::uint8_t* codes = q.codes(f).data();
      std::fill(ctx.bin_grad.begin(), ctx.bin_grad.begin() + static_cast<std::ptrdiff_t>(bins),
                0.0);
      std::fill(ctx.bin_hess.begin(), ctx.bin_hess.begin() + static_cast<std::ptrdiff_t>(bins),
                0.0);
      std::fill(ctx.bin_count.begin(),
                ctx.bin_count.begin() + static_cast<std::ptrdiff_t>(bins), 0);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t row = idx[i];
        const std::uint8_t b = codes[row];
        ctx.bin_grad[b] += grad[row];
        ctx.bin_hess[b] += hess[row];
        ++ctx.bin_count[b];
      }
      // Boundaries between consecutive node-occupied bins, mirroring the
      // CART histogram scan.
      double gl = 0.0, hl = 0.0;
      std::size_t prev = bins;
      for (std::size_t b = 0; b < bins; ++b) {
        if (ctx.bin_count[b] == 0) continue;
        if (prev != bins) {
          const double gr = g_sum - gl, hr = h_sum - hl;
          if (hl >= opt.min_child_weight && hr >= opt.min_child_weight) {
            const double gain =
                0.5 * (structure_score(gl, hl, opt.reg_lambda) +
                       structure_score(gr, hr, opt.reg_lambda) - parent_score) -
                opt.gamma;
            if (gain > best_gain) {
              best_gain = gain;
              best_feature = f;
              best_threshold = q.threshold_between(f, prev, b);
            }
          }
        }
        gl += ctx.bin_grad[b];
        hl += ctx.bin_hess[b];
        prev = b;
      }
    }
  } else {
    auto& scratch = ctx.sorted;
    scratch.reserve(end - begin);
    for (std::size_t f : features) {
      scratch.clear();
      for (std::size_t i = begin; i < end; ++i) scratch.emplace_back(x(idx[i], f), idx[i]);
      std::sort(scratch.begin(), scratch.end());
      if (scratch.front().first == scratch.back().first) continue;

      double gl = 0.0, hl = 0.0;
      for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
        gl += grad[scratch[i].second];
        hl += hess[scratch[i].second];
        if (scratch[i].first == scratch[i + 1].first) continue;
        const double gr = g_sum - gl, hr = h_sum - hl;
        if (hl < opt.min_child_weight || hr < opt.min_child_weight) continue;
        const double gain = 0.5 * (structure_score(gl, hl, opt.reg_lambda) +
                                   structure_score(gr, hr, opt.reg_lambda) - parent_score) -
                            opt.gamma;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = scratch[i].first + (scratch[i + 1].first - scratch[i].first) / 2.0;
          if (best_threshold >= scratch[i + 1].first) best_threshold = scratch[i].first;
        }
      }
    }
  }

  if (best_gain <= 0.0) return me;

  const auto mid_it =
      std::partition(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                     idx.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t i) { return x(i, best_feature) <= best_threshold; });
  const std::size_t mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return me;

  split_count_[best_feature] += 1.0;
  split_gain_[best_feature] += best_gain;

  tree.nodes[me].feature = static_cast<std::int32_t>(best_feature);
  tree.nodes[me].threshold = best_threshold;
  const std::int32_t left = build_node(ctx, idx, begin, mid, depth + 1, features, tree);
  tree.nodes[me].left = left;
  const std::int32_t right = build_node(ctx, idx, mid, end, depth + 1, features, tree);
  tree.nodes[me].right = right;
  return me;
}

double Gbdt::raw_score(std::span<const double> row) const {
  double s = base_score_;
  for (const auto& tree : trees_) s += tree.predict(row);
  return s;
}

double Gbdt::predict_proba(std::span<const double> row) const {
  if (trees_.empty()) throw std::logic_error("Gbdt::predict_proba: not trained");
  return sigmoid(raw_score(row));
}

std::vector<double> Gbdt::predict_proba(const data::Matrix& x, std::size_t num_threads,
                                        const obs::Context* obs) const {
  if (trees_.empty()) throw std::logic_error("Gbdt::predict_proba: not trained");
  if (flat_ == nullptr) throw std::logic_error("Gbdt::predict_proba: no flattened engine");
  obs::Span span(obs, "forest:predict_batch");
  obs::add_counter(obs, "wefr_inference_rows_total", x.rows());
  const FlatForest& flat = *flat_;
  std::vector<double> out(x.rows(), base_score_);
  // Each block accumulates shrunk leaf weights onto the log-odds prior
  // in tree order — the same addition sequence as the recursive
  // raw_score — then applies the link, so scores are bit-identical at
  // any block boundary or thread count.
  auto score_rows = [&](std::size_t begin, std::size_t end) {
    std::span<double> chunk(out.data() + begin, end - begin);
    flat.accumulate(x, begin, end, chunk);
    for (double& v : chunk) v = sigmoid(v);
  };
  if (num_threads > 1 && x.rows() > 1) {
    // Block per task so each iteration amortizes the pool's dispatch —
    // the same deterministic chunking RandomForest::predict_proba uses.
    const std::size_t block = 256;
    const std::size_t num_blocks = (x.rows() + block - 1) / block;
    util::ThreadPool pool(num_threads);
    pool.parallel_for(num_blocks, [&](std::size_t b) {
      score_rows(b * block, std::min(x.rows(), (b + 1) * block));
    });
  } else {
    score_rows(0, x.rows());
  }
  return out;
}

namespace {
std::vector<double> normalized(std::vector<double> v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total > 0.0) {
    for (double& x : v) x /= total;
  }
  return v;
}
}  // namespace

std::vector<double> Gbdt::weight_importance() const {
  if (trees_.empty()) throw std::logic_error("Gbdt::weight_importance: not trained");
  return normalized(split_count_);
}

std::vector<double> Gbdt::gain_importance() const {
  if (trees_.empty()) throw std::logic_error("Gbdt::gain_importance: not trained");
  return normalized(split_gain_);
}

std::vector<double> Gbdt::combined_importance() const {
  const auto w = weight_importance();
  const auto g = gain_importance();
  std::vector<double> out(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) out[i] = (w[i] + g[i]) / 2.0;
  return out;
}

}  // namespace wefr::ml
