#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace wefr::ml {

/// Per-feature equal-frequency quantization of a sample matrix, the
/// standard histogram-GBDT representation (cf. LightGBM): bin edges are
/// computed once per fit, every value is replaced by a <= 256-valued
/// bin code stored column-major, and split finding then accumulates
/// per-bin label/gradient histograms in O(n + bins) per feature per
/// node instead of sorting the node's rows.
///
/// When a feature has at most `max_bins` distinct values every value
/// gets its own bin (lower == upper), which makes histogram split
/// finding reproduce the exact splitter bit-for-bit — the equivalence
/// the tests pin down. Values are assumed finite (the data layer
/// imputes NaNs before matrices reach the models).
class QuantizedDataset {
 public:
  QuantizedDataset() = default;

  /// Quantizes all rows of `x` into at most `max_bins` bins per feature
  /// (clamped to [2, 256] so codes fit in a uint8_t).
  void build(const data::Matrix& x, std::size_t max_bins = 256);

  bool empty() const { return rows_ == 0; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Number of occupied bins for feature `f` (>= 1; 1 for a constant
  /// feature).
  std::size_t num_bins(std::size_t f) const { return lower_[f].size(); }

  /// Column-major code span for feature `f` (length rows()): the bin
  /// index of every row's value.
  std::span<const std::uint8_t> codes(std::size_t f) const {
    return {codes_.data() + f * rows_, rows_};
  }

  /// Smallest / largest raw value that fell into bin `b` of feature `f`.
  double bin_lower(std::size_t f, std::size_t b) const { return lower_[f][b]; }
  double bin_upper(std::size_t f, std::size_t b) const { return upper_[f][b]; }

  /// Split threshold between bins `left` and `right` of feature `f`
  /// (right must be a later bin): the midpoint between the adjacent
  /// raw values, with the exact splitter's guard against the midpoint
  /// rounding up to the right value for adjacent doubles. `x <= threshold`
  /// routes left.
  double threshold_between(std::size_t f, std::size_t left, std::size_t right) const {
    const double lo = upper_[f][left];
    const double hi = lower_[f][right];
    double thr = lo + (hi - lo) / 2.0;
    if (thr >= hi) thr = lo;
    return thr;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> codes_;        ///< column-major: codes_[f * rows_ + r]
  std::vector<std::vector<double>> lower_; ///< per feature, per bin: min value
  std::vector<std::vector<double>> upper_; ///< per feature, per bin: max value
};

}  // namespace wefr::ml
