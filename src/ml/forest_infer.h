#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::ml {

class Gbdt;
class RandomForest;

/// One column substitution applied during batch inference: the value of
/// feature `feature` for the i-th scored row is read from `values[i]`
/// instead of the matrix. Permutation importance shuffles one column
/// this way without ever copying the matrix or the rows.
struct ColumnOverride {
  std::size_t feature = 0;
  std::span<const double> values;
};

/// Which comparison representation a batch traversal uses. The two
/// paths land on the same leaves bit-for-bit; the knob exists so the
/// bench can time them separately.
enum class InferencePath {
  kAuto,       ///< raw while the double stage is cache-resident,
               ///< quantized once it would outgrow L2 (and the codec fits)
  kDouble,     ///< raw `double` threshold comparisons
  kQuantized,  ///< uint8 code comparisons (falls back to kDouble when
               ///< the forest's thresholds exceed the uint8 budget)
};

/// One flattened tree node, packed into a single 16-byte record so a
/// node visit touches one cache line (the recursive walk's 40-byte
/// nodes plus the earlier parallel-array layout touched three). Trees
/// are emitted in BFS order, which makes every interior node's children
/// adjacent — so only the left child id is stored and the traversal
/// steps with `child + go_right`. Leaves overlay the payload on the
/// threshold field: they store `child == self` and point `slot_off` at
/// a reserved stage column holding -inf (zero codes on the quantized
/// path, against cut 255), and since `-inf <= v` holds for every
/// finite leaf value the parked row keeps re-selecting itself with no
/// termination test — and the end-of-tree accumulate reads the payload
/// from the very line the last level visit just touched, instead of
/// missing into a separate value array.
struct alignas(16) FlatNode {
  double threshold;       ///< split threshold; the leaf payload on leaves
  std::int32_t slot_off;  ///< staged column of the split feature,
                          ///< pre-scaled by the block width; 0 (the
                          ///< -inf column) on leaves
  std::int32_t child;     ///< global id of the left child (right is
                          ///< child + 1); self on leaves
};

/// The raw-threshold traversal's node form. Each child reference packs
/// the child's *node byte offset* (low 32) with the byte offset of the
/// child's own staged split column (high 32). Carrying the destination's
/// stage offset inside the pointer is what makes the batch walk fast:
/// the step's stage load needs only the packed word from the previous
/// step — it issues in parallel with the node-record load instead of
/// serially after it, cutting the per-level dependency chain from
/// node-load -> stage-load -> compare to max(node-load, stage-load) ->
/// compare. Leaves pack both children as themselves with stage offset 0
/// (the reserved -inf column), so parked rows keep re-selecting the
/// leaf and its payload sits in `thr` on the line the walk just read.
struct alignas(32) WideNode {
  double thr;           ///< split threshold; the leaf payload on leaves
  std::uint64_t left;   ///< left child: node byte off | stage byte off << 32
  std::uint64_t right;  ///< right child, same packing
  std::uint64_t pad_ = 0;
};

/// A fitted tree ensemble compiled into flat packed-node form for the
/// scoring hot path.
///
/// The recursive per-row walk (`DecisionTree::predict_proba`,
/// `Gbdt::Tree::predict`) chases 40-byte nodes through per-tree
/// vectors and takes an unpredictable branch at every level. The
/// flattening pass rewrites every tree into one contiguous node run
/// (BFS order, leaves parked as self-loops), so a batched traversal
/// can advance a whole block of rows through a tree level-by-level
/// with a branchless cmov select and no termination test. Feature
/// columns for the block are staged into a small column-major scratch
/// that stays cache-resident across all trees, and rows walk in
/// register-resident groups of sixteen independent chains so the
/// per-step load dependencies overlap; on the raw path each WideNode
/// child reference additionally carries the destination's staged-column
/// byte offset, letting every step's value load issue in parallel with
/// its node-record load.
///
/// On top of the raw-threshold path sits a quantized one: the distinct
/// split thresholds of each feature are collected and sorted, and when
/// every feature needs at most 255 of them each block value is encoded
/// once as the uint8 rank of its position among the thresholds
/// (generalizing the `ml::QuantizedDataset` bin-code idea from the fit
/// path to inference — exact for *any* input by construction, because
/// `v <= thr[i]` iff `code(v) <= i`). Traversal then compares one-byte
/// codes, and the staged block shrinks 8x.
///
/// Equivalence contract, pinned by tests/test_forest_infer.cpp and the
/// bench_hotpath inference gate: every path (double / quantized, AVX2 /
/// default kernel) lands on exactly the leaf the recursive walk lands
/// on, and leaf values are accumulated in tree order — so batch scores
/// are bit-identical to the per-row walk at any batch size, batch
/// composition, and thread count. NaN feature values route right at
/// every split, exactly like the recursive `v <= thr ? left : right`.
class FlatForest {
 public:
  FlatForest() = default;

  /// Flattens a fitted forest; leaf payloads are leaf probabilities
  /// (callers average over trees). Wraps itself in a "forest:flatten"
  /// span when `obs` is live.
  static FlatForest from(const RandomForest& forest, const obs::Context* obs = nullptr);
  /// Flattens a fitted GBDT; leaf payloads are shrunk leaf weights
  /// (callers add the base score and apply the link function).
  static FlatForest from(const Gbdt& model, const obs::Context* obs = nullptr);

  bool empty() const { return tree_first_.empty(); }
  std::size_t num_trees() const { return tree_first_.size(); }
  std::size_t num_features() const { return num_features_; }
  std::size_t num_nodes() const { return node_.size(); }
  /// Depth of the deepest tree (0 = all single-leaf trees).
  int max_depth() const { return max_depth_; }
  /// True when the uint8 threshold codec covers every feature.
  bool quantized() const { return quantized_; }

  /// Adds each tree's leaf value (in tree order) for row `rows[i]` of
  /// `x` into `out[i]`. `out.size()` must equal `rows.size()`; callers
  /// pre-fill `out` with the ensemble's additive base (0 for a forest,
  /// the log-odds prior for a GBDT).
  void accumulate(const data::Matrix& x, std::span<const std::size_t> rows,
                  std::span<double> out, const ColumnOverride* override_col = nullptr,
                  InferencePath path = InferencePath::kAuto) const;

  /// Contiguous-range convenience: rows [row_begin, row_end) of `x`,
  /// out[i] accumulates row `row_begin + i`.
  void accumulate(const data::Matrix& x, std::size_t row_begin, std::size_t row_end,
                  std::span<double> out, InferencePath path = InferencePath::kAuto) const;

  /// Single-tree accumulate (OOB importance scores each tree on its own
  /// out-of-bag rows): adds tree `tree`'s leaf value per row into `out`.
  void accumulate_tree(std::size_t tree, const data::Matrix& x,
                       std::span<const std::size_t> rows, std::span<double> out,
                       const ColumnOverride* override_col = nullptr) const;

  /// Process-wide kernel pin for benches/tests: when `on` is false the
  /// traversal always uses the baseline clone even on AVX2 hardware.
  /// Never affects results — the clones are IEEE-exact twins.
  static void set_avx2_enabled(bool on);
  /// True when the next traversal will dispatch to the AVX2 clone.
  static bool avx2_enabled();
  /// True when this build/CPU has an AVX2 clone at all.
  static bool avx2_available();

 private:
  /// Implementation detail of the two from() overloads (defined in
  /// forest_infer.cpp): builds the SoA arrays from a neutral node form.
  friend struct FlatBuilder;

  void accumulate_range(const data::Matrix& x, const std::size_t* rows,
                        std::size_t row_begin, std::size_t n, std::span<double> out,
                        std::size_t tree_begin, std::size_t tree_end,
                        const ColumnOverride* override_col, InferencePath path) const;

  std::size_t num_features_ = 0;
  int max_depth_ = 0;
  bool quantized_ = false;

  // Packed nodes, all trees concatenated in BFS order (see FlatNode).
  // The codec rank of each threshold lives in a parallel array: `cut_`
  // is only read by the quantized kernel, so keeping it out of the
  // 16-byte record keeps the per-level line traffic at one line per
  // visit. Leaves: slot_off 0, threshold = payload, cut 255,
  // child == self. `wide_` mirrors node_ in 32-byte WideNode form for
  // the raw batch kernel; `root_packed_` holds each tree's root in the
  // same packed-ref encoding so the walk starts without a lookup.
  std::vector<FlatNode> node_;
  std::vector<WideNode> wide_;          ///< raw-path mirror (see WideNode)
  std::vector<std::uint64_t> root_packed_;  ///< per-tree packed root ref
  std::vector<std::uint8_t> cut_;       ///< codec rank of the threshold
  std::vector<std::int32_t> tree_first_;  ///< root node id per tree
  std::vector<std::int32_t> tree_depth_;  ///< deepest leaf per tree

  // Active features (split on at least once) and the threshold codec,
  // both indexed by active position `s`; the staged column for `s` is
  // `s + 1` (column 0 is the reserved -inf column leaves park on).
  std::vector<std::int32_t> active_;        ///< s -> original column
  std::vector<std::int32_t> feature_slot_;  ///< column -> s, -1 if unused
  std::vector<double> codec_values_;        ///< per-slot sorted thresholds
  std::vector<std::int32_t> codec_first_;   ///< slot -> offset into codec_values_
};

}  // namespace wefr::ml
