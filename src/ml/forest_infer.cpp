#include "ml/forest_infer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"
#include "obs/context.h"
#include "obs/trace.h"

// The traversal kernels are branchless gather/select loops over a
// staged row block; like the rolling-feature kernels (window_features.cpp)
// they are compiled twice on x86-64 — an AVX2 clone and a baseline one
// — and dispatched at runtime. Only avx2 is targeted (no FMA, and the
// kernels contain no contractible arithmetic anyway), so the clones
// are bit-identical; a process-wide pin lets the bench time each clone.
#ifndef __has_attribute
#define __has_attribute(x) 0
#endif
#if defined(__x86_64__) && defined(__gnu_linux__) && __has_attribute(target)
#define WEFR_INFER_AVX2 1
#else
#define WEFR_INFER_AVX2 0
#endif

namespace wefr::ml {

namespace {

/// Rows per staged block. Every block streams the whole ensemble's
/// node records once, so the block must be wide enough to amortize
/// that traffic (a 25-tree depth-13 forest is multiple MB); 512 rows
/// keeps the double stage at 512 * (slots + 1) * 8 bytes — L2-resident
/// for dozens of features — while cutting per-row node traffic 8x over
/// a 64-row block. (256 and 1024 both measured slower: halving the
/// block doubles cold node reloads, doubling it starts evicting staged
/// columns between trees.)
constexpr std::size_t kBlockRows = 512;

/// Element stride between staged columns. Deliberately NOT kBlockRows:
/// a 2 KB power-of-two column stride maps a fixed row's reads across
/// all features into the same two L1 sets (set = (col*32 + r/8) mod 64),
/// so a 16-row group walking ~30 active features contends for ~4 sets'
/// worth of ways. One extra cache line of padding per column makes the
/// column->set mapping coprime with the set count and spreads the
/// group's working set across all 64 sets. Baked into FlatNode::slot_off
/// at build time, so the kernels never see the distinction.
constexpr std::size_t kSlotStride = kBlockRows + 8;

/// Everything one block traversal reads, gathered so the kernel clones
/// share a single signature.
struct BlockArgs {
  const double* stage = nullptr;        ///< [slot][kSlotStride] raw values
  const std::uint8_t* codes = nullptr;  ///< [slot][kSlotStride] codec ranks
  std::size_t rows = 0;                 ///< occupied rows in the block
  const FlatNode* node = nullptr;       ///< packed nodes, BFS order
  const WideNode* wide = nullptr;       ///< raw-path nodes with packed child refs
  const std::uint64_t* root_packed = nullptr;  ///< per-tree packed root ref
  const std::uint8_t* cut = nullptr;    ///< per node: codec threshold rank
  const std::int32_t* tree_first = nullptr;
  const std::int32_t* tree_depth = nullptr;
  std::size_t tree_begin = 0;
  std::size_t tree_end = 0;
  double* acc = nullptr;  ///< [rows] per-row leaf-value accumulator
};

/// Batched traversal: a group of rows advances through one tree in
/// lockstep, one level per pass; leaves self-loop (-inf stage column,
/// payload in the threshold field, child == self), so no per-row
/// termination test exists, and the `code > cut` outcome feeds straight
/// into `child + go_right` — no branch for the predictor to miss. The
/// raw comparison is false for NaN, which routes NaN right — exactly
/// the recursive walk's behaviour. The end-of-tree accumulate reads the
/// payload off the leaf record itself, which the last level visit just
/// pulled into L1.
///
/// Each step of a chain is a load dependency (node -> slot -> staged
/// value -> child), so one chain is latency-bound; kGroup independent
/// chains in flight turn the walk throughput-bound. Written as an
/// explicit inner group (indices in registers, level loop outside the
/// group loop) so the compiler cannot interchange the loops back into
/// one long serial chain per row — GCC does exactly that to a plain
/// `for (level) for (row in 0..64)` nest. Walks groups of exactly
/// kGroup rows through one tree, starting at `r` and advancing it past
/// every full group consumed; the driver cascades group sizes (24,
/// then 8, then single rows) so almost no row falls through to the
/// serial walk.
template <bool kQuantized, std::size_t kGroup>
[[gnu::always_inline]] inline void walk_groups(const BlockArgs& a, std::int32_t root,
                                               std::int32_t depth, std::size_t& r) {
  const std::uint8_t* const codes = a.codes;
  const FlatNode* const node = a.node;
  const std::uint8_t* const cut = a.cut;
  const std::size_t n = a.rows;
  for (; r + kGroup <= n; r += kGroup) {
    // Hoisting the block-row base into the stage pointer lets the
    // lane index j below fold into the load's constant displacement:
    // without it GCC materializes the per-lane r+j offsets on the
    // stack and reloads one per step, an extra load on a port-bound
    // loop.
    const double* const gstage = a.stage + r;
    const std::uint8_t* const gcodes = codes + r;
    std::int32_t idx[kGroup];
    if (depth > 0) {
      // Level 0 specialised: every lane is at the root, so its fields
      // load once for the whole group instead of once per lane.
      const FlatNode rn = node[static_cast<std::size_t>(root)];
      const std::size_t rslot = static_cast<std::size_t>(rn.slot_off);
#pragma GCC unroll 32
      for (std::size_t j = 0; j < kGroup; ++j) {
        std::int32_t go_right;
        if constexpr (kQuantized) {
          go_right = gcodes[rslot + j] > cut[static_cast<std::size_t>(root)] ? 1 : 0;
        } else {
          go_right = gstage[rslot + j] <= rn.threshold ? 0 : 1;
        }
        idx[j] = rn.child + go_right;
      }
    } else {
      for (std::size_t j = 0; j < kGroup; ++j) idx[j] = root;
    }
    auto one_step = [&](std::int32_t cur, std::size_t j) {
      const std::size_t i = static_cast<std::size_t>(cur);
      const FlatNode& nd = node[i];
      const std::size_t slot = static_cast<std::size_t>(nd.slot_off);
      const std::int32_t child = nd.child;
      const double thr = nd.threshold;
      std::int32_t go_right;
      if constexpr (kQuantized) {
        go_right = gcodes[slot + j] > cut[i] ? 1 : 0;
      } else {
        go_right = gstage[slot + j] <= thr ? 0 : 1;
      }
      return child + go_right;
    };
    for (std::int32_t level = 1; level < depth; ++level) {
      std::int32_t moved = 0;
#pragma GCC unroll 32
      for (std::size_t j = 0; j < kGroup; ++j) {
        const std::int32_t next = one_step(idx[j], j);
        moved |= next ^ idx[j];
        idx[j] = next;
      }
      // All chains parked on leaf self-loops: the remaining levels are
      // no-ops. Real forests are unbalanced, so the deepest leaf is
      // far deeper than the typical one — without this check every
      // row would pay for the deepest path in the tree.
      if (moved == 0) break;
    }
    for (std::size_t j = 0; j < kGroup; ++j) {
      a.acc[r + j] += node[static_cast<std::size_t>(idx[j])].threshold;
    }
  }
}

/// `v <= thr ? l : r`, with NaN `v` selecting `r` — the split rule of
/// the recursive walk. On x86-64 this is pinned to comisd + cmovae by
/// inline asm: the pure ternary is at GCC's mercy, and whether
/// if-conversion fires turned out to depend on surrounding inlining —
/// one build produced cmov, the next sank the child loads back into a
/// data-dependent branch that mispredicts ~every other level and made
/// the whole walk 2.5x slower. (comisd thr, v sets CF when thr < v and
/// on unordered, so cmovae — CF clear — takes `l` exactly when
/// v <= thr and never for NaN.)
[[gnu::always_inline]] inline std::uint64_t select_le(double v, double thr,
                                                      std::uint64_t l, std::uint64_t r) {
#if defined(__x86_64__) && defined(__GNUC__)
  asm("comisd %[v], %[t]\n\t"
      "cmovae %[l], %[r]"
      : [r] "+r"(r)
      : [t] "x"(thr), [v] "x"(v), [l] "r"(l)
      : "cc");
  return r;
#else
  return v <= thr ? l : r;
#endif
}

/// Raw-threshold walk over WideNode records (see forest_infer.h): the
/// packed child word carries the destination's stage byte offset, so a
/// step's staged-value load depends only on the previous packed word,
/// never on this step's node-record load — the two cache accesses issue
/// in parallel and the per-level chain shrinks from
/// node -> slot -> stage -> compare to max(node, stage) -> compare.
/// Both child words load unconditionally and the compare selects with a
/// cmov, so there is still no data-dependent branch.
///
/// The group walks the full tree depth with no parked-lane bookkeeping:
/// with 16 chains in flight a group's deepest lane is usually near the
/// tree's own depth, so an early-exit check costs more in per-step
/// tracking (xor/or per lane per level, measured ~15% on this loop)
/// than the few spare levels it skips — the opposite trade from the
/// quantized kernel's 24-lane walk below. 16 lanes beat 8/10/12/20/24
/// here: enough independent chains to cover the ~18-cycle per-step
/// chain and the L2 latency of stage/node lines, while the lane state
/// still fits registers without heavy spilling.
template <std::size_t kGroup>
[[gnu::always_inline]] inline void walk_wide(const BlockArgs& a, std::uint64_t root_pk,
                                             std::int32_t depth, std::size_t& r) {
  const char* const nbase = reinterpret_cast<const char*>(a.wide);
  const std::size_t n = a.rows;
  for (; r + kGroup <= n; r += kGroup) {
    const char* const sbase = reinterpret_cast<const char*>(a.stage + r);
    std::uint64_t pk[kGroup];
    if (depth > 0) {
      // Level 0 specialised: every lane is at the root, so its record
      // loads once for the whole group.
      const WideNode& rn =
          *reinterpret_cast<const WideNode*>(nbase + static_cast<std::uint32_t>(root_pk));
      const std::size_t roff = static_cast<std::size_t>(root_pk >> 32);
      const double rthr = rn.thr;
      const std::uint64_t rl = rn.left, rr = rn.right;
#pragma GCC unroll 16
      for (std::size_t j = 0; j < kGroup; ++j) {
        double v;
        std::memcpy(&v, sbase + roff + 8 * j, sizeof v);
        pk[j] = select_le(v, rthr, rl, rr);
      }
      for (std::int32_t level = 1; level < depth; ++level) {
#pragma GCC unroll 16
        for (std::size_t j = 0; j < kGroup; ++j) {
          const std::uint64_t p = pk[j];
          const WideNode& nd =
              *reinterpret_cast<const WideNode*>(nbase + static_cast<std::uint32_t>(p));
          double v;
          std::memcpy(&v, sbase + (p >> 32) + 8 * j, sizeof v);
          pk[j] = select_le(v, nd.thr, nd.left, nd.right);
        }
      }
    } else {
      for (std::size_t j = 0; j < kGroup; ++j) pk[j] = root_pk;
    }
#pragma GCC unroll 16
    for (std::size_t j = 0; j < kGroup; ++j) {
      double payload;
      std::memcpy(&payload, nbase + static_cast<std::uint32_t>(pk[j]), sizeof payload);
      a.acc[r + j] += payload;
    }
  }
}

template <std::size_t kGroup>
[[gnu::always_inline]] inline void run_trees_wide(const BlockArgs& a) {
  const char* const nbase = reinterpret_cast<const char*>(a.wide);
  const std::size_t n = a.rows;
  for (std::size_t t = a.tree_begin; t < a.tree_end; ++t) {
    const std::uint64_t root_pk = a.root_packed[t];
    const std::int32_t depth = a.tree_depth[t];
    std::size_t r = 0;
    walk_wide<kGroup>(a, root_pk, depth, r);
    for (; r < n; ++r) {  // last rows walk one chain at a time
      const char* const sb = reinterpret_cast<const char*>(a.stage + r);
      std::uint64_t p = root_pk;
      for (std::int32_t level = 0; level < depth; ++level) {
        const WideNode& nd =
            *reinterpret_cast<const WideNode*>(nbase + static_cast<std::uint32_t>(p));
        double v;
        std::memcpy(&v, sb + (p >> 32), sizeof v);
        const std::uint64_t next = select_le(v, nd.thr, nd.left, nd.right);
        if (next == p) break;  // parked on a leaf self-loop
        p = next;
      }
      double payload;
      std::memcpy(&payload, nbase + static_cast<std::uint32_t>(p), sizeof payload);
      a.acc[r] += payload;
    }
  }
}

template <bool kQuantized, std::size_t kGroup>
[[gnu::always_inline]] inline void run_trees_impl(const BlockArgs& a) {
  const std::uint8_t* const codes = a.codes;
  const FlatNode* const node = a.node;
  const std::uint8_t* const cut = a.cut;
  const std::size_t n = a.rows;
  for (std::size_t t = a.tree_begin; t < a.tree_end; ++t) {
    const std::int32_t root = a.tree_first[t];
    const std::int32_t depth = a.tree_depth[t];
    std::size_t r = 0;
    walk_groups<kQuantized, kGroup>(a, root, depth, r);
    // A 512-row block is not a multiple of 24; mop up with a group
    // size that divides the remainder (512 = 21*24 + 1*8) instead of
    // dropping up to 23 rows onto the serial walk below.
    if constexpr (kGroup > 8) walk_groups<kQuantized, 8>(a, root, depth, r);
    for (; r < n; ++r) {  // last rows walk one chain at a time
      std::size_t i = static_cast<std::size_t>(root);
      for (std::int32_t level = 0; level < depth; ++level) {
        const FlatNode& nd = node[i];
        const std::size_t col = static_cast<std::size_t>(nd.slot_off) + r;
        std::int32_t go_right;
        if constexpr (kQuantized) {
          go_right = codes[col] > cut[i] ? 1 : 0;
        } else {
          go_right = a.stage[col] <= nd.threshold ? 0 : 1;
        }
        const std::size_t next = static_cast<std::size_t>(nd.child + go_right);
        if (next == i) break;  // parked on a leaf self-loop
        i = next;
      }
      a.acc[r] += node[i].threshold;
    }
  }
}

void run_trees_double_base(const BlockArgs& a) { run_trees_wide<16>(a); }
void run_trees_quant_base(const BlockArgs& a) { run_trees_impl<true, 24>(a); }

#if WEFR_INFER_AVX2
[[gnu::target("avx2")]] void run_trees_double_avx2(const BlockArgs& a) {
  run_trees_wide<16>(a);
}
[[gnu::target("avx2")]] void run_trees_quant_avx2(const BlockArgs& a) {
  run_trees_impl<true, 24>(a);
}
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool cpu_has_avx2() { return false; }
#endif

std::atomic<bool> g_avx2_enabled{cpu_has_avx2()};

/// Neutral node form both learners flatten through.
struct RawNode {
  std::int32_t feature = -1;  // < 0 = leaf
  double threshold = 0.0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;  // leaf payload
};

/// Codec rank of `v` among the sorted thresholds [first, first + len):
/// the number of thresholds strictly below v, so that `v <= thrs[i]`
/// iff `rank(v) <= i` for every i. NaN maps past the last rank (always
/// routes right), mirroring the raw comparison; the isnan test is the
/// only branch — a `std::lower_bound` here costs ~8 mispredicts per
/// value on real data and dominated the whole quantized path, so the
/// search is a branchless cmov ladder instead.
std::uint8_t code_of(const double* first, std::size_t len, double v) {
  if (std::isnan(v)) [[unlikely]]
    return static_cast<std::uint8_t>(len);
  const double* base = first;
  std::size_t n = len;
  while (n > 1) {
    const std::size_t half = n / 2;
    base = base[half] < v ? base + half : base;  // compiles to cmov
    n -= half;
  }
  const std::size_t rank =
      static_cast<std::size_t>(base - first) + (len != 0 && *base < v ? 1 : 0);
  return static_cast<std::uint8_t>(rank);
}

}  // namespace

void FlatForest::set_avx2_enabled(bool on) {
  g_avx2_enabled.store(on && cpu_has_avx2(), std::memory_order_relaxed);
}
bool FlatForest::avx2_enabled() { return g_avx2_enabled.load(std::memory_order_relaxed); }
bool FlatForest::avx2_available() { return cpu_has_avx2(); }

/// Friend of FlatForest (see forest_infer.h): fills the SoA arrays from
/// the neutral node form both learners lower into.
struct FlatBuilder {
  static FlatForest build(std::span<const std::vector<RawNode>> trees,
                          std::size_t num_features, const obs::Context* obs);
};

FlatForest FlatForest::from(const RandomForest& forest, const obs::Context* obs) {
  if (!forest.trained()) throw std::logic_error("FlatForest::from: forest not trained");
  std::vector<std::vector<RawNode>> raw;
  raw.reserve(forest.trees_.size());
  for (const DecisionTree& tree : forest.trees_) {
    std::vector<RawNode>& nodes = raw.emplace_back();
    nodes.reserve(tree.nodes_.size());
    for (const auto& nd : tree.nodes_) {
      RawNode rn;
      rn.feature = nd.feature;
      rn.threshold = nd.threshold;
      rn.left = nd.left;
      rn.right = nd.right;
      if (nd.feature < 0) rn.value = nd.prob;
      nodes.push_back(rn);
    }
  }
  return FlatBuilder::build(raw, forest.num_features(), obs);
}

FlatForest FlatForest::from(const Gbdt& model, const obs::Context* obs) {
  if (!model.trained()) throw std::logic_error("FlatForest::from: model not trained");
  std::vector<std::vector<RawNode>> raw;
  raw.reserve(model.trees_.size());
  for (const auto& tree : model.trees_) {
    std::vector<RawNode>& nodes = raw.emplace_back();
    nodes.reserve(tree.nodes.size());
    for (const auto& nd : tree.nodes) {
      RawNode rn;
      rn.feature = nd.feature;
      rn.threshold = nd.threshold;
      rn.left = nd.left;
      rn.right = nd.right;
      if (nd.feature < 0) rn.value = nd.weight;
      nodes.push_back(rn);
    }
  }
  return FlatBuilder::build(raw, model.num_features_, obs);
}

FlatForest FlatBuilder::build(std::span<const std::vector<RawNode>> trees,
                              std::size_t num_features, const obs::Context* obs) {
  obs::Span span(obs, "forest:flatten");
  FlatForest flat;
  flat.num_features_ = num_features;

  // Pass 1: which columns are split on, and every distinct threshold
  // per column (the codec).
  std::vector<std::vector<double>> per_feature(num_features);
  std::size_t total_nodes = 0;
  for (const auto& tree : trees) {
    total_nodes += tree.size();
    for (const RawNode& nd : tree) {
      if (nd.feature < 0) continue;
      if (static_cast<std::size_t>(nd.feature) >= num_features)
        throw std::logic_error("FlatForest: split feature out of range");
      per_feature[static_cast<std::size_t>(nd.feature)].push_back(nd.threshold);
    }
  }

  flat.feature_slot_.assign(num_features, -1);
  flat.quantized_ = true;
  flat.codec_first_.push_back(0);
  for (std::size_t f = 0; f < num_features; ++f) {
    auto& thrs = per_feature[f];
    if (thrs.empty()) continue;
    std::sort(thrs.begin(), thrs.end());
    thrs.erase(std::unique(thrs.begin(), thrs.end()), thrs.end());
    flat.feature_slot_[f] = static_cast<std::int32_t>(flat.active_.size());
    flat.active_.push_back(static_cast<std::int32_t>(f));
    flat.codec_values_.insert(flat.codec_values_.end(), thrs.begin(), thrs.end());
    flat.codec_first_.push_back(static_cast<std::int32_t>(flat.codec_values_.size()));
    // Codec ranks run [0, count] (count = "above every threshold"), so
    // uint8 coverage needs count <= 255.
    if (thrs.size() > 255) flat.quantized_ = false;
  }

  // Pass 2: emit the packed nodes, one contiguous BFS run per tree.
  // BFS order makes every interior node's children adjacent (the
  // traversal steps with `child + go_right`) and keeps each level's
  // nodes on neighbouring cache lines — the top of a tree, which every
  // row visits, packs into a handful of lines.
  flat.node_.reserve(total_nodes);
  flat.cut_.reserve(total_nodes);
  flat.tree_first_.reserve(trees.size());
  flat.tree_depth_.reserve(trees.size());

  std::vector<std::int32_t> order;  // original ids, BFS
  for (const auto& tree : trees) {
    if (tree.empty()) throw std::logic_error("FlatForest: empty tree");
    const std::int32_t base = static_cast<std::int32_t>(flat.node_.size());
    flat.tree_first_.push_back(base);
    const auto n_local = static_cast<std::int32_t>(tree.size());

    order.assign(1, 0);
    std::vector<std::int32_t> newid(tree.size(), -1);
    newid[0] = 0;
    for (std::size_t q = 0; q < order.size(); ++q) {
      const RawNode& nd = tree[static_cast<std::size_t>(order[q])];
      if (nd.feature < 0) continue;
      if (nd.left < 0 || nd.left >= n_local || nd.right < 0 || nd.right >= n_local)
        throw std::logic_error("FlatForest: child index out of range");
      newid[static_cast<std::size_t>(nd.left)] = static_cast<std::int32_t>(order.size());
      order.push_back(nd.left);
      newid[static_cast<std::size_t>(nd.right)] = static_cast<std::int32_t>(order.size());
      order.push_back(nd.right);
    }
    if (order.size() != tree.size())
      throw std::logic_error("FlatForest: tree nodes unreachable from root");

    for (std::size_t q = 0; q < order.size(); ++q) {
      const RawNode& nd = tree[static_cast<std::size_t>(order[q])];
      const std::int32_t me = base + static_cast<std::int32_t>(q);
      if (nd.feature < 0) {
        // Leaf: payload overlays the threshold field, parked on the
        // -inf stage column (-inf <= any finite payload, and code 0 is
        // never > cut 255), so go_right stays 0 and child == self. A
        // NaN payload would compare false and walk the row off the
        // leaf, so reject it here (training never produces one).
        if (std::isnan(nd.value))
          throw std::logic_error("FlatForest: NaN leaf payload");
        flat.node_.push_back(FlatNode{nd.value, 0, me});
        flat.cut_.push_back(255);
        continue;
      }
      const std::int32_t s = flat.feature_slot_[static_cast<std::size_t>(nd.feature)];
      const std::int32_t left = base + newid[static_cast<std::size_t>(nd.left)];
      flat.node_.push_back(FlatNode{
          nd.threshold, (s + 1) * static_cast<std::int32_t>(kSlotStride), left});
      // BFS pushes the two children back to back.
      if (base + newid[static_cast<std::size_t>(nd.right)] != left + 1)
        throw std::logic_error("FlatForest: BFS children not adjacent");
      // Exact rank lookup: the threshold came from this list.
      const double* first = flat.codec_values_.data() + flat.codec_first_[s];
      const double* last = flat.codec_values_.data() + flat.codec_first_[s + 1];
      const double* pos = std::lower_bound(first, last, nd.threshold);
      flat.cut_.push_back(static_cast<std::uint8_t>(std::min<std::ptrdiff_t>(pos - first, 255)));
    }

    // Tree depth = deepest leaf, via an explicit (node, depth) stack.
    std::int32_t depth = 0;
    std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 0}};
    while (!stack.empty()) {
      const auto [i, d] = stack.back();
      stack.pop_back();
      const RawNode& nd = tree[static_cast<std::size_t>(i)];
      if (nd.feature < 0) {
        depth = std::max(depth, d);
        continue;
      }
      stack.emplace_back(nd.left, d + 1);
      stack.emplace_back(nd.right, d + 1);
    }
    flat.tree_depth_.push_back(depth);
    flat.max_depth_ = std::max(flat.max_depth_, static_cast<int>(depth));
  }

  // WideNode mirror for the raw-threshold batch kernel (see
  // forest_infer.h): each child reference packs the child's node byte
  // offset with the byte offset of the child's own staged column.
  const auto packed = [&flat](std::int32_t k) {
    const auto i = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
    const auto slot =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(flat.node_[i].slot_off));
    return i * sizeof(WideNode) | (slot * sizeof(double)) << 32;
  };
  flat.wide_.resize(flat.node_.size());
  for (std::size_t i = 0; i < flat.node_.size(); ++i) {
    const FlatNode& nd = flat.node_[i];
    WideNode& w = flat.wide_[i];
    w.thr = nd.threshold;
    const bool leaf = nd.child == static_cast<std::int32_t>(i);
    w.left = packed(leaf ? static_cast<std::int32_t>(i) : nd.child);
    w.right = packed(leaf ? static_cast<std::int32_t>(i) : nd.child + 1);
  }
  flat.root_packed_.reserve(flat.tree_first_.size());
  for (const std::int32_t rt : flat.tree_first_) flat.root_packed_.push_back(packed(rt));

  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_forest_flattened_total", 1);
    obs::add_counter(obs, "wefr_forest_flattened_nodes_total", total_nodes);
  }
  return flat;
}

void FlatForest::accumulate(const data::Matrix& x, std::span<const std::size_t> rows,
                            std::span<double> out, const ColumnOverride* override_col,
                            InferencePath path) const {
  if (out.size() != rows.size())
    throw std::invalid_argument("FlatForest::accumulate: out/rows size mismatch");
  accumulate_range(x, rows.data(), 0, rows.size(), out, 0, tree_first_.size(),
                   override_col, path);
}

void FlatForest::accumulate(const data::Matrix& x, std::size_t row_begin,
                            std::size_t row_end, std::span<double> out,
                            InferencePath path) const {
  if (row_begin > row_end || row_end > x.rows())
    throw std::invalid_argument("FlatForest::accumulate: bad row range");
  if (out.size() != row_end - row_begin)
    throw std::invalid_argument("FlatForest::accumulate: out/range size mismatch");
  accumulate_range(x, nullptr, row_begin, row_end - row_begin, out, 0,
                   tree_first_.size(), nullptr, path);
}

void FlatForest::accumulate_tree(std::size_t tree, const data::Matrix& x,
                                 std::span<const std::size_t> rows, std::span<double> out,
                                 const ColumnOverride* override_col) const {
  if (tree >= tree_first_.size())
    throw std::invalid_argument("FlatForest::accumulate_tree: tree out of range");
  if (out.size() != rows.size())
    throw std::invalid_argument("FlatForest::accumulate_tree: out/rows size mismatch");
  accumulate_range(x, rows.data(), 0, rows.size(), out, tree, tree + 1, override_col,
                   InferencePath::kAuto);
}

void FlatForest::accumulate_range(const data::Matrix& x, const std::size_t* rows,
                                  std::size_t row_begin, std::size_t n,
                                  std::span<double> out, std::size_t tree_begin,
                                  std::size_t tree_end,
                                  const ColumnOverride* override_col,
                                  InferencePath path) const {
  if (empty()) throw std::logic_error("FlatForest::accumulate: empty forest");
  if (x.cols() != num_features_)
    throw std::invalid_argument("FlatForest::accumulate: feature count mismatch");
  if (override_col != nullptr && override_col->feature >= num_features_)
    throw std::invalid_argument("FlatForest::accumulate: override feature out of range");

  // kAuto picks by measured staging economics: a double stages as one
  // plain strided load, a code as a ~log2(K) cmov ladder on top of it,
  // and in-cache traversal reads byte vs double equally fast — so the
  // codes only pay for themselves once the double stage outgrows L2
  // (hundreds of active features). kQuantized stays an explicit knob so
  // the bench and the equivalence tests can pin that path directly.
  constexpr std::size_t kQuantAutoStageBytes = 256 * 1024;
  const bool use_quantized =
      path == InferencePath::kDouble
          ? false
          : quantized_ && (path == InferencePath::kQuantized ||
                           active_.size() * kSlotStride * sizeof(double) >
                               kQuantAutoStageBytes);
  // Column 0 of the stage is the reserved parking column leaves point
  // at (see FlatNode): -inf on the double path (-inf <= any finite
  // leaf payload), value-initialized zero codes on the quantized path
  // (0 is never > cut 255). Active feature `s` stages at column
  // `s + 1`.
  const std::size_t slots = active_.size() + 1;

  std::vector<double> stage;
  std::vector<std::uint8_t> codes;
  if (use_quantized) {
    codes.resize(slots * kSlotStride);
  } else {
    stage.resize(slots * kSlotStride);
    std::fill(stage.begin(), stage.begin() + kBlockRows,
              -std::numeric_limits<double>::infinity());
  }

  BlockArgs args;
  args.stage = stage.data();
  args.codes = codes.data();
  args.node = node_.data();
  args.wide = wide_.data();
  args.root_packed = root_packed_.data();
  args.cut = cut_.data();
  args.tree_first = tree_first_.data();
  args.tree_depth = tree_depth_.data();
  args.tree_begin = tree_begin;
  args.tree_end = tree_end;

  using Kernel = void (*)(const BlockArgs&);
  Kernel kernel;
#if WEFR_INFER_AVX2
  if (g_avx2_enabled.load(std::memory_order_relaxed)) {
    kernel = use_quantized ? run_trees_quant_avx2 : run_trees_double_avx2;
  } else
#endif
  {
    kernel = use_quantized ? run_trees_quant_base : run_trees_double_base;
  }

  const std::int32_t override_slot =
      override_col != nullptr ? feature_slot_[override_col->feature] : -1;

  for (std::size_t begin = 0; begin < n; begin += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, n - begin);
    auto src_row = [&](std::size_t r) {
      return rows != nullptr ? rows[begin + r] : row_begin + begin + r;
    };
    // Stage the block column-major: one contiguous kBlockRows run per
    // active feature, so every tree's gathers hit the same hot scratch.
    if (use_quantized) {
      for (std::size_t s = 0; s < active_.size(); ++s) {
        const std::size_t f = static_cast<std::size_t>(active_[s]);
        const bool overridden = static_cast<std::int32_t>(s) == override_slot;
        const double* first = codec_values_.data() + codec_first_[s];
        const std::size_t len =
            static_cast<std::size_t>(codec_first_[s + 1] - codec_first_[s]);
        std::uint8_t* dst = codes.data() + (s + 1) * kSlotStride;
        for (std::size_t r = 0; r < count; ++r) {
          const double v = overridden ? override_col->values[begin + r]
                                      : x(src_row(r), f);
          dst[r] = code_of(first, len, v);
        }
      }
    } else {
      // Feature-outer: sequential stores into each column run, short
      // strided reads across the block's rows. (The row-outer
      // transpose — sequential reads, strided stores — measured no
      // faster even with the padded stride, and 3x slower at a 2 KB
      // power-of-two stride where every store landed in the same few
      // L1 sets.)
      for (std::size_t s = 0; s < active_.size(); ++s) {
        const std::size_t f = static_cast<std::size_t>(active_[s]);
        const bool overridden = static_cast<std::int32_t>(s) == override_slot;
        double* dst = stage.data() + (s + 1) * kSlotStride;
        for (std::size_t r = 0; r < count; ++r) {
          dst[r] = overridden ? override_col->values[begin + r] : x(src_row(r), f);
        }
      }
    }
    args.rows = count;
    args.acc = out.data() + begin;
    kernel(args);
  }
}

}  // namespace wefr::ml
