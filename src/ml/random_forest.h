#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "data/matrix.h"
#include "ml/tree.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::ml {

class FlatForest;

/// Random-Forest training controls. Defaults follow the paper's
/// prediction-model setting (100 trees, max depth 13).
struct ForestOptions {
  std::size_t num_trees = 100;
  TreeOptions tree;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  /// Per-split feature subsample; 0 means sqrt(#features).
  std::size_t max_features = 0;
  /// Worker threads for tree fitting; 0 = sequential.
  std::size_t num_threads = 0;
};

/// Bagged ensemble of CART trees with per-split feature subsampling.
///
/// Provides both notions of feature importance the paper relies on:
/// mean Gini impurity decrease (fast, used to rank features) and
/// permutation importance ("degree of reduction of classification
/// accuracy after adding noises to a learning feature", Breiman 2001).
class RandomForest {
 public:
  /// Fits `opt.num_trees` trees on bootstrap resamples of (x, y).
  /// Deterministic for a given seed, including in threaded mode (each
  /// tree gets its own pre-forked stream). When histogram splitting is
  /// in effect (see TreeOptions::split_method) the dataset is quantized
  /// once here and shared read-only by every tree.
  ///
  /// `obs` (nullable) wraps the fit in a "forest:fit" span, counts the
  /// trees fitted, and records the wall time in the
  /// wefr_forest_fit_seconds histogram.
  void fit(const data::Matrix& x, std::span<const int> y, const ForestOptions& opt,
           util::Rng& rng, const obs::Context* obs = nullptr);

  /// Mean positive-class probability across trees for a single row.
  double predict_proba(std::span<const double> row) const;

  /// Probabilities for every row of `x`, scored through the flattened
  /// SoA engine (ml::FlatForest) built at fit/load time — bit-identical
  /// to the per-row recursive walk. `num_threads > 1` fans row blocks
  /// out over a ThreadPool; results are identical at any thread count.
  /// `obs` (nullable) wraps the call in a "forest:predict_batch" span
  /// and counts the rows scored (wefr_forest_rows_scored_total,
  /// wefr_inference_rows_total).
  std::vector<double> predict_proba(const data::Matrix& x,
                                    std::size_t num_threads = 0,
                                    const obs::Context* obs = nullptr) const;

  /// Batch scoring of selected rows: `out[i]` receives the forest
  /// probability of row `rows[i]` of `x` (out.size() == rows.size()).
  /// Same flattened engine and bit-identity guarantee as the Matrix
  /// overload; used by core::score_fleet to score each drive's
  /// drive-days in one pass.
  void predict_proba(const data::Matrix& x, std::span<const std::size_t> rows,
                     std::span<double> out, const obs::Context* obs = nullptr) const;

  /// Normalized mean impurity-decrease importance (sums to 1 unless all
  /// zero). Length = number of training features.
  std::vector<double> impurity_importance() const;

  /// Permutation importance on an evaluation set: the decrease of
  /// accuracy (at the 0.5 probability cut) after shuffling each feature
  /// column, averaged over `repeats` shuffles. Negative values are
  /// floored at 0. Each feature draws from its own stream pre-forked
  /// off `rng`, so results do not depend on `num_threads` (features fan
  /// out over a ThreadPool when it is > 1).
  std::vector<double> permutation_importance(const data::Matrix& x, std::span<const int> y,
                                             util::Rng& rng, int repeats = 1,
                                             std::size_t num_threads = 0) const;

  /// Breiman's original out-of-bag permutation importance: for each
  /// tree, the accuracy drop on its own OOB samples after permuting a
  /// feature, averaged over trees. Requires the forest to have been fit
  /// on (x, y) with the same row order (OOB masks are recorded at fit
  /// time). More faithful to [Breiman 2001] than the evaluation-set
  /// variant and needs no held-out data. Parallelizes over features
  /// like permutation_importance (per-feature pre-forked streams, so
  /// results do not depend on `num_threads`).
  std::vector<double> oob_permutation_importance(const data::Matrix& x,
                                                 std::span<const int> y, util::Rng& rng,
                                                 std::size_t num_threads = 0) const;

  /// Serializes the fitted forest to a line-oriented text format
  /// (version-tagged; raw doubles at full precision). Throws when not
  /// trained or on I/O failure.
  void save(std::ostream& os) const;
  /// Restores a forest written by save(); replaces this object's state.
  /// Throws std::runtime_error on malformed input.
  void load(std::istream& is);

  std::size_t num_trees() const { return trees_.size(); }
  bool trained() const { return !trees_.empty(); }
  std::size_t num_features() const { return num_features_; }

  /// The flattened inference engine compiled from this forest at
  /// fit/load time (null before either). Exposed for benches and tests
  /// that exercise specific kernel paths.
  const FlatForest* flat() const { return flat_.get(); }

 private:
  friend class FlatForest;

  const FlatForest& flat_ref() const;

  std::vector<DecisionTree> trees_;
  /// Per tree: sorted unique in-bag row indices (for OOB importance).
  std::vector<std::vector<std::size_t>> inbag_;
  std::size_t num_features_ = 0;
  /// SoA-compiled twin of trees_, rebuilt at the end of fit()/load();
  /// shared so copies of a fitted forest share one flat image.
  std::shared_ptr<const FlatForest> flat_;
};

}  // namespace wefr::ml
