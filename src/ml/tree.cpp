#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/quantize.h"

namespace wefr::ml {

namespace {

double gini(std::size_t pos, std::size_t n) {
  if (n == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * p * (1.0 - p);
}

/// Best split of one feature over the node's samples.
struct SplitCandidate {
  bool valid = false;
  double threshold = 0.0;
  double impurity_decrease = -1.0;  // weighted by node fraction later
  std::size_t left_count = 0;
};

}  // namespace

/// Everything one fit's recursion shares: the training data, the
/// resolved options, and scratch buffers that would otherwise be
/// reallocated at every node (candidate features, the exact splitter's
/// sort scratch, the histogram accumulators).
struct DecisionTree::BuildContext {
  const data::Matrix& x;
  std::span<const int> y;
  const TreeOptions& opt;
  util::Rng& rng;
  std::size_t n_total = 0;
  /// Non-null selects histogram split finding.
  const QuantizedDataset* quantized = nullptr;

  std::vector<std::size_t> features;
  std::vector<std::pair<double, int>> sorted;  ///< exact: (value, label)
  std::vector<std::size_t> bin_count;          ///< histogram: samples per bin
  std::vector<std::size_t> bin_pos;            ///< histogram: positives per bin
};

namespace {

SplitCandidate best_split_exact(const DecisionTree::BuildContext& ctx_const,
                                std::vector<std::pair<double, int>>& scratch,
                                std::span<const std::size_t> idx, std::size_t feature,
                                std::size_t node_pos) {
  const data::Matrix& x = ctx_const.x;
  std::span<const int> y = ctx_const.y;
  const TreeOptions& opt = ctx_const.opt;

  const std::size_t n = idx.size();
  scratch.clear();
  scratch.reserve(n);
  for (std::size_t i : idx) scratch.emplace_back(x(i, feature), y[i]);
  std::sort(scratch.begin(), scratch.end());

  SplitCandidate best;
  if (scratch.front().first == scratch.back().first) return best;  // constant feature

  const double parent = gini(node_pos, n);
  std::size_t pos_left = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pos_left += scratch[i].second != 0 ? 1 : 0;
    if (scratch[i].first == scratch[i + 1].first) continue;  // not a boundary
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    if (n_left < opt.min_samples_leaf || n_right < opt.min_samples_leaf) continue;
    const std::size_t pos_right = node_pos - pos_left;
    const double child =
        (static_cast<double>(n_left) * gini(pos_left, n_left) +
         static_cast<double>(n_right) * gini(pos_right, n_right)) /
        static_cast<double>(n);
    const double decrease = parent - child;
    if (decrease > best.impurity_decrease) {
      best.valid = true;
      best.impurity_decrease = decrease;
      // Midpoint threshold; `x <= threshold` routes left.
      best.threshold = scratch[i].first + (scratch[i + 1].first - scratch[i].first) / 2.0;
      // Guard: midpoint can round to the upper value for adjacent doubles.
      if (best.threshold >= scratch[i + 1].first) best.threshold = scratch[i].first;
      best.left_count = n_left;
    }
  }
  return best;
}

SplitCandidate best_split_histogram(DecisionTree::BuildContext& ctx,
                                    std::span<const std::size_t> idx, std::size_t feature,
                                    std::size_t node_pos) {
  const QuantizedDataset& q = *ctx.quantized;
  const TreeOptions& opt = ctx.opt;
  const std::size_t bins = q.num_bins(feature);

  SplitCandidate best;
  if (bins < 2) return best;  // constant feature

  const std::uint8_t* codes = q.codes(feature).data();
  auto& cnt = ctx.bin_count;
  auto& pos = ctx.bin_pos;
  std::fill(cnt.begin(), cnt.begin() + static_cast<std::ptrdiff_t>(bins), 0);
  std::fill(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(bins), 0);
  for (std::size_t i : idx) {
    const std::uint8_t b = codes[i];
    ++cnt[b];
    pos[b] += ctx.y[i] != 0 ? 1 : 0;
  }

  const std::size_t n = idx.size();
  const double parent = gini(node_pos, n);
  // Scan boundaries between consecutive *node-occupied* bins so the
  // threshold is the midpoint of the node's adjacent raw values — the
  // exact splitter's choice whenever bins hold single distinct values.
  std::size_t n_left = 0, pos_left = 0;
  std::size_t prev = bins;  // sentinel: no occupied bin seen yet
  for (std::size_t b = 0; b < bins; ++b) {
    if (cnt[b] == 0) continue;
    if (prev != bins) {
      const std::size_t n_right = n - n_left;
      if (n_left >= opt.min_samples_leaf && n_right >= opt.min_samples_leaf) {
        const std::size_t pos_right = node_pos - pos_left;
        const double child =
            (static_cast<double>(n_left) * gini(pos_left, n_left) +
             static_cast<double>(n_right) * gini(pos_right, n_right)) /
            static_cast<double>(n);
        const double decrease = parent - child;
        if (decrease > best.impurity_decrease) {
          best.valid = true;
          best.impurity_decrease = decrease;
          best.threshold = q.threshold_between(feature, prev, b);
          best.left_count = n_left;
        }
      }
    }
    n_left += cnt[b];
    pos_left += pos[b];
    prev = b;
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const data::Matrix& x, std::span<const int> y,
                       std::span<const std::size_t> sample_idx, const TreeOptions& opt,
                       util::Rng& rng, const QuantizedDataset* quantized) {
  if (x.rows() != y.size()) throw std::invalid_argument("DecisionTree::fit: shape mismatch");
  if (sample_idx.empty()) throw std::invalid_argument("DecisionTree::fit: no samples");

  bool histogram = false;
  switch (opt.split_method) {
    case SplitMethod::kExact:
      histogram = false;
      break;
    case SplitMethod::kHistogram:
      histogram = true;
      break;
    case SplitMethod::kAuto:
      histogram = quantized != nullptr || sample_idx.size() >= opt.histogram_cutoff;
      break;
  }

  QuantizedDataset local;
  const QuantizedDataset* q = nullptr;
  if (histogram) {
    if (quantized != nullptr) {
      if (quantized->rows() != x.rows() || quantized->cols() != x.cols())
        throw std::invalid_argument("DecisionTree::fit: quantized shape mismatch");
      q = quantized;
    } else {
      local.build(x, opt.max_bins);
      q = &local;
    }
  }

  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<std::size_t> idx(sample_idx.begin(), sample_idx.end());
  // Worst case: every leaf holds min_samples_leaf samples, so there are
  // at most n/leaf leaves and 2*(n/leaf) - 1 nodes; the depth limit
  // bounds the count independently at 2^(depth+1) - 1.
  const std::size_t by_leaf =
      2 * (idx.size() / std::max<std::size_t>(1, opt.min_samples_leaf)) + 1;
  const std::size_t by_depth =
      opt.max_depth < 30 ? (std::size_t{2} << opt.max_depth) - 1 : by_leaf;
  nodes_.reserve(std::min(by_leaf, by_depth));

  BuildContext ctx{x, y, opt, rng, idx.size(), q, {}, {}, {}, {}};
  if (q != nullptr) {
    std::size_t most_bins = 0;
    for (std::size_t f = 0; f < x.cols(); ++f) most_bins = std::max(most_bins, q->num_bins(f));
    ctx.bin_count.resize(most_bins);
    ctx.bin_pos.resize(most_bins);
  }
  build(ctx, idx, 0, idx.size(), 0);
}

void DecisionTree::fit(const data::Matrix& x, std::span<const int> y, const TreeOptions& opt,
                       util::Rng& rng) {
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  fit(x, y, idx, opt, rng);
}

std::int32_t DecisionTree::build(BuildContext& ctx, std::vector<std::size_t>& idx,
                                 std::size_t begin, std::size_t end, int depth) {
  const data::Matrix& x = ctx.x;
  std::span<const int> y = ctx.y;
  const TreeOptions& opt = ctx.opt;

  const std::size_t n = end - begin;
  std::size_t node_pos = 0;
  for (std::size_t i = begin; i < end; ++i) node_pos += y[idx[i]] != 0 ? 1 : 0;

  const std::int32_t me = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[me].prob = static_cast<double>(node_pos) / static_cast<double>(n);
  nodes_[me].depth = depth;

  const bool pure = node_pos == 0 || node_pos == n;
  if (pure || depth >= opt.max_depth || n < opt.min_samples_split) return me;

  // Candidate features: all, or a per-node random subset (forest mode).
  // `ctx.features` is only consumed before the recursive calls below, so
  // one buffer serves the whole fit.
  const std::size_t nf = x.cols();
  std::vector<std::size_t>& features = ctx.features;
  if (opt.max_features == 0 || opt.max_features >= nf) {
    features.resize(nf);
    std::iota(features.begin(), features.end(), 0);
  } else {
    ctx.rng.sample_without_replacement(nf, opt.max_features, features);
  }

  std::span<const std::size_t> node_idx(idx.data() + begin, n);
  // Histogram search on large nodes; small nodes fall back to the exact
  // sort (cheap there, and global bin edges are too coarse for them).
  const bool use_histogram =
      ctx.quantized != nullptr && (opt.exact_node_cutoff == 0 || n >= opt.exact_node_cutoff);
  SplitCandidate best;
  std::size_t best_feature = 0;
  for (std::size_t f : features) {
    const SplitCandidate cand =
        use_histogram ? best_split_histogram(ctx, node_idx, f, node_pos)
                      : best_split_exact(ctx, ctx.sorted, node_idx, f, node_pos);
    if (cand.valid && (!best.valid || cand.impurity_decrease > best.impurity_decrease)) {
      best = cand;
      best_feature = f;
    }
  }
  if (!best.valid || best.impurity_decrease <= 0.0) return me;

  // Partition [begin, end) by the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return x(i, best_feature) <= best.threshold; });
  const std::size_t mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return me;  // numeric edge case: degenerate partition

  importance_[best_feature] +=
      best.impurity_decrease * static_cast<double>(n) / static_cast<double>(ctx.n_total);

  nodes_[me].feature = static_cast<std::int32_t>(best_feature);
  nodes_[me].threshold = best.threshold;
  const std::int32_t left = build(ctx, idx, begin, mid, depth + 1);
  nodes_[me].left = left;
  const std::int32_t right = build(ctx, idx, mid, end, depth + 1);
  nodes_[me].right = right;
  return me;
}

double DecisionTree::predict_proba(std::span<const double> row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict_proba: not trained");
  std::int32_t node = 0;
  for (;;) {
    const Node& nd = nodes_[node];
    if (nd.feature < 0) return nd.prob;
    node = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
}

int DecisionTree::depth() const {
  int d = 0;
  for (const auto& nd : nodes_) d = std::max(d, nd.depth);
  return d;
}

void DecisionTree::save(std::ostream& os) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::save: not trained");
  os << "tree " << nodes_.size() << ' ' << importance_.size() << '\n';
  os.precision(17);
  for (const auto& nd : nodes_) {
    os << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' ' << nd.right << ' '
       << nd.prob << ' ' << nd.depth << '\n';
  }
  for (std::size_t f = 0; f < importance_.size(); ++f) {
    os << importance_[f] << (f + 1 == importance_.size() ? '\n' : ' ');
  }
}

void DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t n_nodes = 0, n_features = 0;
  if (!(is >> tag >> n_nodes >> n_features) || tag != "tree" || n_nodes == 0)
    throw std::runtime_error("DecisionTree::load: bad header");
  std::vector<Node> nodes(n_nodes);
  for (auto& nd : nodes) {
    if (!(is >> nd.feature >> nd.threshold >> nd.left >> nd.right >> nd.prob >> nd.depth))
      throw std::runtime_error("DecisionTree::load: truncated node list");
    const auto max_node = static_cast<std::int32_t>(n_nodes);
    const bool leaf = nd.feature < 0;
    if (!leaf && (nd.left < 0 || nd.left >= max_node || nd.right < 0 || nd.right >= max_node))
      throw std::runtime_error("DecisionTree::load: child index out of range");
  }
  std::vector<double> importance(n_features);
  for (auto& v : importance) {
    if (!(is >> v)) throw std::runtime_error("DecisionTree::load: truncated importance");
  }
  nodes_ = std::move(nodes);
  importance_ = std::move(importance);
}

}  // namespace wefr::ml
