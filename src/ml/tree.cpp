#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace wefr::ml {

namespace {

double gini(std::size_t pos, std::size_t n) {
  if (n == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * p * (1.0 - p);
}

/// Best split of one feature over the node's samples.
struct SplitCandidate {
  bool valid = false;
  double threshold = 0.0;
  double impurity_decrease = -1.0;  // weighted by node fraction later
  std::size_t left_count = 0;
};

SplitCandidate best_split_for_feature(const data::Matrix& x, std::span<const int> y,
                                      std::span<const std::size_t> idx, std::size_t feature,
                                      std::size_t node_pos, const TreeOptions& opt,
                                      std::vector<std::pair<double, int>>& scratch) {
  const std::size_t n = idx.size();
  scratch.clear();
  scratch.reserve(n);
  for (std::size_t i : idx) scratch.emplace_back(x(i, feature), y[i]);
  std::sort(scratch.begin(), scratch.end());

  SplitCandidate best;
  if (scratch.front().first == scratch.back().first) return best;  // constant feature

  const double parent = gini(node_pos, n);
  std::size_t pos_left = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    pos_left += scratch[i].second != 0 ? 1 : 0;
    if (scratch[i].first == scratch[i + 1].first) continue;  // not a boundary
    const std::size_t n_left = i + 1;
    const std::size_t n_right = n - n_left;
    if (n_left < opt.min_samples_leaf || n_right < opt.min_samples_leaf) continue;
    const std::size_t pos_right = node_pos - pos_left;
    const double child =
        (static_cast<double>(n_left) * gini(pos_left, n_left) +
         static_cast<double>(n_right) * gini(pos_right, n_right)) /
        static_cast<double>(n);
    const double decrease = parent - child;
    if (decrease > best.impurity_decrease) {
      best.valid = true;
      best.impurity_decrease = decrease;
      // Midpoint threshold; `x <= threshold` routes left.
      best.threshold = scratch[i].first + (scratch[i + 1].first - scratch[i].first) / 2.0;
      // Guard: midpoint can round to the upper value for adjacent doubles.
      if (best.threshold >= scratch[i + 1].first) best.threshold = scratch[i].first;
      best.left_count = n_left;
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const data::Matrix& x, std::span<const int> y,
                       std::span<const std::size_t> sample_idx, const TreeOptions& opt,
                       util::Rng& rng) {
  if (x.rows() != y.size()) throw std::invalid_argument("DecisionTree::fit: shape mismatch");
  if (sample_idx.empty()) throw std::invalid_argument("DecisionTree::fit: no samples");
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<std::size_t> idx(sample_idx.begin(), sample_idx.end());
  nodes_.reserve(idx.size() / std::max<std::size_t>(1, opt.min_samples_leaf));
  build(x, y, idx, 0, idx.size(), 0, opt, rng, idx.size());
}

void DecisionTree::fit(const data::Matrix& x, std::span<const int> y, const TreeOptions& opt,
                       util::Rng& rng) {
  std::vector<std::size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  fit(x, y, idx, opt, rng);
}

std::int32_t DecisionTree::build(const data::Matrix& x, std::span<const int> y,
                                 std::vector<std::size_t>& idx, std::size_t begin,
                                 std::size_t end, int depth, const TreeOptions& opt,
                                 util::Rng& rng, std::size_t n_total) {
  const std::size_t n = end - begin;
  std::size_t node_pos = 0;
  for (std::size_t i = begin; i < end; ++i) node_pos += y[idx[i]] != 0 ? 1 : 0;

  const std::int32_t me = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[me].prob = static_cast<double>(node_pos) / static_cast<double>(n);
  nodes_[me].depth = depth;

  const bool pure = node_pos == 0 || node_pos == n;
  if (pure || depth >= opt.max_depth || n < opt.min_samples_split) return me;

  // Candidate features: all, or a per-node random subset (forest mode).
  const std::size_t nf = x.cols();
  std::vector<std::size_t> features;
  if (opt.max_features == 0 || opt.max_features >= nf) {
    features.resize(nf);
    std::iota(features.begin(), features.end(), 0);
  } else {
    features = rng.sample_without_replacement(nf, opt.max_features);
  }

  std::span<const std::size_t> node_idx(idx.data() + begin, n);
  SplitCandidate best;
  std::size_t best_feature = 0;
  std::vector<std::pair<double, int>> scratch;
  for (std::size_t f : features) {
    const auto cand = best_split_for_feature(x, y, node_idx, f, node_pos, opt, scratch);
    if (cand.valid && (!best.valid || cand.impurity_decrease > best.impurity_decrease)) {
      best = cand;
      best_feature = f;
    }
  }
  if (!best.valid || best.impurity_decrease <= 0.0) return me;

  // Partition [begin, end) by the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + begin, idx.begin() + end,
      [&](std::size_t i) { return x(i, best_feature) <= best.threshold; });
  const std::size_t mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return me;  // numeric edge case: degenerate partition

  importance_[best_feature] +=
      best.impurity_decrease * static_cast<double>(n) / static_cast<double>(n_total);

  nodes_[me].feature = static_cast<std::int32_t>(best_feature);
  nodes_[me].threshold = best.threshold;
  const std::int32_t left = build(x, y, idx, begin, mid, depth + 1, opt, rng, n_total);
  nodes_[me].left = left;
  const std::int32_t right = build(x, y, idx, mid, end, depth + 1, opt, rng, n_total);
  nodes_[me].right = right;
  return me;
}

double DecisionTree::predict_proba(std::span<const double> row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict_proba: not trained");
  std::int32_t node = 0;
  for (;;) {
    const Node& nd = nodes_[node];
    if (nd.feature < 0) return nd.prob;
    node = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
}

int DecisionTree::depth() const {
  int d = 0;
  for (const auto& nd : nodes_) d = std::max(d, nd.depth);
  return d;
}

void DecisionTree::save(std::ostream& os) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::save: not trained");
  os << "tree " << nodes_.size() << ' ' << importance_.size() << '\n';
  os.precision(17);
  for (const auto& nd : nodes_) {
    os << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' ' << nd.right << ' '
       << nd.prob << ' ' << nd.depth << '\n';
  }
  for (std::size_t f = 0; f < importance_.size(); ++f) {
    os << importance_[f] << (f + 1 == importance_.size() ? '\n' : ' ');
  }
}

void DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t n_nodes = 0, n_features = 0;
  if (!(is >> tag >> n_nodes >> n_features) || tag != "tree" || n_nodes == 0)
    throw std::runtime_error("DecisionTree::load: bad header");
  std::vector<Node> nodes(n_nodes);
  for (auto& nd : nodes) {
    if (!(is >> nd.feature >> nd.threshold >> nd.left >> nd.right >> nd.prob >> nd.depth))
      throw std::runtime_error("DecisionTree::load: truncated node list");
    const auto max_node = static_cast<std::int32_t>(n_nodes);
    const bool leaf = nd.feature < 0;
    if (!leaf && (nd.left < 0 || nd.left >= max_node || nd.right < 0 || nd.right >= max_node))
      throw std::runtime_error("DecisionTree::load: child index out of range");
  }
  std::vector<double> importance(n_features);
  for (auto& v : importance) {
    if (!(is >> v)) throw std::runtime_error("DecisionTree::load: truncated importance");
  }
  nodes_ = std::move(nodes);
  importance_ = std::move(importance);
}

}  // namespace wefr::ml
