#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace wefr::util {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64. Every stochastic
/// component in the library (simulator, forests, bootstrap, shuffles)
/// draws from an explicitly passed Rng so that experiments are exactly
/// reproducible from a single seed.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t next_u64();

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Returns a uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Returns a uniform integer in [0, n). `n` must be positive.
  std::size_t uniform_index(std::size_t n);

  /// Returns a uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Returns a standard normal variate (Box-Muller with caching).
  double normal();

  /// Returns a normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Returns a Poisson variate with rate `lambda` (Knuth for small
  /// lambda, normal approximation above 64).
  std::uint64_t poisson(double lambda);

  /// Returns an exponential variate with the given rate.
  double exponential(double rate);

  /// Returns a gamma variate (Marsaglia-Tsang) with given shape and scale.
  double gamma(double shape, double scale);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Allocation-reusing variant: fills `out` with the sample (resized to
  /// `k`). Draws the same stream as the returning overload.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& out);

  /// Forks a statistically independent child generator; used to give each
  /// worker thread or simulated drive its own stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wefr::util
