#include "util/table.h"

#include <algorithm>
#include <stdexcept>

namespace wefr::util {

void AsciiTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::add_row(std::vector<std::string> row) {
  if (row.empty()) throw std::invalid_argument("AsciiTable::add_row: empty row");
  if (!header_.empty() && row.size() > header_.size())
    throw std::invalid_argument("AsciiTable::add_row: row wider than header");
  if (!header_.empty()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return {};

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t i = 0; i < cols; ++i) s += std::string(width[i] + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      s += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  // A trailing separator would double the closing rule — drop it.
  std::size_t last = rows_.size();
  while (last > 0 && rows_[last - 1].empty()) --last;
  for (std::size_t i = 0; i < last; ++i) {
    out += rows_[i].empty() ? rule() : line(rows_[i]);
  }
  out += rule();
  return out;
}

}  // namespace wefr::util
