#pragma once

#include <string>
#include <vector>

namespace wefr::util {

/// Minimal fixed-grid ASCII table used by the bench binaries to print
/// paper-style tables (Table II, III, ..., VIII) to stdout.
class AsciiTable {
 public:
  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a body row. Rows shorter than the header are padded with
  /// empty cells; longer rows throw.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator after the last added row.
  void add_separator();

  /// Renders the table with column-aligned cells and ASCII rules.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  // Empty vector encodes a separator line.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wefr::util
