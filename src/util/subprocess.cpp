#include "util/subprocess.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define WEFR_HAVE_FORK 1
#endif

namespace wefr::util {

bool fork_supported() {
#if !defined(WEFR_HAVE_FORK) || defined(WEFR_FORCE_INPROCESS_SHARDS) || \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return false;
#endif
#endif
  const char* env = std::getenv("WEFR_SHARD_FORCE_INPROCESS");
  if (env != nullptr && std::strcmp(env, "0") != 0) return false;
  return true;
#endif
}

std::vector<ForkOutcome> run_forked(std::size_t n,
                                    const std::function<int(std::size_t)>& fn) {
  std::vector<ForkOutcome> out(n);
#if !defined(WEFR_HAVE_FORK)
  for (auto& o : out) o.error = "fork not supported on this platform";
  return out;
#else
  std::vector<pid_t> pids(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    // Flush before forking: both processes would otherwise own (and
    // eventually flush) the same buffered stdio bytes.
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      out[i].error = "fork failed";
      continue;
    }
    if (pid == 0) {
      // Child: run the job, then leave without unwinding the parent's
      // state (no atexit handlers, no static destructors — _Exit).
      int rc = 121;
      try {
        rc = fn(i);
      } catch (...) {
        rc = 121;
      }
      std::fflush(nullptr);
      std::_Exit(rc);
    }
    pids[i] = pid;
  }
  // Wait in index order: completion order must never influence the
  // caller's merge order.
  for (std::size_t i = 0; i < n; ++i) {
    if (pids[i] < 0) continue;
    int status = 0;
    if (waitpid(pids[i], &status, 0) < 0) {
      out[i].error = "waitpid failed";
      continue;
    }
    if (WIFEXITED(status)) {
      out[i].exit_code = WEXITSTATUS(status);
      out[i].ok = out[i].exit_code == 0;
      if (!out[i].ok)
        out[i].error = "worker exited with code " + std::to_string(out[i].exit_code);
    } else if (WIFSIGNALED(status)) {
      out[i].error = "worker killed by signal " + std::to_string(WTERMSIG(status));
    } else {
      out[i].error = "worker ended abnormally";
    }
  }
  return out;
#endif
}

}  // namespace wefr::util
