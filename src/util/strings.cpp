#include "util/strings.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace wefr::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_percent(double v, int digits) {
  return format_double(v * 100.0, digits) + "%";
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && std::isfinite(out);
}

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec == std::errc{} && ptr == end) return true;
  if (ec == std::errc::result_out_of_range) return false;
  // Fallback: a double-rendered integer ("42.0", "1e3"). Truncates
  // toward zero, matching the cast the call sites used historically.
  double v = 0.0;
  if (!parse_double(s, v)) return false;
  if (v <= -9.3e18 || v >= 9.3e18) return false;  // outside long long
  out = static_cast<long long>(v);
  return true;
}

}  // namespace wefr::util
