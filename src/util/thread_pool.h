#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wefr::util {

/// Fixed-size worker pool used to parallelize forest training and the
/// ensemble of preliminary feature selectors (the paper runs the five
/// selectors in parallel; Exp#4 measures exactly that composition).
///
/// Tasks are arbitrary callables; `submit` returns a future. The pool
/// joins all workers on destruction, after draining outstanding tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1; 0 is coerced to 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `fn(args...)` and returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<F>(fn), std::forward<Args>(args)...));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations complete. Exceptions from iterations are rethrown (the
  /// first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// As `parallel_for`, but workers claim contiguous batches of at
  /// least `min_chunk` iterations from the shared counter instead of
  /// one index at a time. For many small iterations (scoring one drive,
  /// ranking one feature) this amortizes the atomic traffic and keeps
  /// each worker on a contiguous slice of the output. The chunk size
  /// grows to n / (4 * workers) when that is larger, so big inputs
  /// still balance across the pool. Iteration order within a chunk is
  /// ascending; results must not depend on cross-chunk ordering (ours
  /// never do — every iteration writes its own slot).
  void parallel_for_chunked(std::size_t n, std::size_t min_chunk,
                            const std::function<void(std::size_t)>& fn);

 private:
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Returns a sensible default worker count for this host.
std::size_t default_thread_count();

}  // namespace wefr::util
