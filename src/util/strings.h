#pragma once

#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace wefr::util {

/// Splits `s` on `delim`, keeping empty fields (CSV semantics).
std::vector<std::string> split(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `v` with `digits` digits after the decimal point.
std::string format_double(double v, int digits);

/// Formats `v` (in [0,1]) as a percentage like "63%" or "62.5%".
std::string format_percent(double v, int digits = 0);

/// True if `s` parses as a finite double; stores it into `out`.
/// std::from_chars fast path (no locale, no allocation); trims first.
bool parse_double(std::string_view s, double& out);

/// True if `s` parses as an integer; stores it into `out`. Integer
/// std::from_chars fast path with a parse_double fallback, so values
/// rendered as doubles ("42.0", "1e3") still parse — the fractional
/// part, if any, truncates toward zero exactly like the historical
/// `static_cast<int>(parse_double(...))` call sites. This is the one
/// helper every integer field (CLI flags, CSV day columns, fault
/// rates) routes through.
bool parse_int(std::string_view s, long long& out);

/// Convenience parse_int into a narrower (or unsigned) integer type;
/// false when the value does not fit.
template <typename Int>
bool parse_int_as(std::string_view s, Int& out) {
  long long wide = 0;
  if (!parse_int(s, wide)) return false;
  if constexpr (std::is_unsigned_v<Int>) {
    if (wide < 0 ||
        static_cast<unsigned long long>(wide) > std::numeric_limits<Int>::max())
      return false;
  } else {
    if (wide < std::numeric_limits<Int>::min() || wide > std::numeric_limits<Int>::max())
      return false;
  }
  out = static_cast<Int>(wide);
  return true;
}

}  // namespace wefr::util
