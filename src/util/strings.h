#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wefr::util {

/// Splits `s` on `delim`, keeping empty fields (CSV semantics).
std::vector<std::string> split(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `v` with `digits` digits after the decimal point.
std::string format_double(double v, int digits);

/// Formats `v` (in [0,1]) as a percentage like "63%" or "62.5%".
std::string format_percent(double v, int digits = 0);

/// True if `s` parses as a finite double; stores it into `out`.
bool parse_double(std::string_view s, double& out);

}  // namespace wefr::util
