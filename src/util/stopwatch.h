#pragma once

#include <chrono>

namespace wefr::util {

/// Monotonic stopwatch (std::chrono::steady_clock — never the wall
/// clock, which can step backwards under NTP) used by the runtime
/// experiment (Exp#4), the benches, and as the span clock of obs::Tracer.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()), lap_(start_) {}

  /// Restarts the stopwatch (and the lap interval).
  void reset() {
    start_ = clock::now();
    lap_ = start_;
  }

  /// Elapsed time since construction or the last reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

  /// Seconds since the last lap() (or construction/reset), restarting
  /// the lap interval. The total elapsed time is unaffected, so
  /// seconds() keeps measuring the whole run while lap() splits it.
  double lap() {
    const clock::time_point now = clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace wefr::util
