#pragma once

#include <chrono>

namespace wefr::util {

/// Monotonic wall-clock stopwatch used by the runtime experiment (Exp#4).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction or the last reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wefr::util
