#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace wefr::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
          if (stopping_ && tasks_.empty()) return;
          task = std::move(tasks_.front());
          tasks_.pop();
        }
        task();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  const std::size_t chunks = std::min(n, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_chunked(std::size_t n, std::size_t min_chunk,
                                      const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  // Large inputs use bigger chunks (less counter traffic); the 4x
  // oversubscription keeps the tail balanced when chunks vary in cost.
  const std::size_t chunk = std::max(min_chunk, n / (4 * workers_.size() + 1));
  if (n <= chunk) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const std::size_t tasks = std::min(num_chunks, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(tasks);
  for (std::size_t c = 0; c < tasks; ++c) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t base = next.fetch_add(chunk, std::memory_order_relaxed);
        if (base >= n) return;
        const std::size_t end = std::min(base + chunk, n);
        try {
          for (std::size_t i = base; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (error) std::rethrow_exception(error);
}

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace wefr::util
