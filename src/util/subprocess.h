#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace wefr::util {

/// Whether this build/host can run fork() worker processes. False on
/// non-POSIX hosts, under sanitizer builds (fork + TSan/ASan runtimes
/// interact badly — the CMake WEFR_SANITIZE option compiles in
/// WEFR_FORCE_INPROCESS_SHARDS), and when the WEFR_SHARD_FORCE_INPROCESS
/// environment variable is set to a non-"0" value (runtime override for
/// debugging). Callers fall back to an in-process driver that produces
/// byte-identical results.
bool fork_supported();

/// Outcome of one forked worker.
struct ForkOutcome {
  bool ok = false;        ///< child was forked and exited with status 0
  int exit_code = -1;     ///< raw exit status (-1 when never started)
  std::string error;      ///< why the worker failed, when !ok
};

/// Runs `fn(i)` for i in [0, n) each in its own forked child process;
/// the callable's return value is the child's exit code (0 = success).
/// Children that throw exit with code 121. stdio is flushed before
/// every fork so buffered output is not duplicated; the parent waits
/// for all children in index order. Exceptions must not escape to the
/// caller — failures are reported through the outcome vector so the
/// caller can decide to retry in-process.
std::vector<ForkOutcome> run_forked(std::size_t n,
                                    const std::function<int(std::size_t)>& fn);

}  // namespace wefr::util
