#include "util/rng.h"

#include <cassert>
#include <stdexcept>

namespace wefr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::size_t>(x % bound);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::size_t>(span)));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-lambda);
  double prod = uniform();
  std::uint64_t k = 0;
  while (prod > limit) {
    prod *= uniform();
    ++k;
  }
  return k;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0)
    throw std::invalid_argument("Rng::gamma: shape and scale must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 then apply the power correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  sample_without_replacement(n, k, out);
  return out;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k,
                                     std::vector<std::size_t>& out) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for our sizes.
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(out[i], out[j]);
  }
  out.resize(k);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace wefr::util
