#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace wefr::util {

/// Exact fixed-point accumulator for doubles (a superaccumulator in
/// the Kulisch style): the running sum is held as integer limbs of a
/// single fixed-point number wide enough for the entire double range,
/// so addition is *exactly* associative and commutative — the core
/// requirement for bit-deterministic shard merges. Per-shard moment
/// sums folded through ExactSum and merged limb-wise give the same
/// finalized double no matter how rows were partitioned, which is not
/// true of a plain double accumulator (FP addition does not
/// reassociate).
///
/// Representation: 32-bit digits stored in int64 limbs, covering bit
/// positions [-1138, 32*kLimbs - 1138) relative to 2^0 — 64 guard bits
/// below the smallest subnormal and headroom above DBL_MAX. add()
/// splits the 53-bit mantissa across three adjacent limbs; carries are
/// deferred and propagated in normalize(), which runs automatically
/// before limbs could overflow (every add contributes < 2^33 per limb,
/// so 2^30 deferred adds keep |limb| < 2^63). merge() is a limb-wise
/// integer add.
///
/// finalize() converts top-down in fixed limb order with ldexp — a
/// deterministic rule (same limbs -> same double on every platform),
/// accurate to ~1 ulp. Non-finite inputs poison the sum: finalize()
/// returns NaN, matching what a plain double sum would converge to.
class ExactSum {
 public:
  ExactSum() { reset(); }

  void reset() {
    std::memset(limb_, 0, sizeof(limb_));
    pending_ = 0;
    nonfinite_ = 0;
  }

  void add(double v) {
    if (!std::isfinite(v)) {
      ++nonfinite_;
      return;
    }
    if (v == 0.0) return;
    int e = 0;
    const double mant = std::frexp(v, &e);  // v = mant * 2^e, |mant| in [0.5, 1)
    const auto m53 = static_cast<std::int64_t>(std::ldexp(mant, 53));  // exact
    // v = m53 * 2^(e - 53); bit offset of 2^(e-53) from the base 2^-1138.
    const int offset = e - 53 + kBaseBits;
    const int l = offset >> 5;
    const int shift = offset & 31;
    const __int128 t = static_cast<__int128>(m53) << shift;
    limb_[l] += static_cast<std::int64_t>(t & 0xffffffffu);
    limb_[l + 1] += static_cast<std::int64_t>((t >> 32) & 0xffffffffu);
    limb_[l + 2] += static_cast<std::int64_t>(t >> 64);
    if (++pending_ >= (std::int64_t{1} << 30)) normalize();
  }

  /// Folds `other` in: exactly the sum of both input streams, in any
  /// merge order or grouping.
  void merge(const ExactSum& other) {
    normalize();
    other.normalize();
    for (int l = 0; l < kLimbs; ++l) limb_[l] += other.limb_[l];
    nonfinite_ += other.nonfinite_;
    pending_ = 1;  // force renormalization before the next batch
  }

  double finalize() const {
    if (nonfinite_ != 0) return std::numeric_limits<double>::quiet_NaN();
    normalize();
    double r = 0.0;
    for (int l = kLimbs - 1; l >= 0; --l)
      if (limb_[l] != 0)
        r += std::ldexp(static_cast<double>(limb_[l]), 32 * l - kBaseBits);
    return r;
  }

  std::uint64_t nonfinite_count() const { return nonfinite_; }

  // Serialization access (normalized form is canonical).
  static constexpr int kNumLimbs = 70;
  void normalize() const {
    if (pending_ == 0) return;
    // Carry-propagate upward; every limb but the top lands in
    // [0, 2^32). The top limb keeps the sign of the whole sum.
    for (int l = 0; l < kLimbs - 1; ++l) {
      const std::int64_t carry = limb_[l] >> 32;  // arithmetic: floor div 2^32
      limb_[l] -= carry << 32;
      limb_[l + 1] += carry;
    }
    pending_ = 0;
  }
  std::int64_t limb(int l) const { return limb_[l]; }
  void set_limb(int l, std::int64_t v) { limb_[l] = v; }
  void set_nonfinite_count(std::uint64_t n) { nonfinite_ = n; }

 private:
  // Base 2^-1138 (64 guard bits under 2^-1074); DBL_MAX's mantissa top
  // bit sits at 2^1023 -> bit offset 2109 -> limbs 65..67.
  static constexpr int kBaseBits = 1138;
  static constexpr int kLimbs = kNumLimbs;
  mutable std::int64_t limb_[kLimbs];
  mutable std::int64_t pending_ = 0;
  std::uint64_t nonfinite_ = 0;
};

}  // namespace wefr::util
