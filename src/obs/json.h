#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wefr::obs::json {

/// Escapes `s` for embedding inside a JSON string literal (the
/// surrounding quotes are not included): quote, backslash, and control
/// characters become their \-escapes (\uXXXX for the rest of C0).
std::string escape(std::string_view s);

/// Streaming JSON writer shared by every machine-readable emitter in
/// the repo (Chrome traces, metrics snapshots, run reports, the bench
/// JSON summaries). Replaces the ad-hoc snprintf blobs the benches used
/// to hand-roll.
///
/// Usage follows the document structure:
///
///   Writer w(os);
///   w.begin_object();
///   w.field("model", "MC1");
///   w.key("scale").begin_object();
///   w.field("drives", 3500).field("days", 220);
///   w.end_object();
///   w.end_object();   // emits pretty-printed, valid JSON
///
/// Doubles print with the shortest representation that round-trips
/// (non-finite values become null, which is what JSON can carry).
/// Structural misuse (value without a key inside an object, unbalanced
/// end_*) throws std::logic_error rather than emitting broken output.
class Writer {
 public:
  /// Writes to `os`; `indent` spaces per nesting level (0 = compact).
  explicit Writer(std::ostream& os, int indent = 2);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits the key of the next object member.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v);  ///< nullptr serializes as null
  Writer& value(bool v);
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  Writer& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once every begin_* has been matched by its end_*.
  bool complete() const { return stack_.empty() && wrote_top_level_; }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void write_indent();
  void write_string(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  ///< parallel to stack_
  bool key_pending_ = false;
  bool wrote_top_level_ = false;
};

/// Formats `v` with the shortest precision that parses back bit-equal
/// (non-finite values format as "null"). Shared by the writer and the
/// Prometheus exporter.
std::string format_double(double v);

}  // namespace wefr::obs::json
