#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace wefr::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  return s;
}

std::string Registry::sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(out.begin(), '_');
  return out;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    if (!help.empty()) help_.emplace(key, help);
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    if (!help.empty()) help_.emplace(key, help);
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds,
                               const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
    if (!help.empty()) help_.emplace(key, help);
  }
  return *slot;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void Registry::write_json(json::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name).begin_object();
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      w.begin_object();
      if (i < s.bounds.size()) {
        w.field("le", s.bounds[i]);
      } else {
        w.field("le", "+Inf");
      }
      w.field("count", s.counts[i]);
      w.end_object();
    }
    w.end_array();
    w.field("sum", s.sum);
    w.field("count", s.count);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void Registry::write_json(std::ostream& os) const {
  json::Writer w(os);
  write_json(w);
}

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto help_line = [&](const std::string& name) {
    const auto it = help_.find(name);
    if (it != help_.end()) os << "# HELP " << name << ' ' << it->second << '\n';
  };
  for (const auto& [name, c] : counters_) {
    help_line(name);
    os << "# TYPE " << name << " counter\n" << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    help_line(name);
    os << "# TYPE " << name << " gauge\n"
       << name << ' ' << json::format_double(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    help_line(name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      cumulative += s.counts[i];
      os << name << "_bucket{le=\"";
      if (i < s.bounds.size()) {
        os << json::format_double(s.bounds[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << name << "_sum " << json::format_double(s.sum) << '\n'
       << name << "_count " << s.count << '\n';
  }
}

}  // namespace wefr::obs
