#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace wefr::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  return s;
}

bool Histogram::absorb(const Snapshot& s) {
  if (s.bounds != bounds_ || s.counts.size() != bounds_.size() + 1) return false;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].fetch_add(s.counts[i], std::memory_order_relaxed);
  count_.fetch_add(s.count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + s.sum, std::memory_order_relaxed)) {
  }
  return true;
}

namespace {

/// Splits a stored series key into its base name and the label text
/// inside the trailing {...} block ("" when unlabeled).
struct SeriesName {
  std::string base;
  std::string labels;
};

SeriesName split_series(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos || key.empty() || key.back() != '}') return {key, ""};
  return {key.substr(0, brace), key.substr(brace + 1, key.size() - brace - 2)};
}

/// Appends one pre-escaped `key="value"` pair to a series name,
/// creating or extending its label block.
std::string append_label(const std::string& name, const std::string& label) {
  if (label.empty()) return name;
  const SeriesName s = split_series(name);
  if (s.labels.empty() && name.find('{') == std::string::npos)
    return s.base + "{" + label + "}";
  return s.base + "{" + s.labels + "," + label + "}";
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled(std::string_view base, std::string_view key, std::string_view value) {
  std::string pair;
  pair.reserve(key.size() + value.size() + 3);
  pair.append(key).append("=\"").append(escape_label_value(value)).append("\"");
  return append_label(std::string(base), pair);
}

std::string Registry::sanitize_name(const std::string& name) {
  // A trailing {...} label block (built with labeled()) rides along
  // untouched; only the base name is forced into the Prometheus charset.
  std::string base = name, labels;
  const auto brace = name.find('{');
  if (brace != std::string::npos && !name.empty() && name.back() == '}') {
    base = name.substr(0, brace);
    labels = name.substr(brace);
  }
  std::string out;
  out.reserve(base.size());
  for (const char c : base) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(out.begin(), '_');
  return out + labels;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    if (!help.empty()) help_.emplace(split_series(key).base, help);
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    if (!help.empty()) help_.emplace(split_series(key).base, help);
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds,
                               const std::string& help) {
  const std::string key = sanitize_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
    if (!help.empty()) help_.emplace(split_series(key).base, help);
  }
  return *slot;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, h->snapshot());
  s.help = help_;
  return s;
}

std::size_t Registry::absorb(const MetricsSnapshot& snap, const std::string& label) {
  std::size_t absorbed = 0;
  for (const auto& [name, help] : snap.help) {
    std::lock_guard<std::mutex> lock(mu_);
    help_.emplace(name, help);
  }
  for (const auto& [name, v] : snap.counters) {
    counter(append_label(name, label)).add(v);
    ++absorbed;
  }
  for (const auto& [name, v] : snap.gauges) {
    gauge(append_label(name, label)).set(v);
    ++absorbed;
  }
  for (const auto& [name, hs] : snap.histograms) {
    // Shape-check before registering: snapshots may arrive off the wire,
    // and the Histogram constructor throws on malformed bounds.
    if (hs.bounds.empty() || hs.counts.size() != hs.bounds.size() + 1 ||
        !std::is_sorted(hs.bounds.begin(), hs.bounds.end()) ||
        std::adjacent_find(hs.bounds.begin(), hs.bounds.end()) != hs.bounds.end())
      continue;
    if (histogram(append_label(name, label), hs.bounds).absorb(hs)) ++absorbed;
  }
  return absorbed;
}

void Registry::write_json(json::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name).begin_object();
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      w.begin_object();
      if (i < s.bounds.size()) {
        w.field("le", s.bounds[i]);
      } else {
        w.field("le", "+Inf");
      }
      w.field("count", s.counts[i]);
      w.end_object();
    }
    w.end_array();
    w.field("sum", s.sum);
    w.field("count", s.count);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void Registry::write_json(std::ostream& os) const {
  json::Writer w(os);
  write_json(w);
}

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group series by base name first: "m" and "m{shard=\"3\"}" are one
  // family and the exposition format requires a family's samples to sit
  // contiguously under a single # HELP / # TYPE pair — map iteration
  // order alone does not give that ("m_other" sorts between them).
  const auto head = [&](const std::string& base, const char* type) {
    const auto it = help_.find(base);
    os << "# HELP " << base << ' '
       << (it != help_.end() ? it->second : "wefr metric (no help recorded)") << '\n'
       << "# TYPE " << base << ' ' << type << '\n';
  };
  const auto series = [](const SeriesName& n) {
    return n.labels.empty() ? n.base : n.base + "{" + n.labels + "}";
  };

  std::map<std::string, std::vector<std::pair<std::string, const Counter*>>> counter_fams;
  for (const auto& [name, c] : counters_) {
    const SeriesName n = split_series(name);
    counter_fams[n.base].emplace_back(n.labels, c.get());
  }
  for (const auto& [base, fam] : counter_fams) {
    head(base, "counter");
    for (const auto& [labels, c] : fam)
      os << series({base, labels}) << ' ' << c->value() << '\n';
  }

  std::map<std::string, std::vector<std::pair<std::string, const Gauge*>>> gauge_fams;
  for (const auto& [name, g] : gauges_) {
    const SeriesName n = split_series(name);
    gauge_fams[n.base].emplace_back(n.labels, g.get());
  }
  for (const auto& [base, fam] : gauge_fams) {
    head(base, "gauge");
    for (const auto& [labels, g] : fam)
      os << series({base, labels}) << ' ' << json::format_double(g->value()) << '\n';
  }

  std::map<std::string, std::vector<std::pair<std::string, const Histogram*>>> hist_fams;
  for (const auto& [name, h] : histograms_) {
    const SeriesName n = split_series(name);
    hist_fams[n.base].emplace_back(n.labels, h.get());
  }
  for (const auto& [base, fam] : hist_fams) {
    head(base, "histogram");
    for (const auto& [labels, h] : fam) {
      const Histogram::Snapshot s = h->snapshot();
      const std::string prefix = labels.empty() ? "{le=\"" : "{" + labels + ",le=\"";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.counts.size(); ++i) {
        cumulative += s.counts[i];
        os << base << "_bucket" << prefix;
        if (i < s.bounds.size()) {
          os << json::format_double(s.bounds[i]);
        } else {
          os << "+Inf";
        }
        os << "\"} " << cumulative << '\n';
      }
      const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
      os << base << "_sum" << suffix << ' ' << json::format_double(s.sum) << '\n'
         << base << "_count" << suffix << ' ' << s.count << '\n';
    }
  }
}

}  // namespace wefr::obs
