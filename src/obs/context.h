#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wefr::obs {

/// Nullable observability handle threaded through the pipeline (null
/// pointer = observability off). Either member may be null on its own:
/// a metrics-only run skips span bookkeeping and vice versa.
///
/// Contract: a stage given a null Context (or null members) must do no
/// observability work at all — no clock reads, no allocations, no
/// atomic traffic. The bench_hotpath "obs" gate holds the enabled path
/// to within 5% of the disabled one end-to-end.
struct Context {
  Tracer* tracer = nullptr;
  Registry* metrics = nullptr;
};

/// Counter bump that is a no-op on a null/metrics-less context. For
/// per-stage tallies; hot loops should resolve the Counter once via
/// counter_or_null and increment through the pointer instead.
inline void add_counter(const Context* ctx, const char* name, std::uint64_t n = 1) {
  if (ctx != nullptr && ctx->metrics != nullptr && n > 0) ctx->metrics->counter(name).add(n);
}

inline Counter* counter_or_null(const Context* ctx, const char* name) {
  if (ctx == nullptr || ctx->metrics == nullptr) return nullptr;
  return &ctx->metrics->counter(name);
}

inline Histogram* histogram_or_null(const Context* ctx, const char* name,
                                    std::vector<double> upper_bounds) {
  if (ctx == nullptr || ctx->metrics == nullptr) return nullptr;
  return &ctx->metrics->histogram(name, std::move(upper_bounds));
}

}  // namespace wefr::obs
