#include "obs/report.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wefr::obs {

namespace {

/// Emits the span forest as nested JSON objects. Children are attached
/// by parent id and ordered by start time; spans whose parent never
/// finished (still open at snapshot time) surface as roots.
void write_span_tree(json::Writer& w, const std::vector<SpanRecord>& spans) {
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].start_us < spans[b].start_us;
  });

  std::vector<std::vector<std::size_t>> children(spans.size());
  std::vector<std::size_t> roots;
  // id -> index lookup
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].id, i);
  for (const std::size_t i : order) {
    const auto it = spans[i].parent == 0 ? by_id.end() : by_id.find(spans[i].parent);
    if (it == by_id.end()) {
      roots.push_back(i);
    } else {
      children[it->second].push_back(i);
    }
  }

  const auto emit = [&](const auto& self, std::size_t i) -> void {
    const SpanRecord& s = spans[i];
    w.begin_object();
    w.field("name", std::string_view(s.name));
    w.field("start_us", s.start_us);
    w.field("dur_us", s.dur_us);
    w.field("tid", s.tid);
    if (!children[i].empty()) {
      w.key("children").begin_array();
      for (const std::size_t c : children[i]) self(self, c);
      w.end_array();
    }
    w.end_object();
  };

  w.begin_array();
  for (const std::size_t r : roots) emit(emit, r);
  w.end_array();
}

void write_string_map(json::Writer& w, const std::map<std::string, std::string>& m) {
  w.begin_object();
  for (const auto& [k, v] : m) w.field(k, std::string_view(v));
  w.end_object();
}

void write_double_map(json::Writer& w, const std::map<std::string, double>& m) {
  w.begin_object();
  for (const auto& [k, v] : m) w.field(k, v);
  w.end_object();
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  json::Writer w(os);
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("tool", std::string_view(tool));
  w.field("model", std::string_view(model));
  w.key("run_info");
  write_double_map(w, run_info);
  w.key("params");
  write_string_map(w, params);

  w.key("ingest");
  write_double_map(w, ingest);

  w.key("diagnostics").begin_object();
  w.key("counters");
  write_double_map(w, diagnostic_counters);
  w.key("events").begin_array();
  for (const Event& e : diagnostics) {
    w.begin_object();
    w.field("stage", std::string_view(e.stage));
    w.field("code", std::string_view(e.code));
    w.field("detail", std::string_view(e.detail));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("selection").begin_object();
  w.key("groups").begin_array();
  for (const Group& g : selection) {
    w.begin_object();
    w.field("label", std::string_view(g.label));
    w.field("num_samples", g.num_samples);
    w.field("num_positives", g.num_positives);
    w.field("fallback", g.fallback);
    w.field("degraded", g.degraded);
    w.key("features").begin_array();
    for (const std::string& f : g.features) w.value(std::string_view(f));
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("change_point");
  if (change_point_mwi.has_value()) {
    w.begin_object();
    w.field("mwi_threshold", *change_point_mwi);
    if (change_point_z.has_value()) w.field("zscore", *change_point_z);
    w.end_object();
  } else {
    w.null();
  }
  w.end_object();

  w.key("scoring");
  if (scoring.has_value()) {
    w.begin_object();
    w.field("drives", scoring->drives);
    w.field("drive_days", scoring->drive_days);
    w.field("day_lo", scoring->day_lo);
    w.field("day_hi", scoring->day_hi);
    w.field("in_sample", scoring->in_sample);
    const auto opt_field = [&](const char* k, const std::optional<double>& v) {
      w.key(k);
      if (v.has_value()) {
        w.value(*v);
      } else {
        w.null();
      }
    };
    opt_field("auc", scoring->auc);
    opt_field("precision", scoring->precision);
    opt_field("recall", scoring->recall);
    opt_field("f05", scoring->f05);
    opt_field("threshold", scoring->threshold);
    w.end_object();
  } else {
    w.null();
  }

  w.key("sharding");
  if (sharding.has_value()) {
    w.begin_object();
    w.field("shards", sharding->shards);
    w.field("forked", sharding->forked);
    w.key("fallback_reason");
    if (sharding->fallback_reason.empty()) {
      w.null();
    } else {
      w.value(std::string_view(sharding->fallback_reason));
    }
    w.key("shard_drives").begin_array();
    for (const std::uint64_t n : sharding->shard_drives) w.value(n);
    w.end_array();
    w.key("shard_samples").begin_array();
    for (const std::uint64_t n : sharding->shard_samples) w.value(n);
    w.end_array();
    w.field("partial_seconds", sharding->partial_seconds);
    w.field("merge_seconds", sharding->merge_seconds);
    w.key("health").begin_array();
    for (const Sharding::ShardHealth& h : sharding->health) {
      w.begin_object();
      w.field("wall_seconds", h.wall_seconds);
      w.field("cpu_seconds", h.cpu_seconds);
      w.field("drives", h.drives);
      w.field("rows", h.rows);
      w.field("bytes", h.bytes);
      w.field("records_verified", h.records_verified);
      w.field("obs_merged", h.obs_merged);
      w.field("worker_exit", h.worker_exit);
      w.end_object();
    }
    w.end_array();
    w.field("records_verified", sharding->records_verified);
    w.field("obs_spans_merged", sharding->obs_spans_merged);
    w.field("obs_partials_merged", sharding->obs_partials_merged);
    w.field("obs_partials_dropped", sharding->obs_partials_dropped);
    w.field("workers_failed", sharding->workers_failed);
    w.key("straggler").begin_object();
    w.field("max_shard_seconds", sharding->max_shard_seconds);
    w.field("median_shard_seconds", sharding->median_shard_seconds);
    w.field("imbalance_ratio", sharding->imbalance_ratio);
    w.end_object();
    w.end_object();
  } else {
    w.null();
  }

  w.key("metrics");
  if (metrics != nullptr) {
    metrics->write_json(w);
  } else {
    w.null();
  }

  w.key("spans");
  if (tracer != nullptr) {
    write_span_tree(w, tracer->snapshot());
  } else {
    w.null();
  }
  w.end_object();
}

void RunReport::write_json_file(const std::string& path) const {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("RunReport: cannot open " + path);
  write_json(ofs);
  if (!ofs) throw std::runtime_error("RunReport: write failed for " + path);
}

}  // namespace wefr::obs
