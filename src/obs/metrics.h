#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wefr::obs {

namespace json {
class Writer;
}

/// Monotonically increasing event count. All mutators are lock-free
/// relaxed atomics — safe to hammer from ThreadPool workers.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (thread-safe set/add).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]
/// (Prometheus "le" semantics), plus an implicit +Inf overflow bucket.
/// observe() is an atomic increment on the bucket plus a CAS-add on the
/// running sum — no locks on the fast path.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< per bucket, bounds.size()+1 (+Inf last)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  Snapshot snapshot() const;

  /// Adds a snapshot's buckets into this histogram (cross-process
  /// merge). Returns false and changes nothing when the bucket layouts
  /// differ — mismatched shapes must not silently mis-bin.
  bool absorb(const Snapshot& s);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline become \\, \", and \n per the text exposition format.
std::string escape_label_value(std::string_view value);

/// Builds a labeled series name — `base{key="value"}` with the value
/// escaped. When `base` already carries a label block the new pair is
/// appended inside it (`m{a="x"}` + (shard, 3) -> `m{a="x",shard="3"}`),
/// so a worker's already-labeled stage histograms gain the shard label
/// on merge. This is the sanctioned way to put labels in a metric
/// name; sanitize_name preserves a trailing {...} block verbatim.
std::string labeled(std::string_view base, std::string_view key, std::string_view value);

/// Plain-data image of a Registry at one instant: every counter, gauge,
/// and histogram keyed by its (possibly labeled) series name, plus the
/// recorded help strings keyed by base name. This is what crosses a
/// process boundary — a shard worker snapshots its local registry,
/// ships the snapshot inside a WEFROB01 record, and the merging parent
/// absorbs it as `name{shard="k"}` series.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  std::map<std::string, std::string> help;  ///< keyed by base metric name
};

/// Named-metric registry: counters, gauges, and histograms registered
/// by name, exported as JSON or Prometheus text. Registration takes a
/// mutex once and hands back a stable reference; every subsequent
/// update through that reference is lock-free. Names are sanitized to
/// the Prometheus charset ([a-zA-Z0-9_:], leading digit prefixed); a
/// trailing `{key="value"}` label block built with labeled() rides
/// along untouched and keys a distinct series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates; re-registering an existing name returns the same
  /// object (a help string is kept from the first registration).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& help = "");

  bool empty() const;

  /// Plain-data copy of every registered metric, for serialization
  /// (obs/wire.h) and cross-process merging.
  MetricsSnapshot snapshot() const;

  /// Merges a worker registry snapshot into this one as labeled series:
  /// worker metric `name` lands here as `name{<label>}`, where `label`
  /// is one pre-escaped `key="value"` pair (normally `shard="k"`).
  /// Counters and histograms add — integer bucket/count arithmetic, so
  /// repeated absorbs sum exactly — and gauges overwrite. Help strings
  /// merge by base name (first writer wins, matching registration).
  /// Returns the number of series absorbed.
  std::size_t absorb(const MetricsSnapshot& snap, const std::string& label);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} value
  /// emitted into an in-flight writer (for embedding in a RunReport).
  void write_json(json::Writer& w) const;
  /// Standalone JSON document of the same shape.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format. Series sharing a base name are
  /// grouped into one family with exactly one `# HELP` and one `# TYPE`
  /// line each (a default help is synthesized when none was
  /// registered); histograms expand to `_bucket{...le}`/`_sum`/`_count`
  /// with any series labels preserved on every sample line.
  void write_prometheus(std::ostream& os) const;

  static std::string sanitize_name(const std::string& name);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace wefr::obs
