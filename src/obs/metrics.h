#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wefr::obs {

namespace json {
class Writer;
}

/// Monotonically increasing event count. All mutators are lock-free
/// relaxed atomics — safe to hammer from ThreadPool workers.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (thread-safe set/add).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]
/// (Prometheus "le" semantics), plus an implicit +Inf overflow bucket.
/// observe() is an atomic increment on the bucket plus a CAS-add on the
/// running sum — no locks on the fast path.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< per bucket, bounds.size()+1 (+Inf last)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named-metric registry: counters, gauges, and histograms registered
/// by name, exported as JSON or Prometheus text. Registration takes a
/// mutex once and hands back a stable reference; every subsequent
/// update through that reference is lock-free. Names are sanitized to
/// the Prometheus charset ([a-zA-Z0-9_:], leading digit prefixed).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates; re-registering an existing name returns the same
  /// object (a help string is kept from the first registration).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& help = "");

  bool empty() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} value
  /// emitted into an in-flight writer (for embedding in a RunReport).
  void write_json(json::Writer& w) const;
  /// Standalone JSON document of the same shape.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count).
  void write_prometheus(std::ostream& os) const;

  static std::string sanitize_name(const std::string& name);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace wefr::obs
