#include "obs/log.h"

#include <cstdarg>

namespace wefr::obs {

bool parse_log_level(std::string_view text, LogLevel& out) {
  if (text == "quiet") {
    out = LogLevel::kQuiet;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "debug") {
    out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

void Logger::write(LogLevel level, std::string_view stage, std::string_view msg) {
  if (!enabled(level)) return;
  std::fprintf(sink_, "[+%8.3fs] [%.*s] %.*s\n", epoch_.seconds(),
               static_cast<int>(stage.size()), stage.data(),
               static_cast<int>(msg.size()), msg.data());
}

void Logger::infof(const char* stage, const char* fmt, ...) {
  if (!enabled(LogLevel::kInfo)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  write(LogLevel::kInfo, stage, buf);
}

void Logger::debugf(const char* stage, const char* fmt, ...) {
  if (!enabled(LogLevel::kDebug)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  write(LogLevel::kDebug, stage, buf);
}

}  // namespace wefr::obs
