#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>

#include "obs/context.h"
#include "obs/json.h"

namespace wefr::obs {

namespace {

/// Per-thread stack of open spans, tagged by tracer so two live tracers
/// cannot see each other's nesting.
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};
thread_local std::vector<OpenSpan> t_open_spans;

}  // namespace

std::uint64_t Tracer::current_span() const {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == this) return it->id;
  }
  return 0;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::record(SpanRecord&& rec, std::thread::id tid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(threads_.begin(), threads_.end(), tid);
  if (it == threads_.end()) {
    threads_.push_back(tid);
    it = threads_.end() - 1;
  }
  rec.tid = static_cast<std::uint32_t>(it - threads_.begin());
  spans_.push_back(std::move(rec));
}

std::uint64_t Tracer::absorb(const std::vector<SpanRecord>& worker_spans,
                             std::uint64_t parent_span, const std::string& label,
                             std::uint32_t pid, double offset_us) {
  const std::uint64_t container = next_id();
  std::map<std::uint64_t, std::uint64_t> remap;
  for (const SpanRecord& s : worker_spans) remap.emplace(s.id, next_id());

  std::lock_guard<std::mutex> lock(mu_);
  double lo = offset_us, hi = offset_us;
  bool any = false;
  for (const SpanRecord& s : worker_spans) {
    SpanRecord rec = s;
    rec.id = remap[s.id];
    const auto p = s.parent == 0 ? remap.end() : remap.find(s.parent);
    rec.parent = p == remap.end() ? container : p->second;
    rec.start_us += offset_us;
    rec.pid = pid;
    if (!any || rec.start_us < lo) lo = rec.start_us;
    if (!any || rec.start_us + rec.dur_us > hi) hi = rec.start_us + rec.dur_us;
    any = true;
    spans_.push_back(std::move(rec));
  }
  SpanRecord c;
  c.id = container;
  c.parent = parent_span;
  c.name = label;
  c.start_us = lo;
  c.dur_us = hi - lo;
  c.tid = 0;
  c.pid = pid;
  spans_.push_back(std::move(c));
  return container;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<SpanRecord> spans = snapshot();
  json::Writer w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const SpanRecord& s : spans) {
    w.begin_object();
    w.field("name", std::string_view(s.name));
    w.field("cat", "wefr");
    w.field("ph", "X");
    w.field("ts", s.start_us);
    w.field("dur", s.dur_us);
    w.field("pid", s.pid);
    w.field("tid", s.tid);
    w.key("args").begin_object();
    w.field("id", s.id);
    w.field("parent", s.parent);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Span::start(Tracer* tracer, std::string&& name, std::uint64_t parent,
                 bool implicit_parent) {
  if (tracer == nullptr) return;
  tracer_ = tracer;
  rec_.id = tracer->next_id();
  rec_.parent = implicit_parent ? tracer->current_span() : parent;
  rec_.name = std::move(name);
  rec_.start_us = tracer->now_us();
  t_open_spans.push_back({tracer, rec_.id});
}

Span::Span(Tracer* tracer, std::string name) {
  start(tracer, std::move(name), 0, /*implicit_parent=*/true);
}

Span::Span(Tracer* tracer, std::string name, std::uint64_t parent) {
  start(tracer, std::move(name), parent, /*implicit_parent=*/false);
}

Span::Span(const Context* ctx, const char* name) {
  if (ctx != nullptr && ctx->tracer != nullptr)
    start(ctx->tracer, std::string(name), 0, /*implicit_parent=*/true);
}

Span::Span(const Context* ctx, const char* name, std::uint64_t parent) {
  if (ctx != nullptr && ctx->tracer != nullptr)
    start(ctx->tracer, std::string(name), parent, /*implicit_parent=*/false);
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  rec_.dur_us = tracer_->now_us() - rec_.start_us;
  // Pop this span's open-stack entry. Spans normally finish LIFO per
  // thread, but a moved-from guard finishing late must still remove its
  // own entry, not whatever sits on top.
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer_ && it->id == rec_.id) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
  tracer_->record(std::move(rec_), std::this_thread::get_id());
  tracer_ = nullptr;
}

}  // namespace wefr::obs
