#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wefr::obs {

// Cross-process observability exchange. A sharded run's workers each
// collect spans, metrics, and diagnostics in a full local
// Tracer/Registry; when the phase ends, that state is captured as an
// ObsPartial, serialized with data/serialize.h's ByteWriter (a
// header-only layer, so no dependency cycle), framed as a
// digest-checked WEFROB01 record (data/cache.h), and shipped back to
// the merging parent — over exchange files under fork() today, over a
// socket for the distributed-transport roadmap item tomorrow. The
// sidecar is best-effort by design: a damaged, stale, or missing
// partial is dropped and counted, never allowed to fail the run.

/// Trace context a sharded parent hands each worker: enough for the
/// worker's locally collected observability to be tied back to the
/// dispatching run. fork() propagates it by value today; it is also
/// embedded in every serialized ObsPartial so (a) the parent can reject
/// stale partials from a reused exchange directory by run id, and (b) a
/// future socket transport propagates it with no format change.
struct TraceContext {
  std::uint64_t run_id = 0;       ///< per-run random id; mismatches are dropped
  std::uint64_t parent_span = 0;  ///< dispatch span workers re-parent under
};

/// One worker diagnostics event in transit. Mirrors
/// core::DiagnosticEvent without depending on core (obs stays at the
/// bottom of the stack); the shard driver converts both ways.
struct WireDiagEvent {
  std::string stage, code, detail;
};

/// Everything one worker's local observability produced for one phase:
/// the finished span set, the registry snapshot (counters, gauges, and
/// the per-stage latency histograms), the bridged diagnostics events,
/// and the worker's own wall/cpu accounting for the shard health
/// ledger.
struct ObsPartial {
  TraceContext ctx;
  std::uint32_t shard_index = 0;
  std::string phase;  ///< "wefr_partial" / "ranker_scores" / "score_partial"
  std::uint64_t wall_micros = 0;
  std::uint64_t cpu_micros = 0;  ///< worker process CPU time for the phase
  std::vector<SpanRecord> spans;
  MetricsSnapshot metrics;
  std::vector<WireDiagEvent> events;
};

/// ByteWriter image of an ObsPartial — the WEFROB01 record payload.
std::string serialize_obs_partial(const ObsPartial& p);

/// Bounds-checked inverse: returns false with the first failed field in
/// `why` (when non-null) instead of faulting on truncated or hostile
/// bytes.
bool deserialize_obs_partial(std::string_view payload, ObsPartial& out,
                             std::string* why = nullptr);

}  // namespace wefr::obs
