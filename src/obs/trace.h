#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/stopwatch.h"

namespace wefr::obs {

struct Context;  // obs/context.h

/// One finished trace span. Times are microseconds on the tracer's
/// monotonic clock (util::Stopwatch), relative to tracer construction.
struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based; 0 means "no span"
  std::uint64_t parent = 0;  ///< id of the enclosing span, 0 = root
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< dense per-tracer thread number (0 = first seen)
  /// Chrome-trace process lane. Spans recorded by this process stay in
  /// lane 1; spans absorbed from a shard worker land in lane 2+shard,
  /// so a merged fleet trace renders one swimlane per worker process
  /// (tid stays worker-local — (pid, tid) is the unique key).
  std::uint32_t pid = 1;
};

/// Collects trace spans for one pipeline run. Thread-safe: spans may
/// begin and end on any thread (ThreadPool workers included); the only
/// shared state is touched once per span end, under a mutex, so the
/// traced code's hot loops never contend on the tracer.
///
/// Span nesting is tracked per thread (a thread-local stack), so
/// `run_wefr -> ensemble -> ranker:<name>` forms a tree when the calls
/// nest on one thread. Work fanned out across a pool does not inherit
/// the submitting thread's stack — fan-out sites pass the parent span
/// id explicitly (see Span's three-argument constructor).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since tracer construction (monotonic).
  double now_us() const { return epoch_.micros(); }

  /// Innermost span currently open on the calling thread (0 when none).
  std::uint64_t current_span() const;

  /// Number of spans finished so far.
  std::size_t size() const;

  /// Copy of every finished span, in completion order.
  std::vector<SpanRecord> snapshot() const;

  /// Chrome trace-event JSON ("complete" X events), loadable in
  /// chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& os) const;

  /// Cross-process merge: appends a shard worker's finished spans (as
  /// shipped in a WEFROB01 obs partial) under `parent_span`, wrapped in
  /// one synthetic container span named `label` — the shard-index label,
  /// e.g. "shard:3". Worker span ids are remapped into this tracer's id
  /// space, worker roots (and spans whose parent never finished) are
  /// re-parented under the container, start times shift by `offset_us`
  /// (the parent-clock instant the worker was dispatched, converting the
  /// worker's local epoch onto this tracer's timeline), and every
  /// absorbed span lands in Chrome-trace lane `pid`. Returns the
  /// container span's id.
  std::uint64_t absorb(const std::vector<SpanRecord>& worker_spans,
                       std::uint64_t parent_span, const std::string& label,
                       std::uint32_t pid, double offset_us);

 private:
  friend class Span;

  std::uint64_t next_id() { return next_.fetch_add(1, std::memory_order_relaxed); }
  void record(SpanRecord&& rec, std::thread::id tid);

  util::Stopwatch epoch_;
  std::atomic<std::uint64_t> next_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<std::thread::id> threads_;  ///< index = dense tid
};

/// RAII span: starts timing on construction, records itself into the
/// tracer on destruction (or finish()). Inert when the tracer is null —
/// no clock read, no allocation — which is the zero-overhead-when-
/// disabled contract the bench gate verifies.
class Span {
 public:
  Span() = default;
  /// Parent = innermost open span on this thread (if any).
  Span(Tracer* tracer, std::string name);
  /// Explicit parent, for spans opened on pool worker threads.
  Span(Tracer* tracer, std::string name, std::uint64_t parent);
  /// Convenience over a nullable Context (null context = inert span).
  Span(const Context* ctx, const char* name);
  Span(const Context* ctx, const char* name, std::uint64_t parent);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;

  ~Span() { finish(); }

  /// Ends the span now (idempotent; the destructor calls it too).
  void finish();

  /// Span id to hand to children created on other threads (0 if inert).
  std::uint64_t id() const { return rec_.id; }

 private:
  void start(Tracer* tracer, std::string&& name, std::uint64_t parent, bool implicit_parent);

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

}  // namespace wefr::obs
