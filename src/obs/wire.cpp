#include "obs/wire.h"

#include "data/serialize.h"

namespace wefr::obs {

namespace {

constexpr std::uint32_t kObsPayloadVersion = 1;
/// Caps on wire-declared element counts: a corrupted length prefix must
/// fail cleanly, not drive a multi-gigabyte allocation.
constexpr std::uint64_t kMaxSpans = 1u << 22;
constexpr std::uint64_t kMaxSeries = 1u << 20;
constexpr std::uint64_t kMaxBuckets = 1u << 12;

bool fail(std::string* why, const char* reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

std::string serialize_obs_partial(const ObsPartial& p) {
  data::ByteWriter w;
  w.scalar(kObsPayloadVersion);
  w.scalar(p.ctx.run_id);
  w.scalar(p.ctx.parent_span);
  w.scalar(p.shard_index);
  w.str(p.phase);
  w.scalar(p.wall_micros);
  w.scalar(p.cpu_micros);

  w.scalar(static_cast<std::uint64_t>(p.spans.size()));
  for (const SpanRecord& s : p.spans) {
    w.scalar(s.id);
    w.scalar(s.parent);
    w.str(s.name);
    w.scalar(s.start_us);
    w.scalar(s.dur_us);
    w.scalar(s.tid);
    w.scalar(s.pid);
  }

  w.scalar(static_cast<std::uint64_t>(p.metrics.counters.size()));
  for (const auto& [name, v] : p.metrics.counters) {
    w.str(name);
    w.scalar(v);
  }
  w.scalar(static_cast<std::uint64_t>(p.metrics.gauges.size()));
  for (const auto& [name, v] : p.metrics.gauges) {
    w.str(name);
    w.scalar(v);
  }
  w.scalar(static_cast<std::uint64_t>(p.metrics.histograms.size()));
  for (const auto& [name, h] : p.metrics.histograms) {
    w.str(name);
    w.scalar(static_cast<std::uint64_t>(h.bounds.size()));
    for (const double b : h.bounds) w.scalar(b);
    w.scalar(static_cast<std::uint64_t>(h.counts.size()));
    for (const std::uint64_t c : h.counts) w.scalar(c);
    w.scalar(h.sum);
    w.scalar(h.count);
  }
  w.scalar(static_cast<std::uint64_t>(p.metrics.help.size()));
  for (const auto& [name, help] : p.metrics.help) {
    w.str(name);
    w.str(help);
  }

  w.scalar(static_cast<std::uint64_t>(p.events.size()));
  for (const WireDiagEvent& e : p.events) {
    w.str(e.stage);
    w.str(e.code);
    w.str(e.detail);
  }
  return std::move(w.buf());
}

bool deserialize_obs_partial(std::string_view payload, ObsPartial& out, std::string* why) {
  out = ObsPartial{};
  data::ByteReader r(payload);
  std::uint32_t version = 0;
  if (!r.scalar(version)) return fail(why, "truncated obs payload");
  if (version != kObsPayloadVersion) return fail(why, "obs payload version mismatch");
  if (!r.scalar(out.ctx.run_id) || !r.scalar(out.ctx.parent_span) ||
      !r.scalar(out.shard_index) || !r.str(out.phase) || !r.scalar(out.wall_micros) ||
      !r.scalar(out.cpu_micros))
    return fail(why, "truncated obs header");

  std::uint64_t n = 0;
  if (!r.scalar(n) || n > kMaxSpans) return fail(why, "bad span count");
  out.spans.resize(static_cast<std::size_t>(n));
  for (SpanRecord& s : out.spans) {
    if (!r.scalar(s.id) || !r.scalar(s.parent) || !r.str(s.name) ||
        !r.scalar(s.start_us) || !r.scalar(s.dur_us) || !r.scalar(s.tid) ||
        !r.scalar(s.pid))
      return fail(why, "truncated span record");
  }

  if (!r.scalar(n) || n > kMaxSeries) return fail(why, "bad counter count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t v = 0;
    if (!r.str(name) || !r.scalar(v)) return fail(why, "truncated counter");
    out.metrics.counters.emplace(std::move(name), v);
  }
  if (!r.scalar(n) || n > kMaxSeries) return fail(why, "bad gauge count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    double v = 0.0;
    if (!r.str(name) || !r.scalar(v)) return fail(why, "truncated gauge");
    out.metrics.gauges.emplace(std::move(name), v);
  }
  if (!r.scalar(n) || n > kMaxSeries) return fail(why, "bad histogram count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    Histogram::Snapshot h;
    std::uint64_t m = 0;
    if (!r.str(name) || !r.scalar(m) || m > kMaxBuckets)
      return fail(why, "bad histogram bounds");
    h.bounds.resize(static_cast<std::size_t>(m));
    for (double& b : h.bounds) {
      if (!r.scalar(b)) return fail(why, "truncated histogram bounds");
    }
    if (!r.scalar(m) || m > kMaxBuckets + 1) return fail(why, "bad histogram buckets");
    h.counts.resize(static_cast<std::size_t>(m));
    for (std::uint64_t& c : h.counts) {
      if (!r.scalar(c)) return fail(why, "truncated histogram buckets");
    }
    if (!r.scalar(h.sum) || !r.scalar(h.count)) return fail(why, "truncated histogram");
    out.metrics.histograms.emplace(std::move(name), std::move(h));
  }
  if (!r.scalar(n) || n > kMaxSeries) return fail(why, "bad help count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name, help;
    if (!r.str(name) || !r.str(help)) return fail(why, "truncated help");
    out.metrics.help.emplace(std::move(name), std::move(help));
  }

  if (!r.scalar(n) || n > kMaxSeries) return fail(why, "bad event count");
  out.events.resize(static_cast<std::size_t>(n));
  for (WireDiagEvent& e : out.events) {
    if (!r.str(e.stage) || !r.str(e.code) || !r.str(e.detail))
      return fail(why, "truncated event");
  }
  if (r.remaining() != 0) return fail(why, "trailing bytes in obs payload");
  return true;
}

}  // namespace wefr::obs
