#pragma once

#include <cstdio>
#include <string_view>

#include "util/stopwatch.h"

namespace wefr::obs {

/// Verbosity of the CLI tools' structured stderr log.
enum class LogLevel : int {
  kQuiet = 0,  ///< nothing
  kInfo = 1,   ///< stage progress (the default)
  kDebug = 2,  ///< + per-step detail (cache outcomes, shard plans, ...)
};

/// Parses "quiet" / "info" / "debug" into `out`; false on anything else.
bool parse_log_level(std::string_view text, LogLevel& out);

/// Structured stderr logger for the CLI tools. Every line carries a
/// monotonic timestamp (seconds since logger construction — the same
/// steady clock the tracer uses, never the steppable wall clock) and a
/// stage tag:
///
///   [+   0.123s] [ingest] 412 drives, 150 days, 23 features
///
/// Results stay on stdout; this channel is operational progress only,
/// so piping a tool's stdout keeps working at any verbosity.
class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kInfo, std::FILE* sink = nullptr)
      : level_(level), sink_(sink != nullptr ? sink : stderr) {}

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  void info(std::string_view stage, std::string_view msg) {
    write(LogLevel::kInfo, stage, msg);
  }
  void debug(std::string_view stage, std::string_view msg) {
    write(LogLevel::kDebug, stage, msg);
  }

  /// printf-style conveniences (message truncated past ~1 KiB).
  void infof(const char* stage, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;
  void debugf(const char* stage, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;

 private:
  void write(LogLevel level, std::string_view stage, std::string_view msg);

  util::Stopwatch epoch_;
  LogLevel level_;
  std::FILE* sink_;
};

}  // namespace wefr::obs
