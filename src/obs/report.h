#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wefr::obs {

class Registry;
class Tracer;

/// One schema-versioned, machine-readable document describing a whole
/// pipeline run: what ran (span tree), how much flowed through each
/// stage (metrics snapshot), what degraded (diagnostics events, ingest
/// tallies), and what was decided (selection groups, change point,
/// scoring outcome).
///
/// The struct is deliberately generic — the layers that own the source
/// types fill it in (`data::fill_run_report` for IngestReport,
/// `core` for PipelineDiagnostics / WefrResult) so the obs library
/// stays at the bottom of the dependency stack.
struct RunReport {
  /// Bumped whenever the JSON layout changes incompatibly. Emitted as
  /// the top-level "schema_version" field. v2 added the "sharding"
  /// block (null for single-process runs); v3 added the shard health
  /// ledger inside it ("fallback_reason", "health", "straggler", and
  /// the exchange/obs accounting fields).
  static constexpr int kSchemaVersion = 3;

  std::string tool;   ///< producing binary ("wefr_select", ...)
  std::string model;  ///< drive model the run operated on

  /// Fleet / run shape: "drives", "days", "features", ... (free-form).
  std::map<std::string, double> run_info;
  /// Flags and options worth recording, as strings.
  std::map<std::string, std::string> params;

  /// Degraded-mode ledger (mirrors core::DiagnosticEvent).
  struct Event {
    std::string stage, code, detail;
  };
  std::vector<Event> diagnostics;
  /// Structured diagnostics counters (rankers_failed, ...).
  std::map<std::string, double> diagnostic_counters;

  /// Ingestion tallies (rows ok / quarantined, per-error-class counts).
  std::map<std::string, double> ingest;

  /// One selected feature set (whole model or a wear group).
  struct Group {
    std::string label;
    std::vector<std::string> features;
    std::uint64_t num_samples = 0;
    std::uint64_t num_positives = 0;
    bool fallback = false;
    bool degraded = false;
  };
  std::vector<Group> selection;
  std::optional<double> change_point_mwi;
  std::optional<double> change_point_z;

  /// Fleet-scoring outcome over [day_lo, day_hi].
  struct Scoring {
    std::uint64_t drives = 0;
    std::uint64_t drive_days = 0;
    int day_lo = 0;
    int day_hi = 0;
    /// True when the scored window overlaps the training days (a
    /// monitoring-style report rather than a held-out evaluation).
    bool in_sample = false;
    std::optional<double> auc;  ///< day-level AUC when labels exist
    std::optional<double> precision, recall, f05, threshold;
  };
  std::optional<Scoring> scoring;

  /// Shard-driver outcome for a `--shards N` run: how the fleet was
  /// partitioned, what the partial build + merge cost, and the per-shard
  /// health ledger (schema v3). Absent (JSON null) for single-process
  /// runs.
  struct Sharding {
    std::uint64_t shards = 0;        ///< worker count requested
    bool forked = false;             ///< false = serial in-process driver
    /// Why the run redid everything through the in-process oracle
    /// ("" = sharding held). When set, every per-shard field below is
    /// zeroed/empty — the sharded numbers described work that was
    /// thrown away.
    std::string fallback_reason;
    std::vector<std::uint64_t> shard_drives;   ///< drives owned per shard
    std::vector<std::uint64_t> shard_samples;  ///< selection samples per shard
    double partial_seconds = 0.0;    ///< slowest worker's partial build
    double merge_seconds = 0.0;      ///< shard-index-ordered merge

    /// One health-ledger row per shard (v3).
    struct ShardHealth {
      double wall_seconds = 0.0;  ///< worker wall clock across its phases
      double cpu_seconds = 0.0;   ///< worker CPU clock (0 when obs was off)
      std::uint64_t drives = 0;   ///< drives the shard owned
      std::uint64_t rows = 0;     ///< sample rows / drive-days contributed
      std::uint64_t bytes = 0;    ///< framed record bytes exchanged
      std::uint64_t records_verified = 0;  ///< digest-checked records decoded
      bool obs_merged = false;    ///< worker obs partials all merged
      std::int64_t worker_exit = 0;  ///< worker exit status (forked mode)
    };
    std::vector<ShardHealth> health;

    // Run-level exchange + worker-obs accounting (v3).
    std::uint64_t records_verified = 0;
    std::uint64_t obs_spans_merged = 0;
    std::uint64_t obs_partials_merged = 0;
    std::uint64_t obs_partials_dropped = 0;
    std::uint64_t workers_failed = 0;

    // Derived straggler/imbalance summary over per-shard wall time (v3).
    double max_shard_seconds = 0.0;
    double median_shard_seconds = 0.0;
    double imbalance_ratio = 0.0;  ///< max / median (0 when undefined)
  };
  std::optional<Sharding> sharding;

  /// Optional sources merged in at write time. Both must outlive
  /// write_json.
  const Tracer* tracer = nullptr;     ///< "spans": tree built from parent ids
  const Registry* metrics = nullptr;  ///< "metrics": registry snapshot

  void write_json(std::ostream& os) const;
  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write_json_file(const std::string& path) const;
};

}  // namespace wefr::obs
