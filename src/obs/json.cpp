#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace wefr::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

Writer::Writer(std::ostream& os, int indent) : os_(os), indent_(indent) {}

void Writer::write_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i)
    os_ << ' ';
}

void Writer::before_value() {
  if (stack_.empty()) {
    if (wrote_top_level_) throw std::logic_error("json::Writer: second top-level value");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    if (!key_pending_) throw std::logic_error("json::Writer: value in object without key");
    key_pending_ = false;
    return;  // key() already handled comma + indent
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  write_indent();
}

Writer& Writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject)
    throw std::logic_error("json::Writer: key outside object");
  if (key_pending_) throw std::logic_error("json::Writer: two keys in a row");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  write_indent();
  write_string(k);
  os_ << (indent_ > 0 ? ": " : ":");
  key_pending_ = true;
  return *this;
}

Writer& Writer::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_)
    throw std::logic_error("json::Writer: unbalanced end_object");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) write_indent();
  os_ << '}';
  if (stack_.empty()) {
    wrote_top_level_ = true;
    if (indent_ > 0) os_ << '\n';
  }
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray)
    throw std::logic_error("json::Writer: unbalanced end_array");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) write_indent();
  os_ << ']';
  if (stack_.empty()) {
    wrote_top_level_ = true;
    if (indent_ > 0) os_ << '\n';
  }
  return *this;
}

void Writer::write_string(std::string_view s) { os_ << '"' << escape(s) << '"'; }

Writer& Writer::value(std::string_view v) {
  before_value();
  write_string(v);
  return *this;
}

Writer& Writer::value(const char* v) {
  if (v == nullptr) return null();
  return value(std::string_view(v));
}

Writer& Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  os_ << format_double(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace wefr::obs::json
