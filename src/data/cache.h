#pragma once

#include <string>

#include "data/csv.h"
#include "data/fleet.h"
#include "data/ingest.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::data {

/// Binary columnar fleet cache.
///
/// Parsing a large fleet CSV is the most expensive step of every tool
/// run, and the result is deterministic given (file bytes, parse
/// policy). The cache persists the parsed-and-forward-filled FleetData
/// plus its IngestReport as a versioned, checksummed binary snapshot
/// next to the data, so every run after the first replaces the parse
/// with a single mapped read.
///
/// On-disk layout (native endianness, guarded by a sentinel):
///
///   magic "WEFRFC01" | u32 format version | u32 endian sentinel
///   | u32 parse policy | u32 reserved | u64 schema hash
///   | u64 source size | i64 source mtime
///   | payload | u64 FNV-1a digest (8-byte words) of everything before it
///
/// The payload holds the model name, feature names, a per-drive index
/// (id, first_day, fail_day, row count), the IngestReport snapshot,
/// and each drive's values as column-major doubles (transposed back to
/// the row-major Matrix on load).
///
/// A snapshot is bypassed — and the CSV reparsed — whenever any
/// validation layer fails, each tracked as a distinct invalidation
/// reason: wrong magic/version, foreign endianness, parse-policy
/// mismatch, source file size/mtime change, schema-hash change
/// (max_gap_days, quarantine-sample cap, pad_missing_columns, model
/// name), feature-schema mismatch (the stored feature names differ
/// from ReadOptions::expected_features — the guard against a stale
/// single-model layout after the fleet mix changed), or checksum
/// mismatch (truncation, bit rot). Snapshots are only written for
/// non-fatal parses, and are written atomically (temp file + rename).
struct CacheOptions {
  /// Directory for snapshots; empty disables caching entirely.
  std::string dir;
  /// Ignore any existing snapshot and rewrite it from a fresh parse.
  bool refresh = false;
};

/// How load_fleet_csv_cached satisfied the request.
enum class CacheOutcome {
  kDisabled,     ///< no cache dir configured; plain load_fleet_csv
  kHit,          ///< snapshot validated; parse skipped
  kMiss,         ///< no snapshot yet; parsed and wrote one
  kInvalidated,  ///< snapshot existed but failed validation; reparsed
};

const char* to_string(CacheOutcome o);

/// Snapshot path for (csv_path, model) under `dir`: the CSV stem plus
/// a hash of the absolute source path and model name, so distinct
/// sources never collide in a shared cache directory.
std::string fleet_cache_path(const std::string& dir, const std::string& csv_path,
                             const std::string& model_name);

/// Serializes `fleet` + `rep` to `cache_path` (atomically). Returns
/// false (and fills `error` when non-null) on I/O failure — callers
/// treat that as "no cache", never as a load failure.
bool write_fleet_cache(const std::string& cache_path, const std::string& csv_path,
                       const std::string& model_name, const ReadOptions& opt,
                       const FleetData& fleet, const IngestReport& rep,
                       std::string* error = nullptr);

/// Loads and validates a snapshot. Returns true on a hit, with `fleet`
/// and `rep` restored exactly as written. On false, `*existed` tells a
/// plain miss (no readable file) from an invalidated snapshot, and
/// `why` (when non-null) carries the first failed validation layer.
/// Never throws on arbitrary file corruption.
bool read_fleet_cache(const std::string& cache_path, const std::string& csv_path,
                      const std::string& model_name, const ReadOptions& opt,
                      FleetData& fleet, IngestReport& rep,
                      std::string* why = nullptr, bool* existed = nullptr);

/// Cache-aware drop-in for load_fleet_csv: a validated snapshot skips
/// the parse and forward_fill entirely; otherwise the CSV is parsed
/// through the parallel fast path and a fresh snapshot is written
/// (unless the parse was fatal). The report's cache_hits /
/// cache_misses / cache_invalidations record what happened, `outcome`
/// (when non-null) gets the same as an enum, and `obs` traces the
/// cache probe/store as "ingest:cache_load" / "ingest:cache_store"
/// spans with wefr_ingest_cache_* counters.
FleetData load_fleet_csv_cached(const std::string& path, const std::string& model_name,
                                const ReadOptions& opt, const CacheOptions& cache,
                                IngestReport* report = nullptr,
                                const obs::Context* obs = nullptr,
                                CacheOutcome* outcome = nullptr);

/// WEFRSH01 shard-partial record: the exchange format sharded WEFR
/// workers use to hand their partial sketches back to the merging
/// parent. Same discipline as the WEFRFC01 fleet snapshot — versioned
/// magic, endian sentinel, bounds-checked reads, trailing word-wise
/// FNV-1a digest — but the payload is caller-defined bytes (the shard
/// driver serializes its own partial structures through ByteWriter):
///
///   magic "WEFRSH01" | u32 record version | u32 endian sentinel
///   | u32 record kind | u32 shard index | u32 shard count
///   | u32 reserved | u64 payload size | payload
///   | u64 FNV-1a digest (8-byte words) of everything before it
///
/// The (kind, shard index, shard count) triple is validated on read so
/// a worker's record can never be merged into the wrong slot or the
/// wrong run shape; any mismatch or damage fails with a reason instead
/// of faulting.
enum class ShardRecordKind : std::uint32_t {
  kWefrPartial = 1,   ///< selection-stage partial (samples + tallies)
  kRankerScores = 2,  ///< raw ranker score vectors for one worker
  kScorePartial = 3,  ///< fleet-scoring partial (drive scores + AUC tallies)
};

/// Frames `payload` as a WEFRSH01 record (header + digest appended).
std::string encode_shard_record(ShardRecordKind kind, std::uint32_t shard_index,
                                std::uint32_t shard_count, std::string_view payload);

/// Validates the framing of `bytes` and extracts the payload. Returns
/// false (with the first failed layer in `why` when non-null) on any
/// mismatch: magic/version/endianness, wrong kind, wrong shard index
/// or count, truncation, or digest mismatch.
bool decode_shard_record(std::string_view bytes, ShardRecordKind kind,
                         std::uint32_t expect_index, std::uint32_t expect_count,
                         std::string& payload, std::string* why = nullptr);

/// encode_shard_record + atomic write (temp file + rename), mirroring
/// write_fleet_cache. Returns false and fills `error` on I/O failure.
bool write_shard_record(const std::string& path, ShardRecordKind kind,
                        std::uint32_t shard_index, std::uint32_t shard_count,
                        std::string_view payload, std::string* error = nullptr);

/// Maps `path` and decodes it as a WEFRSH01 record.
bool read_shard_record(const std::string& path, ShardRecordKind kind,
                       std::uint32_t expect_index, std::uint32_t expect_count,
                       std::string& payload, std::string* why = nullptr);

/// WEFROB01 observability sidecar record: identical framing discipline
/// to WEFRSH01 (versioned magic, endian sentinel, kind/index/count
/// validation, trailing word-wise FNV-1a digest — the same machinery,
/// behind a different magic) wrapped around a serialized
/// obs::ObsPartial. Workers ship one next to each shard-partial file;
/// the sidecar is best-effort, so a damaged or stale record degrades to
/// "obs partial dropped, run unaffected" — never to a wrong merge.
enum class ObsRecordKind : std::uint32_t {
  kWorkerObs = 1,  ///< one worker's spans + metrics + diagnostics for one phase
};

std::string encode_obs_record(ObsRecordKind kind, std::uint32_t shard_index,
                              std::uint32_t shard_count, std::string_view payload);
bool decode_obs_record(std::string_view bytes, ObsRecordKind kind,
                       std::uint32_t expect_index, std::uint32_t expect_count,
                       std::string& payload, std::string* why = nullptr);
bool write_obs_record(const std::string& path, ObsRecordKind kind,
                      std::uint32_t shard_index, std::uint32_t shard_count,
                      std::string_view payload, std::string* error = nullptr);
bool read_obs_record(const std::string& path, ObsRecordKind kind,
                     std::uint32_t expect_index, std::uint32_t expect_count,
                     std::string& payload, std::string* why = nullptr);

/// WEFRDM01 daemon wire frame: the unit of exchange on the wefrd
/// client socket. Same framing machinery as WEFRSH01/WEFROB01 — fixed
/// 40-byte header (magic, version, endian sentinel, kind, two u32
/// slots, u64 payload size), payload, trailing word-wise FNV-1a digest
/// — but repurposed for a stream: the index slot carries the client's
/// request sequence number (extracted by the reader rather than
/// matched against an expectation, so responses can be paired with the
/// request that caused them), and the count slot carries the protocol
/// version (matched exactly, so a client and server from different
/// protocol generations refuse each other's frames instead of
/// misreading them). The fixed-size header lets a stream reader learn
/// the full frame length before the payload arrives.
enum class DaemonFrameKind : std::uint32_t {
  kRequest = 1,   ///< client -> server
  kResponse = 2,  ///< server -> client
};

/// Bumped when the daemon message vocabulary changes incompatibly.
inline constexpr std::uint32_t kDaemonProtocolVersion = 1;
/// Fixed frame header size: magic[8] + 6 u32 fields + u64 payload size.
inline constexpr std::size_t kDaemonFrameHeaderSize = 40;
/// Upper bound a reader accepts for one frame's payload; anything
/// larger is treated as a corrupt length field, not an allocation.
inline constexpr std::uint64_t kDaemonMaxFramePayload = 64ull << 20;

std::string encode_daemon_frame(DaemonFrameKind kind, std::uint32_t seq,
                                std::string_view payload);

/// Validates one complete frame and extracts its payload and sequence
/// number. Returns false (first failed layer in `why`) on any damage:
/// magic/version/endianness/kind/protocol-version mismatch, payload
/// size lie, digest mismatch, or truncation.
bool decode_daemon_frame(std::string_view bytes, DaemonFrameKind expect_kind,
                         std::uint32_t& seq, std::string& payload,
                         std::string* why = nullptr);

/// Incremental stream framing: inspects the start of a receive buffer.
enum class DaemonFramePeek {
  kNeedMore,  ///< not enough bytes for a verdict yet — keep reading
  kFrame,     ///< header is plausible; `total_size` = full frame length
  kBad,       ///< stream is not a valid frame — refuse and disconnect
};
DaemonFramePeek peek_daemon_frame(std::string_view buf, std::size_t& total_size,
                                  std::string* why = nullptr);

/// WEFRDS01 resident-fleet snapshot record: the daemon's warm-restart
/// blob (ResidentFleet::save_snapshot payload framed with the shared
/// record discipline). One record per file, written atomically.
enum class DaemonSnapshotKind : std::uint32_t {
  kResidentFleet = 1,  ///< serialized ResidentFleet state
};

std::string encode_daemon_snapshot(std::string_view payload);
bool decode_daemon_snapshot(std::string_view bytes, std::string& payload,
                            std::string* why = nullptr);
bool write_daemon_snapshot(const std::string& path, std::string_view payload,
                           std::string* error = nullptr);
bool read_daemon_snapshot(const std::string& path, std::string& payload,
                          std::string* why = nullptr);

}  // namespace wefr::data
