#include "data/schema.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace wefr::data {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Vendor alias table: spellings seen in real SMART dumps for columns
/// the canonical namespace writes differently. Checked after an
/// uppercase fold, so "mwi_norm" and "MWI_NORM" both land on "MWI_N".
const std::unordered_map<std::string, std::string>& alias_table() {
  static const std::unordered_map<std::string, std::string> table = {
      {"MWI_NORM", "MWI_N"},          {"MWI_RAW", "MWI_R"},
      {"WEAROUT_N", "MWI_N"},         {"WEAROUT_R", "MWI_R"},
      {"POWER_ON_HOURS_R", "POH_R"},  {"POWER_ON_HOURS_N", "POH_N"},
      {"REALLOC_SECTORS_R", "RSC_R"}, {"REALLOC_SECTORS_N", "RSC_N"},
  };
  return table;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

}  // namespace

const char* to_string(SchemaPolicy p) {
  switch (p) {
    case SchemaPolicy::kUnion: return "union";
    case SchemaPolicy::kIntersect: return "intersect";
  }
  return "unknown";
}

std::string SchemaReconciliation::summary() const {
  std::ostringstream os;
  os << sources << " sources -> " << columns.size() << " columns ("
     << data::to_string(policy) << ")";
  if (trivial()) {
    os << ": schemas already aligned";
    return os.str();
  }
  os << ":";
  if (!nan_filled.empty()) os << " " << nan_filled.size() << " nan-filled,";
  if (!dropped.empty()) os << " " << dropped.size() << " dropped,";
  if (!renamed.empty()) os << " " << renamed.size() << " renamed,";
  std::string s = os.str();
  s.pop_back();  // trailing comma (or the ':' when all three are empty)
  return s;
}

std::string canonical_feature_name(const std::string& name) {
  const std::string trimmed{util::trim(name)};
  const std::string folded = upper(trimmed);
  const auto it = alias_table().find(folded);
  if (it != alias_table().end()) return it->second;
  // Names already shaped like the canonical "<ATTR>_R"/"<ATTR>_N"
  // namespace fold case; anything else passes through untouched so
  // genuinely foreign columns stay distinguishable.
  if (folded.size() > 2 && (folded.ends_with("_R") || folded.ends_with("_N")))
    return folded;
  return trimmed;
}

FleetData reconcile_fleets(const std::vector<FleetData>& fleets, SchemaPolicy policy,
                           SchemaReconciliation* recon,
                           std::vector<std::string>* drive_model) {
  SchemaReconciliation local;
  SchemaReconciliation& rec = recon != nullptr ? *recon : local;
  rec = SchemaReconciliation{};
  rec.policy = policy;
  rec.sources = fleets.size();
  if (drive_model != nullptr) drive_model->clear();

  FleetData out;
  if (fleets.empty()) {
    out.model_name = "mixed()";
    return out;
  }

  // Canonicalize every source's columns once, recording renames.
  std::vector<std::vector<std::string>> names(fleets.size());
  for (std::size_t s = 0; s < fleets.size(); ++s) {
    names[s].reserve(fleets[s].feature_names.size());
    for (const auto& n : fleets[s].feature_names) {
      std::string canon = canonical_feature_name(n);
      if (canon != n)
        rec.renamed.push_back(fleets[s].model_name + ":" + n + "->" + canon);
      names[s].push_back(std::move(canon));
    }
  }

  // Final namespace: union in first-seen order, or its subset present
  // in every source (intersect), preserving the same order.
  std::vector<std::string> all_columns;
  std::unordered_map<std::string, std::size_t> seen_in;  // column -> source count
  for (const auto& src : names) {
    std::unordered_set<std::string> in_this(src.begin(), src.end());
    for (const auto& n : in_this) ++seen_in[n];
    for (const auto& n : src) {
      if (std::find(all_columns.begin(), all_columns.end(), n) == all_columns.end())
        all_columns.push_back(n);
    }
  }
  if (policy == SchemaPolicy::kUnion) {
    rec.columns = all_columns;
  } else {
    for (const auto& n : all_columns) {
      if (seen_in[n] == fleets.size()) rec.columns.push_back(n);
    }
  }

  // Report what each source loses or gains against the final schema.
  for (std::size_t s = 0; s < fleets.size(); ++s) {
    const std::unordered_set<std::string> in_this(names[s].begin(), names[s].end());
    for (const auto& n : rec.columns) {
      if (in_this.count(n) == 0)
        rec.nan_filled.push_back(fleets[s].model_name + ":" + n);
    }
    for (const auto& n : names[s]) {
      if (std::find(rec.columns.begin(), rec.columns.end(), n) == rec.columns.end())
        rec.dropped.push_back(fleets[s].model_name + ":" + n);
    }
  }

  std::string pool_name = "mixed(";
  for (std::size_t s = 0; s < fleets.size(); ++s) {
    if (s > 0) pool_name += "+";
    pool_name += fleets[s].model_name;
  }
  pool_name += ")";
  out.model_name = std::move(pool_name);
  out.feature_names = rec.columns;

  const std::size_t nf = rec.columns.size();
  std::size_t total_drives = 0;
  for (const auto& f : fleets) total_drives += f.drives.size();
  out.drives.reserve(total_drives);
  if (drive_model != nullptr) drive_model->reserve(total_drives);

  for (std::size_t s = 0; s < fleets.size(); ++s) {
    const FleetData& src = fleets[s];
    out.num_days = std::max(out.num_days, src.num_days);
    // Map final column -> source column (-1 = NaN-fill).
    std::vector<int> from(nf, -1);
    for (std::size_t c = 0; c < nf; ++c) {
      for (std::size_t sc = 0; sc < names[s].size(); ++sc) {
        if (names[s][sc] == rec.columns[c]) {
          from[c] = static_cast<int>(sc);
          break;
        }
      }
    }
    const bool identity = [&] {
      if (names[s].size() != nf) return false;
      for (std::size_t c = 0; c < nf; ++c)
        if (from[c] != static_cast<int>(c)) return false;
      return true;
    }();

    for (const auto& d : src.drives) {
      DriveSeries nd;
      nd.drive_id = d.drive_id;
      nd.first_day = d.first_day;
      nd.fail_day = d.fail_day;
      if (identity) {
        nd.values = d.values;
      } else {
        const std::size_t rows = d.num_days();
        nd.values = Matrix::uninitialized(rows, nf);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t c = 0; c < nf; ++c) {
            if (from[c] >= 0) {
              nd.values(r, c) = d.values(r, static_cast<std::size_t>(from[c]));
            } else {
              nd.values(r, c) = kNaN;
              ++rec.cells_nan_filled;
            }
          }
        }
      }
      out.drives.push_back(std::move(nd));
      if (drive_model != nullptr) drive_model->push_back(src.model_name);
    }
  }
  return out;
}

FleetData load_mixed_fleet_csvs(const std::vector<std::string>& paths,
                                const std::vector<std::string>& models,
                                const ReadOptions& opt, const CacheOptions& cache,
                                SchemaPolicy policy, SchemaReconciliation* recon,
                                std::vector<IngestReport>* reports,
                                std::vector<std::string>* drive_model,
                                const obs::Context* obs) {
  std::vector<IngestReport> local_reports;
  std::vector<IngestReport>& reps = reports != nullptr ? *reports : local_reports;
  reps.assign(paths.size(), IngestReport{});

  std::vector<FleetData> fleets;
  fleets.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string model;
    if (i < models.size() && !models[i].empty()) {
      model = models[i];
    } else {
      model = std::filesystem::path(paths[i]).stem().string();
    }
    FleetData f = load_fleet_csv_cached(paths[i], model, opt, cache, &reps[i], obs);
    if (reps[i].fatal) continue;  // reported; the pool just shrinks
    if (f.model_name.empty()) f.model_name = model;
    fleets.push_back(std::move(f));
  }
  return reconcile_fleets(fleets, policy, recon, drive_model);
}

}  // namespace wefr::data
