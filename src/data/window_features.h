#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::data {

/// Rolling-window statistical feature generation.
///
/// The paper generates, for each original (selected) feature, the
/// maximum, minimum, mean, standard deviation, max-min range, and
/// weighted moving average within 3-day and 7-day windows — i.e. each
/// original feature expands into 1 + 6*2 = 13 learning features.
///
/// Windows are trailing (days d-w+1 .. d) and truncated at the start of
/// a drive's series, so day 0 uses a window of one observation.
struct WindowFeatureConfig {
  std::vector<int> windows = {3, 7};
};

/// Names of the expanded features for the given base feature names, in
/// the exact column order produced by `expand_series`:
/// base, base__max3, base__min3, ..., base__wma3, base__max7, ..., base__wma7.
std::vector<std::string> expanded_feature_names(std::span<const std::string> base_names,
                                                const WindowFeatureConfig& cfg = {});

/// Number of expanded columns per base feature (1 + 6 * #windows).
std::size_t expansion_factor(const WindowFeatureConfig& cfg = {});

/// Expands the day-major series `series` (rows = days, cols = all fleet
/// features), restricted to the base columns `base_cols`, into the
/// day-major expanded matrix (rows = days, cols = base_cols.size() *
/// expansion_factor()).
///
/// Streaming implementation, O(1) per day per window stat, organized as
/// branchless element-wise passes (auto-vectorized, with AVX2 clones on
/// x86-64):
///  - max/min/range from a sparse table: per column, log2(max window)
///    levels of running extrema over trailing power-of-two spans; each
///    full window is then the extremum of two overlapping spans.
///    Value-identical to the naive rescans and bit-identical in
///    practice (the only caveat is which representative of a mixed
///    +/-0.0 tie survives).
///  - mean/std/wma from three shared prefix sums (x, x*x, (t+1)*x) as
///    prefix differences in one fused loop. While a window is still
///    growing these replay the naive folds bit-for-bit; once it slides
///    they agree to ~1e-9 relative: the prefix forms round differently,
///    std carries the sum2/n - mean^2 cancellation both kernels share
///    (quantizing near-zero standard deviations at ~sqrt(ulp) of the
///    value scale), and the wma closed form cancels terms of magnitude
///    ~days^2 * scale (absolute error ~eps * days^2 * scale).
/// Each base column is staged through contiguous scratch buffers so
/// neither the strided input column nor the strided output columns are
/// walked in the inner loop, and the output matrix is allocated
/// uninitialized since every cell is overwritten. A column containing
/// any non-finite value (NaN holes from recover-mode ingestion) falls
/// back to the naive kernel for that column, preserving its exact
/// semantics.
///
/// `obs` (nullable) tallies wefr_featuregen_rows/cells counters; the
/// kernel is too hot for per-call spans, so callers wrap it instead.
Matrix expand_series(const Matrix& series, std::span<const std::size_t> base_cols,
                     const WindowFeatureConfig& cfg = {},
                     const obs::Context* obs = nullptr);

/// The original O(days * window) reference implementation, retained as
/// the equivalence oracle for `expand_series` (see tests/test_perf_kernels
/// and the featuregen section of bench_hotpath).
Matrix expand_series_naive(const Matrix& series, std::span<const std::size_t> base_cols,
                           const WindowFeatureConfig& cfg = {});

}  // namespace wefr::data
