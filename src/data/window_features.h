#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"

namespace wefr::data {

/// Rolling-window statistical feature generation.
///
/// The paper generates, for each original (selected) feature, the
/// maximum, minimum, mean, standard deviation, max-min range, and
/// weighted moving average within 3-day and 7-day windows — i.e. each
/// original feature expands into 1 + 6*2 = 13 learning features.
///
/// Windows are trailing (days d-w+1 .. d) and truncated at the start of
/// a drive's series, so day 0 uses a window of one observation.
struct WindowFeatureConfig {
  std::vector<int> windows = {3, 7};
};

/// Names of the expanded features for the given base feature names, in
/// the exact column order produced by `expand_series`:
/// base, base__max3, base__min3, ..., base__wma3, base__max7, ..., base__wma7.
std::vector<std::string> expanded_feature_names(std::span<const std::string> base_names,
                                                const WindowFeatureConfig& cfg = {});

/// Number of expanded columns per base feature (1 + 6 * #windows).
std::size_t expansion_factor(const WindowFeatureConfig& cfg = {});

/// Expands the day-major series `series` (rows = days, cols = all fleet
/// features), restricted to the base columns `base_cols`, into the
/// day-major expanded matrix (rows = days, cols = base_cols.size() *
/// expansion_factor()).
Matrix expand_series(const Matrix& series, std::span<const std::size_t> base_cols,
                     const WindowFeatureConfig& cfg = {});

}  // namespace wefr::data
