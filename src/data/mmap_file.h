#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace wefr::data {

/// Read-only view of a whole file, memory-mapped when the platform
/// allows it and read into an owned buffer otherwise. The ingestion
/// fast path parses straight out of this view with zero-copy
/// string_view tokenization, so the kernel's page cache — not a
/// user-space copy — backs the bytes on the mmap path.
///
/// Move-only; the view stays valid for the lifetime of the object.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Opens `path` read-only. On POSIX the file is mmap'd (private,
  /// read-only); anywhere mmap is unavailable or fails — non-regular
  /// files, exotic filesystems — the contents are read into a heap
  /// buffer instead, so callers never need to care which happened.
  /// Returns false (and fills `error` when non-null) when the file
  /// cannot be opened or read at all.
  bool open(const std::string& path, std::string* error = nullptr);

  /// Releases the mapping / buffer; the object can be reused.
  void close();

  /// The file contents. Empty for an unopened object or an empty file.
  std::string_view view() const { return {data_, size_}; }

  std::size_t size() const { return size_; }
  bool is_open() const { return open_; }
  /// True when view() is backed by a real memory map (false = the
  /// read-whole-file fallback owns a copy).
  bool is_mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace wefr::data
