#include "data/dataset.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace wefr::data {

void Dataset::validate() const {
  const std::size_t n = y.size();
  if (x.rows() != n || drive_index.size() != n || day.size() != n)
    throw std::logic_error("Dataset::validate: parallel array length mismatch");
  if (feature_names.size() != x.cols())
    throw std::logic_error("Dataset::validate: feature name count mismatch");
  for (int v : y) {
    if (v != 0 && v != 1) throw std::logic_error("Dataset::validate: label not in {0,1}");
  }
}

Dataset subset(const Dataset& ds, std::span<const std::size_t> idx) {
  Dataset out;
  out.feature_names = ds.feature_names;
  out.x = ds.x.select_rows(idx);
  out.y.reserve(idx.size());
  out.drive_index.reserve(idx.size());
  out.day.reserve(idx.size());
  for (std::size_t i : idx) {
    if (i >= ds.size()) throw std::out_of_range("subset: row index");
    out.y.push_back(ds.y[i]);
    out.drive_index.push_back(ds.drive_index[i]);
    out.day.push_back(ds.day[i]);
  }
  return out;
}

Dataset select_features(const Dataset& ds, std::span<const std::size_t> cols) {
  Dataset out;
  out.x = ds.x.select_columns(cols);
  out.y = ds.y;
  out.drive_index = ds.drive_index;
  out.day = ds.day;
  out.feature_names.reserve(cols.size());
  for (std::size_t c : cols) out.feature_names.push_back(ds.feature_names[c]);
  return out;
}

std::vector<std::size_t> indices_in_day_range(const Dataset& ds, int day_lo, int day_hi) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.day[i] >= day_lo && ds.day[i] <= day_hi) idx.push_back(i);
  }
  return idx;
}

TimeSplit split_train_validation(const Dataset& ds, double train_frac) {
  if (train_frac <= 0.0 || train_frac >= 1.0)
    throw std::invalid_argument("split_train_validation: train_frac must be in (0,1)");
  std::set<int> distinct(ds.day.begin(), ds.day.end());
  TimeSplit out;
  if (distinct.empty()) return out;
  std::vector<int> days(distinct.begin(), distinct.end());
  // Number of training days, at least one on each side when possible.
  std::size_t n_train = static_cast<std::size_t>(days.size() * train_frac);
  n_train = std::clamp<std::size_t>(n_train, 1, days.size() - 1);
  const int boundary = days[n_train];  // first validation day
  out.boundary_day = boundary;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    (ds.day[i] < boundary ? out.train : out.validation).push_back(i);
  }
  return out;
}

}  // namespace wefr::data
