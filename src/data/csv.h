#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "data/fleet.h"
#include "data/ingest.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::data {

/// CSV serialization of fleets in the long format used by the released
/// Alibaba dataset: one row per (drive, day) with columns
///   drive_id, day, failed_within_dataset, fail_day, <feature...>
///
/// The format round-trips exactly through write/read (modulo double
/// formatting at 17 significant digits). NaN cells serialize as "nan";
/// reading those back requires ParsePolicy::kRecover (strict mode only
/// accepts finite values).
void write_fleet_csv(const FleetData& fleet, std::ostream& os);
void write_fleet_csv(const FleetData& fleet, const std::string& path);

/// Parses a fleet from the long CSV format. Rows for one drive must be
/// contiguous and day-ordered (as produced by write_fleet_csv); throws
/// std::runtime_error on malformed input.
FleetData read_fleet_csv(std::istream& is, const std::string& model_name);
FleetData read_fleet_csv(const std::string& path, const std::string& model_name);

/// Policy-aware parse. Under ParsePolicy::kStrict this behaves exactly
/// like the two-argument overloads. Under kRecover / kSkipDrive it is
/// total on arbitrary row-level corruption: malformed rows (or, for
/// kSkipDrive, their whole drives) are quarantined and tallied into
/// `report`, unparseable feature cells become NaN, and unusable input
/// (no header) yields an empty fleet with `report->fatal` set instead
/// of a throw. `report` may be null when the caller only wants the
/// tolerant behavior.
///
/// `obs` (nullable) traces the parse as an "ingest:read_csv" span and
/// exports the report tallies as wefr_ingest_* counters.
FleetData read_fleet_csv(std::istream& is, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report = nullptr,
                         const obs::Context* obs = nullptr);

/// In-memory variant: parses a whole CSV buffer with the parallel
/// chunked fast path (newline-aligned chunks tokenized on a thread
/// pool, merged in file order). Results — fleet, report tallies, and
/// strict-mode exception messages — are byte-identical to the istream
/// overloads on the same bytes, at any `opt.num_threads` and any
/// `opt.parallel_chunk_bytes`.
FleetData read_fleet_csv_buffer(std::string_view text, const std::string& model_name,
                                const ReadOptions& opt, IngestReport* report = nullptr,
                                const obs::Context* obs = nullptr);

/// Path variant with bounded-retry I/O: opening the file is attempted
/// up to `opt.max_io_attempts` times before the failure is reported
/// (thrown in strict mode; `report->fatal` otherwise). Retries
/// performed are counted in `report->io_retries`. The file is
/// memory-mapped (with a portable read-whole-file fallback) and parsed
/// through the same parallel chunked fast path as
/// read_fleet_csv_buffer.
FleetData read_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report = nullptr,
                         const obs::Context* obs = nullptr);

/// Convenience one-call ingestion: policy-aware read (with retry I/O)
/// followed by forward_fill of the surviving fleet; the fill counters
/// land in `report->fill`. This is the entry point production loaders
/// should use on real, noisy SMART dumps. With `obs`, the read and the
/// repair each get a span under an "ingest" parent.
FleetData load_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report = nullptr,
                         const obs::Context* obs = nullptr);

}  // namespace wefr::data
