#pragma once

#include <iosfwd>
#include <string>

#include "data/fleet.h"

namespace wefr::data {

/// CSV serialization of fleets in the long format used by the released
/// Alibaba dataset: one row per (drive, day) with columns
///   drive_id, day, failed_within_dataset, fail_day, <feature...>
///
/// The format round-trips exactly through write/read (modulo double
/// formatting at 17 significant digits).
void write_fleet_csv(const FleetData& fleet, std::ostream& os);
void write_fleet_csv(const FleetData& fleet, const std::string& path);

/// Parses a fleet from the long CSV format. Rows for one drive must be
/// contiguous and day-ordered (as produced by write_fleet_csv); throws
/// std::runtime_error on malformed input.
FleetData read_fleet_csv(std::istream& is, const std::string& model_name);
FleetData read_fleet_csv(const std::string& path, const std::string& model_name);

}  // namespace wefr::data
