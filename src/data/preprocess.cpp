#include "data/preprocess.h"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace wefr::data {

std::size_t forward_fill(DriveSeries& drive, double fallback, FillStats* stats) {
  std::size_t filled = 0;
  const std::size_t days = drive.values.rows();
  const std::size_t nf = drive.values.cols();
  for (std::size_t f = 0; f < nf; ++f) {
    // Find the first observed value for leading-NaN backfill.
    std::size_t first_obs = days;
    for (std::size_t d = 0; d < days; ++d) {
      if (!std::isnan(drive.values(d, f))) {
        first_obs = d;
        break;
      }
    }
    if (first_obs == days) {
      // No observation at all. A NaN fallback leaves the column missing
      // and fills nothing — the returned count must agree with the
      // change in count_missing(), so these cells are never counted.
      if (stats != nullptr && days > 0) ++stats->all_nan_columns;
      if (std::isnan(fallback)) {
        if (stats != nullptr) stats->cells_left_missing += days;
      } else {
        for (std::size_t d = 0; d < days; ++d) drive.values(d, f) = fallback;
        filled += days;
        if (stats != nullptr) stats->cells_filled += days;
      }
      continue;
    }
    double last = drive.values(first_obs, f);
    for (std::size_t d = 0; d < days; ++d) {
      double& cell = drive.values(d, f);
      if (std::isnan(cell)) {
        cell = last;  // before first_obs this backfills the first value
        ++filled;
        if (stats != nullptr) {
          ++stats->cells_filled;
          if (d < first_obs) ++stats->leading_backfilled;
        }
      } else {
        last = cell;
      }
    }
  }
  return filled;
}

std::size_t forward_fill(FleetData& fleet, double fallback, FillStats* stats) {
  std::size_t filled = 0;
  for (auto& drive : fleet.drives) filled += forward_fill(drive, fallback, stats);
  return filled;
}

std::size_t count_missing(const FleetData& fleet) {
  std::size_t missing = 0;
  for (const auto& drive : fleet.drives) {
    for (double v : drive.values.raw()) missing += std::isnan(v) ? 1 : 0;
  }
  return missing;
}

Standardizer Standardizer::fit(const Matrix& x) {
  Standardizer s;
  s.mean.resize(x.cols());
  s.stddev.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.column(c);
    s.mean[c] = stats::mean(col);
    s.stddev[c] = stats::stddev(col);
  }
  return s;
}

Matrix Standardizer::transform(const Matrix& x) const {
  if (x.cols() != mean.size()) throw std::invalid_argument("Standardizer: column mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = stddev[c] > 0.0 ? (x(r, c) - mean[c]) / stddev[c] : 0.0;
    }
  }
  return out;
}

std::vector<FeatureSummary> summarize_features(const Dataset& ds) {
  std::vector<FeatureSummary> out;
  out.reserve(ds.num_features());
  for (std::size_t c = 0; c < ds.num_features(); ++c) {
    const auto col = ds.x.column(c);
    FeatureSummary s;
    s.name = ds.feature_names[c];
    if (!col.empty()) {
      s.min = stats::min_value(col);
      s.max = stats::max_value(col);
      s.mean = stats::mean(col);
      s.stddev = stats::stddev(col);
      std::size_t zeros = 0;
      for (double v : col) zeros += v == 0.0 ? 1 : 0;
      s.fraction_zero = static_cast<double>(zeros) / static_cast<double>(col.size());
      s.constant = s.min == s.max;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace wefr::data
