#include "data/cache.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <vector>

#include "data/mmap_file.h"
#include "data/serialize.h"
#include "obs/context.h"

namespace wefr::data {

namespace {

constexpr char kMagic[8] = {'W', 'E', 'F', 'R', 'F', 'C', '0', '1'};
// v2: report carries the mixed-schema padding tallies
// (rows_padded/cells_padded); v1 snapshots invalidate cleanly through
// the version check and reparse once.
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

/// Hash of everything that changes the *meaning* of a parse without
/// changing the source bytes. Thread count and chunk size are excluded
/// on purpose: they never change the result (the parallel parse is
/// byte-identical at any setting), so they must not invalidate.
std::uint64_t schema_hash(const ReadOptions& opt, const std::string& model_name) {
  std::uint64_t h = 14695981039346656037ull;
  const std::uint32_t version = kFormatVersion;
  const std::uint32_t policy = static_cast<std::uint32_t>(opt.policy);
  const std::int64_t max_gap = opt.max_gap_days;
  const std::uint64_t max_ids = opt.max_quarantined_ids;
  const std::uint32_t pad = opt.pad_missing_columns ? 1u : 0u;
  h = fnv1a(h, &version, sizeof(version));
  h = fnv1a(h, &policy, sizeof(policy));
  h = fnv1a(h, &max_gap, sizeof(max_gap));
  h = fnv1a(h, &max_ids, sizeof(max_ids));
  h = fnv1a(h, &pad, sizeof(pad));
  h = fnv1a(h, model_name.data(), model_name.size());
  return h;
}

/// Source-file identity: size + mtime, the cheap stat-level signal that
/// the CSV changed under the snapshot. Returns false when the source
/// cannot be stat'ed at all.
bool source_identity(const std::string& csv_path, std::uint64_t& size,
                     std::int64_t& mtime) {
  std::error_code ec;
  const auto s = std::filesystem::file_size(csv_path, ec);
  if (ec) return false;
  const auto t = std::filesystem::last_write_time(csv_path, ec);
  if (ec) return false;
  size = static_cast<std::uint64_t>(s);
  mtime = static_cast<std::int64_t>(t.time_since_epoch().count());
  return true;
}

// Serialization runs through the shared data/serialize.h
// ByteWriter/ByteReader pair: the endian sentinel in the fixed header
// rejects foreign snapshots, and the trailing FNV-1a checksum rejects
// any byte-level damage the field validation missed.
using BufWriter = ByteWriter;
using BufReader = ByteReader;

void serialize_report(BufWriter& w, const IngestReport& rep) {
  w.scalar<std::uint64_t>(rep.rows_total);
  w.scalar<std::uint64_t>(rep.rows_ok);
  w.scalar<std::uint64_t>(rep.rows_quarantined);
  w.scalar<std::uint64_t>(rep.cells_recovered);
  w.scalar<std::uint64_t>(rep.gap_days_bridged);
  w.scalar<std::uint64_t>(rep.drives_quarantined);
  w.scalar<std::uint64_t>(rep.io_retries);
  w.scalar<std::uint64_t>(rep.rows_padded);
  w.scalar<std::uint64_t>(rep.cells_padded);
  for (std::size_t c : rep.error_counts) w.scalar<std::uint64_t>(c);
  w.scalar<std::uint64_t>(rep.quarantined_drive_ids.size());
  for (const auto& id : rep.quarantined_drive_ids) w.str(id);
  w.scalar<std::uint64_t>(rep.fill.cells_filled);
  w.scalar<std::uint64_t>(rep.fill.leading_backfilled);
  w.scalar<std::uint64_t>(rep.fill.all_nan_columns);
  w.scalar<std::uint64_t>(rep.fill.cells_left_missing);
}

bool deserialize_report(BufReader& r, IngestReport& rep) {
  rep = IngestReport{};
  std::uint64_t v = 0;
  auto u64 = [&](std::size_t& out) {
    if (!r.scalar(v)) return false;
    out = static_cast<std::size_t>(v);
    return true;
  };
  if (!u64(rep.rows_total) || !u64(rep.rows_ok) || !u64(rep.rows_quarantined) ||
      !u64(rep.cells_recovered) || !u64(rep.gap_days_bridged) ||
      !u64(rep.drives_quarantined) || !u64(rep.io_retries) ||
      !u64(rep.rows_padded) || !u64(rep.cells_padded))
    return false;
  for (auto& c : rep.error_counts)
    if (!u64(c)) return false;
  std::uint64_t n_ids = 0;
  if (!r.scalar(n_ids) || n_ids > (1u << 20)) return false;
  rep.quarantined_drive_ids.resize(static_cast<std::size_t>(n_ids));
  for (auto& id : rep.quarantined_drive_ids)
    if (!r.str(id)) return false;
  return u64(rep.fill.cells_filled) && u64(rep.fill.leading_backfilled) &&
         u64(rep.fill.all_nan_columns) && u64(rep.fill.cells_left_missing);
}

}  // namespace

const char* to_string(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::kDisabled: return "disabled";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kInvalidated: return "invalidated";
  }
  return "unknown";
}

std::string fleet_cache_path(const std::string& dir, const std::string& csv_path,
                             const std::string& model_name) {
  std::error_code ec;
  std::filesystem::path src(csv_path);
  const auto abs = std::filesystem::absolute(src, ec);
  const std::string key = (ec ? src : abs).string() + "\x1f" + model_name;
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a(key)));
  std::string stem = src.stem().string();
  if (stem.empty()) stem = "fleet";
  return (std::filesystem::path(dir) / (stem + "-" + hex + ".wefrfc")).string();
}

bool write_fleet_cache(const std::string& cache_path, const std::string& csv_path,
                       const std::string& model_name, const ReadOptions& opt,
                       const FleetData& fleet, const IngestReport& rep,
                       std::string* error) {
  std::uint64_t src_size = 0;
  std::int64_t src_mtime = 0;
  if (!source_identity(csv_path, src_size, src_mtime)) {
    if (error != nullptr) *error = "cannot stat source " + csv_path;
    return false;
  }

  BufWriter w;
  w.bytes(kMagic, sizeof(kMagic));
  w.scalar(kFormatVersion);
  w.scalar(kEndianSentinel);
  w.scalar(static_cast<std::uint32_t>(opt.policy));
  w.scalar(std::uint32_t{0});  // reserved
  w.scalar(schema_hash(opt, model_name));
  w.scalar(src_size);
  w.scalar(src_mtime);

  w.str(fleet.model_name);
  w.scalar(static_cast<std::int64_t>(fleet.num_days));
  const std::size_t nf = fleet.num_features();
  w.scalar(static_cast<std::uint64_t>(nf));
  for (const auto& name : fleet.feature_names) w.str(name);
  w.scalar(static_cast<std::uint64_t>(fleet.drives.size()));
  for (const auto& d : fleet.drives) {
    w.str(d.drive_id);
    w.scalar(static_cast<std::int64_t>(d.first_day));
    w.scalar(static_cast<std::int64_t>(d.fail_day));
    w.scalar(static_cast<std::uint64_t>(d.num_days()));
  }
  serialize_report(w, rep);
  // Values, column-major per drive: all of feature 0's days, then
  // feature 1's, ... Column access dominates downstream consumers
  // (per-feature ranking), and the transpose back is one linear pass.
  for (const auto& d : fleet.drives) {
    const std::size_t rows = d.num_days();
    std::vector<double> col(rows);
    for (std::size_t c = 0; c < nf; ++c) {
      for (std::size_t r = 0; r < rows; ++r) col[r] = d.values(r, c);
      w.bytes(col.data(), rows * sizeof(double));
    }
  }
  w.scalar(snapshot_digest(w.buf().data(), w.buf().size()));

  std::error_code ec;
  const std::filesystem::path target(cache_path);
  if (target.has_parent_path())
    std::filesystem::create_directories(target.parent_path(), ec);
  const std::string tmp = cache_path + ".tmp";
  {
    std::ofstream ofs(tmp, std::ios::binary | std::ios::trunc);
    if (!ofs) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    ofs.write(w.buf().data(), static_cast<std::streamsize>(w.buf().size()));
    if (!ofs) {
      if (error != nullptr) *error = "write failed for " + tmp;
      return false;
    }
  }
  std::filesystem::rename(tmp, cache_path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    if (error != nullptr) *error = "cannot rename into " + cache_path;
    return false;
  }
  return true;
}

bool read_fleet_cache(const std::string& cache_path, const std::string& csv_path,
                      const std::string& model_name, const ReadOptions& opt,
                      FleetData& fleet, IngestReport& rep, std::string* why,
                      bool* existed) {
  if (existed != nullptr) *existed = false;
  const auto invalid = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };

  MappedFile file;
  if (!file.open(cache_path) || file.size() == 0)
    return invalid("no snapshot");
  if (existed != nullptr) *existed = true;
  const std::string_view buf = file.view();

  BufReader r(buf);
  char magic[sizeof(kMagic)];
  std::uint32_t version = 0, endian = 0, policy = 0, reserved = 0;
  std::uint64_t schema = 0, src_size = 0;
  std::int64_t src_mtime = 0;
  if (r.raw(sizeof(kMagic)) == nullptr) return invalid("truncated header");
  std::memcpy(magic, buf.data(), sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return invalid("bad magic");
  if (!r.scalar(version) || !r.scalar(endian) || !r.scalar(policy) ||
      !r.scalar(reserved) || !r.scalar(schema) || !r.scalar(src_size) ||
      !r.scalar(src_mtime))
    return invalid("truncated header");
  if (version != kFormatVersion) return invalid("format version mismatch");
  if (endian != kEndianSentinel) return invalid("endianness mismatch");
  if (policy != static_cast<std::uint32_t>(opt.policy))
    return invalid("parse policy mismatch");

  std::uint64_t cur_size = 0;
  std::int64_t cur_mtime = 0;
  if (!source_identity(csv_path, cur_size, cur_mtime) || cur_size != src_size ||
      cur_mtime != src_mtime)
    return invalid("source file changed");
  if (schema != schema_hash(opt, model_name)) return invalid("schema changed");

  if (buf.size() < sizeof(std::uint64_t)) return invalid("truncated");
  const std::size_t body = buf.size() - sizeof(std::uint64_t);
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, buf.data() + body, sizeof(stored_sum));
  if (snapshot_digest(buf.data(), body) != stored_sum)
    return invalid("checksum mismatch");

  // Past every validation layer: deserialize. The bounds checks below
  // should never fire on a checksum-clean file; they are the backstop.
  FleetData out;
  IngestReport out_rep;
  std::int64_t num_days = 0;
  std::uint64_t nf64 = 0, n_drives = 0;
  if (!r.str(out.model_name) || !r.scalar(num_days) || !r.scalar(nf64))
    return invalid("corrupt payload");
  out.num_days = static_cast<int>(num_days);
  const std::size_t nf = static_cast<std::size_t>(nf64);
  if (nf > (1u << 20)) return invalid("corrupt payload");
  out.feature_names.resize(nf);
  for (auto& name : out.feature_names)
    if (!r.str(name)) return invalid("corrupt payload");
  // Mix-change guard: a caller who states the feature layout it needs
  // (mixed-fleet loaders do) must never be served a snapshot written
  // under a different one — a stale single-model layout would
  // misalign every column downstream.
  if (!opt.expected_features.empty() && opt.expected_features != out.feature_names)
    return invalid("feature schema mismatch");
  if (!r.scalar(n_drives) || n_drives > (1u << 26)) return invalid("corrupt payload");
  out.drives.resize(static_cast<std::size_t>(n_drives));
  std::vector<std::uint64_t> drive_rows(out.drives.size());
  for (std::size_t i = 0; i < out.drives.size(); ++i) {
    auto& d = out.drives[i];
    std::int64_t first_day = 0, fail_day = 0;
    if (!r.str(d.drive_id) || !r.scalar(first_day) || !r.scalar(fail_day) ||
        !r.scalar(drive_rows[i]))
      return invalid("corrupt payload");
    d.first_day = static_cast<int>(first_day);
    d.fail_day = static_cast<int>(fail_day);
  }
  if (!deserialize_report(r, out_rep)) return invalid("corrupt payload");
  for (std::size_t i = 0; i < out.drives.size(); ++i) {
    const std::size_t rows = static_cast<std::size_t>(drive_rows[i]);
    if (rows > (body - r.pos()) / sizeof(double) / (nf == 0 ? 1 : nf))
      return invalid("corrupt payload");
    Matrix m = Matrix::uninitialized(rows, nf);
    for (std::size_t c = 0; c < nf; ++c) {
      const char* p = r.raw(rows * sizeof(double));
      if (p == nullptr) return invalid("corrupt payload");
      for (std::size_t row = 0; row < rows; ++row) {
        double v;
        std::memcpy(&v, p + row * sizeof(double), sizeof(double));
        m(row, c) = v;
      }
    }
    out.drives[i].values = std::move(m);
  }

  fleet = std::move(out);
  rep = std::move(out_rep);
  return true;
}

FleetData load_fleet_csv_cached(const std::string& path, const std::string& model_name,
                                const ReadOptions& opt, const CacheOptions& cache,
                                IngestReport* report, const obs::Context* obs,
                                CacheOutcome* outcome) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  if (cache.dir.empty()) {
    if (outcome != nullptr) *outcome = CacheOutcome::kDisabled;
    return load_fleet_csv(path, model_name, opt, &rep, obs);
  }

  const std::string cache_path = fleet_cache_path(cache.dir, path, model_name);
  bool invalidated = false;
  if (!cache.refresh) {
    obs::Span probe(obs, "ingest:cache_load");
    FleetData fleet;
    IngestReport cached;
    bool existed = false;
    if (read_fleet_cache(cache_path, path, model_name, opt, fleet, cached, nullptr,
                         &existed)) {
      rep = std::move(cached);
      rep.cache_hits = 1;
      probe.finish();
      if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
      if (outcome != nullptr) *outcome = CacheOutcome::kHit;
      return fleet;
    }
    invalidated = existed;
  }

  FleetData fleet = load_fleet_csv(path, model_name, opt, &rep, obs);
  rep.cache_misses = 1;
  rep.cache_invalidations = invalidated ? 1 : 0;
  if (!rep.fatal) {
    obs::Span store(obs, "ingest:cache_store");
    write_fleet_cache(cache_path, path, model_name, opt, fleet, rep);
  }
  // load_fleet_csv already exported the parse tallies; only the cache
  // outcome is new here.
  obs::add_counter(obs, "wefr_ingest_cache_miss_total", 1);
  if (invalidated) obs::add_counter(obs, "wefr_ingest_cache_invalidate_total", 1);
  if (outcome != nullptr)
    *outcome = invalidated ? CacheOutcome::kInvalidated : CacheOutcome::kMiss;
  return fleet;
}

// --- WEFRSH01 / WEFROB01 framed exchange records -------------------
// One framing implementation behind two magics: WEFRSH01 carries the
// shard-partial payloads the merge depends on, WEFROB01 carries the
// best-effort observability sidecars. Keeping the validation machinery
// shared means a new record family can never drift from the
// magic/version/endian/kind/index/count/digest discipline.

namespace {

constexpr char kShardMagic[8] = {'W', 'E', 'F', 'R', 'S', 'H', '0', '1'};
constexpr char kObsMagic[8] = {'W', 'E', 'F', 'R', 'O', 'B', '0', '1'};
constexpr char kDaemonMagic[8] = {'W', 'E', 'F', 'R', 'D', 'M', '0', '1'};
constexpr char kDaemonSnapshotMagic[8] = {'W', 'E', 'F', 'R', 'D', 'S', '0', '1'};
constexpr std::uint32_t kShardFormatVersion = 1;
constexpr std::uint32_t kObsFormatVersion = 1;
constexpr std::uint32_t kDaemonFormatVersion = 1;
constexpr std::uint32_t kDaemonSnapshotFormatVersion = 1;

std::string encode_framed_record(const char (&magic)[8], std::uint32_t version,
                                 std::uint32_t kind, std::uint32_t shard_index,
                                 std::uint32_t shard_count, std::string_view payload) {
  ByteWriter w;
  w.bytes(magic, sizeof(magic));
  w.scalar(version);
  w.scalar(kEndianSentinel);
  w.scalar(kind);
  w.scalar(shard_index);
  w.scalar(shard_count);
  w.scalar(std::uint32_t{0});  // reserved
  w.scalar(static_cast<std::uint64_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
  w.scalar(snapshot_digest(w.buf().data(), w.buf().size()));
  return std::move(w.buf());
}

bool decode_framed_record(const char (&expect_magic)[8], std::uint32_t expect_version,
                          std::string_view bytes, std::uint32_t kind,
                          std::uint32_t expect_index, std::uint32_t expect_count,
                          std::string& payload, std::string* why) {
  const auto invalid = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  ByteReader r(bytes);
  const char* magic = r.raw(sizeof(expect_magic));
  if (magic == nullptr) return invalid("truncated header");
  if (std::memcmp(magic, expect_magic, sizeof(expect_magic)) != 0)
    return invalid("bad magic");
  std::uint32_t version = 0, endian = 0, rkind = 0, idx = 0, count = 0, reserved = 0;
  std::uint64_t payload_size = 0;
  if (!r.scalar(version) || !r.scalar(endian) || !r.scalar(rkind) ||
      !r.scalar(idx) || !r.scalar(count) || !r.scalar(reserved) ||
      !r.scalar(payload_size))
    return invalid("truncated header");
  if (version != expect_version) return invalid("format version mismatch");
  if (endian != kEndianSentinel) return invalid("endianness mismatch");
  if (rkind != kind) return invalid("record kind mismatch");
  if (idx != expect_index) return invalid("shard index mismatch");
  if (count != expect_count) return invalid("shard count mismatch");
  if (r.remaining() < sizeof(std::uint64_t) ||
      payload_size != r.remaining() - sizeof(std::uint64_t))
    return invalid("payload size mismatch");
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, bytes.data() + body, sizeof(stored_sum));
  if (snapshot_digest(bytes.data(), body) != stored_sum)
    return invalid("checksum mismatch");
  const char* p = r.raw(static_cast<std::size_t>(payload_size));
  if (p == nullptr) return invalid("truncated payload");
  payload.assign(p, static_cast<std::size_t>(payload_size));
  return true;
}

/// decode_framed_record with the index slot extracted instead of
/// matched: the daemon wire reuses that slot as a request sequence
/// number the reader cannot predict. Every other layer (magic,
/// version, endianness, kind, count, payload size, digest) keeps the
/// exact-match discipline.
bool decode_framed_record_seq(const char (&expect_magic)[8], std::uint32_t expect_version,
                              std::string_view bytes, std::uint32_t kind,
                              std::uint32_t& index_out, std::uint32_t expect_count,
                              const char* count_mismatch_reason, std::string& payload,
                              std::string* why) {
  const auto invalid = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  ByteReader r(bytes);
  const char* magic = r.raw(sizeof(expect_magic));
  if (magic == nullptr) return invalid("truncated header");
  if (std::memcmp(magic, expect_magic, sizeof(expect_magic)) != 0)
    return invalid("bad magic");
  std::uint32_t version = 0, endian = 0, rkind = 0, idx = 0, count = 0, reserved = 0;
  std::uint64_t payload_size = 0;
  if (!r.scalar(version) || !r.scalar(endian) || !r.scalar(rkind) ||
      !r.scalar(idx) || !r.scalar(count) || !r.scalar(reserved) ||
      !r.scalar(payload_size))
    return invalid("truncated header");
  if (version != expect_version) return invalid("format version mismatch");
  if (endian != kEndianSentinel) return invalid("endianness mismatch");
  if (rkind != kind) return invalid("record kind mismatch");
  if (count != expect_count) return invalid(count_mismatch_reason);
  if (r.remaining() < sizeof(std::uint64_t) ||
      payload_size != r.remaining() - sizeof(std::uint64_t))
    return invalid("payload size mismatch");
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, bytes.data() + body, sizeof(stored_sum));
  if (snapshot_digest(bytes.data(), body) != stored_sum)
    return invalid("checksum mismatch");
  const char* p = r.raw(static_cast<std::size_t>(payload_size));
  if (p == nullptr) return invalid("truncated payload");
  index_out = idx;
  payload.assign(p, static_cast<std::size_t>(payload_size));
  return true;
}

bool write_record_file(const std::string& path, std::string_view record,
                       std::string* error) {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path())
    std::filesystem::create_directories(target.parent_path(), ec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream ofs(tmp, std::ios::binary | std::ios::trunc);
    if (!ofs) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    ofs.write(record.data(), static_cast<std::streamsize>(record.size()));
    if (!ofs) {
      if (error != nullptr) *error = "write failed for " + tmp;
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    if (error != nullptr) *error = "cannot rename into " + path;
    return false;
  }
  return true;
}

}  // namespace

std::string encode_shard_record(ShardRecordKind kind, std::uint32_t shard_index,
                                std::uint32_t shard_count, std::string_view payload) {
  return encode_framed_record(kShardMagic, kShardFormatVersion,
                              static_cast<std::uint32_t>(kind), shard_index, shard_count,
                              payload);
}

bool decode_shard_record(std::string_view bytes, ShardRecordKind kind,
                         std::uint32_t expect_index, std::uint32_t expect_count,
                         std::string& payload, std::string* why) {
  return decode_framed_record(kShardMagic, kShardFormatVersion, bytes,
                              static_cast<std::uint32_t>(kind), expect_index,
                              expect_count, payload, why);
}

bool write_shard_record(const std::string& path, ShardRecordKind kind,
                        std::uint32_t shard_index, std::uint32_t shard_count,
                        std::string_view payload, std::string* error) {
  return write_record_file(path, encode_shard_record(kind, shard_index, shard_count, payload),
                           error);
}

bool read_shard_record(const std::string& path, ShardRecordKind kind,
                       std::uint32_t expect_index, std::uint32_t expect_count,
                       std::string& payload, std::string* why) {
  MappedFile file;
  if (!file.open(path) || file.size() == 0) {
    if (why != nullptr) *why = "cannot read " + path;
    return false;
  }
  return decode_shard_record(file.view(), kind, expect_index, expect_count, payload, why);
}

std::string encode_obs_record(ObsRecordKind kind, std::uint32_t shard_index,
                              std::uint32_t shard_count, std::string_view payload) {
  return encode_framed_record(kObsMagic, kObsFormatVersion,
                              static_cast<std::uint32_t>(kind), shard_index, shard_count,
                              payload);
}

bool decode_obs_record(std::string_view bytes, ObsRecordKind kind,
                       std::uint32_t expect_index, std::uint32_t expect_count,
                       std::string& payload, std::string* why) {
  return decode_framed_record(kObsMagic, kObsFormatVersion, bytes,
                              static_cast<std::uint32_t>(kind), expect_index,
                              expect_count, payload, why);
}

bool write_obs_record(const std::string& path, ObsRecordKind kind,
                      std::uint32_t shard_index, std::uint32_t shard_count,
                      std::string_view payload, std::string* error) {
  return write_record_file(path, encode_obs_record(kind, shard_index, shard_count, payload),
                           error);
}

bool read_obs_record(const std::string& path, ObsRecordKind kind,
                     std::uint32_t expect_index, std::uint32_t expect_count,
                     std::string& payload, std::string* why) {
  MappedFile file;
  if (!file.open(path) || file.size() == 0) {
    if (why != nullptr) *why = "cannot read " + path;
    return false;
  }
  return decode_obs_record(file.view(), kind, expect_index, expect_count, payload, why);
}

std::string encode_daemon_frame(DaemonFrameKind kind, std::uint32_t seq,
                                std::string_view payload) {
  return encode_framed_record(kDaemonMagic, kDaemonFormatVersion,
                              static_cast<std::uint32_t>(kind), seq,
                              kDaemonProtocolVersion, payload);
}

bool decode_daemon_frame(std::string_view bytes, DaemonFrameKind expect_kind,
                         std::uint32_t& seq, std::string& payload, std::string* why) {
  return decode_framed_record_seq(kDaemonMagic, kDaemonFormatVersion, bytes,
                                  static_cast<std::uint32_t>(expect_kind), seq,
                                  kDaemonProtocolVersion, "protocol version mismatch",
                                  payload, why);
}

DaemonFramePeek peek_daemon_frame(std::string_view buf, std::size_t& total_size,
                                  std::string* why) {
  static_assert(kDaemonFrameHeaderSize ==
                sizeof(kDaemonMagic) + 6 * sizeof(std::uint32_t) + sizeof(std::uint64_t));
  if (buf.size() < kDaemonFrameHeaderSize) return DaemonFramePeek::kNeedMore;
  const auto bad = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return DaemonFramePeek::kBad;
  };
  ByteReader r(buf);
  const char* magic = r.raw(sizeof(kDaemonMagic));
  if (std::memcmp(magic, kDaemonMagic, sizeof(kDaemonMagic)) != 0)
    return bad("bad magic");
  std::uint32_t version = 0, endian = 0, rkind = 0, idx = 0, count = 0, reserved = 0;
  std::uint64_t payload_size = 0;
  r.scalar(version);
  r.scalar(endian);
  r.scalar(rkind);
  r.scalar(idx);
  r.scalar(count);
  r.scalar(reserved);
  r.scalar(payload_size);
  if (version != kDaemonFormatVersion) return bad("format version mismatch");
  if (endian != kEndianSentinel) return bad("endianness mismatch");
  if (payload_size > kDaemonMaxFramePayload) return bad("frame too large");
  total_size = kDaemonFrameHeaderSize + static_cast<std::size_t>(payload_size) +
               sizeof(std::uint64_t);
  return DaemonFramePeek::kFrame;
}

std::string encode_daemon_snapshot(std::string_view payload) {
  return encode_framed_record(
      kDaemonSnapshotMagic, kDaemonSnapshotFormatVersion,
      static_cast<std::uint32_t>(DaemonSnapshotKind::kResidentFleet), 0, 1, payload);
}

bool decode_daemon_snapshot(std::string_view bytes, std::string& payload,
                            std::string* why) {
  return decode_framed_record(
      kDaemonSnapshotMagic, kDaemonSnapshotFormatVersion, bytes,
      static_cast<std::uint32_t>(DaemonSnapshotKind::kResidentFleet), 0, 1, payload, why);
}

bool write_daemon_snapshot(const std::string& path, std::string_view payload,
                           std::string* error) {
  return write_record_file(path, encode_daemon_snapshot(payload), error);
}

bool read_daemon_snapshot(const std::string& path, std::string& payload,
                          std::string* why) {
  MappedFile file;
  if (!file.open(path) || file.size() == 0) {
    if (why != nullptr) *why = "cannot read " + path;
    return false;
  }
  return decode_daemon_snapshot(file.view(), payload, why);
}

}  // namespace wefr::data
