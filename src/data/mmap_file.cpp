#include "data/mmap_file.h"

#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define WEFR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WEFR_HAVE_MMAP 0
#endif

namespace wefr::data {

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  close();
  fallback_ = std::move(other.fallback_);
  mapped_ = other.mapped_;
  open_ = other.open_;
  size_ = other.size_;
  data_ = mapped_ ? other.data_ : fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = other.mapped_ = false;
  return *this;
}

MappedFile::~MappedFile() { close(); }

void MappedFile::close() {
#if WEFR_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<char*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  open_ = mapped_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

namespace {

bool read_whole_file(const std::string& path, std::string& out, std::string* error) {
  std::ifstream ifs(path, std::ios::binary);
  if (!ifs) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream os;
  os << ifs.rdbuf();
  if (ifs.bad()) {
    if (error != nullptr) *error = "read failed for " + path;
    return false;
  }
  out = std::move(os).str();
  return true;
}

}  // namespace

bool MappedFile::open(const std::string& path, std::string* error) {
  close();
#if WEFR_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size == 0) {
        ::close(fd);
        open_ = true;  // empty file: valid, empty view
        return true;
      }
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        data_ = static_cast<const char*>(p);
        size_ = static_cast<std::size_t>(st.st_size);
        open_ = mapped_ = true;
        return true;
      }
      // mmap refused (e.g. a filesystem without mapping support):
      // fall through to the portable read below.
    } else {
      ::close(fd);
    }
  }
#endif
  if (!read_whole_file(path, fallback_, error)) return false;
  data_ = fallback_.data();
  size_ = fallback_.size();
  open_ = true;
  return true;
}

}  // namespace wefr::data
