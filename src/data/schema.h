#pragma once

#include <string>
#include <vector>

#include "data/cache.h"
#include "data/fleet.h"
#include "data/ingest.h"

namespace wefr::obs {
struct Context;
}

namespace wefr::data {

/// Per-model schema reconciliation for heterogeneous fleets.
///
/// Different drive models expose different SMART attribute sets (Table
/// I of the paper), and real deployments mix models in one pool. These
/// helpers align several per-model fleets onto one feature namespace so
/// the pooled fleet can flow through the unchanged WEFR stack:
///
///  - kUnion keeps every column appearing in any source; columns a
///    model lacks are NaN-filled for its drives (forward_fill leaves
///    never-observed columns NaN, and the learning stack already
///    survives them — constant/NaN columns rank neutrally).
///  - kIntersect keeps only columns present in every source; the rest
///    are dropped (the conservative mode when NaN-heavy columns would
///    dilute ranking).
///
/// Before alignment, column names pass through canonical_feature_name,
/// which folds known vendor spellings ("MWI_NORM", lowercase names, …)
/// onto the canonical "<ATTR>_R"/"<ATTR>_N" namespace; every applied
/// rename is reported.
enum class SchemaPolicy { kUnion, kIntersect };

const char* to_string(SchemaPolicy p);

/// Explicit record of everything reconciliation did — the ledger the
/// robustness acceptance gates read. One entry strings are
/// "model:column" (dropped / nan_filled) or "model:old->new" (renamed).
struct SchemaReconciliation {
  SchemaPolicy policy = SchemaPolicy::kUnion;
  /// The final aligned feature namespace, in first-seen source order.
  std::vector<std::string> columns;
  std::size_t sources = 0;
  std::vector<std::string> dropped;     ///< intersect-dropped columns
  std::vector<std::string> nan_filled;  ///< union NaN-filled columns
  std::vector<std::string> renamed;     ///< alias-canonicalized columns
  /// Cells materialized as NaN for models lacking a union column.
  std::size_t cells_nan_filled = 0;

  bool trivial() const {
    return dropped.empty() && nan_filled.empty() && renamed.empty();
  }
  /// "3 sources -> 44 columns (union): 6 nan-filled, 2 renamed" line.
  std::string summary() const;
};

/// Canonical spelling of a feature column: trims whitespace and folds
/// known vendor aliases (e.g. "MWI_NORM" -> "MWI_N", "mwi_n" ->
/// "MWI_N"). Unknown names pass through unchanged.
std::string canonical_feature_name(const std::string& name);

/// Aligns per-model fleets onto one schema and pools their drives into
/// a single FleetData (model_name "mixed(<m1>+<m2>+...)", num_days =
/// max over sources). Drive order is source order, preserving each
/// source's internal order, so the result is deterministic. `recon`
/// (nullable) receives the full reconciliation ledger; `drive_model`
/// (nullable) receives one source model name per pooled drive, aligned
/// with the result's drives vector.
///
/// Degenerate inputs degrade instead of throwing: an empty source list
/// yields an empty fleet, a source without drives still contributes
/// its columns, and an empty intersection yields a fleet whose drives
/// carry zero-column matrices (the selection stack's degraded mode
/// takes it from there).
FleetData reconcile_fleets(const std::vector<FleetData>& fleets, SchemaPolicy policy,
                           SchemaReconciliation* recon = nullptr,
                           std::vector<std::string>* drive_model = nullptr);

/// Loads several per-model CSVs (each through the cache-aware fast
/// path) and reconciles them into one pooled fleet. `models[i]` names
/// the fleet in `paths[i]`; when `models` is shorter than `paths` the
/// missing names default to the CSV stem. Per-source IngestReports
/// land in `reports` (resized to match) and the reconciliation ledger
/// in `recon`. Sources whose parse was fatal are skipped and reported
/// via their IngestReport only — the pooled load never throws under
/// the tolerant policies.
FleetData load_mixed_fleet_csvs(const std::vector<std::string>& paths,
                                const std::vector<std::string>& models,
                                const ReadOptions& opt, const CacheOptions& cache,
                                SchemaPolicy policy,
                                SchemaReconciliation* recon = nullptr,
                                std::vector<IngestReport>* reports = nullptr,
                                std::vector<std::string>* drive_model = nullptr,
                                const obs::Context* obs = nullptr);

}  // namespace wefr::data
