#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wefr::data {

namespace {
constexpr int kMetaCols = 4;  // drive_id, day, failed, fail_day
}

void write_fleet_csv(const FleetData& fleet, std::ostream& os) {
  os << "drive_id,day,failed,fail_day";
  for (const auto& name : fleet.feature_names) os << ',' << name;
  os << '\n';
  os.precision(17);
  for (const auto& drive : fleet.drives) {
    for (std::size_t d = 0; d < drive.num_days(); ++d) {
      os << drive.drive_id << ',' << (drive.first_day + static_cast<int>(d)) << ','
         << (drive.failed() ? 1 : 0) << ',' << drive.fail_day;
      for (double v : drive.values.row(d)) os << ',' << v;
      os << '\n';
    }
  }
}

void write_fleet_csv(const FleetData& fleet, const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("write_fleet_csv: cannot open " + path);
  write_fleet_csv(fleet, ofs);
  if (!ofs) throw std::runtime_error("write_fleet_csv: write failed for " + path);
}

FleetData read_fleet_csv(std::istream& is, const std::string& model_name) {
  FleetData fleet;
  fleet.model_name = model_name;

  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("read_fleet_csv: empty input");
  auto header = util::split(util::trim(line), ',');
  if (header.size() < kMetaCols + 1)
    throw std::runtime_error("read_fleet_csv: header too short");
  if (header[0] != "drive_id" || header[1] != "day" || header[2] != "failed" ||
      header[3] != "fail_day")
    throw std::runtime_error("read_fleet_csv: unexpected header");
  fleet.feature_names.assign(header.begin() + kMetaCols, header.end());
  const std::size_t nf = fleet.feature_names.size();

  DriveSeries* current = nullptr;
  int max_day = -1;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    auto fields = util::split(trimmed, ',');
    if (fields.size() != kMetaCols + nf)
      throw std::runtime_error("read_fleet_csv: wrong field count at line " +
                               std::to_string(line_no));
    const std::string& id = fields[0];
    double day_d, failed_d, fail_day_d;
    if (!util::parse_double(fields[1], day_d) || !util::parse_double(fields[2], failed_d))
      throw std::runtime_error("read_fleet_csv: bad day/failed at line " +
                               std::to_string(line_no));
    // fail_day may be -1 for healthy drives.
    if (!util::parse_double(fields[3], fail_day_d))
      throw std::runtime_error("read_fleet_csv: bad fail_day at line " + std::to_string(line_no));
    const int day = static_cast<int>(day_d);

    if (current == nullptr || current->drive_id != id) {
      fleet.drives.emplace_back();
      current = &fleet.drives.back();
      current->drive_id = id;
      current->first_day = day;
      current->fail_day = static_cast<int>(fail_day_d);
      current->values = Matrix(0, nf);
    } else if (day != current->last_day() + 1) {
      throw std::runtime_error("read_fleet_csv: non-contiguous days for drive " + id +
                               " at line " + std::to_string(line_no));
    }
    std::vector<double> row(nf);
    for (std::size_t i = 0; i < nf; ++i) {
      if (!util::parse_double(fields[kMetaCols + i], row[i]))
        throw std::runtime_error("read_fleet_csv: bad value at line " + std::to_string(line_no));
    }
    current->values.push_row(row);
    max_day = std::max(max_day, day);
  }
  fleet.num_days = max_day + 1;
  return fleet;
}

FleetData read_fleet_csv(const std::string& path, const std::string& model_name) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("read_fleet_csv: cannot open " + path);
  return read_fleet_csv(ifs, model_name);
}

}  // namespace wefr::data
