#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "data/preprocess.h"
#include "obs/context.h"
#include "util/strings.h"

namespace wefr::data {

namespace {
constexpr int kMetaCols = 4;  // drive_id, day, failed, fail_day
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool is_nan_token(std::string_view s) {
  if (s.size() != 3) return false;
  auto lower = [](char c) { return static_cast<char>(c | 0x20); };
  return lower(s[0]) == 'n' && lower(s[1]) == 'a' && lower(s[2]) == 'n';
}
}  // namespace

void write_fleet_csv(const FleetData& fleet, std::ostream& os) {
  os << "drive_id,day,failed,fail_day";
  for (const auto& name : fleet.feature_names) os << ',' << name;
  os << '\n';
  os.precision(17);
  for (const auto& drive : fleet.drives) {
    for (std::size_t d = 0; d < drive.num_days(); ++d) {
      os << drive.drive_id << ',' << (drive.first_day + static_cast<int>(d)) << ','
         << (drive.failed() ? 1 : 0) << ',' << drive.fail_day;
      for (double v : drive.values.row(d)) os << ',' << v;
      os << '\n';
    }
  }
}

void write_fleet_csv(const FleetData& fleet, const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("write_fleet_csv: cannot open " + path);
  write_fleet_csv(fleet, ofs);
  if (!ofs) throw std::runtime_error("write_fleet_csv: write failed for " + path);
}

namespace {

/// Shared parser behind every read_fleet_csv overload. In strict mode
/// anomalies throw (identical messages to the historical parser); in
/// the tolerant modes they are tallied into `rep` and the parse keeps
/// going, so the function is total on arbitrary row corruption.
FleetData parse_fleet_csv(std::istream& is, const std::string& model_name,
                          const ReadOptions& opt, IngestReport& rep) {
  const bool strict = opt.policy == ParsePolicy::kStrict;
  const bool skip_drive = opt.policy == ParsePolicy::kSkipDrive;

  FleetData fleet;
  fleet.model_name = model_name;

  auto tally = [&rep](RowError e) {
    ++rep.error_counts[static_cast<std::size_t>(e)];
  };
  auto fatal = [&](RowError e, const std::string& msg) -> FleetData {
    if (strict) throw std::runtime_error(msg);
    tally(e);
    rep.fatal = true;
    rep.fatal_detail = msg;
    { FleetData empty; empty.model_name = model_name; return empty; }
  };

  std::string line;
  if (!std::getline(is, line))
    return fatal(RowError::kEmptyInput, "read_fleet_csv: empty input");
  auto header = util::split(util::trim(line), ',');
  if (header.size() < kMetaCols + 1)
    return fatal(RowError::kBadHeader, "read_fleet_csv: header too short");
  if (header[0] != "drive_id" || header[1] != "day" || header[2] != "failed" ||
      header[3] != "fail_day")
    return fatal(RowError::kBadHeader, "read_fleet_csv: unexpected header");
  fleet.feature_names.assign(header.begin() + kMetaCols, header.end());
  const std::size_t nf = fleet.feature_names.size();

  std::unordered_set<std::string> seen_ids;      // every drive id started
  std::unordered_set<std::string> poisoned_ids;  // kSkipDrive casualties
  std::unordered_set<std::string> flagged_ids;   // ids in quarantined_drive_ids
  std::vector<std::size_t> ok_rows_per_drive;    // parallel to fleet.drives

  auto flag_drive = [&](const std::string& id) {
    if (id.empty() || flagged_ids.count(id) > 0) return;
    flagged_ids.insert(id);
    if (rep.quarantined_drive_ids.size() < opt.max_quarantined_ids)
      rep.quarantined_drive_ids.push_back(id);
  };

  /// Quarantines one row; in kSkipDrive mode the whole drive goes with
  /// it (rows already parsed are reclaimed during the final sweep).
  auto quarantine_row = [&](RowError e, const std::string& id) {
    tally(e);
    ++rep.rows_quarantined;
    flag_drive(id);
    if (skip_drive && !id.empty()) poisoned_ids.insert(id);
  };

  DriveSeries* current = nullptr;
  int max_day = -1;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    ++rep.rows_total;
    auto fields = util::split(trimmed, ',');
    const std::string row_id = fields.empty() ? std::string() : fields[0];

    if (!row_id.empty() && poisoned_ids.count(row_id) > 0) {
      ++rep.rows_quarantined;  // rest of an already-poisoned drive
      continue;
    }
    if (fields.size() != kMetaCols + nf) {
      if (strict)
        throw std::runtime_error("read_fleet_csv: wrong field count at line " +
                                 std::to_string(line_no));
      quarantine_row(RowError::kWrongFieldCount, row_id);
      continue;
    }
    double day_d, failed_d, fail_day_d;
    // fail_day may be -1 for healthy drives.
    if (!util::parse_double(fields[1], day_d) || !util::parse_double(fields[2], failed_d) ||
        !util::parse_double(fields[3], fail_day_d)) {
      if (strict)
        throw std::runtime_error("read_fleet_csv: bad day/failed/fail_day at line " +
                                 std::to_string(line_no));
      quarantine_row(RowError::kBadMetaField, row_id);
      continue;
    }
    const int day = static_cast<int>(day_d);

    if (current == nullptr || current->drive_id != row_id) {
      if (seen_ids.count(row_id) > 0) {
        // A drive restarting after other drives: its rows are no longer
        // contiguous, so its series cannot be trusted.
        if (strict)
          throw std::runtime_error("read_fleet_csv: drive " + row_id +
                                   " reappears at line " + std::to_string(line_no));
        quarantine_row(RowError::kReappearingDrive, row_id);
        continue;
      }
      seen_ids.insert(row_id);
      fleet.drives.emplace_back();
      ok_rows_per_drive.push_back(0);
      current = &fleet.drives.back();
      current->drive_id = row_id;
      current->first_day = day;
      current->fail_day = static_cast<int>(fail_day_d);
      current->values = Matrix(0, nf);
    } else if (day != current->last_day() + 1) {
      if (strict)
        throw std::runtime_error("read_fleet_csv: non-contiguous days for drive " +
                                 row_id + " at line " + std::to_string(line_no));
      const int gap = day - current->last_day() - 1;
      if (gap > 0 && gap <= opt.max_gap_days) {
        // A short observation gap: bridge it with all-NaN days so the
        // series stays contiguous; forward_fill repairs them later.
        const std::vector<double> nan_row(nf, kNaN);
        for (int g = 0; g < gap; ++g) current->values.push_row(nan_row);
        rep.gap_days_bridged += static_cast<std::size_t>(gap);
      } else {
        // Duplicate, out-of-order, or an implausibly large jump.
        quarantine_row(RowError::kNonContiguousDay, row_id);
        if (poisoned_ids.count(row_id) > 0) current = nullptr;
        continue;
      }
    }

    std::vector<double> row(nf);
    for (std::size_t i = 0; i < nf; ++i) {
      const std::string_view field = util::trim(fields[kMetaCols + i]);
      if (util::parse_double(field, row[i])) continue;
      if (strict) {
        throw std::runtime_error("read_fleet_csv: bad value at line " +
                                 std::to_string(line_no));
      }
      // Cell-level recovery: the row survives with a NaN hole.
      row[i] = kNaN;
      ++rep.cells_recovered;
      tally(field.empty() || is_nan_token(field) ? RowError::kMissingValue
                                                 : RowError::kBadValue);
    }
    current->values.push_row(row);
    ++rep.rows_ok;
    ++ok_rows_per_drive[fleet.drives.size() - 1];
    max_day = std::max(max_day, day);
  }

  if (is.bad()) {
    if (strict) throw std::runtime_error("read_fleet_csv: stream read failed");
    tally(RowError::kIoFailure);
  }

  // Final sweep: drop poisoned drives (kSkipDrive) and reclaim their
  // already-accepted rows into the quarantine tallies.
  if (!poisoned_ids.empty()) {
    std::vector<DriveSeries> kept;
    kept.reserve(fleet.drives.size());
    for (std::size_t i = 0; i < fleet.drives.size(); ++i) {
      if (poisoned_ids.count(fleet.drives[i].drive_id) > 0) {
        rep.rows_ok -= ok_rows_per_drive[i];
        rep.rows_quarantined += ok_rows_per_drive[i];
        ++rep.drives_quarantined;
      } else {
        kept.push_back(std::move(fleet.drives[i]));
      }
    }
    fleet.drives = std::move(kept);
    max_day = -1;
    for (const auto& d : fleet.drives)
      if (d.num_days() > 0) max_day = std::max(max_day, d.last_day());
  }

  fleet.num_days = max_day + 1;
  return fleet;
}

}  // namespace

FleetData read_fleet_csv(std::istream& is, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  rep = IngestReport{};
  obs::Span span(obs, "ingest:read_csv");
  FleetData fleet = parse_fleet_csv(is, model_name, opt, rep);
  span.finish();
  if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
  return fleet;
}

FleetData read_fleet_csv(std::istream& is, const std::string& model_name) {
  return read_fleet_csv(is, model_name, ReadOptions{});
}

FleetData read_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;

  obs::Span span(obs, "ingest:read_csv");
  const std::size_t attempts = std::max<std::size_t>(1, opt.max_io_attempts);
  std::string open_error;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++rep.io_retries;
    std::ifstream ifs(path);
    if (!ifs) {
      open_error = "read_fleet_csv: cannot open " + path;
      continue;
    }
    IngestReport pass;
    pass.io_retries = rep.io_retries;
    FleetData fleet = parse_fleet_csv(ifs, model_name, opt, pass);
    // A stream that went bad mid-read is a transient fault worth another
    // attempt (tolerant modes only; strict throws inside the parser).
    if (pass.errors(RowError::kIoFailure) > 0 && attempt + 1 < attempts) {
      rep.io_retries = pass.io_retries;
      continue;
    }
    rep = pass;
    span.finish();
    if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
    return fleet;
  }

  if (opt.policy == ParsePolicy::kStrict)
    throw std::runtime_error(open_error + " after " + std::to_string(attempts) +
                             " attempts");
  ++rep.error_counts[static_cast<std::size_t>(RowError::kIoFailure)];
  rep.fatal = true;
  rep.fatal_detail = open_error;
  span.finish();
  if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
  { FleetData empty; empty.model_name = model_name; return empty; }
}

FleetData read_fleet_csv(const std::string& path, const std::string& model_name) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("read_fleet_csv: cannot open " + path);
  return read_fleet_csv(ifs, model_name);
}

FleetData load_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  obs::Span span(obs, "ingest");
  FleetData fleet = read_fleet_csv(path, model_name, opt, &rep, obs);
  if (!rep.fatal) {
    obs::Span fill_span(obs, "ingest:forward_fill");
    forward_fill(fleet, 0.0, &rep.fill);
    fill_span.finish();
    obs::add_counter(obs, "wefr_ingest_cells_filled_total", rep.fill.cells_filled);
  }
  return fleet;
}

}  // namespace wefr::data
