#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "data/mmap_file.h"
#include "data/preprocess.h"
#include "obs/context.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace wefr::data {

namespace {
constexpr int kMetaCols = 4;  // drive_id, day, failed, fail_day
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool is_nan_token(std::string_view s) {
  if (s.size() != 3) return false;
  auto lower = [](char c) { return static_cast<char>(c | 0x20); };
  return lower(s[0]) == 'n' && lower(s[1]) == 'a' && lower(s[2]) == 'n';
}
}  // namespace

void write_fleet_csv(const FleetData& fleet, std::ostream& os) {
  os << "drive_id,day,failed,fail_day";
  for (const auto& name : fleet.feature_names) os << ',' << name;
  os << '\n';
  os.precision(17);
  for (const auto& drive : fleet.drives) {
    for (std::size_t d = 0; d < drive.num_days(); ++d) {
      os << drive.drive_id << ',' << (drive.first_day + static_cast<int>(d)) << ','
         << (drive.failed() ? 1 : 0) << ',' << drive.fail_day;
      for (double v : drive.values.row(d)) os << ',' << v;
      os << '\n';
    }
  }
}

void write_fleet_csv(const FleetData& fleet, const std::string& path) {
  std::ofstream ofs(path);
  if (!ofs) throw std::runtime_error("write_fleet_csv: cannot open " + path);
  write_fleet_csv(fleet, ofs);
  if (!ofs) throw std::runtime_error("write_fleet_csv: write failed for " + path);
}

namespace {

/// One tokenized data row: zero-copy field views plus pre-parsed
/// numerics, produced by tokenize_row on the serial path and by the
/// parallel chunk workers on the mmap path. Everything order-dependent
/// (drive grouping, contiguity, quarantine policy) happens later, in
/// RowAssembler, which consumes RawRows strictly in file order — that
/// is what makes the parallel parse byte-identical to the serial one.
struct RawRow {
  std::string_view id;            ///< first field of the (line-trimmed) row
  std::size_t line_no = 0;        ///< 1-based file line (header = line 1)
  bool fields_ok = false;         ///< exactly kMetaCols + nf fields
  bool meta_ok = false;           ///< day/failed/fail_day all parsed
  int day = 0;                    ///< valid iff meta_ok
  int fail_day = 0;               ///< valid iff meta_ok
  std::size_t values_off = 0;     ///< nf doubles in the side buffer, iff fields_ok
  std::uint32_t missing_cells = 0;  ///< empty / "nan" feature fields
  std::uint32_t bad_cells = 0;      ///< otherwise-unparseable feature fields
  std::uint32_t padded_cells = 0;   ///< NaN-padded tail (pad_missing_columns)
};

/// Tokenizes one non-empty, line-trimmed data row. Splits on ',' with
/// util::split semantics (empty fields kept) but without allocating,
/// and parses every numeric through util::parse_double — the shared
/// std::from_chars fast path — so the bits of every accepted value are
/// identical to the historical istream parser's. Feature values (NaN
/// holes included) are appended to `values` only when the field count
/// is exactly right; a malformed count rolls the appends back. With
/// `pad_missing` (ReadOptions::pad_missing_columns) a row whose meta
/// fields are complete but whose feature tail is short is accepted
/// instead: the missing cells become NaN and are counted in
/// `row.padded_cells` (schema tolerance, distinct from the
/// missing/bad-cell corruption tallies).
void tokenize_row(std::string_view row_text, std::size_t nf, bool pad_missing,
                  std::vector<double>& values, RawRow& row) {
  const std::size_t values_off = values.size();
  std::string_view meta[kMetaCols];
  std::size_t field_index = 0;
  std::uint32_t missing = 0, bad = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= row_text.size(); ++i) {
    if (i != row_text.size() && row_text[i] != ',') continue;
    const std::string_view field = row_text.substr(start, i - start);
    start = i + 1;
    if (field_index < kMetaCols) {
      meta[field_index] = field;
    } else if (field_index - kMetaCols < nf) {
      const std::string_view cell = util::trim(field);
      double v = 0.0;
      if (util::parse_double(cell, v)) {
        values.push_back(v);
      } else {
        values.push_back(kNaN);
        if (cell.empty() || is_nan_token(cell)) {
          ++missing;
        } else {
          ++bad;
        }
      }
    }
    ++field_index;
  }
  row.id = meta[0];
  row.fields_ok = field_index == kMetaCols + nf;
  if (!row.fields_ok && pad_missing && field_index >= kMetaCols &&
      field_index < kMetaCols + nf) {
    const std::size_t pad = kMetaCols + nf - field_index;
    values.insert(values.end(), pad, kNaN);
    row.padded_cells = static_cast<std::uint32_t>(pad);
    row.fields_ok = true;
  }
  if (!row.fields_ok) {
    values.resize(values_off);  // reclaim a partial row
    return;
  }
  row.values_off = values_off;
  row.missing_cells = missing;
  row.bad_cells = bad;
  double day_d = 0.0, failed_d = 0.0, fail_day_d = 0.0;
  // fail_day may be -1 for healthy drives.
  row.meta_ok = util::parse_double(meta[1], day_d) &&
                util::parse_double(meta[2], failed_d) &&
                util::parse_double(meta[3], fail_day_d);
  if (row.meta_ok) {
    row.day = static_cast<int>(day_d);
    row.fail_day = static_cast<int>(fail_day_d);
  }
}

/// The order-dependent half of the parser: drive grouping, day
/// contiguity, ParsePolicy strict/recover/skip-drive semantics, and
/// every IngestReport tally, consuming tokenized rows in file order.
/// Shared verbatim between the serial istream parser (the equivalence
/// oracle) and the parallel mmap parser, so the two cannot drift.
///
/// In strict mode anomalies throw (identical messages to the
/// historical parser); in the tolerant modes they are tallied into
/// `rep` and assembly keeps going, so consumption is total on
/// arbitrary row corruption.
class RowAssembler {
 public:
  RowAssembler(const ReadOptions& opt, const std::string& model_name, IngestReport& rep)
      : opt_(opt),
        strict_(opt.policy == ParsePolicy::kStrict),
        skip_drive_(opt.policy == ParsePolicy::kSkipDrive),
        rep_(rep) {
    fleet_.model_name = model_name;
  }

  /// Records an unusable-input condition (no header at all, header too
  /// short/wrong): throws in strict mode, sets rep.fatal otherwise.
  void input_fatal(RowError e, const char* msg) {
    if (strict_) throw std::runtime_error(msg);
    ++rep_.error_counts[static_cast<std::size_t>(e)];
    rep_.fatal = true;
    rep_.fatal_detail = msg;
  }

  /// Parses the header line (content of file line 1, untrimmed).
  /// False = unusable input already recorded via input_fatal.
  bool header(std::string_view line) {
    const auto fields = util::split(util::trim(line), ',');
    if (fields.size() < kMetaCols + 1) {
      input_fatal(RowError::kBadHeader, "read_fleet_csv: header too short");
      return false;
    }
    if (fields[0] != "drive_id" || fields[1] != "day" || fields[2] != "failed" ||
        fields[3] != "fail_day") {
      input_fatal(RowError::kBadHeader, "read_fleet_csv: unexpected header");
      return false;
    }
    fleet_.feature_names.assign(fields.begin() + kMetaCols, fields.end());
    nf_ = fleet_.feature_names.size();
    nan_row_.assign(nf_, kNaN);
    return true;
  }

  std::size_t nf() const { return nf_; }

  /// Consumes one tokenized row; `vals` points at its nf feature
  /// doubles (only dereferenced when row.fields_ok).
  void consume(const RawRow& row, const double* vals) {
    ++rep_.rows_total;
    const std::string row_id(row.id);

    if (!row_id.empty() && poisoned_ids_.count(row_id) > 0) {
      ++rep_.rows_quarantined;  // rest of an already-poisoned drive
      return;
    }
    if (!row.fields_ok) {
      if (strict_)
        throw std::runtime_error("read_fleet_csv: wrong field count at line " +
                                 std::to_string(row.line_no));
      quarantine_row(RowError::kWrongFieldCount, row_id);
      return;
    }
    if (!row.meta_ok) {
      if (strict_)
        throw std::runtime_error("read_fleet_csv: bad day/failed/fail_day at line " +
                                 std::to_string(row.line_no));
      quarantine_row(RowError::kBadMetaField, row_id);
      return;
    }
    const int day = row.day;

    if (current_ == nullptr || current_->drive_id != row_id) {
      if (seen_ids_.count(row_id) > 0) {
        // A drive restarting after other drives: its rows are no longer
        // contiguous, so its series cannot be trusted.
        if (strict_)
          throw std::runtime_error("read_fleet_csv: drive " + row_id +
                                   " reappears at line " + std::to_string(row.line_no));
        quarantine_row(RowError::kReappearingDrive, row_id);
        return;
      }
      seen_ids_.insert(row_id);
      fleet_.drives.emplace_back();
      ok_rows_per_drive_.push_back(0);
      current_ = &fleet_.drives.back();
      current_->drive_id = row_id;
      current_->first_day = day;
      current_->fail_day = row.fail_day;
      current_->values = Matrix(0, nf_);
    } else if (day != current_->last_day() + 1) {
      if (strict_)
        throw std::runtime_error("read_fleet_csv: non-contiguous days for drive " +
                                 row_id + " at line " + std::to_string(row.line_no));
      const int gap = day - current_->last_day() - 1;
      if (gap > 0 && gap <= opt_.max_gap_days) {
        // A short observation gap: bridge it with all-NaN days so the
        // series stays contiguous; forward_fill repairs them later.
        for (int g = 0; g < gap; ++g) current_->values.push_row(nan_row_);
        rep_.gap_days_bridged += static_cast<std::size_t>(gap);
      } else {
        // Duplicate, out-of-order, or an implausibly large jump.
        quarantine_row(RowError::kNonContiguousDay, row_id);
        if (poisoned_ids_.count(row_id) > 0) current_ = nullptr;
        return;
      }
    }

    if (row.bad_cells + row.missing_cells > 0) {
      if (strict_)
        throw std::runtime_error("read_fleet_csv: bad value at line " +
                                 std::to_string(row.line_no));
      // Cell-level recovery: the row survives with NaN holes.
      rep_.cells_recovered += row.bad_cells + row.missing_cells;
      rep_.error_counts[static_cast<std::size_t>(RowError::kBadValue)] += row.bad_cells;
      rep_.error_counts[static_cast<std::size_t>(RowError::kMissingValue)] +=
          row.missing_cells;
    }
    if (row.padded_cells > 0) {
      // Mixed-schema tail pad: a schema statement, not corruption — no
      // error class, no strict throw, just the dedicated tallies.
      ++rep_.rows_padded;
      rep_.cells_padded += row.padded_cells;
    }
    current_->values.push_row({vals, nf_});
    ++rep_.rows_ok;
    ++ok_rows_per_drive_[fleet_.drives.size() - 1];
    max_day_ = std::max(max_day_, day);
  }

  /// Stream went bad mid-read (istream path only).
  void io_failure() {
    if (strict_) throw std::runtime_error("read_fleet_csv: stream read failed");
    ++rep_.error_counts[static_cast<std::size_t>(RowError::kIoFailure)];
  }

  /// Returns the (empty) fleet after an unusable-input condition.
  FleetData abandon() { return std::move(fleet_); }

  /// Final sweep: drop poisoned drives (kSkipDrive), reclaim their
  /// already-accepted rows into the quarantine tallies, fix num_days.
  FleetData finish() {
    if (!poisoned_ids_.empty()) {
      std::vector<DriveSeries> kept;
      kept.reserve(fleet_.drives.size());
      for (std::size_t i = 0; i < fleet_.drives.size(); ++i) {
        if (poisoned_ids_.count(fleet_.drives[i].drive_id) > 0) {
          rep_.rows_ok -= ok_rows_per_drive_[i];
          rep_.rows_quarantined += ok_rows_per_drive_[i];
          ++rep_.drives_quarantined;
        } else {
          kept.push_back(std::move(fleet_.drives[i]));
        }
      }
      fleet_.drives = std::move(kept);
      max_day_ = -1;
      for (const auto& d : fleet_.drives)
        if (d.num_days() > 0) max_day_ = std::max(max_day_, d.last_day());
    }
    fleet_.num_days = max_day_ + 1;
    return std::move(fleet_);
  }

 private:
  void flag_drive(const std::string& id) {
    if (id.empty() || flagged_ids_.count(id) > 0) return;
    flagged_ids_.insert(id);
    if (rep_.quarantined_drive_ids.size() < opt_.max_quarantined_ids)
      rep_.quarantined_drive_ids.push_back(id);
  }

  /// Quarantines one row; in kSkipDrive mode the whole drive goes with
  /// it (rows already parsed are reclaimed during the final sweep).
  void quarantine_row(RowError e, const std::string& id) {
    ++rep_.error_counts[static_cast<std::size_t>(e)];
    ++rep_.rows_quarantined;
    flag_drive(id);
    if (skip_drive_ && !id.empty()) poisoned_ids_.insert(id);
  }

  const ReadOptions& opt_;
  const bool strict_;
  const bool skip_drive_;
  IngestReport& rep_;

  FleetData fleet_;
  std::size_t nf_ = 0;
  std::vector<double> nan_row_;
  std::unordered_set<std::string> seen_ids_;      // every drive id started
  std::unordered_set<std::string> poisoned_ids_;  // kSkipDrive casualties
  std::unordered_set<std::string> flagged_ids_;   // ids in quarantined_drive_ids
  std::vector<std::size_t> ok_rows_per_drive_;    // parallel to fleet_.drives
  DriveSeries* current_ = nullptr;
  int max_day_ = -1;
};

/// Serial reference parser behind the istream overloads: getline +
/// tokenize + assemble, one row at a time. This is the equivalence
/// oracle the parallel mmap parser is tested against.
FleetData parse_fleet_csv(std::istream& is, const std::string& model_name,
                          const ReadOptions& opt, IngestReport& rep) {
  RowAssembler assembler(opt, model_name, rep);
  std::string line;
  if (!std::getline(is, line)) {
    assembler.input_fatal(RowError::kEmptyInput, "read_fleet_csv: empty input");
    return assembler.abandon();
  }
  if (!assembler.header(line)) return assembler.abandon();

  std::vector<double> scratch;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    scratch.clear();
    RawRow row;
    row.line_no = line_no;
    tokenize_row(trimmed, assembler.nf(), opt.pad_missing_columns, scratch, row);
    assembler.consume(row, scratch.data());
  }
  if (is.bad()) assembler.io_failure();
  return assembler.finish();
}

/// One newline-aligned slice of the data region, tokenized by one
/// worker. `lines` counts every line in the slice (blank ones
/// included) so global line numbers rebase by prefix sum.
struct ParsedChunk {
  std::size_t lines = 0;
  std::vector<RawRow> rows;
  std::vector<double> values;
};

void tokenize_chunk(std::string_view data, std::size_t nf, bool pad_missing,
                    ParsedChunk& out) {
  std::size_t pos = 0;
  std::size_t line_index = 0;
  while (pos < data.size()) {
    const std::size_t eol = data.find('\n', pos);
    const std::size_t end = eol == std::string_view::npos ? data.size() : eol;
    const std::string_view line = data.substr(pos, end - pos);
    pos = eol == std::string_view::npos ? data.size() : eol + 1;
    ++line_index;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    RawRow row;
    row.line_no = line_index;  // chunk-relative; rebased during merge
    tokenize_row(trimmed, nf, pad_missing, out.values, row);
    out.rows.push_back(row);
  }
  out.lines = line_index;
}

/// Parallel buffer parser: newline-aligned chunks tokenized on a
/// ThreadPool (the expensive part — field splitting and from_chars),
/// then merged in file order through the same RowAssembler the serial
/// parser uses. Output is byte-identical to parse_fleet_csv on the
/// same bytes at any thread count and any chunk size.
FleetData parse_fleet_buffer(std::string_view text, const std::string& model_name,
                             const ReadOptions& opt, IngestReport& rep,
                             const obs::Context* obs) {
  RowAssembler assembler(opt, model_name, rep);
  if (text.empty()) {
    assembler.input_fatal(RowError::kEmptyInput, "read_fleet_csv: empty input");
    return assembler.abandon();
  }
  const std::size_t header_eol = text.find('\n');
  const std::string_view header_line =
      text.substr(0, header_eol == std::string_view::npos ? text.size() : header_eol);
  if (!assembler.header(header_line)) return assembler.abandon();
  const std::string_view data =
      header_eol == std::string_view::npos ? std::string_view{}
                                           : text.substr(header_eol + 1);

  const std::size_t threads =
      opt.num_threads == 0 ? util::default_thread_count() : opt.num_threads;
  const std::size_t chunk_bytes = std::max<std::size_t>(1, opt.parallel_chunk_bytes);
  // Enough chunks to fill the pool with headroom for stragglers, but
  // never smaller than the target chunk size.
  std::size_t num_chunks =
      std::min(data.size() / chunk_bytes + 1, std::max<std::size_t>(1, threads * 4));

  std::vector<std::size_t> bounds{0};
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t nominal = std::max(data.size() * c / num_chunks, bounds.back());
    const std::size_t nl = data.find('\n', nominal);
    const std::size_t b = nl == std::string_view::npos ? data.size() : nl + 1;
    if (b > bounds.back() && b < data.size()) bounds.push_back(b);
  }
  bounds.push_back(data.size());
  const std::size_t n_chunks = bounds.size() - 1;

  std::vector<ParsedChunk> chunks(n_chunks);
  const std::size_t nf = assembler.nf();
  auto run_chunk = [&](std::size_t c) {
    tokenize_chunk(data.substr(bounds[c], bounds[c + 1] - bounds[c]), nf,
                   opt.pad_missing_columns, chunks[c]);
  };
  {
    obs::Span tokenize_span(obs, "ingest:tokenize");
    if (threads > 1 && n_chunks > 1) {
      util::ThreadPool pool(std::min(threads, n_chunks));
      pool.parallel_for(n_chunks, run_chunk);
    } else {
      for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
    }
  }
  obs::add_counter(obs, "wefr_ingest_parse_chunks_total", n_chunks);

  obs::Span merge_span(obs, "ingest:merge");
  std::size_t line_base = 1;  // the header is line 1
  for (auto& chunk : chunks) {
    for (auto& row : chunk.rows) {
      row.line_no += line_base;
      assembler.consume(row, chunk.values.data() + row.values_off);
    }
    line_base += chunk.lines;
  }
  return assembler.finish();
}

}  // namespace

FleetData read_fleet_csv(std::istream& is, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  rep = IngestReport{};
  obs::Span span(obs, "ingest:read_csv");
  FleetData fleet = parse_fleet_csv(is, model_name, opt, rep);
  span.finish();
  if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
  return fleet;
}

FleetData read_fleet_csv(std::istream& is, const std::string& model_name) {
  return read_fleet_csv(is, model_name, ReadOptions{});
}

FleetData read_fleet_csv_buffer(std::string_view text, const std::string& model_name,
                                const ReadOptions& opt, IngestReport* report,
                                const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  rep = IngestReport{};
  obs::Span span(obs, "ingest:read_csv");
  FleetData fleet = parse_fleet_buffer(text, model_name, opt, rep, obs);
  span.finish();
  if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
  return fleet;
}

FleetData read_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  rep = IngestReport{};

  obs::Span span(obs, "ingest:read_csv");
  const std::size_t attempts = std::max<std::size_t>(1, opt.max_io_attempts);
  std::string open_error;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++rep.io_retries;
    MappedFile file;
    if (!file.open(path)) {
      open_error = "read_fleet_csv: cannot open " + path;
      continue;
    }
    IngestReport pass;
    pass.io_retries = rep.io_retries;
    FleetData fleet = parse_fleet_buffer(file.view(), model_name, opt, pass, obs);
    rep = pass;
    span.finish();
    if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
    return fleet;
  }

  if (opt.policy == ParsePolicy::kStrict)
    throw std::runtime_error(open_error + " after " + std::to_string(attempts) +
                             " attempts");
  ++rep.error_counts[static_cast<std::size_t>(RowError::kIoFailure)];
  rep.fatal = true;
  rep.fatal_detail = open_error;
  span.finish();
  if (obs != nullptr && obs->metrics != nullptr) rep.export_counters(*obs->metrics);
  { FleetData empty; empty.model_name = model_name; return empty; }
}

FleetData read_fleet_csv(const std::string& path, const std::string& model_name) {
  std::ifstream ifs(path);
  if (!ifs) throw std::runtime_error("read_fleet_csv: cannot open " + path);
  return read_fleet_csv(ifs, model_name);
}

FleetData load_fleet_csv(const std::string& path, const std::string& model_name,
                         const ReadOptions& opt, IngestReport* report,
                         const obs::Context* obs) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  obs::Span span(obs, "ingest");
  FleetData fleet = read_fleet_csv(path, model_name, opt, &rep, obs);
  if (!rep.fatal) {
    obs::Span fill_span(obs, "ingest:forward_fill");
    forward_fill(fleet, 0.0, &rep.fill);
    fill_span.finish();
    obs::add_counter(obs, "wefr_ingest_cells_filled_total", rep.fill.cells_filled);
  }
  return fleet;
}

}  // namespace wefr::data
