#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/matrix.h"

namespace wefr::data {

/// Daily SMART time series for one drive.
///
/// `values` is laid out day-major: `values(d, a)` is attribute (learning
/// feature) `a` on observation day `first_day + d`. A drive that failed
/// stops being observed after `fail_day` (the trouble-ticket timestamp).
struct DriveSeries {
  std::string drive_id;
  int first_day = 0;              ///< fleet-global day index of the first sample
  Matrix values;                  ///< rows = days observed, cols = features
  int fail_day = -1;              ///< fleet-global failure day, or -1 if healthy

  /// Number of observed days.
  std::size_t num_days() const { return values.rows(); }
  /// Fleet-global day index of the last observation.
  int last_day() const { return first_day + static_cast<int>(num_days()) - 1; }
  bool failed() const { return fail_day >= 0; }
};

/// A drive model's whole fleet over the observation window: the unit the
/// paper operates on (feature selection is per drive model).
struct FleetData {
  std::string model_name;
  std::vector<std::string> feature_names;  ///< e.g. "UCE_R", "MWI_N", ...
  std::vector<DriveSeries> drives;
  int num_days = 0;                        ///< length of the observation window

  /// Index of a feature by exact name, or -1 when absent.
  int feature_index(const std::string& name) const {
    for (std::size_t i = 0; i < feature_names.size(); ++i) {
      if (feature_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::size_t num_features() const { return feature_names.size(); }

  /// Count of drives with a trouble ticket.
  std::size_t num_failed() const {
    std::size_t n = 0;
    for (const auto& d : drives) n += d.failed() ? 1 : 0;
    return n;
  }

  /// Annualized failure rate as defined in the paper:
  /// AFR(%) = f * 365 * 100 / sum_i(drives operational on day i).
  double afr_percent() const;

  /// Total number of drive-days observed.
  std::uint64_t total_drive_days() const;
};

}  // namespace wefr::data
