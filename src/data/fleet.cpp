#include "data/fleet.h"

namespace wefr::data {

std::uint64_t FleetData::total_drive_days() const {
  std::uint64_t total = 0;
  for (const auto& d : drives) total += d.num_days();
  return total;
}

double FleetData::afr_percent() const {
  const std::uint64_t days = total_drive_days();
  if (days == 0) return 0.0;
  const double f = static_cast<double>(num_failed());
  return f * 365.0 * 100.0 / static_cast<double>(days);
}

}  // namespace wefr::data
