#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"

namespace wefr::data {

/// A supervised sample set: one row per (drive, day) observation.
///
/// `y[i]` is 1 when the drive of row `i` fails within the prediction
/// horizon after `day[i]` (a positive sample in the paper's terms) and
/// 0 otherwise. `drive_index` / `day` carry the provenance needed for
/// drive-level "first alarm" evaluation and time-based splits.
struct Dataset {
  Matrix x;
  std::vector<int> y;
  std::vector<std::string> feature_names;
  std::vector<std::int32_t> drive_index;
  std::vector<std::int32_t> day;

  std::size_t size() const { return y.size(); }
  std::size_t num_features() const { return x.cols(); }

  /// Count of positive samples.
  std::size_t num_positive() const {
    std::size_t n = 0;
    for (int v : y) n += v != 0 ? 1 : 0;
    return n;
  }

  /// Throws unless the parallel arrays are mutually consistent.
  void validate() const;
};

/// Returns the row subset of `ds` given by `idx` (order preserved).
Dataset subset(const Dataset& ds, std::span<const std::size_t> idx);

/// Returns `ds` restricted to the feature columns in `cols`.
Dataset select_features(const Dataset& ds, std::span<const std::size_t> cols);

/// Row indices whose `day` lies in [day_lo, day_hi] inclusive.
std::vector<std::size_t> indices_in_day_range(const Dataset& ds, int day_lo, int day_hi);

/// Time-ordered train/validation split: the first `train_frac` of the
/// distinct days (by count of days, as in the paper's 8:2 by-day split)
/// go to train, the rest to validation.
struct TimeSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
  int boundary_day = 0;  ///< first validation day
};
TimeSplit split_train_validation(const Dataset& ds, double train_frac);

}  // namespace wefr::data
