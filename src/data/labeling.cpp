#include "data/labeling.h"

#include <stdexcept>

#include "obs/context.h"
#include "obs/trace.h"

namespace wefr::data {

std::vector<std::size_t> all_feature_columns(const FleetData& fleet) {
  std::vector<std::size_t> cols(fleet.num_features());
  for (std::size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  return cols;
}

Dataset build_samples(const FleetData& fleet, std::span<const std::size_t> base_cols,
                      const SamplingOptions& opt, util::Rng* rng, const obs::Context* obs) {
  obs::Span span(obs, "build_samples");
  if (opt.horizon_days < 1) throw std::invalid_argument("build_samples: horizon_days < 1");
  if (opt.negative_keep_prob < 1.0 && rng == nullptr && !opt.per_drive_rng)
    throw std::invalid_argument("build_samples: negative downsampling requires an Rng");

  const int day_hi = opt.day_hi < 0 ? fleet.num_days - 1 : opt.day_hi;

  Dataset out;
  std::vector<std::string> base_names;
  base_names.reserve(base_cols.size());
  for (std::size_t c : base_cols) {
    if (c >= fleet.num_features()) throw std::out_of_range("build_samples: base column");
    base_names.push_back(fleet.feature_names[c]);
  }
  out.feature_names = opt.expand_windows
                          ? expanded_feature_names(base_names, opt.window_config)
                          : base_names;
  out.x = Matrix(0, out.feature_names.size());

  for (std::size_t di = 0; di < fleet.drives.size(); ++di) {
    const DriveSeries& drive = fleet.drives[di];
    if (drive.num_days() == 0) continue;

    const int lo = std::max(opt.day_lo, drive.first_day);
    const int hi = std::min(day_hi, drive.last_day());
    if (lo > hi) continue;

    // Expand the whole series: the streaming kernels make this O(1) per
    // day, and full-history expansion keeps every sampled sub-range
    // bit-identical to the whole-history features (running sums would
    // otherwise drift ~1e-15 relative depending on where a slice
    // started).
    const Matrix features =
        opt.expand_windows
            ? expand_series(drive.values, base_cols, opt.window_config, obs)
            : drive.values.select_columns(base_cols);

    // Per-drive sampling stream: seeded only by (seed, drive_id), never
    // by fleet position, so the kept-negative set is a pure function of
    // the drive. Keyed on drive_id (FNV-1a, not std::hash — the stream
    // must not vary across standard libraries) to stay stable under
    // fleet churn, matching the hashring's assignment key.
    std::optional<util::Rng> drive_rng;
    util::Rng* row_rng = rng;
    if (opt.per_drive_rng && opt.negative_keep_prob < 1.0) {
      std::uint64_t h = 14695981039346656037ull;
      for (const char ch : drive.drive_id) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ull;
      }
      drive_rng.emplace(h ^ opt.per_drive_seed);
      row_rng = &*drive_rng;
    }

    for (int day = lo; day <= hi; ++day) {
      if (opt.keep && !opt.keep(di, day)) continue;
      const std::size_t local = static_cast<std::size_t>(day - drive.first_day);
      const bool positive =
          drive.failed() && drive.fail_day > day && drive.fail_day <= day + opt.horizon_days;
      if (!positive && opt.negative_keep_prob < 1.0 &&
          !row_rng->bernoulli(opt.negative_keep_prob))
        continue;
      out.x.push_row(features.row(local));
      out.y.push_back(positive ? 1 : 0);
      out.drive_index.push_back(static_cast<std::int32_t>(di));
      out.day.push_back(day);
    }
  }
  out.validate();
  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_samples_total", out.size());
    obs::add_counter(obs, "wefr_samples_positive_total", out.num_positive());
  }
  return out;
}

Dataset build_samples(const FleetData& fleet, const SamplingOptions& opt, util::Rng* rng,
                      const obs::Context* obs) {
  const auto cols = all_feature_columns(fleet);
  return build_samples(fleet, cols, opt, rng, obs);
}

}  // namespace wefr::data
