#pragma once

#include <functional>
#include <optional>
#include <span>

#include "data/dataset.h"
#include "data/fleet.h"
#include "data/window_features.h"
#include "util/rng.h"

namespace wefr::data {

/// Options controlling how (drive, day) observations become supervised
/// samples.
struct SamplingOptions {
  /// Prediction horizon: a sample on day d is positive when the drive
  /// fails in (d, d + horizon_days].
  int horizon_days = 30;
  /// Inclusive fleet-global day range from which samples are drawn
  /// (day_hi < 0 means "until the end of the observation window").
  int day_lo = 0;
  int day_hi = -1;
  /// Probability of keeping each negative sample; positives are always
  /// kept. 1.0 disables downsampling. Deterministic given the Rng.
  double negative_keep_prob = 1.0;
  /// When set, expand the base features with rolling-window statistics.
  bool expand_windows = false;
  WindowFeatureConfig window_config;
  /// Optional row filter: keep a (drive, day) observation only when this
  /// returns true. Used to build per-wear-group training sets.
  std::function<bool(std::size_t drive_index, int day)> keep;
  /// Partition-invariant negative downsampling: instead of one
  /// sequential Rng stream shared across drives (where the set of kept
  /// negatives depends on which drives came before), each drive draws
  /// from its own stream seeded by FNV-1a(drive_id) mixed with
  /// `per_drive_seed`. A drive then keeps exactly the same negative
  /// days no matter which subset of the fleet it is sampled with —
  /// the property the sharded driver needs for bit-identical merges.
  /// The caller's `rng` argument is ignored when set.
  bool per_drive_rng = false;
  std::uint64_t per_drive_seed = 0;
};

/// Builds a sample set from a fleet, restricted to the base feature
/// columns `base_cols` (pass all column indices for "no feature
/// selection"). When `opt.expand_windows` is set each base feature
/// expands into 13 learning features (Section V-A of the paper).
///
/// `rng` is required only when `opt.negative_keep_prob < 1`.
///
/// `obs` (nullable) wraps the pass in a "build_samples" span, forwards
/// to expand_series, and tallies wefr_samples_total /
/// wefr_samples_positive_total counters.
Dataset build_samples(const FleetData& fleet, std::span<const std::size_t> base_cols,
                      const SamplingOptions& opt, util::Rng* rng = nullptr,
                      const obs::Context* obs = nullptr);

/// Convenience overload using every fleet feature as a base column.
Dataset build_samples(const FleetData& fleet, const SamplingOptions& opt,
                      util::Rng* rng = nullptr, const obs::Context* obs = nullptr);

/// All column indices [0, fleet.num_features()).
std::vector<std::size_t> all_feature_columns(const FleetData& fleet);

}  // namespace wefr::data
