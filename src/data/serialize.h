#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace wefr::data {

// --- byte-buffer serialization -------------------------------------
// Native-endianness memcpy of scalar fields, shared by every binary
// artifact the data layer writes (the WEFRFC01 fleet snapshot, the
// WEFRSH01 shard-partial records). Writers pair an endian sentinel in
// their fixed header with a trailing FNV-1a digest, so foreign or
// damaged files degrade to a clean validation failure instead of a
// fault.

class ByteWriter {
 public:
  template <typename T>
  void scalar(T v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  void str(std::string_view s) {
    scalar(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  std::string& buf() { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a serialized buffer: every read that
/// would run past the end fails instead of faulting, so truncated or
/// hostile files degrade to a clean invalidation.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  bool scalar(T& out) {
    if (buf_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(&out, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool str(std::string& out, std::size_t max_len = 1u << 20) {
    std::uint32_t n = 0;
    if (!scalar(n) || n > max_len || buf_.size() - pos_ < n) return false;
    out.assign(buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const char* raw(std::size_t n) {
    if (buf_.size() - pos_ < n) return nullptr;
    const char* p = buf_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(14695981039346656037ull, s.data(), s.size());
}

/// Trailing snapshot digest: FNV-1a folded over 8-byte words, tail
/// bytes one at a time. Any flipped byte still changes the digest, but
/// the word loop runs ~8x faster than the byte loop — the digest scans
/// the entire multi-MB payload on every warm load, so it sits directly
/// on the cache-hit hot path.
inline std::uint64_t snapshot_digest(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace wefr::data
