#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/fleet.h"
#include "data/ingest.h"
#include "data/matrix.h"

namespace wefr::data {

/// Missing values in real SMART dumps are encoded as NaN. These helpers
/// make raw fleets usable by the (NaN-free) learning stack.

/// Per-drive forward fill: each NaN takes the most recent non-NaN value
/// of the same feature; leading NaNs take the first observed value;
/// all-NaN columns become `fallback`. Returns the number of cells that
/// actually received a value — when `fallback` is itself NaN, all-NaN
/// columns are left missing and are NOT counted, so the return value
/// always equals the drop in count_missing(). `stats`, when given,
/// accumulates the full FillStats breakdown (leading backfills, all-NaN
/// columns, cells left missing).
std::size_t forward_fill(DriveSeries& drive, double fallback = 0.0,
                         FillStats* stats = nullptr);

/// Applies forward_fill to every drive; returns total cells filled.
std::size_t forward_fill(FleetData& fleet, double fallback = 0.0,
                         FillStats* stats = nullptr);

/// Count of NaN cells in a fleet (data-quality check before training).
std::size_t count_missing(const FleetData& fleet);

/// Column-standardization parameters learned from a sample matrix.
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> stddev;  ///< 0 for constant columns

  /// Learns mean/stddev per column of `x`.
  static Standardizer fit(const Matrix& x);
  /// Returns the standardized copy of `x` ((v - mean) / stddev; constant
  /// columns map to 0). Throws on column-count mismatch.
  Matrix transform(const Matrix& x) const;
};

/// Per-feature summary used by data-quality reports and the CLI.
struct FeatureSummary {
  std::string name;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double fraction_zero = 0.0;
  bool constant = false;
};

/// Summarizes every feature of a sample set.
std::vector<FeatureSummary> summarize_features(const Dataset& ds);

}  // namespace wefr::data
