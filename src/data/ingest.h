#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wefr::obs {
class Registry;
struct RunReport;
}

namespace wefr::data {

/// How read_fleet_csv reacts to malformed input.
///
///  - kStrict: throw std::runtime_error on the first anomaly (the
///    historical behavior; the right mode for data we produced
///    ourselves, where any anomaly is a bug).
///  - kRecover: never throw on malformed rows. Bad feature values
///    become NaN (later repaired by forward_fill), structurally broken
///    rows are quarantined, and everything dropped or repaired is
///    tallied in the IngestReport.
///  - kSkipDrive: like kRecover, but a structural error poisons the
///    whole drive: every row of that drive (already parsed or still to
///    come) is quarantined. The mode for fleets where a corrupt row
///    means the drive's telemetry stream cannot be trusted at all.
enum class ParsePolicy { kStrict, kRecover, kSkipDrive };

/// Classes of ingestion anomaly, tallied per class in IngestReport.
enum class RowError : std::size_t {
  kEmptyInput = 0,     ///< no header line at all
  kBadHeader,          ///< header too short or wrong meta columns
  kWrongFieldCount,    ///< row with too few / too many fields
  kBadMetaField,       ///< unparseable drive day / failed / fail_day
  kBadValue,           ///< unparseable feature value (recovered as NaN)
  kMissingValue,       ///< empty or "nan" feature field (recovered as NaN)
  kNonContiguousDay,   ///< duplicate, out-of-order, or gapped day
  kReappearingDrive,   ///< drive id seen again after other drives
  kIoFailure,          ///< stream went bad mid-read
  kCount
};

/// Human-readable name of a RowError class ("wrong_field_count", ...).
const char* to_string(RowError e);

/// Knobs for the tolerant parse modes.
struct ReadOptions {
  ParsePolicy policy = ParsePolicy::kStrict;
  /// Attempts for opening/reading a file path before giving up
  /// (transient I/O faults: NFS hiccups, rotating log writers).
  std::size_t max_io_attempts = 3;
  /// Cap on quarantined-drive-id samples kept in the report (tallies
  /// are always exact; the id list is bounded to keep reports small).
  std::size_t max_quarantined_ids = 64;
  /// Tolerant modes bridge observation gaps up to this many days with
  /// all-NaN rows (repaired later by forward_fill); larger jumps
  /// quarantine the row instead.
  int max_gap_days = 30;
  /// Worker threads for the mmap/buffer parse fast path (path- and
  /// buffer-based overloads only; istream parsing is always serial).
  /// 0 = one per hardware thread. Results are byte-identical to the
  /// serial parser at every thread count — chunk partials merge in
  /// file order through the same row-assembly state machine.
  std::size_t num_threads = 0;
  /// Target bytes per parse chunk. Chunks are newline-aligned, so the
  /// real sizes vary by a row; tests shrink this to force chunk
  /// boundaries inside tiny inputs.
  std::size_t parallel_chunk_bytes = std::size_t{1} << 20;
  /// Mixed-schema tolerance: accept data rows with complete meta fields
  /// but FEWER feature fields than the header and pad the missing tail
  /// with NaN (tallied as rows_padded / cells_padded). This is how a
  /// pooled CSV whose header is the union schema ingests rows written
  /// by a model that lacks the trailing columns — under EVERY policy,
  /// strict included (the knob is an explicit schema statement, not a
  /// corruption pardon; rows with too MANY fields stay structurally
  /// invalid). Off by default: without it a short row is
  /// kWrongFieldCount, exactly as before.
  bool pad_missing_columns = false;
  /// When non-empty, a columnar-cache snapshot whose stored feature
  /// names differ from this list is invalidated ("feature schema
  /// mismatch") and the CSV reparsed — the guard that keeps a stale
  /// single-model snapshot from silently serving an old layout after
  /// the fleet mix changed. Ignored by the parser itself.
  std::vector<std::string> expected_features;
};

/// Missing-data repair counters (forward_fill). Split out so ingestion
/// and preprocessing report through the same structure.
struct FillStats {
  std::size_t cells_filled = 0;        ///< NaN cells given a value
  std::size_t leading_backfilled = 0;  ///< subset of cells_filled before
                                       ///< the first observation
  std::size_t all_nan_columns = 0;     ///< (drive, feature) pairs with no
                                       ///< observation at all
  std::size_t cells_left_missing = 0;  ///< NaNs left in place (NaN fallback)

  void merge(const FillStats& other) {
    cells_filled += other.cells_filled;
    leading_backfilled += other.leading_backfilled;
    all_nan_columns += other.all_nan_columns;
    cells_left_missing += other.cells_left_missing;
  }
};

/// Structured outcome of one tolerant ingestion pass: what was read,
/// what was repaired, what was dropped and why. Returned instead of an
/// exception by the kRecover / kSkipDrive policies.
struct IngestReport {
  std::size_t rows_total = 0;        ///< data rows seen (header excluded)
  std::size_t rows_ok = 0;           ///< rows that became observations
  std::size_t rows_quarantined = 0;  ///< rows dropped
  std::size_t cells_recovered = 0;   ///< feature cells replaced by NaN
  std::size_t gap_days_bridged = 0;  ///< synthetic all-NaN days inserted
  std::size_t drives_quarantined = 0;
  std::size_t io_retries = 0;        ///< transient I/O failures retried
  /// Mixed-schema padding (ReadOptions::pad_missing_columns): rows
  /// accepted with a NaN-padded feature tail, and the cells padded.
  std::size_t rows_padded = 0;
  std::size_t cells_padded = 0;
  bool fatal = false;                ///< unusable input (empty/bad header)
  std::string fatal_detail;

  /// Columnar-cache outcome for this ingestion (load_fleet_csv_cached
  /// only; all zero for direct parses). A hit means the parse was
  /// skipped entirely and the row/cell tallies above were restored
  /// from the snapshot taken when the cache was written.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Subset of cache_misses where an entry existed but failed
  /// validation (stale schema, truncation, checksum, policy mismatch).
  std::size_t cache_invalidations = 0;

  /// Per-error-class tallies, indexed by RowError.
  std::array<std::size_t, static_cast<std::size_t>(RowError::kCount)> error_counts{};

  /// Drive ids with at least one quarantined row (bounded sample; see
  /// ReadOptions::max_quarantined_ids).
  std::vector<std::string> quarantined_drive_ids;

  /// Missing-data repair counters when the caller ran forward_fill
  /// through load_fleet_csv (zero otherwise).
  FillStats fill;

  std::size_t errors(RowError e) const {
    return error_counts[static_cast<std::size_t>(e)];
  }
  std::size_t total_errors() const {
    std::size_t n = 0;
    for (std::size_t c : error_counts) n += c;
    return n;
  }
  bool clean() const { return total_errors() == 0 && !fatal; }

  /// One-line "rows 980/1000 ok, 20 quarantined (wrong_field_count x12,
  /// ...)" summary for CLI output and logs.
  std::string summary() const;

  /// Adds the report tallies to `registry` as wefr_ingest_* counters
  /// (rows/cells totals plus one wefr_ingest_errors_<class>_total per
  /// non-zero error class). Call once per ingestion pass — counters
  /// accumulate, so re-exporting the same report double-counts.
  void export_counters(obs::Registry& registry) const;

  /// Copies the tallies into `report.ingest` for the run report.
  void fill_run_report(obs::RunReport& report) const;
};

}  // namespace wefr::data
