#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wefr::data {

namespace detail {

/// Allocator whose plain construct() default-initializes — i.e. leaves
/// trivially-constructible elements uninitialized. Lets
/// Matrix::uninitialized() skip the zero fill for buffers the caller is
/// about to overwrite entirely (the rolling-feature expansion writes
/// every cell; zeroing 1+ MB per drive first is pure write traffic).
/// Fill- and copy-construction are unchanged.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  using std::allocator<T>::allocator;
  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Dense row-major matrix of doubles.
///
/// The sample matrix handed to selectors and models: rows are samples,
/// columns are learning features. Kept deliberately simple — contiguous
/// storage, bounds-checked accessors in debug, `row()` views as spans.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows x cols` matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a `rows x cols` matrix with UNINITIALIZED contents; the
  /// caller must write every cell before reading any. For hot paths
  /// that fully overwrite the matrix anyway (e.g. window expansion).
  static Matrix uninitialized(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, UninitTag{});
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r`.
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  /// Immutable view of row `r`.
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  /// Copies column `c` out into a vector.
  std::vector<double> column(std::size_t c) const {
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
    return out;
  }

  /// Appends a row; its length must equal `cols()` (or defines it when
  /// the matrix is still empty).
  void push_row(std::span<const double> row) {
    if (rows_ == 0 && cols_ == 0) {
      cols_ = row.size();
    } else if (row.size() != cols_) {
      throw std::invalid_argument("Matrix::push_row: width mismatch");
    }
    data_.insert(data_.end(), row.begin(), row.end());
    ++rows_;
  }

  /// Returns a new matrix keeping only the columns in `cols` (in order).
  Matrix select_columns(std::span<const std::size_t> cols) const {
    Matrix out(rows_, cols.size());
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] >= cols_) throw std::out_of_range("Matrix::select_columns");
        out(r, i) = (*this)(r, cols[i]);
      }
    }
    return out;
  }

  /// Returns a new matrix keeping only the rows in `rows` (in order).
  Matrix select_rows(std::span<const std::size_t> rows) const {
    Matrix out(rows.size(), cols_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= rows_) throw std::out_of_range("Matrix::select_rows");
      auto src = row(rows[i]);
      std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
  }

  /// Copies the contiguous row block [begin, begin + count) into a new
  /// matrix. Cheaper than select_rows for ranges (single memcpy).
  Matrix slice_rows(std::size_t begin, std::size_t count) const {
    if (begin + count > rows_) throw std::out_of_range("Matrix::slice_rows");
    Matrix out(count, cols_);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
              data_.begin() + static_cast<std::ptrdiff_t>((begin + count) * cols_),
              out.data_.begin());
    return out;
  }

  /// Raw contiguous storage (row-major).
  std::span<const double> raw() const { return data_; }

 private:
  struct UninitTag {};

  Matrix(std::size_t rows, std::size_t cols, UninitTag)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // DefaultInitAllocator: vector(count) leaves doubles uninitialized
  // (UninitTag path); fill/copy construction behaves exactly like
  // std::vector<double>.
  std::vector<double, detail::DefaultInitAllocator<double>> data_;
};

}  // namespace wefr::data
