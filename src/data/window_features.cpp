#include "data/window_features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wefr::data {

namespace {
constexpr std::size_t kStatsPerWindow = 6;  // max, min, mean, std, range, wma
}

std::size_t expansion_factor(const WindowFeatureConfig& cfg) {
  return 1 + kStatsPerWindow * cfg.windows.size();
}

std::vector<std::string> expanded_feature_names(std::span<const std::string> base_names,
                                                const WindowFeatureConfig& cfg) {
  static const char* kStatNames[kStatsPerWindow] = {"max", "min", "mean", "std", "range", "wma"};
  std::vector<std::string> out;
  out.reserve(base_names.size() * expansion_factor(cfg));
  for (const auto& base : base_names) {
    out.push_back(base);
    for (int w : cfg.windows) {
      for (const char* stat : kStatNames) {
        out.push_back(base + "__" + stat + std::to_string(w));
      }
    }
  }
  return out;
}

Matrix expand_series(const Matrix& series, std::span<const std::size_t> base_cols,
                     const WindowFeatureConfig& cfg) {
  for (int w : cfg.windows) {
    if (w < 1) throw std::invalid_argument("expand_series: window must be >= 1");
  }
  const std::size_t days = series.rows();
  const std::size_t factor = expansion_factor(cfg);
  Matrix out(days, base_cols.size() * factor);

  for (std::size_t b = 0; b < base_cols.size(); ++b) {
    const std::size_t col = base_cols[b];
    if (col >= series.cols()) throw std::out_of_range("expand_series: base column");
    for (std::size_t d = 0; d < days; ++d) {
      std::size_t o = b * factor;
      const double v = series(d, col);
      out(d, o++) = v;
      for (int w : cfg.windows) {
        // Trailing window [start, d], truncated at the series start.
        const std::size_t start = d + 1 >= static_cast<std::size_t>(w) ? d + 1 - w : 0;
        const std::size_t n = d - start + 1;
        double mx = -INFINITY, mn = INFINITY, sum = 0.0, sum2 = 0.0;
        double wma_num = 0.0, wma_den = 0.0;
        for (std::size_t t = start; t <= d; ++t) {
          const double x = series(t, col);
          mx = std::max(mx, x);
          mn = std::min(mn, x);
          sum += x;
          sum2 += x * x;
          // Linear weights: most recent day gets the largest weight.
          const double weight = static_cast<double>(t - start + 1);
          wma_num += weight * x;
          wma_den += weight;
        }
        const double mean = sum / static_cast<double>(n);
        const double var = std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
        out(d, o++) = mx;
        out(d, o++) = mn;
        out(d, o++) = mean;
        out(d, o++) = std::sqrt(var);
        out(d, o++) = mx - mn;
        out(d, o++) = wma_num / wma_den;
      }
    }
  }
  return out;
}

}  // namespace wefr::data
