#include "data/window_features.h"

#include "obs/context.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

// The steady-state kernels below are straight-line element-wise loops
// over restrict-qualified arrays — exactly what the auto-vectorizer
// wants. On x86-64 Linux, compile them twice (AVX2 + baseline) with a
// runtime dispatcher so a portable binary still uses 256-bit vectors
// where available. Only avx2 is enabled (no FMA target), so every op is
// IEEE-exact at any vector width and results are bit-identical across
// the clones.
// Under TSan the clones are disabled: target_clones dispatches through
// an IFUNC whose resolver runs before the TSan runtime initializes,
// which segfaults at process start (forest_infer.cpp avoids this by
// dispatching through an atomic instead).
#ifndef __has_attribute
#define __has_attribute(x) 0
#endif
#if defined(__x86_64__) && defined(__gnu_linux__) && __has_attribute(target_clones) && \
    !defined(__SANITIZE_THREAD__)
#define WEFR_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define WEFR_SIMD_CLONES
#endif

namespace wefr::data {

namespace {
constexpr std::size_t kStatsPerWindow = 6;  // max, min, mean, std, range, wma

/// Validates the window config and the base columns (shared by the
/// streaming and naive entry points).
void check_inputs(const Matrix& series, std::span<const std::size_t> base_cols,
                  const WindowFeatureConfig& cfg) {
  for (int w : cfg.windows) {
    if (w < 1) throw std::invalid_argument("expand_series: window must be >= 1");
  }
  for (std::size_t col : base_cols) {
    if (col >= series.cols()) throw std::out_of_range("expand_series: base column");
  }
}

/// Naive rolling stats for one contiguous column: rescans the window for
/// every day. `stage` is column-major scratch, stage[o * days + d].
void expand_column_naive(std::span<const double> colbuf, const WindowFeatureConfig& cfg,
                         std::span<double> stage) {
  const std::size_t days = colbuf.size();
  for (std::size_t d = 0; d < days; ++d) {
    std::size_t o = 0;
    stage[o++ * days + d] = colbuf[d];
    for (int w : cfg.windows) {
      // Trailing window [start, d], truncated at the series start.
      const std::size_t start = d + 1 >= static_cast<std::size_t>(w) ? d + 1 - w : 0;
      const std::size_t n = d - start + 1;
      double mx = -INFINITY, mn = INFINITY, sum = 0.0, sum2 = 0.0;
      double wma_num = 0.0, wma_den = 0.0;
      for (std::size_t t = start; t <= d; ++t) {
        const double x = colbuf[t];
        mx = std::max(mx, x);
        mn = std::min(mn, x);
        sum += x;
        sum2 += x * x;
        // Linear weights: most recent day gets the largest weight.
        const double weight = static_cast<double>(t - start + 1);
        wma_num += weight * x;
        wma_den += weight;
      }
      const double mean = sum / static_cast<double>(n);
      const double var = std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
      stage[o++ * days + d] = mx;
      stage[o++ * days + d] = mn;
      stage[o++ * days + d] = mean;
      stage[o++ * days + d] = std::sqrt(var);
      stage[o++ * days + d] = mx - mn;
      stage[o++ * days + d] = wma_num / wma_den;
    }
  }
}

/// Sparse-table levels for windowed max/min: level k (stored at
/// lv + (k-1) * days) holds the running max/min over the trailing 2^k
/// days, truncated at the series start (so lv_k[j] = extremum over
/// [max(0, j - 2^k + 1), j]). Each level is one branchless element-wise
/// pass over the previous one, and the levels are shared by every
/// window of the column. When no window needs level 1 (`need_level1`
/// false), level 2 is built straight from the input with a fused
/// 4-way max, saving a full store+reload pass.
WEFR_SIMD_CLONES
void build_sparse_levels(const double* __restrict x, double* __restrict lvmax,
                         double* __restrict lvmin, bool need_level1, std::size_t kmax,
                         std::size_t days) {
  std::size_t k_first = 1;
  if (!need_level1 && kmax >= 2) {
    double* __restrict dmx = lvmax + days;  // level-2 slot
    double* __restrict dmn = lvmin + days;
    double rmx = -INFINITY, rmn = INFINITY;
    const std::size_t head = std::min<std::size_t>(3, days);
    for (std::size_t j = 0; j < head; ++j) {  // truncated: extremum over [0, j]
      rmx = std::max(rmx, x[j]);
      rmn = std::min(rmn, x[j]);
      dmx[j] = rmx;
      dmn[j] = rmn;
    }
    for (std::size_t j = 3; j < days; ++j) {
      dmx[j] = std::max(std::max(x[j], x[j - 1]), std::max(x[j - 2], x[j - 3]));
      dmn[j] = std::min(std::min(x[j], x[j - 1]), std::min(x[j - 2], x[j - 3]));
    }
    k_first = 3;
  }
  for (std::size_t k = k_first; k <= kmax; ++k) {
    const std::size_t h = std::size_t{1} << (k - 1);
    const double* __restrict smx = k == 1 ? x : lvmax + (k - 2) * days;
    const double* __restrict smn = k == 1 ? x : lvmin + (k - 2) * days;
    double* __restrict dmx = lvmax + (k - 1) * days;
    double* __restrict dmn = lvmin + (k - 1) * days;
    const std::size_t head = std::min(h, days);
    // For j < 2^(k-1) the previous level is already the truncated
    // extremum over [0, j].
    for (std::size_t j = 0; j < head; ++j) {
      dmx[j] = smx[j];
      dmn[j] = smn[j];
    }
    for (std::size_t j = h; j < days; ++j) {
      dmx[j] = std::max(smx[j], smx[j - h]);
      dmn[j] = std::min(smn[j], smn[j - h]);
    }
  }
}

/// Steady-state (d >= w) rolling stats for one window: branchless
/// element-wise passes over the shared per-column tables.
///
///  - max/min: the window [d-w+1, d] is covered by two overlapping
///    spans of length 2^k = bit_floor(w), ending at d and at d - shift
///    (shift = w - 2^k); max is idempotent, so overlap is harmless.
///  - mean/std/wma: prefix differences in one fused loop. `dayf[i]` is
///    just double(i) — a table load instead of a size_t->double convert,
///    which x86 cannot vectorize without AVX-512.
WEFR_SIMD_CLONES
void steady_pass(std::size_t w, std::size_t days, std::size_t shift,
                 const double* __restrict hi, const double* __restrict lo,
                 const double* __restrict prefix, const double* __restrict prefix2,
                 const double* __restrict wprefix, const double* __restrict dayf,
                 double* __restrict mx_out, double* __restrict mn_out,
                 double* __restrict mean_out, double* __restrict std_out,
                 double* __restrict range_out, double* __restrict wma_out) {
  for (std::size_t d = w; d < days; ++d) {
    const double mx = std::max(hi[d], hi[d - shift]);
    const double mn = std::min(lo[d], lo[d - shift]);
    mx_out[d] = mx;
    mn_out[d] = mn;
    range_out[d] = mx - mn;
  }
  const double wd = static_cast<double>(w);
  const double inv_w = 1.0 / wd;
  const double inv_den = 2.0 / (wd * (wd + 1.0));
  for (std::size_t d = w; d < days; ++d) {
    const std::size_t s = d - w + 1;  // window is [s, d]
    const double sum = prefix[d + 1] - prefix[s];
    const double mean = sum * inv_w;
    const double var = (prefix2[d + 1] - prefix2[s]) * inv_w - mean * mean;
    mean_out[d] = mean;
    std_out[d] = std::sqrt(std::max(0.0, var));
    // Sum_{t=s..d} (t-s+1) x_t = Sum (t+1) x_t - s * Sum x_t.
    wma_out[d] = ((wprefix[d + 1] - wprefix[s]) - dayf[s] * sum) * inv_den;
  }
}

/// Interleaves the column-major staging block (stage[o * days + d]) into
/// the row-major output: dst0 points at out(0, base_off), row_stride is
/// the full output width. The compile-time-factor variants exist so the
/// inner loop fully unrolls and SLP-vectorizes — with a runtime trip
/// count the 19-wide gather/scatter stays scalar and costs ~2x.
template <std::size_t kFactor>
WEFR_SIMD_CLONES void interleave_stage_fixed(const double* __restrict stage,
                                             double* __restrict dst0, std::size_t days,
                                             std::size_t row_stride) {
  for (std::size_t d = 0; d < days; ++d) {
    double* __restrict dst = dst0 + d * row_stride;
    for (std::size_t o = 0; o < kFactor; ++o) dst[o] = stage[o * days + d];
  }
}

WEFR_SIMD_CLONES
void interleave_stage_generic(const double* __restrict stage, double* __restrict dst0,
                              std::size_t days, std::size_t factor,
                              std::size_t row_stride) {
  for (std::size_t d = 0; d < days; ++d) {
    double* __restrict dst = dst0 + d * row_stride;
    for (std::size_t o = 0; o < factor; ++o) dst[o] = stage[o * days + d];
  }
}

void interleave_stage(const double* stage, double* dst0, std::size_t days,
                      std::size_t factor, std::size_t row_stride) {
  switch (factor) {
    case 7:  // one window
      return interleave_stage_fixed<7>(stage, dst0, days, row_stride);
    case 13:  // two windows (the paper's default {3, 7})
      return interleave_stage_fixed<13>(stage, dst0, days, row_stride);
    case 19:  // three windows (the bench's {7, 14, 30})
      return interleave_stage_fixed<19>(stage, dst0, days, row_stride);
    default:
      return interleave_stage_generic(stage, dst0, days, factor, row_stride);
  }
}

/// Streaming rolling stats for one window over one contiguous column,
/// O(1) per day. Requires every value in `colbuf` to be finite.
///
/// Inputs shared across windows, computed once per column by the caller:
/// prefix/prefix2/wprefix are the inclusive prefix sums of x, x*x and
/// (t+1)*x_t (size days + 1, [0] = 0, accumulated left-to-right — the
/// wprefix fold is verbatim the naive kernel's growing-window WMA
/// numerator), lvmax/lvmin the sparse-table levels, dayf[i] = double(i).
///
/// While a window is still growing (d < w), every stat replays the naive
/// kernel's left-fold arithmetic operation for operation — running
/// max/min fold in the same order, prefix[d+1]/wprefix[d+1] ARE the
/// folds — so the growing phase is bit-identical to the rescan. Once
/// the window slides, max/min/range stay value-identical (the result is
/// an element of the window; the only bit-level caveat is which
/// representative of a mixed +/-0.0 tie survives), while mean/std/wma
/// round differently (~1e-15 relative on the prefix magnitudes; std
/// additionally carries the sum2/n - mean^2 cancellation both kernels
/// share, and the wma numerator (wprefix[d+1]-wprefix[s]) -
/// s*(prefix[d+1]-prefix[s]) cancels terms of magnitude ~days^2 * scale,
/// so its absolute error is ~eps * days^2 * scale).
void expand_column_streaming(std::span<const double> colbuf, int w_signed,
                             std::span<const double> prefix,
                             std::span<const double> prefix2,
                             std::span<const double> wprefix,
                             std::span<const double> dayf, const double* lvmax,
                             const double* lvmin, std::span<double> mx_out,
                             std::span<double> mn_out, std::span<double> mean_out,
                             std::span<double> std_out, std::span<double> range_out,
                             std::span<double> wma_out) {
  const std::size_t days = colbuf.size();
  const std::size_t w = static_cast<std::size_t>(w_signed);
  if (w == 1) {
    // Degenerate window: every stat collapses to the day's value (the
    // naive kernel produces exactly these, including std = sqrt(max(0,
    // x*x/1 - x*x)) = 0).
    for (std::size_t d = 0; d < days; ++d) {
      const double x = colbuf[d];
      mx_out[d] = mn_out[d] = mean_out[d] = wma_out[d] = x;
      std_out[d] = range_out[d] = 0.0;
    }
    return;
  }

  // Growing phase: replay the naive folds exactly (bit-identical).
  const std::size_t grow_end = std::min(days, w);  // days [0, grow_end) still grow
  double rmx = -INFINITY, rmn = INFINITY;
  for (std::size_t d = 0; d < grow_end; ++d) {
    const double x = colbuf[d];
    rmx = std::max(rmx, x);
    rmn = std::min(rmn, x);
    const double n = static_cast<double>(d + 1);
    const double mean = prefix[d + 1] / n;
    const double var = std::max(0.0, prefix2[d + 1] / n - mean * mean);
    mx_out[d] = rmx;
    mn_out[d] = rmn;
    range_out[d] = rmx - rmn;
    mean_out[d] = mean;
    std_out[d] = std::sqrt(var);
    // Denominator 1 + 2 + ... + n = n(n+1)/2 is an exact integer either way.
    wma_out[d] = wprefix[d + 1] / (n * (n + 1) * 0.5);
  }
  if (days <= w) return;

  const std::size_t k = static_cast<std::size_t>(std::bit_width(w)) - 1;  // 2^k = bit_floor(w)
  const std::size_t shift = w - (std::size_t{1} << k);
  steady_pass(w, days, shift, lvmax + (k - 1) * days, lvmin + (k - 1) * days,
              prefix.data(), prefix2.data(), wprefix.data(), dayf.data(), mx_out.data(),
              mn_out.data(), mean_out.data(), std_out.data(), range_out.data(),
              wma_out.data());
}

}  // namespace

std::size_t expansion_factor(const WindowFeatureConfig& cfg) {
  return 1 + kStatsPerWindow * cfg.windows.size();
}

std::vector<std::string> expanded_feature_names(std::span<const std::string> base_names,
                                                const WindowFeatureConfig& cfg) {
  static const char* kStatNames[kStatsPerWindow] = {"max", "min", "mean", "std", "range", "wma"};
  std::vector<std::string> out;
  out.reserve(base_names.size() * expansion_factor(cfg));
  for (const auto& base : base_names) {
    out.push_back(base);
    for (int w : cfg.windows) {
      for (const char* stat : kStatNames) {
        out.push_back(base + "__" + stat + std::to_string(w));
      }
    }
  }
  return out;
}

Matrix expand_series(const Matrix& series, std::span<const std::size_t> base_cols,
                     const WindowFeatureConfig& cfg, const obs::Context* obs) {
  check_inputs(series, base_cols, cfg);
  const std::size_t days = series.rows();
  const std::size_t factor = expansion_factor(cfg);
  if (obs != nullptr) {
    obs::add_counter(obs, "wefr_featuregen_rows_total", days);
    obs::add_counter(obs, "wefr_featuregen_cells_total",
                     days * base_cols.size() * factor);
  }
  // Every cell is written below (identity + all stats for all windows),
  // so skip the zero fill — it is ~1 MB of pure write traffic per drive.
  Matrix out = Matrix::uninitialized(days, base_cols.size() * factor);
  if (days == 0 || base_cols.empty()) return out;

  // Sparse-table depth: level k is needed by any window w with
  // bit_floor(w) = 2^k that actually reaches steady state (w < days).
  std::size_t kmax = 0;
  bool need_level1 = false;
  for (int w : cfg.windows) {
    const std::size_t wu = static_cast<std::size_t>(w);
    if (wu >= 2 && wu < days) {
      const auto k = static_cast<std::size_t>(std::bit_width(wu)) - 1;
      kmax = std::max(kmax, k);
      need_level1 = need_level1 || k == 1;
    }
  }

  // Contiguous scratch, reused across base columns: the input column,
  // its prefix sums and sparse-table levels (shared by every window),
  // and one column-major staging block (stage[o * days + d]) that the
  // final pass interleaves into the row-major output.
  std::vector<double> colbuf(days);
  std::vector<double> prefix(days + 1), prefix2(days + 1), wprefix(days + 1);
  std::vector<double> dayf(days + 1);
  for (std::size_t i = 0; i <= days; ++i) dayf[i] = static_cast<double>(i);
  std::vector<double> lvmax(kmax * days), lvmin(kmax * days);
  std::vector<double> stage(days * factor);

  for (std::size_t b = 0; b < base_cols.size(); ++b) {
    const std::size_t col = base_cols[b];
    bool finite = true;
    for (std::size_t d = 0; d < days; ++d) {
      colbuf[d] = series(d, col);
      finite = finite && std::isfinite(colbuf[d]);
    }

    if (!finite) {
      // NaN holes (recover-mode ingestion) poison running sums and
      // break max/min comparisons; the naive kernel's semantics are the
      // contract, so keep them exactly.
      expand_column_naive(colbuf, cfg, stage);
    } else {
      // Left-to-right prefix sums: prefix[d+1] / wprefix[d+1] are
      // bit-identical to the naive kernel's growing-window folds.
      double s = 0.0, s2 = 0.0, sw = 0.0;
      prefix[0] = prefix2[0] = wprefix[0] = 0.0;
      for (std::size_t d = 0; d < days; ++d) {
        const double x = colbuf[d];
        s += x;
        s2 += x * x;
        sw += static_cast<double>(d + 1) * x;
        prefix[d + 1] = s;
        prefix2[d + 1] = s2;
        wprefix[d + 1] = sw;
      }
      if (kmax > 0) {
        build_sparse_levels(colbuf.data(), lvmax.data(), lvmin.data(), need_level1, kmax,
                            days);
      }
      std::copy(colbuf.begin(), colbuf.end(), stage.begin());  // identity column
      std::size_t o = 1;
      for (int w : cfg.windows) {
        auto stat = [&](std::size_t i) {
          return std::span<double>(stage.data() + (o + i) * days, days);
        };
        expand_column_streaming(colbuf, w, prefix, prefix2, wprefix, dayf, lvmax.data(),
                                lvmin.data(), stat(0), stat(1), stat(2), stat(3), stat(4),
                                stat(5));
        o += kStatsPerWindow;
      }
    }

    // The column offset b * factor is invariant across the day loop.
    interleave_stage(stage.data(), &out(0, b * factor), days, factor,
                     base_cols.size() * factor);
  }
  return out;
}

Matrix expand_series_naive(const Matrix& series, std::span<const std::size_t> base_cols,
                           const WindowFeatureConfig& cfg) {
  check_inputs(series, base_cols, cfg);
  const std::size_t days = series.rows();
  const std::size_t factor = expansion_factor(cfg);
  Matrix out(days, base_cols.size() * factor);

  for (std::size_t b = 0; b < base_cols.size(); ++b) {
    const std::size_t col = base_cols[b];
    for (std::size_t d = 0; d < days; ++d) {
      std::size_t o = b * factor;
      const double v = series(d, col);
      out(d, o++) = v;
      for (int w : cfg.windows) {
        // Trailing window [start, d], truncated at the series start.
        const std::size_t start = d + 1 >= static_cast<std::size_t>(w) ? d + 1 - w : 0;
        const std::size_t n = d - start + 1;
        double mx = -INFINITY, mn = INFINITY, sum = 0.0, sum2 = 0.0;
        double wma_num = 0.0, wma_den = 0.0;
        for (std::size_t t = start; t <= d; ++t) {
          const double x = series(t, col);
          mx = std::max(mx, x);
          mn = std::min(mn, x);
          sum += x;
          sum2 += x * x;
          // Linear weights: most recent day gets the largest weight.
          const double weight = static_cast<double>(t - start + 1);
          wma_num += weight * x;
          wma_den += weight;
        }
        const double mean = sum / static_cast<double>(n);
        const double var = std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
        out(d, o++) = mx;
        out(d, o++) = mn;
        out(d, o++) = mean;
        out(d, o++) = std::sqrt(var);
        out(d, o++) = mx - mn;
        out(d, o++) = wma_num / wma_den;
      }
    }
  }
  return out;
}

}  // namespace wefr::data
