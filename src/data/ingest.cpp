#include "data/ingest.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/report.h"

namespace wefr::data {

const char* to_string(RowError e) {
  switch (e) {
    case RowError::kEmptyInput: return "empty_input";
    case RowError::kBadHeader: return "bad_header";
    case RowError::kWrongFieldCount: return "wrong_field_count";
    case RowError::kBadMetaField: return "bad_meta_field";
    case RowError::kBadValue: return "bad_value";
    case RowError::kMissingValue: return "missing_value";
    case RowError::kNonContiguousDay: return "non_contiguous_day";
    case RowError::kReappearingDrive: return "reappearing_drive";
    case RowError::kIoFailure: return "io_failure";
    case RowError::kCount: break;
  }
  return "unknown";
}

std::string IngestReport::summary() const {
  std::ostringstream os;
  if (fatal) {
    os << "FATAL: " << fatal_detail;
    return os.str();
  }
  os << "rows " << rows_ok << '/' << rows_total << " ok";
  if (rows_quarantined > 0) os << ", " << rows_quarantined << " quarantined";
  if (drives_quarantined > 0) os << ", " << drives_quarantined << " drives dropped";
  if (cells_recovered > 0) os << ", " << cells_recovered << " cells -> NaN";
  if (gap_days_bridged > 0) os << ", " << gap_days_bridged << " gap days bridged";
  if (rows_padded > 0)
    os << ", " << rows_padded << " rows padded (" << cells_padded << " cells)";
  if (io_retries > 0) os << ", " << io_retries << " I/O retries";
  if (cache_hits > 0) os << " (columnar cache hit)";
  else if (cache_invalidations > 0) os << " (cache invalidated, reparsed)";
  else if (cache_misses > 0) os << " (cache miss, snapshot written)";
  bool first = true;
  for (std::size_t i = 0; i < error_counts.size(); ++i) {
    if (error_counts[i] == 0) continue;
    os << (first ? " (" : ", ") << to_string(static_cast<RowError>(i)) << " x"
       << error_counts[i];
    first = false;
  }
  if (!first) os << ')';
  if (fill.cells_filled > 0 || fill.all_nan_columns > 0) {
    os << "; fill: " << fill.cells_filled << " cells ("
       << fill.leading_backfilled << " leading), " << fill.all_nan_columns
       << " all-NaN columns";
    if (fill.cells_left_missing > 0)
      os << ", " << fill.cells_left_missing << " left missing";
  }
  return os.str();
}

void IngestReport::export_counters(obs::Registry& registry) const {
  const auto bump = [&registry](const char* name, std::size_t n) {
    if (n > 0) registry.counter(name).add(n);
  };
  bump("wefr_ingest_rows_total", rows_total);
  bump("wefr_ingest_rows_ok_total", rows_ok);
  bump("wefr_ingest_rows_quarantined_total", rows_quarantined);
  bump("wefr_ingest_cells_recovered_total", cells_recovered);
  bump("wefr_ingest_gap_days_bridged_total", gap_days_bridged);
  bump("wefr_ingest_rows_padded_total", rows_padded);
  bump("wefr_ingest_cells_padded_total", cells_padded);
  bump("wefr_ingest_drives_quarantined_total", drives_quarantined);
  bump("wefr_ingest_io_retries_total", io_retries);
  bump("wefr_ingest_cache_hit_total", cache_hits);
  bump("wefr_ingest_cache_miss_total", cache_misses);
  bump("wefr_ingest_cache_invalidate_total", cache_invalidations);
  if (fatal) registry.counter("wefr_ingest_fatal_total").add(1);
  for (std::size_t i = 0; i < error_counts.size(); ++i) {
    if (error_counts[i] == 0) continue;
    registry
        .counter(std::string("wefr_ingest_errors_") +
                 to_string(static_cast<RowError>(i)) + "_total")
        .add(error_counts[i]);
  }
}

void IngestReport::fill_run_report(obs::RunReport& report) const {
  auto& out = report.ingest;
  out["rows_total"] = static_cast<double>(rows_total);
  out["rows_ok"] = static_cast<double>(rows_ok);
  out["rows_quarantined"] = static_cast<double>(rows_quarantined);
  out["cells_recovered"] = static_cast<double>(cells_recovered);
  out["gap_days_bridged"] = static_cast<double>(gap_days_bridged);
  out["rows_padded"] = static_cast<double>(rows_padded);
  out["cells_padded"] = static_cast<double>(cells_padded);
  out["drives_quarantined"] = static_cast<double>(drives_quarantined);
  out["io_retries"] = static_cast<double>(io_retries);
  out["fatal"] = fatal ? 1.0 : 0.0;
  if (cache_hits + cache_misses > 0) {
    out["cache_hits"] = static_cast<double>(cache_hits);
    out["cache_misses"] = static_cast<double>(cache_misses);
    out["cache_invalidations"] = static_cast<double>(cache_invalidations);
  }
  out["cells_filled"] = static_cast<double>(fill.cells_filled);
  out["cells_left_missing"] = static_cast<double>(fill.cells_left_missing);
  for (std::size_t i = 0; i < error_counts.size(); ++i) {
    if (error_counts[i] == 0) continue;
    out[std::string("errors_") + to_string(static_cast<RowError>(i))] =
        static_cast<double>(error_counts[i]);
  }
}

}  // namespace wefr::data
