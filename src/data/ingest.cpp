#include "data/ingest.h"

#include <sstream>

namespace wefr::data {

const char* to_string(RowError e) {
  switch (e) {
    case RowError::kEmptyInput: return "empty_input";
    case RowError::kBadHeader: return "bad_header";
    case RowError::kWrongFieldCount: return "wrong_field_count";
    case RowError::kBadMetaField: return "bad_meta_field";
    case RowError::kBadValue: return "bad_value";
    case RowError::kMissingValue: return "missing_value";
    case RowError::kNonContiguousDay: return "non_contiguous_day";
    case RowError::kReappearingDrive: return "reappearing_drive";
    case RowError::kIoFailure: return "io_failure";
    case RowError::kCount: break;
  }
  return "unknown";
}

std::string IngestReport::summary() const {
  std::ostringstream os;
  if (fatal) {
    os << "FATAL: " << fatal_detail;
    return os.str();
  }
  os << "rows " << rows_ok << '/' << rows_total << " ok";
  if (rows_quarantined > 0) os << ", " << rows_quarantined << " quarantined";
  if (drives_quarantined > 0) os << ", " << drives_quarantined << " drives dropped";
  if (cells_recovered > 0) os << ", " << cells_recovered << " cells -> NaN";
  if (gap_days_bridged > 0) os << ", " << gap_days_bridged << " gap days bridged";
  if (io_retries > 0) os << ", " << io_retries << " I/O retries";
  bool first = true;
  for (std::size_t i = 0; i < error_counts.size(); ++i) {
    if (error_counts[i] == 0) continue;
    os << (first ? " (" : ", ") << to_string(static_cast<RowError>(i)) << " x"
       << error_counts[i];
    first = false;
  }
  if (!first) os << ')';
  if (fill.cells_filled > 0 || fill.all_nan_columns > 0) {
    os << "; fill: " << fill.cells_filled << " cells ("
       << fill.leading_backfilled << " leading), " << fill.all_nan_columns
       << " all-NaN columns";
    if (fill.cells_left_missing > 0)
      os << ", " << fill.cells_left_missing << " left missing";
  }
  return os.str();
}

}  // namespace wefr::data
