#pragma once

#include <span>

namespace wefr::stats {

/// Youden J-index of a single learning feature for a binary target:
/// J = max over cut points of (sensitivity + specificity - 1), taking
/// the better of the two threshold directions (feature high => positive,
/// feature low => positive). J in [0, 1]; 0 means the feature cannot
/// separate the classes at any single threshold, 1 means a perfect
/// single-threshold classifier. Matches the J-index selector of
/// Lu et al. (FAST'20) used as a preliminary ranker in WEFR.
///
/// Returns 0 when either class is absent. Throws on length mismatch.
double youden_j_index(std::span<const double> x, std::span<const int> y);

}  // namespace wefr::stats
