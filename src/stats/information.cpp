#include "stats/information.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/ranking.h"

namespace wefr::stats {

namespace {

/// Assigns each sample an equal-frequency bin id in [0, bins); ties are
/// kept in the same bin (binning by rank, then dividing the rank range).
std::vector<int> equal_frequency_bins(std::span<const double> x, int bins) {
  const auto ranks = fractional_ranks(x);  // 1-based, ties averaged
  const double n = static_cast<double>(x.size());
  std::vector<int> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    int b = static_cast<int>((ranks[i] - 0.5) / n * static_cast<double>(bins));
    out[i] = std::clamp(b, 0, bins - 1);
  }
  return out;
}

struct ContingencyTable {
  std::vector<std::array<double, 2>> cell;  // [bin][class]
  double class_total[2] = {0.0, 0.0};
  double total = 0.0;
};

ContingencyTable build_table(std::span<const double> x, std::span<const int> y, int bins) {
  if (x.size() != y.size()) throw std::invalid_argument("information: length mismatch");
  if (bins < 2) throw std::invalid_argument("information: bins < 2");
  ContingencyTable t;
  t.cell.assign(static_cast<std::size_t>(bins), {0.0, 0.0});
  if (x.empty()) return t;
  const auto bin = equal_frequency_bins(x, bins);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int c = y[i] != 0 ? 1 : 0;
    t.cell[static_cast<std::size_t>(bin[i])][static_cast<std::size_t>(c)] += 1.0;
    t.class_total[c] += 1.0;
    t.total += 1.0;
  }
  return t;
}

}  // namespace

double binary_entropy(std::span<const int> y) {
  if (y.empty()) return 0.0;
  double pos = 0.0;
  for (int v : y) pos += v != 0 ? 1.0 : 0.0;
  const double p = pos / static_cast<double>(y.size());
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -(p * std::log(p) + (1.0 - p) * std::log(1.0 - p));
}

double mutual_information(std::span<const double> x, std::span<const int> y, int bins) {
  const ContingencyTable t = build_table(x, y, bins);
  if (t.total == 0.0 || t.class_total[0] == 0.0 || t.class_total[1] == 0.0) return 0.0;

  double mi = 0.0;
  for (const auto& row : t.cell) {
    const double bin_total = row[0] + row[1];
    if (bin_total == 0.0) continue;
    for (int c = 0; c < 2; ++c) {
      const double joint = row[static_cast<std::size_t>(c)] / t.total;
      if (joint <= 0.0) continue;
      const double px = bin_total / t.total;
      const double py = t.class_total[c] / t.total;
      mi += joint * std::log(joint / (px * py));
    }
  }
  return std::max(0.0, mi);
}

double chi_square_statistic(std::span<const double> x, std::span<const int> y, int bins) {
  const ContingencyTable t = build_table(x, y, bins);
  if (t.total == 0.0 || t.class_total[0] == 0.0 || t.class_total[1] == 0.0) return 0.0;

  double chi2 = 0.0;
  for (const auto& row : t.cell) {
    const double bin_total = row[0] + row[1];
    if (bin_total == 0.0) continue;
    for (int c = 0; c < 2; ++c) {
      const double expected = bin_total * t.class_total[c] / t.total;
      const double diff = row[static_cast<std::size_t>(c)] - expected;
      chi2 += diff * diff / expected;
    }
  }
  return chi2;
}

}  // namespace wefr::stats
