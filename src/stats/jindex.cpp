#include "stats/jindex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/ranking.h"

namespace wefr::stats {

double youden_j_index(std::span<const double> x, std::span<const int> y) {
  if (x.size() != y.size()) throw std::invalid_argument("youden_j_index: length mismatch");
  std::size_t n_pos = 0, n_neg = 0;
  for (int label : y) (label != 0 ? n_pos : n_neg) += 1;
  if (n_pos == 0 || n_neg == 0) return 0.0;

  const auto order = argsort_ascending(x);

  // Sweep cut points between distinct values. With `pos_le` positives and
  // `neg_le` negatives at or below the cut:
  //   direction "high => positive":  TPR = 1 - pos_le/n_pos, TNR = neg_le/n_neg
  //   direction "low  => positive":  TPR = pos_le/n_pos,     TNR = 1 - neg_le/n_neg
  // J = TPR + TNR - 1 = +/- (neg_le/n_neg - pos_le/n_pos).
  double best = 0.0;
  std::size_t pos_le = 0, neg_le = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (y[order[i]] != 0 ? pos_le : neg_le) += 1;
    // Only evaluate at boundaries between distinct feature values.
    if (i + 1 < order.size() && x[order[i + 1]] == x[order[i]]) continue;
    const double j = static_cast<double>(neg_le) / static_cast<double>(n_neg) -
                     static_cast<double>(pos_le) / static_cast<double>(n_pos);
    best = std::max(best, std::abs(j));
  }
  return best;
}

}  // namespace wefr::stats
