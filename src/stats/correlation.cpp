#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ranking.h"

namespace wefr::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: length mismatch");
  if (x.empty()) throw std::invalid_argument("pearson: empty input");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  const double r = sxy / std::sqrt(sxx * syy);
  // Guard tiny floating-point overshoot.
  return std::clamp(r, -1.0, 1.0);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: length mismatch");
  const auto rx = fractional_ranks(x);
  const auto ry = fractional_ranks(y);
  return pearson(rx, ry);
}

double spearman_with_ranks(std::span<const double> x, std::span<const double> y_ranks) {
  if (x.size() != y_ranks.size())
    throw std::invalid_argument("spearman_with_ranks: length mismatch");
  const auto rx = fractional_ranks(x);
  return pearson(rx, y_ranks);
}

}  // namespace wefr::stats
