#pragma once

#include <span>
#include <vector>

namespace wefr::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by n); 0 for spans shorter than 2.
double variance(std::span<const double> xs);

/// Sample variance (divides by n-1); 0 for spans shorter than 2.
double sample_variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Sample standard deviation.
double sample_stddev(std::span<const double> xs);

/// Minimum / maximum; throw std::invalid_argument on empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// z-scores of each element against the span's own mean/stddev (sample
/// stddev). A constant sequence maps to all zeros.
std::vector<double> zscores(std::span<const double> xs);

/// Median (by copy + nth_element); throws on empty input.
double median(std::span<const double> xs);

/// Empirical quantile in [0,1] with linear interpolation; throws on
/// empty input or q outside [0,1].
double quantile(std::span<const double> xs, double q);

}  // namespace wefr::stats
