#pragma once

#include <span>

namespace wefr::stats {

/// Mutual information I(X; Y) in nats between a continuous feature `x`
/// (discretized into `bins` equal-frequency bins) and a binary target
/// `y`. 0 when the feature carries no information about the class;
/// bounded above by the class entropy H(Y) <= ln 2.
///
/// Equal-frequency binning keeps heavy-tailed SMART counters (mostly 0,
/// occasionally huge) from collapsing into a single bin. Returns 0 when
/// either class is absent or the feature is constant. Throws on length
/// mismatch or bins < 2.
double mutual_information(std::span<const double> x, std::span<const int> y, int bins = 10);

/// Pearson chi-square statistic of independence between the binned
/// feature and the binary target, over the same equal-frequency bins.
/// Larger = stronger dependence. Returns 0 for constant features or a
/// single-class target.
double chi_square_statistic(std::span<const double> x, std::span<const int> y,
                            int bins = 10);

/// Shannon entropy (nats) of a binary label vector.
double binary_entropy(std::span<const int> y);

}  // namespace wefr::stats
