#pragma once

#include <span>
#include <vector>

namespace wefr::stats {

/// Indices that sort `xs` ascending (stable for ties).
std::vector<std::size_t> argsort_ascending(std::span<const double> xs);

/// Indices that sort `xs` descending (stable for ties).
std::vector<std::size_t> argsort_descending(std::span<const double> xs);

/// Fractional (mid) ranks of `xs`, 1-based, ties averaged — the rank
/// transform used by the Spearman correlation.
std::vector<double> fractional_ranks(std::span<const double> xs);

/// As `fractional_ranks`, reusing a precomputed ascending argsort of
/// `xs` — the rank-cache primitive: callers that need both the order and
/// the ranks (or rank several views of one column) sort exactly once.
std::vector<double> fractional_ranks_from_order(std::span<const double> xs,
                                                std::span<const std::size_t> order);

/// Converts importance scores (higher = more important) into a ranking:
/// `result[i]` is the 1-based rank position of feature i (1 = most
/// important). Ties receive averaged (fractional) positions so that two
/// selectors agreeing on a tie have identical rankings.
std::vector<double> ranking_from_scores(std::span<const double> scores);

/// The ordered list of feature indices, most important first, for the
/// given scores (deterministic: ties broken by index).
std::vector<std::size_t> order_by_score(std::span<const double> scores);

}  // namespace wefr::stats
