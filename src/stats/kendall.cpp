#include "stats/kendall.h"

#include <stdexcept>

namespace wefr::stats {

std::size_t kendall_tau_distance(std::span<const double> rank_a,
                                 std::span<const double> rank_b) {
  if (rank_a.size() != rank_b.size())
    throw std::invalid_argument("kendall_tau_distance: length mismatch");
  const std::size_t n = rank_a.size();
  std::size_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = rank_a[i] - rank_a[j];
      const double db = rank_b[i] - rank_b[j];
      // Strictly opposite orders only; ties are not discordant.
      if (da * db < 0.0) ++discordant;
    }
  }
  return discordant;
}

double kendall_tau_distance_normalized(std::span<const double> rank_a,
                                       std::span<const double> rank_b) {
  const std::size_t n = rank_a.size();
  if (n < 2) return 0.0;
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(kendall_tau_distance(rank_a, rank_b)) / pairs;
}

}  // namespace wefr::stats
