#include "stats/kendall.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ranking.h"

namespace wefr::stats {

namespace {

/// Counts strict inversions (i < j with seq[i] > seq[j]) by merge sort.
/// `seq` is sorted ascending in place; `tmp` is scratch of equal size.
std::size_t count_inversions(std::vector<double>& seq, std::vector<double>& tmp) {
  const std::size_t n = seq.size();
  std::size_t inversions = 0;
  // Bottom-up merge sort: no recursion, one scratch buffer.
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (seq[j] < seq[i]) {
          // seq[j] jumps ahead of every remaining left element: each of
          // those pairs is a strict inversion. Equal values take the
          // left element first and count nothing.
          inversions += mid - i;
          tmp[k++] = seq[j++];
        } else {
          tmp[k++] = seq[i++];
        }
      }
      while (i < mid) tmp[k++] = seq[i++];
      while (j < hi) tmp[k++] = seq[j++];
      std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                seq.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

/// Builds the rank_b sequence ordered by (rank_a asc, rank_b asc) and
/// counts its strict inversions: exactly the pairs ordered strictly one
/// way by A and strictly the opposite way by B. Pairs tied in A land in
/// a run sorted by B (no inversion among them); pairs tied in B never
/// produce a strict inversion.
std::size_t discordant_from_order(std::span<const double> rank_a,
                                  std::span<const double> rank_b,
                                  std::span<const std::size_t> order_a) {
  std::vector<double> seq(order_a.size());
  for (std::size_t i = 0; i < order_a.size(); ++i) seq[i] = rank_b[order_a[i]];
  // Re-sort each equal-rank_a run by rank_b. Runs are tie groups of the
  // cached argsort, typically short; the cached sort itself is shared
  // across every pairing of rank_a.
  std::size_t i = 0;
  while (i < seq.size()) {
    std::size_t j = i + 1;
    while (j < seq.size() && rank_a[order_a[j]] == rank_a[order_a[i]]) ++j;
    if (j - i > 1) std::sort(seq.begin() + static_cast<std::ptrdiff_t>(i),
                             seq.begin() + static_cast<std::ptrdiff_t>(j));
    i = j;
  }
  std::vector<double> tmp(seq.size());
  return count_inversions(seq, tmp);
}

}  // namespace

std::size_t kendall_tau_distance(std::span<const double> rank_a,
                                 std::span<const double> rank_b) {
  if (rank_a.size() != rank_b.size())
    throw std::invalid_argument("kendall_tau_distance: length mismatch");
  // A NaN rank compares false with everything, so the pair scan never
  // counts such pairs: drop them up front (also keeps the sort's
  // comparator a strict weak ordering).
  std::vector<double> a, b;
  bool has_nan = false;
  for (std::size_t i = 0; i < rank_a.size(); ++i) {
    has_nan = has_nan || std::isnan(rank_a[i]) || std::isnan(rank_b[i]);
  }
  std::span<const double> sa = rank_a, sb = rank_b;
  if (has_nan) {
    a.reserve(rank_a.size());
    b.reserve(rank_b.size());
    for (std::size_t i = 0; i < rank_a.size(); ++i) {
      if (std::isnan(rank_a[i]) || std::isnan(rank_b[i])) continue;
      a.push_back(rank_a[i]);
      b.push_back(rank_b[i]);
    }
    sa = a;
    sb = b;
  }
  return discordant_from_order(sa, sb, argsort_ascending(sa));
}

std::size_t kendall_tau_distance_presorted(std::span<const double> rank_a,
                                           std::span<const double> rank_b,
                                           std::span<const std::size_t> order_a) {
  if (rank_a.size() != rank_b.size() || rank_a.size() != order_a.size())
    throw std::invalid_argument("kendall_tau_distance_presorted: length mismatch");
  return discordant_from_order(rank_a, rank_b, order_a);
}

std::size_t kendall_tau_distance_naive(std::span<const double> rank_a,
                                       std::span<const double> rank_b) {
  if (rank_a.size() != rank_b.size())
    throw std::invalid_argument("kendall_tau_distance: length mismatch");
  const std::size_t n = rank_a.size();
  std::size_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = rank_a[i] - rank_a[j];
      const double db = rank_b[i] - rank_b[j];
      // Strictly opposite orders only; ties are not discordant.
      if (da * db < 0.0) ++discordant;
    }
  }
  return discordant;
}

double kendall_tau_distance_normalized(std::span<const double> rank_a,
                                       std::span<const double> rank_b) {
  const std::size_t n = rank_a.size();
  if (n < 2) return 0.0;
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(kendall_tau_distance(rank_a, rank_b)) / pairs;
}

}  // namespace wefr::stats
