#pragma once

#include <span>

namespace wefr::stats {

/// Pearson linear correlation coefficient in [-1, 1]. Returns 0 when
/// either input is constant (no linear relationship measurable).
/// Throws std::invalid_argument on length mismatch or empty input.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation: Pearson on fractional ranks (tie-aware).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace wefr::stats
