#pragma once

#include <span>

namespace wefr::stats {

/// Pearson linear correlation coefficient in [-1, 1]. Returns 0 when
/// either input is constant (no linear relationship measurable).
/// Throws std::invalid_argument on length mismatch or empty input.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation: Pearson on fractional ranks (tie-aware).
double spearman(std::span<const double> x, std::span<const double> y);

/// Spearman against an already rank-transformed second argument
/// (`y_ranks` = fractional_ranks(y)). Ranking one side of a correlation
/// scan against a fixed target is the hot case — the ensemble's
/// Spearman ranker ranks the label vector once instead of once per
/// feature column.
double spearman_with_ranks(std::span<const double> x, std::span<const double> y_ranks);

}  // namespace wefr::stats
