#include "stats/complexity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.h"

namespace wefr::stats {

ComplexityMeasures feature_complexity(std::span<const double> x, std::span<const int> y) {
  if (x.size() != y.size()) throw std::invalid_argument("feature_complexity: length mismatch");

  // Per-class running stats.
  double sum[2] = {0, 0}, sum2[2] = {0, 0};
  double mn[2] = {std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
  double mx[2] = {-std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  std::size_t cnt[2] = {0, 0};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int c = y[i] != 0 ? 1 : 0;
    sum[c] += x[i];
    sum2[c] += x[i] * x[i];
    mn[c] = std::min(mn[c], x[i]);
    mx[c] = std::max(mx[c], x[i]);
    ++cnt[c];
  }
  ComplexityMeasures out;
  if (cnt[0] == 0 || cnt[1] == 0) {
    out.fisher_ratio = 0.0;
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }

  const double mean0 = sum[0] / static_cast<double>(cnt[0]);
  const double mean1 = sum[1] / static_cast<double>(cnt[1]);
  const double var0 = std::max(0.0, sum2[0] / static_cast<double>(cnt[0]) - mean0 * mean0);
  const double var1 = std::max(0.0, sum2[1] / static_cast<double>(cnt[1]) - mean1 * mean1);
  const double diff = mean0 - mean1;
  const double denom = var0 + var1;
  if (denom <= 0.0) {
    // Both classes constant: infinitely easy when the constants differ,
    // impossible when equal. Represent "infinitely easy" with a huge
    // finite ratio so downstream reciprocals stay finite.
    out.fisher_ratio = diff != 0.0 ? 1e12 : 0.0;
  } else {
    out.fisher_ratio = diff * diff / denom;
  }

  // Overlap region across the two class ranges.
  const double lo = std::max(mn[0], mn[1]);
  const double hi = std::min(mx[0], mx[1]);
  const double total_lo = std::min(mn[0], mn[1]);
  const double total_hi = std::max(mx[0], mx[1]);
  const double total_range = total_hi - total_lo;
  if (total_range <= 0.0) {
    // All values identical: complete overlap, nothing separable.
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }
  const double overlap = std::max(0.0, hi - lo);
  out.overlap_volume = overlap / total_range;

  // F3: fraction of points outside [lo, hi] (strictly outside when the
  // overlap is non-degenerate; a degenerate single-point overlap still
  // excludes points not equal to it).
  std::size_t outside = 0;
  if (hi < lo) {
    outside = x.size();  // disjoint class ranges: everything separable
  } else {
    for (double v : x) outside += (v < lo || v > hi) ? 1 : 0;
  }
  out.feature_efficiency = static_cast<double>(outside) / static_cast<double>(x.size());
  return out;
}

std::vector<double> ensemble_complexity(std::span<const std::vector<double>> columns,
                                        std::span<const int> y,
                                        std::size_t num_threads) {
  const std::size_t nf = columns.size();
  std::vector<double> inv_f1(nf), f2(nf), inv_f3(nf);
  constexpr double kEps = 1e-12;
  auto scan_one = [&](std::size_t i) {
    const auto cm = feature_complexity(columns[i], y);
    inv_f1[i] = 1.0 / (cm.fisher_ratio + kEps);
    f2[i] = cm.overlap_volume;
    inv_f3[i] = 1.0 / (cm.feature_efficiency + kEps);
  };
  if (num_threads > 1 && nf > 1) {
    util::ThreadPool pool(std::min(num_threads, nf));
    pool.parallel_for(nf, scan_one);
  } else {
    for (std::size_t i = 0; i < nf; ++i) scan_one(i);
  }
  auto minmax_normalize = [](std::vector<double>& v) {
    if (v.empty()) return;
    const auto [mn_it, mx_it] = std::minmax_element(v.begin(), v.end());
    const double mn = *mn_it, mx = *mx_it;
    if (mx - mn <= 0.0) {
      std::fill(v.begin(), v.end(), 0.0);
      return;
    }
    for (double& x : v) x = (x - mn) / (mx - mn);
  };
  minmax_normalize(inv_f1);
  minmax_normalize(f2);
  minmax_normalize(inv_f3);

  std::vector<double> out(nf);
  for (std::size_t i = 0; i < nf; ++i) out[i] = (inv_f1[i] + f2[i] + inv_f3[i]) / 3.0;
  return out;
}

}  // namespace wefr::stats
