#include "stats/complexity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.h"

namespace wefr::stats {

ComplexityMeasures feature_complexity(std::span<const double> x, std::span<const int> y) {
  if (x.size() != y.size()) throw std::invalid_argument("feature_complexity: length mismatch");

  // Per-class running stats.
  double sum[2] = {0, 0}, sum2[2] = {0, 0};
  double mn[2] = {std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
  double mx[2] = {-std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  std::size_t cnt[2] = {0, 0};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int c = y[i] != 0 ? 1 : 0;
    sum[c] += x[i];
    sum2[c] += x[i] * x[i];
    mn[c] = std::min(mn[c], x[i]);
    mx[c] = std::max(mx[c], x[i]);
    ++cnt[c];
  }
  ComplexityMeasures out;
  if (cnt[0] == 0 || cnt[1] == 0) {
    out.fisher_ratio = 0.0;
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }

  const double mean0 = sum[0] / static_cast<double>(cnt[0]);
  const double mean1 = sum[1] / static_cast<double>(cnt[1]);
  const double var0 = std::max(0.0, sum2[0] / static_cast<double>(cnt[0]) - mean0 * mean0);
  const double var1 = std::max(0.0, sum2[1] / static_cast<double>(cnt[1]) - mean1 * mean1);
  const double diff = mean0 - mean1;
  const double denom = var0 + var1;
  if (denom <= 0.0) {
    // Both classes constant: infinitely easy when the constants differ,
    // impossible when equal. Represent "infinitely easy" with a huge
    // finite ratio so downstream reciprocals stay finite.
    out.fisher_ratio = diff != 0.0 ? 1e12 : 0.0;
  } else {
    out.fisher_ratio = diff * diff / denom;
  }

  // Overlap region across the two class ranges.
  const double lo = std::max(mn[0], mn[1]);
  const double hi = std::min(mx[0], mx[1]);
  const double total_lo = std::min(mn[0], mn[1]);
  const double total_hi = std::max(mx[0], mx[1]);
  const double total_range = total_hi - total_lo;
  if (total_range <= 0.0) {
    // All values identical: complete overlap, nothing separable.
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }
  const double overlap = std::max(0.0, hi - lo);
  out.overlap_volume = overlap / total_range;

  // F3: fraction of points outside [lo, hi] (strictly outside when the
  // overlap is non-degenerate; a degenerate single-point overlap still
  // excludes points not equal to it).
  std::size_t outside = 0;
  if (hi < lo) {
    outside = x.size();  // disjoint class ranges: everything separable
  } else {
    for (double v : x) outside += (v < lo || v > hi) ? 1 : 0;
  }
  out.feature_efficiency = static_cast<double>(outside) / static_cast<double>(x.size());
  return out;
}

std::vector<double> blend_complexity_measures(
    std::span<const ComplexityMeasures> per_feature) {
  const std::size_t nf = per_feature.size();
  std::vector<double> inv_f1(nf), f2(nf), inv_f3(nf);
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < nf; ++i) {
    inv_f1[i] = 1.0 / (per_feature[i].fisher_ratio + kEps);
    f2[i] = per_feature[i].overlap_volume;
    inv_f3[i] = 1.0 / (per_feature[i].feature_efficiency + kEps);
  }
  auto minmax_normalize = [](std::vector<double>& v) {
    if (v.empty()) return;
    const auto [mn_it, mx_it] = std::minmax_element(v.begin(), v.end());
    const double mn = *mn_it, mx = *mx_it;
    if (mx - mn <= 0.0) {
      std::fill(v.begin(), v.end(), 0.0);
      return;
    }
    for (double& x : v) x = (x - mn) / (mx - mn);
  };
  minmax_normalize(inv_f1);
  minmax_normalize(f2);
  minmax_normalize(inv_f3);

  std::vector<double> out(nf);
  for (std::size_t i = 0; i < nf; ++i) out[i] = (inv_f1[i] + f2[i] + inv_f3[i]) / 3.0;
  return out;
}

std::vector<double> ensemble_complexity(std::span<const std::vector<double>> columns,
                                        std::span<const int> y,
                                        std::size_t num_threads) {
  const std::size_t nf = columns.size();
  std::vector<ComplexityMeasures> measures(nf);
  auto scan_one = [&](std::size_t i) { measures[i] = feature_complexity(columns[i], y); };
  if (num_threads > 1 && nf > 1) {
    util::ThreadPool pool(std::min(num_threads, nf));
    pool.parallel_for(nf, scan_one);
  } else {
    for (std::size_t i = 0; i < nf; ++i) scan_one(i);
  }
  return blend_complexity_measures(measures);
}

ComplexitySketch::ComplexitySketch(std::vector<double> bin_uppers)
    : bin_uppers_(std::move(bin_uppers)) {
  if (bin_uppers_.size() > 256)
    throw std::invalid_argument("ComplexitySketch: more than 256 bins");
  for (std::size_t b = 1; b < bin_uppers_.size(); ++b)
    if (!(bin_uppers_[b - 1] < bin_uppers_[b]))
      throw std::invalid_argument("ComplexitySketch: bin_uppers not ascending");
  if (!bin_uppers_.empty()) {
    cls_[0].hist.assign(bin_uppers_.size(), 0);
    cls_[1].hist.assign(bin_uppers_.size(), 0);
  }
}

void ComplexitySketch::add(double v, int label) {
  ClassSketch& c = cls_[label != 0 ? 1 : 0];
  ++c.count;
  c.sum.add(v);
  c.sum2.add(v * v);
  // min/max mirror feature_complexity's std::min/std::max: NaN never
  // replaces a finite bound (and never seeds one — comparisons against
  // the infinities are false too).
  c.min = std::min(c.min, v);
  c.max = std::max(c.max, v);
  if (!c.hist.empty() && !std::isnan(v)) {
    const auto it = std::lower_bound(bin_uppers_.begin(), bin_uppers_.end(), v);
    const std::size_t b = it == bin_uppers_.end()
                              ? bin_uppers_.size() - 1
                              : static_cast<std::size_t>(it - bin_uppers_.begin());
    ++c.hist[b];
  }
}

void ComplexitySketch::merge(const ComplexitySketch& other) {
  if (other.bin_uppers_ != bin_uppers_)
    throw std::invalid_argument("ComplexitySketch::merge: codec mismatch");
  for (int cl = 0; cl < 2; ++cl) {
    ClassSketch& a = cls_[cl];
    const ClassSketch& b = other.cls_[cl];
    a.count += b.count;
    a.sum.merge(b.sum);
    a.sum2.merge(b.sum2);
    a.min = std::min(a.min, b.min);
    a.max = std::max(a.max, b.max);
    for (std::size_t i = 0; i < a.hist.size(); ++i) a.hist[i] += b.hist[i];
  }
}

ComplexityMeasures ComplexitySketch::finalize() const {
  ComplexityMeasures out;
  const std::uint64_t cnt0 = cls_[0].count, cnt1 = cls_[1].count;
  if (cnt0 == 0 || cnt1 == 0) {
    out.fisher_ratio = 0.0;
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }
  // Same expression structure as feature_complexity, fed by the
  // exactly-merged sums: shard count cannot change a single bit here.
  const double sum0 = cls_[0].sum.finalize(), sum1 = cls_[1].sum.finalize();
  const double sum2_0 = cls_[0].sum2.finalize(), sum2_1 = cls_[1].sum2.finalize();
  const double mean0 = sum0 / static_cast<double>(cnt0);
  const double mean1 = sum1 / static_cast<double>(cnt1);
  const double var0 = std::max(0.0, sum2_0 / static_cast<double>(cnt0) - mean0 * mean0);
  const double var1 = std::max(0.0, sum2_1 / static_cast<double>(cnt1) - mean1 * mean1);
  const double diff = mean0 - mean1;
  const double denom = var0 + var1;
  if (denom <= 0.0) {
    out.fisher_ratio = diff != 0.0 ? 1e12 : 0.0;
  } else {
    out.fisher_ratio = diff * diff / denom;
  }

  const double lo = std::max(cls_[0].min, cls_[1].min);
  const double hi = std::min(cls_[0].max, cls_[1].max);
  const double total_lo = std::min(cls_[0].min, cls_[1].min);
  const double total_hi = std::max(cls_[0].max, cls_[1].max);
  const double total_range = total_hi - total_lo;
  if (total_range <= 0.0) {
    out.overlap_volume = 1.0;
    out.feature_efficiency = 0.0;
    return out;
  }
  const double overlap = std::max(0.0, hi - lo);
  out.overlap_volume = overlap / total_range;

  const std::uint64_t n = cnt0 + cnt1;
  std::uint64_t outside = 0;
  if (hi < lo) {
    outside = n;  // disjoint class ranges: everything separable
  } else if (!bin_uppers_.empty()) {
    // Count bins strictly outside [lo, hi]. lo/hi are data values, so
    // with one bin per distinct value this reproduces the exact
    // point count; coarser codecs undercount by at most the boundary
    // bins' population — deterministically, since the codec is fixed
    // across shards.
    const auto bin_of = [&](double v) {
      const auto it = std::lower_bound(bin_uppers_.begin(), bin_uppers_.end(), v);
      return it == bin_uppers_.end() ? bin_uppers_.size() - 1
                                     : static_cast<std::size_t>(it - bin_uppers_.begin());
    };
    const std::size_t blo = bin_of(lo), bhi = bin_of(hi);
    for (int cl = 0; cl < 2; ++cl) {
      for (std::size_t b = 0; b < blo; ++b) outside += cls_[cl].hist[b];
      for (std::size_t b = bhi + 1; b < cls_[cl].hist.size(); ++b)
        outside += cls_[cl].hist[b];
    }
  }
  // No codec and overlapping ranges: no way to count points in the
  // overlap — report 0 outside (maximally conservative), documented.
  out.feature_efficiency = static_cast<double>(outside) / static_cast<double>(n);
  return out;
}

}  // namespace wefr::stats
