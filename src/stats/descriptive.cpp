#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wefr::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {
double central_moment2(std::span<const double> xs, double denom_offset) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / (static_cast<double>(xs.size()) - denom_offset);
}
}  // namespace

double variance(std::span<const double> xs) { return central_moment2(xs, 0.0); }
double sample_variance(std::span<const double> xs) { return central_moment2(xs, 1.0); }
double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }
double sample_stddev(std::span<const double> xs) { return std::sqrt(sample_variance(xs)); }

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> zscores(std::span<const double> xs) {
  std::vector<double> out(xs.size(), 0.0);
  const double sd = sample_stddev(xs);
  if (sd <= 0.0) return out;
  const double m = mean(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / sd;
  return out;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace wefr::stats
