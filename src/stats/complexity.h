#pragma once

#include <span>
#include <vector>

namespace wefr::stats {

/// Single-feature data-complexity measures (Ho & Basu 2002), computed
/// for a binary classification target. These drive WEFR's automated
/// feature-count selection (Section IV-C).
struct ComplexityMeasures {
  /// F1 — Fisher's discriminant ratio (mu0 - mu1)^2 / (var0 + var1).
  /// Larger = easier (classes further apart relative to spread).
  double fisher_ratio = 0.0;
  /// F2 — volume of the per-class range overlap, normalized by the
  /// total range, in [0, 1]. Smaller = easier.
  double overlap_volume = 0.0;
  /// F3 — maximum (individual) feature efficiency: fraction of samples
  /// lying outside the class-overlap region, in [0, 1]. Larger = easier.
  double feature_efficiency = 0.0;
};

/// Computes F1/F2/F3 for one feature column `x` against labels `y`
/// (0/1). Throws on length mismatch; returns the "maximally complex"
/// values (F1=0, F2=1, F3=0) when either class is absent.
ComplexityMeasures feature_complexity(std::span<const double> x, std::span<const int> y);

/// Ensemble complexity per feature, following Seijo-Pardo et al.:
/// combine 1/F1, F2 and 1/F3 (all oriented so that larger = harder) and
/// reduce to a single score. The reciprocal terms are unbounded, so each
/// of the three components is min-max normalized to [0, 1] across the
/// given features before averaging; the result is a per-feature
/// complexity in [0, 1] directly comparable to the scan fraction `xi`
/// used in the automated threshold.
///
/// `columns[i]` is the i-th feature's values (all the same length as `y`).
///
/// `num_threads > 1` fans the per-feature F1/F2/F3 computation over a
/// util::ThreadPool; each feature writes its own slot, so the result is
/// identical for any thread count.
std::vector<double> ensemble_complexity(std::span<const std::vector<double>> columns,
                                        std::span<const int> y,
                                        std::size_t num_threads = 0);

}  // namespace wefr::stats
