#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/exact_sum.h"

namespace wefr::stats {

/// Single-feature data-complexity measures (Ho & Basu 2002), computed
/// for a binary classification target. These drive WEFR's automated
/// feature-count selection (Section IV-C).
struct ComplexityMeasures {
  /// F1 — Fisher's discriminant ratio (mu0 - mu1)^2 / (var0 + var1).
  /// Larger = easier (classes further apart relative to spread).
  double fisher_ratio = 0.0;
  /// F2 — volume of the per-class range overlap, normalized by the
  /// total range, in [0, 1]. Smaller = easier.
  double overlap_volume = 0.0;
  /// F3 — maximum (individual) feature efficiency: fraction of samples
  /// lying outside the class-overlap region, in [0, 1]. Larger = easier.
  double feature_efficiency = 0.0;
};

/// Computes F1/F2/F3 for one feature column `x` against labels `y`
/// (0/1). Throws on length mismatch; returns the "maximally complex"
/// values (F1=0, F2=1, F3=0) when either class is absent.
ComplexityMeasures feature_complexity(std::span<const double> x, std::span<const int> y);

/// Ensemble complexity per feature, following Seijo-Pardo et al.:
/// combine 1/F1, F2 and 1/F3 (all oriented so that larger = harder) and
/// reduce to a single score. The reciprocal terms are unbounded, so each
/// of the three components is min-max normalized to [0, 1] across the
/// given features before averaging; the result is a per-feature
/// complexity in [0, 1] directly comparable to the scan fraction `xi`
/// used in the automated threshold.
///
/// `columns[i]` is the i-th feature's values (all the same length as `y`).
///
/// `num_threads > 1` fans the per-feature F1/F2/F3 computation over a
/// util::ThreadPool; each feature writes its own slot, so the result is
/// identical for any thread count.
std::vector<double> ensemble_complexity(std::span<const std::vector<double>> columns,
                                        std::span<const int> y,
                                        std::size_t num_threads = 0);

/// The normalize-and-blend half of ensemble_complexity: min-max
/// normalize 1/F1, F2 and 1/F3 across features and average. Shared by
/// ensemble_complexity and the sketch-based sharded path, so measures
/// finalized from merged shard partials blend through the identical
/// arithmetic.
std::vector<double> blend_complexity_measures(std::span<const ComplexityMeasures> per_feature);

/// Mergeable shard-partial form of feature_complexity for one feature:
/// per-class integer counts, exact min/max, moment sums held in
/// util::ExactSum fixed-point accumulators (exactly associative — no
/// FP reassociation across shards), and an optional <= 256-bin value
/// histogram over caller-fixed ascending bin upper bounds (the PR 1
/// quantized-codec shape: one bin per distinct value on coarse
/// features; harvest QuantizedDataset::bin_upper to build one).
///
/// merge() is bucket/limb-wise integer addition, so finalize() after
/// any shard partitioning is bit-identical to finalize() over a single
/// pass — the property the shard tests pin down. Relative to the exact
/// feature_complexity: F2 is bit-identical (pure min/max); F1 agrees
/// to the accumulator's deterministic final rounding (~1 ulp); F3 is
/// exact when the codec has one bin per distinct value, bin-resolution
/// bounded otherwise, and degrades to the disjoint-range rule when no
/// codec was provided.
class ComplexitySketch {
 public:
  ComplexitySketch() = default;
  /// `bin_uppers`: ascending bin upper bounds (value v lands in the
  /// first bin with v <= bin_uppers[b]; values above the last bound
  /// land in the last bin). At most 256 bins.
  explicit ComplexitySketch(std::vector<double> bin_uppers);

  void add(double v, int label);
  /// Throws std::invalid_argument when the codecs disagree.
  void merge(const ComplexitySketch& other);
  ComplexityMeasures finalize() const;

  std::uint64_t count(int cls) const { return cls_[cls != 0 ? 1 : 0].count; }
  bool has_codec() const { return !bin_uppers_.empty(); }

  /// Serialization access.
  const std::vector<double>& bin_uppers() const { return bin_uppers_; }
  struct ClassSketch {
    std::uint64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    util::ExactSum sum;
    util::ExactSum sum2;
    std::vector<std::uint64_t> hist;  ///< per bin, empty without a codec
  };
  const ClassSketch& class_sketch(int cls) const { return cls_[cls != 0 ? 1 : 0]; }
  ClassSketch& mutable_class_sketch(int cls) { return cls_[cls != 0 ? 1 : 0]; }

 private:
  std::vector<double> bin_uppers_;
  ClassSketch cls_[2];
};

}  // namespace wefr::stats
