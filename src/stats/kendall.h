#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wefr::stats {

/// Kendall-tau rank distance between two rankings, as used by WEFR's
/// outlier pruning (Section IV-B): the number of discordant pairs, i.e.
/// pairs of distinct features (i, j) whose relative order differs
/// between ranking A and ranking B. Rankings are "rank position per
/// feature" vectors (smaller = more important); fractional tied ranks
/// are allowed, and a pair tied in either ranking counts as concordant
/// (theta = 0), matching the paper's definition of "same order". A pair
/// involving a NaN rank is never discordant (NaN comparisons are false),
/// matching the naive reference.
///
/// O(n log n): sort by (rank_a, rank_b), then count the strict
/// inversions of the rank_b sequence with a merge sort — rankings over
/// window-expanded feature sets reach thousands of entries, and the
/// ensemble computes one distance per ranker pair per wear group.
std::size_t kendall_tau_distance(std::span<const double> rank_a,
                                 std::span<const double> rank_b);

/// The original O(n^2) pair-scan reference, retained as the equivalence
/// oracle for the merge-sort path (tests/test_perf_kernels, and the
/// ranking section of bench_hotpath).
std::size_t kendall_tau_distance_naive(std::span<const double> rank_a,
                                       std::span<const double> rank_b);

/// As `kendall_tau_distance`, but reusing a precomputed ascending
/// argsort of `rank_a` (ties in any relative order) — the sort cache the
/// ensemble shares across a ranker's pairwise distances, so each ranking
/// is argsorted exactly once. Both rankings must be NaN-free (ensemble
/// rankings are: they come from sanitized scores).
std::size_t kendall_tau_distance_presorted(std::span<const double> rank_a,
                                           std::span<const double> rank_b,
                                           std::span<const std::size_t> order_a);

/// Normalized distance in [0, 1]: distance / C(n, 2). Returns 0 for
/// rankings with fewer than two items.
double kendall_tau_distance_normalized(std::span<const double> rank_a,
                                       std::span<const double> rank_b);

}  // namespace wefr::stats
