#pragma once

#include <span>

namespace wefr::stats {

/// Kendall-tau rank distance between two rankings, as used by WEFR's
/// outlier pruning (Section IV-B): the number of discordant pairs, i.e.
/// pairs of distinct features (i, j) whose relative order differs
/// between ranking A and ranking B. Rankings are "rank position per
/// feature" vectors (smaller = more important); fractional tied ranks
/// are allowed, and a pair tied in either ranking counts as concordant
/// (theta = 0), matching the paper's definition of "same order".
///
/// O(n^2); rankings here have tens of features, so this is plenty.
std::size_t kendall_tau_distance(std::span<const double> rank_a,
                                 std::span<const double> rank_b);

/// Normalized distance in [0, 1]: distance / C(n, 2). Returns 0 for
/// rankings with fewer than two items.
double kendall_tau_distance_normalized(std::span<const double> rank_a,
                                       std::span<const double> rank_b);

}  // namespace wefr::stats
