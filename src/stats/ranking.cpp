#include "stats/ranking.h"

#include <algorithm>
#include <numeric>

namespace wefr::stats {

std::vector<std::size_t> argsort_ascending(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<std::size_t> argsort_descending(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  return idx;
}

std::vector<double> fractional_ranks(std::span<const double> xs) {
  return fractional_ranks_from_order(xs, argsort_ascending(xs));
}

std::vector<double> fractional_ranks_from_order(std::span<const double> xs,
                                                std::span<const std::size_t> order) {
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) share the averaged 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> ranking_from_scores(std::span<const double> scores) {
  // Rank 1 = highest score: fractional ranks of the negated scores.
  std::vector<double> neg(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) neg[i] = -scores[i];
  return fractional_ranks(neg);
}

std::vector<std::size_t> order_by_score(std::span<const double> scores) {
  return argsort_descending(scores);
}

}  // namespace wefr::stats
