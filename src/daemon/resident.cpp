#include "daemon/resident.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "data/serialize.h"

namespace wefr::daemon {

namespace {
constexpr std::size_t kStatsPerWindow = 6;  // max, min, mean, std, range, wma
// Per-column scalar accumulators: prefix folds s/s2/sw, the growing-
// phase running extrema rmx/rmn, and the fused level-2 head fold
// rmx2/rmn2 (only touched when the level plan skips level 1).
constexpr std::size_t kScalarsPerCol = 7;
constexpr std::uint32_t kSnapshotPayloadVersion = 1;

}  // namespace

/// Per-drive streaming state. `rings` is one flat buffer indexed
/// [col][field][day & mask]: field 0 = raw x, 1..3 = prefix sums after
/// the day (prefix[d+1] at slot d), then lvmax_k / lvmin_k pairs for
/// k = 1..kmax. Ring capacity covers the deepest lookback any fold or
/// steady-state read performs (max window + 2), so state for the
/// current day is always fully resident.
struct ResidentFleet::DriveState {
  bool streaming = true;
  std::vector<double> scalars;  ///< kScalarsPerCol per column
  std::vector<double> rings;
  data::Matrix tail;
  int tail_first = 0;
};

ResidentFleet::~ResidentFleet() = default;
ResidentFleet::ResidentFleet(ResidentFleet&&) noexcept = default;
ResidentFleet& ResidentFleet::operator=(ResidentFleet&&) noexcept = default;

ResidentFleet::ResidentFleet(data::WindowFeatureConfig windows)
    : windows_(std::move(windows)) {
  std::size_t wmax = 1;
  for (int w : windows_.windows) {
    if (w < 1) throw std::invalid_argument("ResidentFleet: window must be >= 1");
    wmax = std::max(wmax, static_cast<std::size_t>(w));
    const auto wu = static_cast<std::size_t>(w);
    // Level plan from the config alone: the batch kernel additionally
    // requires w < days, but a level it thereby omits is never read by
    // a window that has not reached steady state, so the plans agree on
    // every element consumed (see the class comment).
    if (wu >= 2) {
      const auto k = static_cast<std::size_t>(std::bit_width(wu)) - 1;
      kmax_ = std::max(kmax_, k);
      need_level1_ = need_level1_ || k == 1;
    }
  }
  factor_ = 1 + kStatsPerWindow * windows_.windows.size();
  ring_ = std::bit_ceil(std::max<std::size_t>(8, wmax + 2));
}

void ResidentFleet::set_schema(std::string model_name,
                               std::vector<std::string> feature_names) {
  if (feature_names.empty())
    throw std::invalid_argument("ResidentFleet::set_schema: no features");
  if (has_schema()) {
    if (fleet_.model_name != model_name || fleet_.feature_names != feature_names)
      throw std::invalid_argument("ResidentFleet::set_schema: schema already set");
    return;
  }
  fleet_.model_name = std::move(model_name);
  fleet_.feature_names = std::move(feature_names);
}

std::size_t ResidentFleet::find_drive(const std::string& drive_id) const {
  const auto it = id_index_.find(drive_id);
  return it == id_index_.end() ? npos : it->second;
}

bool ResidentFleet::streaming(std::size_t drive_index) const {
  return states_.at(drive_index).streaming;
}

const data::Matrix& ResidentFleet::feature_tail(std::size_t drive_index) const {
  return states_.at(drive_index).tail;
}

int ResidentFleet::tail_first_day(std::size_t drive_index) const {
  return states_.at(drive_index).tail_first;
}

void ResidentFleet::drop_feature_tail(std::size_t drive_index) {
  states_.at(drive_index).tail = data::Matrix();
}

AppendResult ResidentFleet::append_day(const std::string& drive_id, int day,
                                       std::span<const double> values, int fail_day) {
  if (!has_schema()) throw std::logic_error("ResidentFleet::append_day: schema unset");
  if (values.size() != fleet_.feature_names.size())
    throw std::invalid_argument("ResidentFleet::append_day: row width mismatch");
  if (day < 0) throw std::invalid_argument("ResidentFleet::append_day: negative day");

  AppendResult res;
  auto it = id_index_.find(drive_id);
  if (it == id_index_.end()) {
    res.drive_index = fleet_.drives.size();
    res.new_drive = true;
    id_index_.emplace(drive_id, res.drive_index);
    data::DriveSeries drive;
    drive.drive_id = drive_id;
    drive.first_day = day;
    fleet_.drives.push_back(std::move(drive));
    DriveState st;
    st.scalars.assign(fleet_.feature_names.size() * kScalarsPerCol, 0.0);
    for (std::size_t c = 0; c < fleet_.feature_names.size(); ++c) {
      double* sc = st.scalars.data() + c * kScalarsPerCol;
      sc[3] = sc[5] = -INFINITY;  // rmx, rmx2
      sc[4] = sc[6] = INFINITY;   // rmn, rmn2
    }
    st.rings.assign(fleet_.feature_names.size() * (4 + 2 * kmax_) * ring_, 0.0);
    states_.push_back(std::move(st));
  } else {
    res.drive_index = it->second;
    const auto& drive = fleet_.drives[res.drive_index];
    if (day != drive.last_day() + 1)
      throw std::invalid_argument("ResidentFleet::append_day: non-contiguous day for " +
                                  drive_id);
  }

  data::DriveSeries& drive = fleet_.drives[res.drive_index];
  DriveState& st = states_[res.drive_index];
  if (fail_day >= 0) {
    if (drive.fail_day >= 0 && drive.fail_day != fail_day)
      throw std::invalid_argument("ResidentFleet::append_day: conflicting fail_day for " +
                                  drive_id);
    drive.fail_day = fail_day;
  }
  drive.values.push_row(values);
  fleet_.num_days = std::max(fleet_.num_days, day + 1);

  if (st.streaming) {
    bool finite = true;
    for (double v : values) finite = finite && std::isfinite(v);
    if (!finite) {
      // The batch kernel decides streaming-vs-naive per column over the
      // WHOLE column, so this value retroactively rewrites the drive's
      // earlier feature rows. Permanently hand the drive to the batch
      // oracle; the streaming state is dead weight from here on.
      st.streaming = false;
      res.went_nonfinite = true;
      st.tail = data::Matrix();
      st.scalars.clear();
      st.scalars.shrink_to_fit();
      st.rings.clear();
      st.rings.shrink_to_fit();
      return res;
    }
    const std::size_t local = drive.num_days() - 1;
    if (st.tail.rows() == 0) st.tail_first = day;
    std::vector<double> row(fleet_.feature_names.size() * factor_);
    append_streaming_row(st, drive, values, local, row);
    st.tail.push_row(row);
  }
  return res;
}

void ResidentFleet::append_streaming_row(DriveState& st, const data::DriveSeries& drive,
                                         std::span<const double> values,
                                         std::size_t local_day, std::span<double> out_row) {
  (void)drive;
  const std::size_t ncols = fleet_.feature_names.size();
  const std::size_t nfields = 4 + 2 * kmax_;
  const std::size_t mask = ring_ - 1;
  const std::size_t j = local_day;

  for (std::size_t c = 0; c < ncols; ++c) {
    const double x = values[c];
    double* sc = st.scalars.data() + c * kScalarsPerCol;
    double* base = st.rings.data() + c * nfields * ring_;
    double* raw = base;
    double* pr = base + ring_;       // prefix[d+1] at slot d
    double* pr2 = base + 2 * ring_;  // prefix2[d+1] at slot d
    double* prw = base + 3 * ring_;  // wprefix[d+1] at slot d
    const auto lvmax = [&](std::size_t k) { return base + (4 + 2 * (k - 1)) * ring_; };
    const auto lvmin = [&](std::size_t k) { return base + (5 + 2 * (k - 1)) * ring_; };

    // Prefix folds, verbatim the batch kernel's left-to-right order.
    sc[0] += x;
    sc[1] += x * x;
    sc[2] += static_cast<double>(j + 1) * x;
    raw[j & mask] = x;
    pr[j & mask] = sc[0];
    pr2[j & mask] = sc[1];
    prw[j & mask] = sc[2];
    // Growing-phase running extrema over [0, j].
    sc[3] = std::max(sc[3], x);
    sc[4] = std::min(sc[4], x);

    // Sparse-table levels for this day's element, same build plan as
    // build_sparse_levels: either level 1 upward, or (when no window
    // needs level 1) level 2 straight from the input with the fused
    // 4-way extremum, then upward.
    if (kmax_ > 0) {
      std::size_t k_first = 1;
      if (!need_level1_ && kmax_ >= 2) {
        if (j < 3) {
          sc[5] = std::max(sc[5], x);
          sc[6] = std::min(sc[6], x);
          lvmax(2)[j & mask] = sc[5];
          lvmin(2)[j & mask] = sc[6];
        } else {
          lvmax(2)[j & mask] = std::max(std::max(raw[j & mask], raw[(j - 1) & mask]),
                                        std::max(raw[(j - 2) & mask], raw[(j - 3) & mask]));
          lvmin(2)[j & mask] = std::min(std::min(raw[j & mask], raw[(j - 1) & mask]),
                                        std::min(raw[(j - 2) & mask], raw[(j - 3) & mask]));
        }
        k_first = 3;
      }
      for (std::size_t k = k_first; k <= kmax_; ++k) {
        const std::size_t h = std::size_t{1} << (k - 1);
        const double* smx = k == 1 ? raw : lvmax(k - 1);
        const double* smn = k == 1 ? raw : lvmin(k - 1);
        if (j < h) {
          lvmax(k)[j & mask] = smx[j & mask];
          lvmin(k)[j & mask] = smn[j & mask];
        } else {
          lvmax(k)[j & mask] = std::max(smx[j & mask], smx[(j - h) & mask]);
          lvmin(k)[j & mask] = std::min(smn[j & mask], smn[(j - h) & mask]);
        }
      }
    }

    // Assemble the expanded row: identity, then per window the batch
    // kernel's growing / steady expressions, operation for operation.
    double* out = out_row.data() + c * factor_;
    std::size_t o = 0;
    out[o++] = x;
    for (int w_signed : windows_.windows) {
      const auto w = static_cast<std::size_t>(w_signed);
      if (w == 1) {
        out[o++] = x;    // max
        out[o++] = x;    // min
        out[o++] = x;    // mean
        out[o++] = 0.0;  // std
        out[o++] = 0.0;  // range
        out[o++] = x;    // wma
        continue;
      }
      if (j < w) {
        const double n = static_cast<double>(j + 1);
        const double mean = sc[0] / n;
        const double var = std::max(0.0, sc[1] / n - mean * mean);
        out[o++] = sc[3];
        out[o++] = sc[4];
        out[o++] = mean;
        out[o++] = std::sqrt(var);
        out[o++] = sc[3] - sc[4];
        out[o++] = sc[2] / (n * (n + 1) * 0.5);
        continue;
      }
      const std::size_t k = static_cast<std::size_t>(std::bit_width(w)) - 1;
      const std::size_t shift = w - (std::size_t{1} << k);
      const double* hi = lvmax(k);
      const double* lo = lvmin(k);
      const double mx = std::max(hi[j & mask], hi[(j - shift) & mask]);
      const double mn = std::min(lo[j & mask], lo[(j - shift) & mask]);
      const double wd = static_cast<double>(w);
      const double inv_w = 1.0 / wd;
      const double inv_den = 2.0 / (wd * (wd + 1.0));
      const std::size_t s = j - w + 1;  // window is [s, j]; s >= 1 here
      const double prefix_s = pr[(s - 1) & mask];
      const double sum = sc[0] - prefix_s;
      const double mean = sum * inv_w;
      const double var = (sc[1] - pr2[(s - 1) & mask]) * inv_w - mean * mean;
      out[o++] = mx;
      out[o++] = mn;
      out[o++] = mean;
      out[o++] = std::sqrt(std::max(0.0, var));
      out[o++] = mx - mn;
      out[o++] = ((sc[2] - prw[(s - 1) & mask]) - static_cast<double>(s) * sum) * inv_den;
    }
  }
}

std::string ResidentFleet::save_snapshot() const {
  data::ByteWriter w;
  w.scalar(kSnapshotPayloadVersion);
  w.str(fleet_.model_name);
  w.scalar(static_cast<std::uint32_t>(windows_.windows.size()));
  for (int win : windows_.windows) w.scalar(static_cast<std::int32_t>(win));
  w.scalar(static_cast<std::uint32_t>(fleet_.feature_names.size()));
  for (const auto& name : fleet_.feature_names) w.str(name);
  w.scalar(static_cast<std::int32_t>(fleet_.num_days));
  w.scalar(static_cast<std::uint64_t>(fleet_.drives.size()));
  for (const auto& drive : fleet_.drives) {
    w.str(drive.drive_id);
    w.scalar(static_cast<std::int32_t>(drive.first_day));
    w.scalar(static_cast<std::int32_t>(drive.fail_day));
    w.scalar(static_cast<std::uint64_t>(drive.num_days()));
    const auto raw = drive.values.raw();
    w.bytes(raw.data(), raw.size() * sizeof(double));
  }
  return std::move(w.buf());
}

bool ResidentFleet::load_snapshot(std::string_view payload, std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (has_schema() || !fleet_.drives.empty())
    return fail("load into a non-empty ResidentFleet");

  data::ByteReader r(payload);
  std::uint32_t version = 0;
  if (!r.scalar(version)) return fail("truncated snapshot payload");
  if (version != kSnapshotPayloadVersion) return fail("snapshot payload version mismatch");
  std::string model_name;
  if (!r.str(model_name)) return fail("truncated snapshot payload");
  std::uint32_t nwin = 0;
  if (!r.scalar(nwin) || nwin > 64) return fail("truncated snapshot payload");
  std::vector<int> wins(nwin);
  for (auto& win : wins) {
    std::int32_t v = 0;
    if (!r.scalar(v)) return fail("truncated snapshot payload");
    win = v;
  }
  if (wins != windows_.windows) return fail("window config mismatch");
  std::uint32_t nfeat = 0;
  if (!r.scalar(nfeat) || nfeat > (1u << 16)) return fail("truncated snapshot payload");
  std::vector<std::string> names(nfeat);
  for (auto& name : names) {
    if (!r.str(name)) return fail("truncated snapshot payload");
  }
  std::int32_t num_days = 0;
  std::uint64_t ndrives = 0;
  if (!r.scalar(num_days) || !r.scalar(ndrives)) return fail("truncated snapshot payload");

  // nfeat == 0 is the pre-schema empty state (a daemon that stopped
  // before its first hello saves one); drives cannot exist without a
  // schema, so any drive payload after it is damage, not data.
  if (nfeat == 0 && ndrives != 0) return fail("snapshot has drives but no schema");
  if (nfeat > 0) set_schema(std::move(model_name), std::move(names));
  for (std::uint64_t i = 0; i < ndrives; ++i) {
    std::string id;
    std::int32_t first_day = 0, fail_day = -1;
    std::uint64_t ndays = 0;
    if (!r.str(id) || !r.scalar(first_day) || !r.scalar(fail_day) || !r.scalar(ndays))
      return fail("truncated snapshot payload");
    const std::size_t n = static_cast<std::size_t>(ndays) * nfeat;
    const char* block = r.raw(n * sizeof(double));
    if (block == nullptr) return fail("truncated snapshot payload");
    // Replay the appends through the same fold code: the rebuilt
    // streaming state (and any non-streaming downgrade) is exactly what
    // the original process held.
    std::vector<double> row(nfeat);
    for (std::uint64_t d = 0; d < ndays; ++d) {
      std::memcpy(row.data(), block + d * nfeat * sizeof(double), nfeat * sizeof(double));
      append_day(id, first_day + static_cast<int>(d), row, fail_day);
    }
    if (i < states_.size()) drop_feature_tail(i);
  }
  if (r.remaining() != 0) return fail("trailing bytes in snapshot payload");
  fleet_.num_days = std::max(fleet_.num_days, static_cast<int>(num_days));
  return true;
}

}  // namespace wefr::daemon
