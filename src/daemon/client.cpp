#include "daemon/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "data/cache.h"

namespace wefr::daemon {

Client::Client(Options options) : opt_(std::move(options)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  recv_buf_.clear();
}

void Client::drop_connection_for_test() { close(); }

bool Client::dial(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (opt_.socket_path.empty()) return fail("no socket path to dial");
  sockaddr_un addr{};
  if (opt_.socket_path.size() >= sizeof(addr.sun_path))
    return fail("socket path too long: " + opt_.socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return fail("connect " + opt_.socket_path + ": " + std::strerror(errno));
  }
  close();
  fd_ = fd;
  return true;
}

bool Client::send_all(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recv_frame(std::uint32_t& seq, std::string& payload, std::string* why) {
  for (;;) {
    std::size_t total = 0;
    const auto peek = data::peek_daemon_frame(recv_buf_, total, why);
    if (peek == data::DaemonFramePeek::kBad) return false;
    if (peek == data::DaemonFramePeek::kFrame && recv_buf_.size() >= total) {
      const bool ok =
          data::decode_daemon_frame(std::string_view(recv_buf_).substr(0, total),
                                    data::DaemonFrameKind::kResponse, seq, payload, why);
      recv_buf_.erase(0, total);
      return ok;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      if (why != nullptr) *why = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (why != nullptr) *why = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    recv_buf_.append(buf, static_cast<std::size_t>(n));
  }
}

bool Client::transact(const Msg& req, Msg& reply, std::string* why) {
  if (fd_ < 0) {
    if (why != nullptr) *why = "not connected";
    return false;
  }
  const std::uint32_t seq = next_seq_++;
  if (!send_all(data::encode_daemon_frame(data::DaemonFrameKind::kRequest, seq,
                                          encode_message(req)))) {
    if (why != nullptr) *why = std::string("send: ") + std::strerror(errno);
    return false;
  }
  std::uint32_t reply_seq = 0;
  std::string payload;
  if (!recv_frame(reply_seq, payload, why)) return false;
  if (reply_seq != seq) {
    if (why != nullptr) *why = "sequence number mismatch in reply";
    return false;
  }
  return decode_message(payload, reply, why);
}

bool Client::handshake(std::string* error) {
  Msg hello;
  hello.type = MsgType::kHello;
  hello.client_name = opt_.client_name;
  hello.model_name = opt_.model_name;
  hello.feature_names = opt_.feature_names;
  Msg reply;
  std::string why;
  if (!transact(hello, reply, &why)) {
    close();
    if (error != nullptr) *error = "hello failed: " + why;
    return false;
  }
  if (reply.type == MsgType::kError) {
    close();
    if (error != nullptr) *error = "hello refused: " + reply.text;
    return false;
  }
  if (reply.type != MsgType::kHelloOk) {
    close();
    if (error != nullptr) *error = "unexpected hello reply";
    return false;
  }
  hello_reply_ = std::move(reply);
  return true;
}

bool Client::connect(std::string* error) {
  return dial(error) && handshake(error);
}

bool Client::adopt_fd(int fd, std::string* error) {
  close();
  fd_ = fd;
  return handshake(error);
}

bool Client::call(const Msg& req, Msg& reply, std::string* error) {
  std::string why;
  for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Transport died mid-request. Redial + re-hello, then resend —
      // the engine is resident server-side, so nothing is lost; a
      // request the server DID apply before the cut comes back as an
      // application error (e.g. non-contiguous day), not a retry loop.
      if (opt_.socket_path.empty()) break;
      std::string rerr;
      if (!dial(&rerr) || !handshake(&rerr)) {
        why += "; reconnect failed: " + rerr;
        break;
      }
      ++reconnects_;
    }
    if (fd_ < 0 && !opt_.socket_path.empty()) {
      std::string rerr;
      if (!dial(&rerr) || !handshake(&rerr)) {
        why = "reconnect failed: " + rerr;
        continue;
      }
      ++reconnects_;
    }
    if (transact(req, reply, &why)) return true;
    close();
  }
  if (error != nullptr) *error = why;
  return false;
}

bool Client::append_day(const std::string& drive_id, int day,
                        const std::vector<double>& values, int fail_day, Msg& reply,
                        std::string* error) {
  Msg req;
  req.type = MsgType::kAppendDay;
  req.drive_id = drive_id;
  req.day = day;
  req.fail_day = fail_day;
  req.values = values;
  return call(req, reply, error);
}

bool Client::score_drive(const std::string& drive_id, Msg& reply, std::string* error) {
  Msg req;
  req.type = MsgType::kScoreDrive;
  req.drive_id = drive_id;
  return call(req, reply, error);
}

bool Client::report(Msg& reply, std::string* error) {
  Msg req;
  req.type = MsgType::kReport;
  return call(req, reply, error);
}

bool Client::save_snapshot(Msg& reply, std::string* error) {
  Msg req;
  req.type = MsgType::kSaveSnapshot;
  return call(req, reply, error);
}

bool Client::shutdown_server(Msg& reply, std::string* error) {
  Msg req;
  req.type = MsgType::kShutdown;
  return call(req, reply, error);
}

}  // namespace wefr::daemon
