#include "daemon/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "data/cache.h"
#include "obs/log.h"

namespace wefr::daemon {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(Engine& engine, ServerOptions options, obs::Logger* log)
    : engine_(engine), opt_(std::move(options)), log_(log) {}

Server::~Server() {
  for (auto& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
  }
}

bool Server::listen_unix(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (opt_.socket_path.empty()) return fail("no socket path configured");
  sockaddr_un addr{};
  if (opt_.socket_path.size() >= sizeof(addr.sun_path))
    return fail("socket path too long: " + opt_.socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(opt_.socket_path.c_str());  // stale socket from a crashed run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return fail("bind " + opt_.socket_path + ": " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return fail("cannot set listen socket non-blocking");
  }
  listen_fd_ = fd;
  if (log_ != nullptr) log_->infof("daemon", "listening on %s", opt_.socket_path.c_str());
  return true;
}

int Server::connect_loopback() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return -1;
  if (!set_nonblocking(fds[0])) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  Conn conn;
  conn.fd = fds[0];
  conns_.push_back(std::move(conn));
  ++connections_accepted_;
  return fds[1];  // stays blocking: the client side does blocking I/O
}

void Server::close_conn(Conn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.inbuf.clear();
  conn.outbuf.clear();
}

void Server::enqueue_reply(Conn& conn, std::uint32_t seq, const Msg& reply) {
  conn.outbuf +=
      data::encode_daemon_frame(data::DaemonFrameKind::kResponse, seq,
                                encode_message(reply));
}

Msg Server::dispatch(Conn& conn, const Msg& req) {
  Msg reply;
  if (!conn.hello_done && req.type != MsgType::kHello)
    return make_error("hello required before any other request");
  switch (req.type) {
    case MsgType::kHello: {
      try {
        if (!engine_.resident().has_schema()) {
          engine_.resident().set_schema(req.model_name, req.feature_names);
        } else if (engine_.fleet().model_name != req.model_name ||
                   engine_.fleet().feature_names != req.feature_names) {
          return make_error("schema mismatch: server holds model '" +
                            engine_.fleet().model_name + "'");
        }
      } catch (const std::exception& e) {
        return make_error(e.what());
      }
      conn.hello_done = true;
      reply.type = MsgType::kHelloOk;
      reply.server_name = opt_.server_name;
      reply.model_name = engine_.fleet().model_name;
      reply.feature_names = engine_.fleet().feature_names;
      reply.num_drives = engine_.resident().num_drives();
      reply.max_day = engine_.resident().max_day();
      if (log_ != nullptr)
        log_->debugf("daemon", "hello from '%s'", req.client_name.c_str());
      return reply;
    }
    case MsgType::kAppendDay: {
      try {
        const AppendResult res =
            engine_.append_day(req.drive_id, req.day, req.values, req.fail_day);
        reply.type = MsgType::kAppendOk;
        reply.drive_index = res.drive_index;
        reply.new_drive = res.new_drive;
        reply.went_nonfinite = res.went_nonfinite;
      } catch (const std::exception& e) {
        return make_error(e.what());
      }
      return reply;
    }
    case MsgType::kScoreDrive: {
      if (!engine_.has_predictor())
        return make_error("no predictor yet: still in warmup, or no check has trained");
      const RescoreStats stats = engine_.rescore();
      reply.type = MsgType::kScoreOk;
      reply.days_scored = stats.rows_scored;
      reply.drives_rescored = stats.drives_rescored;
      int day = -1;
      double score = 0.0;
      reply.found = engine_.latest_score(req.drive_id, day, score);
      reply.score_day = day;
      reply.score = score;
      return reply;
    }
    case MsgType::kReport:
      reply.type = MsgType::kReportOk;
      reply.text = engine_.report_json();
      return reply;
    case MsgType::kSaveSnapshot: {
      if (opt_.snapshot_path.empty()) return make_error("no snapshot path configured");
      std::string err;
      if (!data::write_daemon_snapshot(opt_.snapshot_path, engine_.save_snapshot(), &err))
        return make_error(err);
      reply.type = MsgType::kSaveOk;
      reply.text = opt_.snapshot_path;
      return reply;
    }
    case MsgType::kShutdown:
      reply.type = MsgType::kShutdownOk;
      request_stop();
      conn.close_after_flush = true;
      return reply;
    default:
      return make_error(std::string("unexpected message type: ") + to_string(req.type));
  }
}

void Server::handle_frame(Conn& conn, std::uint32_t seq, const std::string& payload) {
  Msg req;
  std::string why;
  if (!decode_message(payload, req, &why)) {
    ++frames_rejected_;
    enqueue_reply(conn, seq, make_error("malformed message: " + why));
    conn.close_after_flush = true;
    return;
  }
  ++frames_ok_;
  enqueue_reply(conn, seq, dispatch(conn, req));
}

void Server::drain_inbuf(Conn& conn) {
  std::size_t pos = 0;
  while (conn.fd >= 0) {
    const std::string_view rest(conn.inbuf.data() + pos, conn.inbuf.size() - pos);
    std::size_t total = 0;
    std::string why;
    const auto peek = data::peek_daemon_frame(rest, total, &why);
    if (peek == data::DaemonFramePeek::kNeedMore) break;
    if (peek == data::DaemonFramePeek::kBad) {
      // Not a frame stream: refuse, best-effort error (seq unknowable),
      // and disconnect — damage is never resynced past.
      ++frames_rejected_;
      if (log_ != nullptr) log_->infof("daemon", "rejecting connection: %s", why.c_str());
      enqueue_reply(conn, 0, make_error("bad frame: " + why));
      conn.close_after_flush = true;
      break;
    }
    if (rest.size() < total) break;  // frame body still in flight
    std::uint32_t seq = 0;
    std::string payload;
    if (!data::decode_daemon_frame(rest.substr(0, total), data::DaemonFrameKind::kRequest,
                                   seq, payload, &why)) {
      ++frames_rejected_;
      if (log_ != nullptr) log_->infof("daemon", "rejecting frame: %s", why.c_str());
      enqueue_reply(conn, 0, make_error("bad frame: " + why));
      conn.close_after_flush = true;
      break;
    }
    pos += total;
    handle_frame(conn, seq, payload);
  }
  if (pos > 0) conn.inbuf.erase(0, pos);
}

bool Server::flush_outbuf(Conn& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  return true;
}

bool Server::run_once(int timeout_ms) {
  // Stopped and drained: report done.
  if (stopping()) {
    bool pending = false;
    for (const auto& conn : conns_) pending = pending || (conn.fd >= 0 && !conn.outbuf.empty());
    if (!pending) {
      for (auto& conn : conns_) close_conn(conn);
      conns_.clear();
      return false;
    }
  }

  std::vector<pollfd> fds;
  if (listen_fd_ >= 0 && !stopping())
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  const std::size_t conn_base = fds.size();
  for (const auto& conn : conns_) {
    if (conn.fd < 0) continue;
    short events = POLLIN;
    if (!conn.outbuf.empty()) events |= POLLOUT;
    fds.push_back(pollfd{conn.fd, events, 0});
  }
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) return !stopping();
  if (rc <= 0) return true;

  if (conn_base == 1 && (fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) break;
      if (!set_nonblocking(cfd)) {
        ::close(cfd);
        continue;
      }
      Conn conn;
      conn.fd = cfd;
      conns_.push_back(std::move(conn));
      ++connections_accepted_;
    }
  }

  std::size_t poll_i = conn_base;
  for (auto& conn : conns_) {
    if (conn.fd < 0) continue;
    // Map this connection back to its pollfd (same construction order).
    while (poll_i < fds.size() && fds[poll_i].fd != conn.fd) ++poll_i;
    if (poll_i >= fds.size()) break;
    const short rev = fds[poll_i].revents;
    ++poll_i;
    if ((rev & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[65536];
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.inbuf.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // EOF or hard error: process what arrived, then close.
        drain_inbuf(conn);
        flush_outbuf(conn);
        close_conn(conn);
        break;
      }
      if (conn.fd >= 0) drain_inbuf(conn);
    }
    if (conn.fd >= 0 && !conn.outbuf.empty() && !flush_outbuf(conn)) close_conn(conn);
    if (conn.fd >= 0 && conn.close_after_flush && conn.outbuf.empty()) close_conn(conn);
  }
  std::erase_if(conns_, [](const Conn& conn) { return conn.fd < 0; });
  return true;
}

void Server::run() {
  while (run_once(100)) {
  }
}

}  // namespace wefr::daemon
