#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wefr::daemon {

/// Message vocabulary of the wefrd client protocol. Every message
/// travels as the payload of one WEFRDM01 frame (data::encode_daemon_
/// frame): the frame carries transport integrity (magic, protocol
/// version, digest, sequence number); the payload carries a u32 type
/// tag followed by the type's fields. Replies reuse the request's
/// sequence number, so a client can pair them across a reconnect gap.
enum class MsgType : std::uint32_t {
  kHello = 1,        ///< client -> server: name + fleet schema
  kHelloOk = 2,      ///< schema accepted (or echoed, when already set)
  kAppendDay = 3,    ///< one drive-day of raw features
  kAppendOk = 4,
  kScoreDrive = 5,   ///< rescore dirty set, return the drive's latest score
  kScoreOk = 6,
  kReport = 7,       ///< engine status snapshot
  kReportOk = 8,     ///< JSON report text
  kSaveSnapshot = 9, ///< persist a WEFRDS01 warm-restart blob
  kSaveOk = 10,
  kShutdown = 11,    ///< stop the event loop after replying
  kShutdownOk = 12,
  kError = 100,      ///< application-level refusal (text carries why)
};

const char* to_string(MsgType t);

/// One protocol message, request or reply. A flat struct rather than a
/// variant: each type reads/writes only its own fields, and the single
/// shape keeps the client call surface and the server dispatch simple.
struct Msg {
  MsgType type = MsgType::kError;

  // kHello / kHelloOk
  std::string client_name;  ///< hello: who is connecting
  std::string model_name;   ///< hello: fleet schema; hello-ok: echoed
  std::vector<std::string> feature_names;
  std::string server_name;       ///< hello-ok
  std::uint64_t num_drives = 0;  ///< hello-ok
  std::int32_t max_day = -1;     ///< hello-ok

  // kAppendDay / kAppendOk
  std::string drive_id;       ///< also kScoreDrive
  std::int32_t day = 0;
  std::int32_t fail_day = -1;
  std::vector<double> values;
  std::uint64_t drive_index = 0;
  bool new_drive = false;
  bool went_nonfinite = false;

  // kScoreOk
  bool found = false;
  std::int32_t score_day = -1;  ///< day of `score` (the drive's last day)
  double score = 0.0;
  std::uint64_t days_scored = 0;       ///< rows freshly scored by this rescore
  std::uint64_t drives_rescored = 0;

  // kReportOk / kSaveOk / kError
  std::string text;  ///< JSON report, snapshot path, or error message
};

/// Serializes `m` (type tag + fields) into a frame payload.
std::string encode_message(const Msg& m);

/// Parses a frame payload. False (reason in `why`) on truncation, an
/// unknown type tag, or field bounds violations.
bool decode_message(std::string_view payload, Msg& m, std::string* why = nullptr);

/// Convenience: an error reply carrying `message`.
Msg make_error(std::string message);

}  // namespace wefr::daemon
