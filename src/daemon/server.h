#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "daemon/engine.h"
#include "daemon/protocol.h"

namespace wefr::obs {
class Logger;
}

namespace wefr::daemon {

struct ServerOptions {
  /// Unix-domain socket path; empty = loopback-only (connect_loopback).
  std::string socket_path;
  /// Where kSaveSnapshot writes the WEFRDS01 blob; empty refuses saves.
  std::string snapshot_path;
  std::string server_name = "wefrd";
};

/// Single-threaded event loop serving the wefrd protocol over
/// non-blocking Unix-domain stream sockets.
///
/// Framing discipline: every inbound byte stream is parsed with
/// data::peek_daemon_frame / decode_daemon_frame. A client whose stream
/// is not a valid frame sequence — bad magic, foreign protocol version,
/// payload size lie, digest mismatch — gets one error reply (when the
/// sequence number is recoverable) and is disconnected; damage is never
/// "resynced" past. Crash-safe clients simply reconnect and re-hello:
/// the engine state is resident in this process, so a reconnect loses
/// nothing (appends are idempotent at the protocol level only in the
/// sense that a duplicate contiguity violation is refused with an
/// error, not applied twice).
///
/// The loop is intentionally single-threaded: the engine's scoring
/// fan-out already parallelizes inside rescore(), and one thread owning
/// all state keeps the protocol layer free of synchronization (TSan
/// runs it under the loopback transport, see connect_loopback).
class Server {
 public:
  Server(Engine& engine, ServerOptions options, obs::Logger* log = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on options.socket_path (unlinking a stale
  /// socket). False with `error` on failure.
  bool listen_unix(std::string* error = nullptr);

  /// Creates an in-process socketpair, registers the server end as a
  /// connection, and returns the client end's fd (caller owns it; hand
  /// it to Client::adopt_fd). The sanitizer transport: identical event
  /// loop, no filesystem socket. Returns -1 on failure.
  int connect_loopback();

  /// One poll iteration: accepts, reads, dispatches, writes. Returns
  /// false once stopped and all connections have drained or closed.
  bool run_once(int timeout_ms = 100);

  /// Runs until request_stop() (or a shutdown message) stops the loop.
  void run();

  /// Async-signal-safe stop request.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  std::uint64_t connections_accepted() const { return connections_accepted_; }
  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t frames_rejected() const { return frames_rejected_; }

 private:
  struct Conn {
    int fd = -1;
    bool hello_done = false;
    bool close_after_flush = false;
    std::string inbuf;
    std::string outbuf;
  };

  void handle_frame(Conn& conn, std::uint32_t seq, const std::string& payload);
  Msg dispatch(Conn& conn, const Msg& req);
  void enqueue_reply(Conn& conn, std::uint32_t seq, const Msg& reply);
  void drain_inbuf(Conn& conn);
  bool flush_outbuf(Conn& conn);  ///< false when the connection died
  void close_conn(Conn& conn);

  Engine& engine_;
  ServerOptions opt_;
  obs::Logger* log_ = nullptr;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  std::atomic<bool> stop_{false};
  std::uint64_t connections_accepted_ = 0;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_rejected_ = 0;
};

}  // namespace wefr::daemon
