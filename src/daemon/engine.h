#pragma once

#include <optional>
#include <string>
#include <vector>

#include "changepoint/online_cpd.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "core/wefr.h"
#include "daemon/resident.h"

namespace wefr::obs {
struct Context;
class Logger;
}

namespace wefr::daemon {

/// Controls for the resident scoring engine.
struct EngineOptions {
  core::ExperimentConfig experiment;
  core::WefrOptions wefr;
  /// Run the paper's periodic re-check (feature re-selection + retrain)
  /// in-process as days stream in. Off = the engine only scores with
  /// whatever predictor set_predictor installed (the deterministic mode
  /// the bit-identity tests and bench use).
  bool auto_check = true;
  int check_interval_days = 7;
  /// Days of history required before the first check may train.
  int warmup_days = 120;
  bool retrain_every_check = true;
  /// Online drift watch over the day-over-day delta of the fleet's mean
  /// MWI_N; a detection pulls the next check forward (FleetMonitor's
  /// semantics, fed incrementally as days complete).
  bool online_drift_check = false;
  double drift_probability_threshold = 0.6;
  int drift_cooldown_days = 14;
  changepoint::CpdOptions drift_cpd;
  /// After every rescore, also run the from-scratch batch oracle and
  /// compare bit-for-bit (expensive; for tests and the bench gate).
  bool oracle_check = false;
};

/// What one rescore() pass did.
struct RescoreStats {
  std::size_t drives_rescored = 0;    ///< dirty drives touched
  std::size_t drives_incremental = 0; ///< scored from resident tails
  std::size_t drives_full = 0;        ///< scored through the batch oracle
  std::size_t rows_scored = 0;        ///< drive-days freshly scored
  bool oracle_checked = false;
  bool oracle_match = true;
};

/// One scheduled (or drift-pulled) re-check.
struct CheckEvent {
  int day = 0;
  bool trained = false;
  bool features_changed = false;
  bool drift_triggered = false;
  std::optional<double> wear_threshold;
  std::vector<std::string> selected_all;
};

/// The daemon's core: a ResidentFleet plus a dirty-set incremental
/// scorer and the paper's weekly re-check as an in-process job.
///
/// Scoring contract: after any rescore(), scores() is bit-identical to
/// core::score_fleet(fleet(), predictor, 0, max_day) on the same data —
/// regardless of how appends were ordered across drives, where the
/// stream was cut by reconnects, or the configured thread count. Days
/// already scored under the current predictor are never re-scored; only
/// drives whose windows changed (the dirty set) run inference, through
/// the resident feature tails when the drive is streaming and through
/// the batch oracle (score_fleet on the drive subset) when it is not.
/// Installing a new predictor dirties every drive.
class Engine {
 public:
  Engine(EngineOptions options, data::WindowFeatureConfig windows = {},
         const obs::Context* obs = nullptr, obs::Logger* log = nullptr);

  /// Appends one drive-day. When the day watermark advances, completed
  /// days are first fed to the drift watch and any due re-check runs on
  /// data strictly before `day` (FleetMonitor's no-lookahead contract).
  AppendResult append_day(const std::string& drive_id, int day,
                          std::span<const double> values, int fail_day = -1);

  /// Scores every dirty drive's unscored days. No-op without a
  /// predictor. Returns what was done.
  RescoreStats rescore();

  /// All scores under the current predictor, in score_fleet's output
  /// shape and order (ascending drive index). Call rescore() first for
  /// a fully up-to-date view.
  std::vector<core::DriveDayScores> scores() const;

  /// Latest scored day for one drive; false when the drive is unknown
  /// or has no scores yet.
  bool latest_score(const std::string& drive_id, int& day, double& score) const;

  /// Installs a predictor and dirties every drive. Clears all scores.
  void set_predictor(core::WefrPredictor predictor);
  bool has_predictor() const { return predictor_.has_value(); }
  const core::WefrPredictor* predictor() const {
    return predictor_.has_value() ? &*predictor_ : nullptr;
  }

  ResidentFleet& resident() { return resident_; }
  const ResidentFleet& resident() const { return resident_; }
  const data::FleetData& fleet() const { return resident_.fleet(); }

  std::size_t dirty_count() const;
  int next_check_day() const { return next_check_day_; }
  const std::vector<CheckEvent>& checks() const { return checks_; }
  const std::vector<core::DriftDetection>& drift_detections() const {
    return drift_detections_;
  }
  const RescoreStats& last_rescore() const { return last_rescore_; }

  /// Engine + resident state snapshot payload (WEFRDS01 contents).
  std::string save_snapshot() const { return resident_.save_snapshot(); }
  /// Restores a snapshot; every drive starts dirty (the predictor is
  /// not persisted — the first check or set_predictor installs one).
  bool load_snapshot(std::string_view payload, std::string* why = nullptr);

  /// Compact JSON status report (daemon snapshot-report request).
  std::string report_json() const;

 private:
  struct ScoreState {
    int scored_until = -1;  ///< fleet-global last scored day, -1 = none
    bool full_dirty = false;
    int first_day = 0;
    std::vector<double> scores;
  };

  void observe_completed_days(int up_to_day);
  void run_check(int day);
  void mark_all_dirty();
  double active_mean_mwi(int day) const;
  void score_drive_incremental(std::size_t di, ScoreState& ss, std::size_t& rows);

  EngineOptions opt_;
  ResidentFleet resident_;
  const obs::Context* obs_ = nullptr;
  obs::Logger* log_ = nullptr;

  std::optional<core::WefrResult> selection_;
  std::optional<core::WefrPredictor> predictor_;
  std::vector<ScoreState> score_states_;
  RescoreStats last_rescore_;

  int high_water_day_ = 0;  ///< days < this are complete (drift-observed)
  int next_check_day_ = 0;
  std::vector<CheckEvent> checks_;

  int mwi_col_ = -1;
  changepoint::OnlineChangePointDetector drift_cpd_;
  double last_mean_mwi_ = 0.0;
  bool have_last_mwi_ = false;
  int last_drift_day_ = -1;
  bool drift_pending_ = false;
  double drift_probability_ = 0.0;
  std::vector<core::DriftDetection> drift_detections_;
};

}  // namespace wefr::daemon
