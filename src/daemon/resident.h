#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/fleet.h"
#include "data/window_features.h"

namespace wefr::daemon {

/// Result of one ResidentFleet::append_day call.
struct AppendResult {
  std::size_t drive_index = 0;
  /// First observation for this drive id.
  bool new_drive = false;
  /// This append carried a non-finite value, flipping the drive out of
  /// streaming mode (see ResidentFleet). Already-false when the drive
  /// was knocked out of streaming mode earlier.
  bool went_nonfinite = false;
};

/// The daemon's per-drive resident state: raw history plus the
/// streaming-kernel accumulators of data::expand_series (prefix sums of
/// x, x^2 and (t+1)x; trailing power-of-two extrema levels), so one
/// appended day yields that day's fully window-expanded feature row in
/// O(columns * windows) — no re-expansion of history.
///
/// Bit-identity contract: for a drive whose history is entirely finite,
/// the feature rows emitted at append time are bit-identical to the
/// rows data::expand_series produces from the full history, at every
/// history length. This holds because the batch kernel is causal and
/// element-wise — every expression for day d reads only days <= d — and
/// the per-day folds here are the same expressions in the same order.
/// The sparse-level plan (which extremum levels exist and whether level
/// 2 is built fused) is derived from the window config alone; the batch
/// derives it from (config, days), but the two plans agree on every
/// element a steady-state window ever reads, so the outputs match.
///
/// Non-finite values: the batch kernel classifies finiteness over the
/// whole column, so the first NaN/inf appended to a drive retroactively
/// changes the semantics of that column's earlier rows (they become the
/// naive-kernel outputs). Patching that incrementally is not possible,
/// so the drive permanently leaves streaming mode (`streaming(di)`
/// false): its pending rows are discarded and the engine scores it
/// through the batch oracle instead. Rare in practice (recover-mode
/// ingestion holes), and exactness is preserved either way.
///
/// Feature rows accumulate in a per-drive tail matrix covering the days
/// appended since the last drop_feature_tail() — the scorer consumes
/// the tail and drops it, bounding resident memory to raw history plus
/// a few pending rows per drive.
class ResidentFleet {
 public:
  explicit ResidentFleet(data::WindowFeatureConfig windows = {});
  ~ResidentFleet();
  ResidentFleet(ResidentFleet&&) noexcept;
  ResidentFleet& operator=(ResidentFleet&&) noexcept;

  /// Declares the fleet schema. Must be called before the first append;
  /// re-calling with a different schema throws.
  void set_schema(std::string model_name, std::vector<std::string> feature_names);
  bool has_schema() const { return !fleet_.feature_names.empty(); }

  /// Appends one observed day for `drive_id`. A new id may start at any
  /// day; an existing drive's `day` must be exactly last_day() + 1
  /// (contiguous series, matching ingest's forward-filled output).
  /// `fail_day` >= 0 records the drive's trouble ticket; conflicting
  /// re-declarations throw. `values` must match the schema width.
  AppendResult append_day(const std::string& drive_id, int day,
                          std::span<const double> values, int fail_day = -1);

  /// Raw resident fleet (the batch oracle's input). `num_days` tracks
  /// the highest appended day + 1.
  const data::FleetData& fleet() const { return fleet_; }

  std::size_t num_drives() const { return fleet_.drives.size(); }
  /// Highest appended day, or -1 before any append.
  int max_day() const { return fleet_.num_days - 1; }
  /// Drive index for an id, or npos.
  std::size_t find_drive(const std::string& drive_id) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// False once the drive has seen a non-finite value (batch-oracle
  /// scoring only from then on).
  bool streaming(std::size_t drive_index) const;

  /// Window-expanded rows for the days appended since the tail was last
  /// dropped (empty for non-streaming drives). Row 0 is fleet-global
  /// day tail_first_day(). Column layout matches data::expand_series
  /// over ALL base columns: col b expands to [b*factor, (b+1)*factor).
  const data::Matrix& feature_tail(std::size_t drive_index) const;
  int tail_first_day(std::size_t drive_index) const;
  void drop_feature_tail(std::size_t drive_index);

  const data::WindowFeatureConfig& windows() const { return windows_; }
  std::size_t expansion_factor() const { return factor_; }

  /// Serializes schema, window config and every drive's raw history
  /// (streaming state is rebuilt on load by replaying the same folds).
  /// The payload is meant to travel inside a WEFRDS01 record
  /// (data::write_daemon_snapshot).
  std::string save_snapshot() const;

  /// Restores a save_snapshot() payload into this (empty) instance.
  /// Returns false with `why` on damage or a window-config mismatch.
  /// Feature tails are empty after a load; the engine full-rescores.
  bool load_snapshot(std::string_view payload, std::string* why = nullptr);

 private:
  struct DriveState;

  void append_streaming_row(DriveState& st, const data::DriveSeries& drive,
                            std::span<const double> values, std::size_t local_day,
                            std::span<double> out_row);

  data::WindowFeatureConfig windows_;
  std::size_t factor_ = 0;
  // Sparse-level plan, derived from the window config alone (see class
  // comment for why this agrees with the batch per-length plan).
  std::size_t kmax_ = 0;
  bool need_level1_ = false;
  std::size_t ring_ = 0;  ///< ring capacity (power of two)

  data::FleetData fleet_;
  std::vector<DriveState> states_;
  std::unordered_map<std::string, std::size_t> id_index_;
};

}  // namespace wefr::daemon
