#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.h"

namespace wefr::daemon {

/// Blocking wefrd protocol client with crash-safe reconnect.
///
/// Every request is one WEFRDM01 frame carrying a fresh sequence
/// number; the reply frame must echo it. On a transport failure (send/
/// recv error, EOF, or a frame that fails validation) the client —
/// when it was dialed over a socket path — reconnects, re-sends hello,
/// and retries the request once before giving up, so a daemon restart
/// between requests is invisible to callers. Application-level
/// refusals (kError replies) are returned as-is, never retried: the
/// server processed the request and said no.
///
/// A loopback client (adopt_fd) has no address to redial, so transport
/// failures are terminal for it.
class Client {
 public:
  struct Options {
    std::string socket_path;  ///< empty for adopt_fd-only use
    std::string client_name = "client";
    /// Fleet schema sent in hello (and re-hello after reconnect).
    std::string model_name;
    std::vector<std::string> feature_names;
    int max_retries = 1;  ///< transport-failure retries per request
  };

  explicit Client(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dials options.socket_path and performs the hello handshake.
  bool connect(std::string* error = nullptr);

  /// Adopts an already-connected fd (Server::connect_loopback) and
  /// performs the hello handshake. The client owns the fd afterwards.
  bool adopt_fd(int fd, std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Simulates a mid-stream client crash for tests: drops the fd
  /// without a goodbye, so the next request exercises the reconnect
  /// path.
  void drop_connection_for_test();

  /// Sends `req`, waits for the matching reply. False with `error` only
  /// on unrecoverable transport failure; a kError reply returns true
  /// with the refusal in `reply`.
  bool call(const Msg& req, Msg& reply, std::string* error = nullptr);

  // Typed conveniences over call().
  bool append_day(const std::string& drive_id, int day, const std::vector<double>& values,
                  int fail_day, Msg& reply, std::string* error = nullptr);
  bool score_drive(const std::string& drive_id, Msg& reply, std::string* error = nullptr);
  bool report(Msg& reply, std::string* error = nullptr);
  bool save_snapshot(Msg& reply, std::string* error = nullptr);
  bool shutdown_server(Msg& reply, std::string* error = nullptr);

  /// hello-ok contents from the most recent handshake.
  const Msg& hello_reply() const { return hello_reply_; }
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  bool send_all(const std::string& bytes);
  bool recv_frame(std::uint32_t& seq, std::string& payload, std::string* why);
  bool handshake(std::string* error);
  bool dial(std::string* error);
  bool transact(const Msg& req, Msg& reply, std::string* why);

  Options opt_;
  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  Msg hello_reply_;
  std::string recv_buf_;
  std::uint64_t reconnects_ = 0;
};

}  // namespace wefr::daemon
