#include "daemon/protocol.h"

#include <cstring>

#include "data/serialize.h"

namespace wefr::daemon {

namespace {

constexpr std::uint32_t kMaxNames = 1u << 16;
constexpr std::uint32_t kMaxValues = 1u << 20;

void write_names(data::ByteWriter& w, const std::vector<std::string>& names) {
  w.scalar(static_cast<std::uint32_t>(names.size()));
  for (const auto& n : names) w.str(n);
}

bool read_names(data::ByteReader& r, std::vector<std::string>& names) {
  std::uint32_t n = 0;
  if (!r.scalar(n) || n > kMaxNames) return false;
  names.resize(n);
  for (auto& name : names) {
    if (!r.str(name)) return false;
  }
  return true;
}

void write_doubles(data::ByteWriter& w, const std::vector<double>& v) {
  w.scalar(static_cast<std::uint32_t>(v.size()));
  w.bytes(v.data(), v.size() * sizeof(double));
}

bool read_doubles(data::ByteReader& r, std::vector<double>& v) {
  std::uint32_t n = 0;
  if (!r.scalar(n) || n > kMaxValues) return false;
  const char* p = r.raw(static_cast<std::size_t>(n) * sizeof(double));
  if (p == nullptr) return false;
  v.resize(n);
  std::memcpy(v.data(), p, static_cast<std::size_t>(n) * sizeof(double));
  return true;
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloOk: return "hello-ok";
    case MsgType::kAppendDay: return "append-day";
    case MsgType::kAppendOk: return "append-ok";
    case MsgType::kScoreDrive: return "score-drive";
    case MsgType::kScoreOk: return "score-ok";
    case MsgType::kReport: return "report";
    case MsgType::kReportOk: return "report-ok";
    case MsgType::kSaveSnapshot: return "save-snapshot";
    case MsgType::kSaveOk: return "save-ok";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownOk: return "shutdown-ok";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

std::string encode_message(const Msg& m) {
  data::ByteWriter w;
  w.scalar(static_cast<std::uint32_t>(m.type));
  switch (m.type) {
    case MsgType::kHello:
      w.str(m.client_name);
      w.str(m.model_name);
      write_names(w, m.feature_names);
      break;
    case MsgType::kHelloOk:
      w.str(m.server_name);
      w.str(m.model_name);
      write_names(w, m.feature_names);
      w.scalar(m.num_drives);
      w.scalar(m.max_day);
      break;
    case MsgType::kAppendDay:
      w.str(m.drive_id);
      w.scalar(m.day);
      w.scalar(m.fail_day);
      write_doubles(w, m.values);
      break;
    case MsgType::kAppendOk:
      w.scalar(m.drive_index);
      w.scalar(static_cast<std::uint8_t>(m.new_drive ? 1 : 0));
      w.scalar(static_cast<std::uint8_t>(m.went_nonfinite ? 1 : 0));
      break;
    case MsgType::kScoreDrive:
      w.str(m.drive_id);
      break;
    case MsgType::kScoreOk:
      w.scalar(static_cast<std::uint8_t>(m.found ? 1 : 0));
      w.scalar(m.score_day);
      w.scalar(m.score);
      w.scalar(m.days_scored);
      w.scalar(m.drives_rescored);
      break;
    case MsgType::kReport:
    case MsgType::kSaveSnapshot:
    case MsgType::kShutdown:
    case MsgType::kShutdownOk:
      break;  // no fields
    case MsgType::kReportOk:
    case MsgType::kSaveOk:
    case MsgType::kError:
      w.str(m.text);
      break;
  }
  return std::move(w.buf());
}

bool decode_message(std::string_view payload, Msg& m, std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  data::ByteReader r(payload);
  std::uint32_t tag = 0;
  if (!r.scalar(tag)) return fail("truncated message");
  m = Msg{};
  m.type = static_cast<MsgType>(tag);
  bool ok = true;
  switch (m.type) {
    case MsgType::kHello:
      ok = r.str(m.client_name) && r.str(m.model_name) && read_names(r, m.feature_names);
      break;
    case MsgType::kHelloOk:
      ok = r.str(m.server_name) && r.str(m.model_name) &&
           read_names(r, m.feature_names) && r.scalar(m.num_drives) && r.scalar(m.max_day);
      break;
    case MsgType::kAppendDay:
      ok = r.str(m.drive_id) && r.scalar(m.day) && r.scalar(m.fail_day) &&
           read_doubles(r, m.values);
      break;
    case MsgType::kAppendOk: {
      std::uint8_t nd = 0, nf = 0;
      ok = r.scalar(m.drive_index) && r.scalar(nd) && r.scalar(nf);
      m.new_drive = nd != 0;
      m.went_nonfinite = nf != 0;
      break;
    }
    case MsgType::kScoreDrive:
      ok = r.str(m.drive_id);
      break;
    case MsgType::kScoreOk: {
      std::uint8_t found = 0;
      ok = r.scalar(found) && r.scalar(m.score_day) && r.scalar(m.score) &&
           r.scalar(m.days_scored) && r.scalar(m.drives_rescored);
      m.found = found != 0;
      break;
    }
    case MsgType::kReport:
    case MsgType::kSaveSnapshot:
    case MsgType::kShutdown:
    case MsgType::kShutdownOk:
      break;
    case MsgType::kReportOk:
    case MsgType::kSaveOk:
    case MsgType::kError:
      ok = r.str(m.text, 1u << 24);
      break;
    default:
      return fail("unknown message type");
  }
  if (!ok) return fail("truncated message");
  if (r.remaining() != 0) return fail("trailing bytes in message");
  return true;
}

Msg make_error(std::string message) {
  Msg m;
  m.type = MsgType::kError;
  m.text = std::move(message);
  return m;
}

}  // namespace wefr::daemon
