#include "daemon/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "obs/context.h"
#include "obs/json.h"
#include "obs/log.h"
#include "util/thread_pool.h"

namespace wefr::daemon {

Engine::Engine(EngineOptions options, data::WindowFeatureConfig windows,
               const obs::Context* obs, obs::Logger* log)
    : opt_(std::move(options)), resident_(std::move(windows)), obs_(obs), log_(log) {
  if (opt_.check_interval_days < 1)
    throw std::invalid_argument("Engine: check_interval_days < 1");
  if (opt_.warmup_days < 30) throw std::invalid_argument("Engine: warmup too short");
  if (opt_.drift_cooldown_days < 1)
    throw std::invalid_argument("Engine: drift_cooldown_days < 1");
  next_check_day_ = opt_.warmup_days;
  drift_cpd_ = changepoint::OnlineChangePointDetector(opt_.drift_cpd);
  // The engine's experiment windows must match the resident kernels, or
  // the batch oracle would expand different features than the tails.
  opt_.experiment.windows = resident_.windows();
}

double Engine::active_mean_mwi(int day) const {
  double sum = 0.0;
  std::size_t n = 0;
  const auto col = static_cast<std::size_t>(mwi_col_);
  for (const auto& drive : fleet().drives) {
    if (drive.first_day > day || drive.last_day() < day) continue;
    const double v = drive.values(static_cast<std::size_t>(day - drive.first_day), col);
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : std::nan("");
}

void Engine::observe_completed_days(int up_to_day) {
  if (!opt_.online_drift_check) {
    high_water_day_ = std::max(high_water_day_, up_to_day);
    return;
  }
  if (mwi_col_ < 0) mwi_col_ = fleet().feature_index("MWI_N");
  if (mwi_col_ < 0) {
    high_water_day_ = std::max(high_water_day_, up_to_day);
    return;
  }
  // Feed the delta of the active fleet's mean MWI_N through the online
  // detector for every newly completed day — FleetMonitor's drift watch,
  // driven by the append watermark instead of advance_to.
  int d = high_water_day_;
  for (; d < up_to_day; ++d) {
    const double m = active_mean_mwi(d);
    if (std::isnan(m)) continue;
    double prob = -1.0;
    if (have_last_mwi_) prob = drift_cpd_.observe(m - last_mean_mwi_);
    last_mean_mwi_ = m;
    have_last_mwi_ = true;
    const bool cooled =
        last_drift_day_ < 0 || d - last_drift_day_ >= opt_.drift_cooldown_days;
    const bool burned_in =
        drift_cpd_.time() > changepoint::OnlineChangePointDetector::kShortRunWindow + 4;
    if (prob >= opt_.drift_probability_threshold && cooled && burned_in) {
      last_drift_day_ = d;
      drift_detections_.push_back(core::DriftDetection{d, prob});
      drift_pending_ = true;
      drift_probability_ = prob;
      next_check_day_ = std::min(next_check_day_, d + 1);
      if (log_ != nullptr)
        log_->infof("daemon", "drift detected at day %d (p=%.3f); check pulled forward", d,
                    prob);
      obs::add_counter(obs_, "wefr_daemon_drift_detections_total");
      ++d;
      break;  // the pulled check runs before further observation
    }
  }
  high_water_day_ = std::max(high_water_day_, d);
}

void Engine::run_check(int day) {
  obs::Span span(obs_, "daemon:check");
  const int train_end = day - 1;
  CheckEvent ev;
  ev.day = day;
  ev.drift_triggered = drift_pending_;
  const auto samples = core::build_selection_samples(fleet(), 0, train_end, opt_.experiment);
  if (samples.num_positive() == 0) {
    checks_.push_back(ev);  // nothing to learn from yet
    return;
  }
  core::WefrResult sel = core::run_wefr(fleet(), samples, train_end, opt_.wefr);
  if (sel.change_point.has_value()) ev.wear_threshold = sel.change_point->mwi_threshold;
  ev.selected_all = sel.all.selected_names;
  ev.features_changed = !selection_.has_value() ||
                        selection_->all.selected != sel.all.selected ||
                        selection_->change_point.has_value() != sel.change_point.has_value();
  const bool need_retrain =
      opt_.retrain_every_check || ev.features_changed || !predictor_.has_value();
  selection_ = std::move(sel);
  if (need_retrain) {
    set_predictor(
        core::train_predictor(fleet(), *selection_, 0, train_end, opt_.experiment));
    ev.trained = true;
  }
  checks_.push_back(ev);
  obs::add_counter(obs_, "wefr_daemon_checks_total");
  if (log_ != nullptr)
    log_->infof("daemon", "check at day %d: %zu features%s%s", day,
                ev.selected_all.size(), ev.trained ? ", retrained" : "",
                ev.drift_triggered ? " (drift-triggered)" : "");
}

AppendResult Engine::append_day(const std::string& drive_id, int day,
                                std::span<const double> values, int fail_day) {
  if (day > high_water_day_) observe_completed_days(day);
  if (opt_.auto_check && resident_.has_schema() && day >= next_check_day_ &&
      day >= opt_.warmup_days) {
    run_check(day);
    next_check_day_ = day + opt_.check_interval_days;
    drift_pending_ = false;
    drift_probability_ = 0.0;
  }

  AppendResult res = resident_.append_day(drive_id, day, values, fail_day);
  if (res.new_drive) score_states_.emplace_back();
  if (res.went_nonfinite) {
    // The non-finite value retroactively rewrites this drive's feature
    // semantics (see ResidentFleet), so its existing scores are stale.
    ScoreState& ss = score_states_[res.drive_index];
    ss.full_dirty = true;
    ss.scored_until = -1;
    ss.scores.clear();
  }
  obs::add_counter(obs_, "wefr_daemon_appends_total");
  return res;
}

void Engine::set_predictor(core::WefrPredictor predictor) {
  predictor_ = std::move(predictor);
  mark_all_dirty();
}

void Engine::mark_all_dirty() {
  for (auto& ss : score_states_) {
    ss.scored_until = -1;
    ss.full_dirty = false;  // rescore re-derives the cheapest valid path
    ss.scores.clear();
  }
}

std::size_t Engine::dirty_count() const {
  std::size_t n = 0;
  for (std::size_t di = 0; di < score_states_.size(); ++di) {
    const auto& ss = score_states_[di];
    if (ss.full_dirty || ss.scored_until < fleet().drives[di].last_day()) ++n;
  }
  return n;
}

void Engine::score_drive_incremental(std::size_t di, ScoreState& ss, std::size_t& rows) {
  const data::DriveSeries& drive = fleet().drives[di];
  const data::Matrix& tail = resident_.feature_tail(di);
  const std::size_t n = tail.rows();
  const int tail_first = resident_.tail_first_day(di);
  const core::WefrPredictor& pred = *predictor_;
  const bool routed = pred.wear_threshold.has_value() && pred.mwi_col >= 0;
  const std::size_t factor = resident_.expansion_factor();

  if (ss.scores.empty()) ss.first_day = drive.first_day;
  const auto base = static_cast<std::size_t>(tail_first - ss.first_day);
  ss.scores.resize(base + n, 0.0);

  // Gather the tail rows listed in `tr` into the bundle's expanded
  // layout: expansion is per-column independent, so a subset expansion
  // is a column gather of the full one (bit-identical to what the
  // batch oracle's expand_for(bundle) produces for the same days).
  const auto gather = [&](const core::PredictorBundle& b,
                          const std::vector<std::size_t>& tr) {
    data::Matrix g = data::Matrix::uninitialized(tr.size(), b.base_cols.size() * factor);
    for (std::size_t i = 0; i < tr.size(); ++i) {
      const auto src = tail.row(tr[i]);
      const auto dst = g.row(i);
      for (std::size_t bi = 0; bi < b.base_cols.size(); ++bi) {
        const std::size_t from = b.base_cols[bi] * factor;
        for (std::size_t o = 0; o < factor; ++o) dst[bi * factor + o] = src[from + o];
      }
    }
    return g;
  };
  std::vector<double> batch;
  const auto score_bundle = [&](const core::PredictorBundle& b,
                                const std::vector<std::size_t>& tr) {
    if (tr.empty()) return;
    const data::Matrix g = gather(b, tr);
    std::vector<std::size_t> iota_rows(tr.size());
    std::iota(iota_rows.begin(), iota_rows.end(), std::size_t{0});
    batch.assign(tr.size(), 0.0);
    b.forest.predict_proba(g, iota_rows, batch);
    for (std::size_t i = 0; i < tr.size(); ++i) ss.scores[base + tr[i]] = batch[i];
  };

  if (!routed) {
    std::vector<std::size_t> all_rows(n);
    std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
    score_bundle(pred.all, all_rows);
  } else {
    // Per-day routing on the drive's MWI_N — score_fleet's rules: NaN
    // reroutes to the whole-model bundle, otherwise the wear threshold
    // picks the group bundle when it exists.
    std::vector<std::size_t> rows_all, rows_low, rows_high;
    for (std::size_t i = 0; i < n; ++i) {
      const auto local = static_cast<std::size_t>(tail_first + static_cast<int>(i) -
                                                  drive.first_day);
      const double mwi = drive.values(local, static_cast<std::size_t>(pred.mwi_col));
      if (std::isnan(mwi)) {
        rows_all.push_back(i);
        continue;
      }
      const bool is_low = mwi <= *pred.wear_threshold;
      if (is_low && pred.low.has_value()) {
        rows_low.push_back(i);
      } else if (!is_low && pred.high.has_value()) {
        rows_high.push_back(i);
      } else {
        rows_all.push_back(i);
      }
    }
    score_bundle(pred.all, rows_all);
    if (pred.low.has_value()) score_bundle(*pred.low, rows_low);
    if (pred.high.has_value()) score_bundle(*pred.high, rows_high);
  }

  ss.scored_until = tail_first + static_cast<int>(n) - 1;
  rows += n;
  resident_.drop_feature_tail(di);
}

RescoreStats Engine::rescore() {
  RescoreStats stats;
  if (!predictor_.has_value()) {
    last_rescore_ = stats;
    return stats;
  }
  obs::Span span(obs_, "daemon:rescore");

  std::vector<std::size_t> full, incr;
  for (std::size_t di = 0; di < score_states_.size(); ++di) {
    ScoreState& ss = score_states_[di];
    const data::DriveSeries& drive = fleet().drives[di];
    if (!ss.full_dirty && ss.scored_until >= drive.last_day()) continue;
    const int next_day = ss.scored_until < 0 ? drive.first_day : ss.scored_until + 1;
    const bool tail_covers = resident_.streaming(di) &&
                             resident_.feature_tail(di).rows() > 0 &&
                             resident_.tail_first_day(di) == next_day;
    if (!ss.full_dirty && tail_covers) {
      incr.push_back(di);
    } else {
      full.push_back(di);
    }
  }

  if (!full.empty()) {
    // The batch oracle itself, on the drive subset — bit-identical by
    // construction (score_fleet's subset overload is its own whole-
    // fleet decomposition).
    const auto res = core::score_fleet(fleet(), *predictor_, full, 0, resident_.max_day(),
                                       opt_.experiment);
    for (const auto& ds : res) {
      ScoreState& ss = score_states_[ds.drive_index];
      ss.first_day = ds.first_day;
      ss.scores = ds.scores;
      ss.scored_until = ds.first_day + static_cast<int>(ds.scores.size()) - 1;
      ss.full_dirty = false;
      stats.rows_scored += ds.scores.size();
      resident_.drop_feature_tail(ds.drive_index);
    }
  }

  if (!incr.empty()) {
    constexpr std::size_t kDriveChunk = 16;
    std::vector<std::size_t> rows_per(incr.size(), 0);
    const auto work = [&](std::size_t slot) {
      const std::size_t di = incr[slot];
      score_drive_incremental(di, score_states_[di], rows_per[slot]);
    };
    if (opt_.experiment.num_threads > 1 && incr.size() >= 2 * kDriveChunk) {
      util::ThreadPool pool(opt_.experiment.num_threads);
      pool.parallel_for_chunked(incr.size(), kDriveChunk, work);
    } else {
      for (std::size_t slot = 0; slot < incr.size(); ++slot) work(slot);
    }
    for (std::size_t r : rows_per) stats.rows_scored += r;
  }

  stats.drives_full = full.size();
  stats.drives_incremental = incr.size();
  stats.drives_rescored = full.size() + incr.size();

  if (opt_.oracle_check) {
    stats.oracle_checked = true;
    const auto oracle =
        core::score_fleet(fleet(), *predictor_, 0, resident_.max_day(), opt_.experiment);
    const auto mine = scores();
    stats.oracle_match = oracle.size() == mine.size();
    for (std::size_t i = 0; stats.oracle_match && i < oracle.size(); ++i) {
      stats.oracle_match = oracle[i].drive_index == mine[i].drive_index &&
                           oracle[i].first_day == mine[i].first_day &&
                           oracle[i].scores.size() == mine[i].scores.size();
      for (std::size_t d = 0; stats.oracle_match && d < oracle[i].scores.size(); ++d) {
        // Bitwise, not ==: a 0.0 vs -0.0 or NaN divergence must fail.
        stats.oracle_match =
            std::memcmp(&oracle[i].scores[d], &mine[i].scores[d], sizeof(double)) == 0;
      }
    }
    if (!stats.oracle_match && log_ != nullptr)
      log_->infof("daemon", "ORACLE MISMATCH after rescore at day %d", resident_.max_day());
  }

  obs::add_counter(obs_, "wefr_daemon_rescores_total");
  obs::add_counter(obs_, "wefr_daemon_drives_incremental_total", stats.drives_incremental);
  obs::add_counter(obs_, "wefr_daemon_drives_full_total", stats.drives_full);
  obs::add_counter(obs_, "wefr_daemon_rows_scored_total", stats.rows_scored);
  last_rescore_ = stats;
  return stats;
}

std::vector<core::DriveDayScores> Engine::scores() const {
  std::vector<core::DriveDayScores> out;
  out.reserve(score_states_.size());
  for (std::size_t di = 0; di < score_states_.size(); ++di) {
    const auto& ss = score_states_[di];
    if (ss.scores.empty()) continue;
    core::DriveDayScores ds;
    ds.drive_index = di;
    ds.first_day = ss.first_day;
    ds.scores = ss.scores;
    out.push_back(std::move(ds));
  }
  return out;
}

bool Engine::latest_score(const std::string& drive_id, int& day, double& score) const {
  const std::size_t di = resident_.find_drive(drive_id);
  if (di == ResidentFleet::npos || score_states_[di].scores.empty()) return false;
  const auto& ss = score_states_[di];
  day = ss.first_day + static_cast<int>(ss.scores.size()) - 1;
  score = ss.scores.back();
  return true;
}

bool Engine::load_snapshot(std::string_view payload, std::string* why) {
  if (!resident_.load_snapshot(payload, why)) return false;
  score_states_.assign(resident_.num_drives(), ScoreState{});
  // The last day in the snapshot may have been mid-ingest when the
  // previous process stopped; treat only earlier days as complete. The
  // drift detector restarts cold (its stream state is not persisted).
  high_water_day_ = std::max(0, resident_.max_day());
  next_check_day_ = std::max(opt_.warmup_days, resident_.max_day() + 1);
  return true;
}

std::string Engine::report_json() const {
  std::ostringstream os;
  obs::json::Writer w(os, 0);
  w.begin_object();
  w.field("model", fleet().model_name);
  w.field("drives", static_cast<std::uint64_t>(resident_.num_drives()));
  w.field("max_day", resident_.max_day());
  w.field("dirty_drives", static_cast<std::uint64_t>(dirty_count()));
  w.field("has_predictor", predictor_.has_value());
  w.field("next_check_day", next_check_day_);
  w.field("checks", static_cast<std::uint64_t>(checks_.size()));
  w.field("drift_detections", static_cast<std::uint64_t>(drift_detections_.size()));
  w.key("last_rescore").begin_object();
  w.field("drives_rescored", static_cast<std::uint64_t>(last_rescore_.drives_rescored));
  w.field("drives_incremental",
          static_cast<std::uint64_t>(last_rescore_.drives_incremental));
  w.field("drives_full", static_cast<std::uint64_t>(last_rescore_.drives_full));
  w.field("rows_scored", static_cast<std::uint64_t>(last_rescore_.rows_scored));
  if (last_rescore_.oracle_checked) w.field("oracle_match", last_rescore_.oracle_match);
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace wefr::daemon
