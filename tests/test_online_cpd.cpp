#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "changepoint/online_cpd.h"
#include "util/rng.h"

namespace wefr::changepoint {
namespace {

std::vector<double> step_series(std::size_t n, std::size_t shift_at, double lo, double hi,
                                double noise_sd, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = (i < shift_at ? lo : hi) + rng.normal(0.0, noise_sd);
  }
  return s;
}

TEST(OnlineCpd, FirstObservationIsChange) {
  OnlineChangePointDetector det;
  EXPECT_DOUBLE_EQ(det.observe(0.5), 1.0);
  EXPECT_EQ(det.time(), 1u);
}

TEST(OnlineCpd, RunLengthGrowsOnStableStream) {
  OnlineChangePointDetector det;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) det.observe(rng.normal(1.0, 0.05));
  // The MAP run length should track the stream length closely.
  EXPECT_GT(det.map_run_length(), 35u);
  EXPECT_LT(det.change_probability(), 0.2);
}

TEST(OnlineCpd, SpikesShortlyAfterPlantedShift) {
  const auto series = step_series(80, 40, 1.0, 3.0, 0.05, 2);
  OnlineChangePointDetector det;
  double before = 0.0, after = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double cp = det.observe(series[i]);
    if (i == 39) before = cp;
    // The short-run mass spikes within a few observations of the shift.
    if (i >= 40 && i <= 44) after = std::max(after, cp);
  }
  EXPECT_GT(after, 0.5);
  EXPECT_GT(after, before * 5.0);
}

TEST(OnlineCpd, RunLengthResetsAfterShift) {
  const auto series = step_series(100, 60, 0.0, 5.0, 0.05, 3);
  OnlineChangePointDetector det;
  for (double v : series) det.observe(v);
  // 40 observations since the shift: MAP run length near 40, not 100.
  EXPECT_LT(det.map_run_length(), 55u);
  EXPECT_GT(det.map_run_length(), 25u);
}

TEST(OnlineCpd, RunLengthDistributionNormalized) {
  OnlineChangePointDetector det;
  util::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    det.observe(rng.normal(0.0, 1.0));
    double total = 0.0;
    for (double p : det.run_length_distribution()) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(OnlineCpd, ResetForgetsState) {
  OnlineChangePointDetector det;
  for (int i = 0; i < 10; ++i) det.observe(static_cast<double>(i));
  det.reset();
  EXPECT_EQ(det.time(), 0u);
  EXPECT_DOUBLE_EQ(det.observe(3.0), 1.0);
}

TEST(OnlineCpd, ConstantStreamDoesNotBlowUp) {
  OnlineChangePointDetector det;
  for (int i = 0; i < 60; ++i) {
    const double cp = det.observe(2.0);
    EXPECT_GE(cp, 0.0);
    EXPECT_LE(cp, 1.0);
  }
}

TEST(OnlineCpd, RejectsBadOptions) {
  CpdOptions opt;
  opt.expected_run_length = 0.5;
  EXPECT_THROW(OnlineChangePointDetector{opt}, std::invalid_argument);
}

// Property: detection latency is small across shift magnitudes.
class OnlineShift : public ::testing::TestWithParam<double> {};

TEST_P(OnlineShift, DetectsWithinFewSteps) {
  const double magnitude = GetParam();
  const auto series = step_series(90, 45, 0.0, magnitude, 0.05, 7);
  OnlineChangePointDetector det;
  int detect_at = -1;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double cp = det.observe(series[i]);
    if (i >= 45 && cp > 0.5 && detect_at < 0) detect_at = static_cast<int>(i);
  }
  ASSERT_GE(detect_at, 45);
  EXPECT_LE(detect_at, 50) << "magnitude " << magnitude;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, OnlineShift, ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace wefr::changepoint
