// Daemon suite: the resident incremental fleet-scoring engine and its
// wire protocol. Three contracts are pinned here:
//
//   1. Streaming bit-identity — the per-append streaming kernels of
//      daemon::ResidentFleet emit feature rows bit-identical to
//      data::expand_series over the full history, at every history
//      length, for any window config; and daemon::Engine's dirty-set
//      rescore reproduces core::score_fleet bit-for-bit regardless of
//      append ordering, rescore cut points, thread counts, or drives
//      knocked out of streaming mode by non-finite values.
//   2. Frame integrity — WEFRDM01 protocol frames and WEFRDS01
//      snapshot records refuse every single-bit tamper and truncation
//      (the digest covers header and payload both).
//   3. Transport semantics — the loopback and Unix-socket transports
//      run the same event loop; a client survives mid-stream
//      disconnects and whole-server restarts by redial + re-hello,
//      while a corrupted byte stream gets one error reply and a closed
//      connection, never a resync.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "daemon/client.h"
#include "daemon/engine.h"
#include "daemon/protocol.h"
#include "daemon/resident.h"
#include "daemon/server.h"
#include "data/cache.h"
#include "data/window_features.h"
#include "smartsim/generator.h"

namespace wefr::daemon {
namespace {

data::FleetData mc1_fleet(std::uint64_t seed = 5, std::size_t drives = 60,
                          int days = 110, double afr_scale = 30.0) {
  smartsim::SimOptions opt;
  opt.num_drives = drives;
  opt.num_days = days;
  opt.seed = seed;
  opt.afr_scale = afr_scale;
  return generate_fleet(smartsim::profile_by_name("MC1"), opt);
}

core::ExperimentConfig light_cfg(std::size_t threads = 0) {
  core::ExperimentConfig cfg;
  cfg.forest.num_trees = 10;
  cfg.forest.tree.max_depth = 7;
  cfg.num_threads = threads;
  return cfg;
}

/// A deterministically-trained predictor with wear routing: three
/// distinct bundles (different feature subsets) plus a threshold in the
/// simulated MWI_N range, so the incremental scorer's per-day routing
/// (low / high / NaN-reroute) is actually exercised.
core::WefrPredictor routed_predictor(const data::FleetData& fleet, int train_end,
                                     const core::ExperimentConfig& cfg) {
  std::vector<std::size_t> all_cols(fleet.num_features());
  std::iota(all_cols.begin(), all_cols.end(), std::size_t{0});
  const std::vector<std::size_t> low_cols = {0, 1, 2, 3};
  const std::vector<std::size_t> high_cols = {2, 3, 4, 5};
  core::WefrPredictor p;
  p.all = core::train_bundle(fleet, all_cols, 0, train_end, cfg);
  p.low = core::train_bundle(fleet, low_cols, 0, train_end, cfg);
  p.high = core::train_bundle(fleet, high_cols, 0, train_end, cfg);
  p.wear_threshold = 88.0;  // simulated MWI_N wears down from 100
  p.mwi_col = fleet.feature_index("MWI_N");
  EXPECT_GE(p.mwi_col, 0);
  return p;
}

enum class Order { kDayMajor, kDriveMajor, kInterleaved };

/// Streams fleet days [day_lo, day_hi] into the engine in the given
/// order. All orders are valid protocol streams (per-drive contiguity
/// holds in each); they differ in when the day watermark advances.
void append_fleet(Engine& engine, const data::FleetData& fleet, int day_lo, int day_hi,
                  Order order) {
  const auto feed_one = [&](const data::DriveSeries& d, int day) {
    if (day < d.first_day || day > d.last_day()) return;
    engine.append_day(d.drive_id, day,
                      d.values.row(static_cast<std::size_t>(day - d.first_day)),
                      d.fail_day);
  };
  switch (order) {
    case Order::kDayMajor:
      for (int day = day_lo; day <= day_hi; ++day)
        for (const auto& d : fleet.drives) feed_one(d, day);
      break;
    case Order::kDriveMajor:
      for (const auto& d : fleet.drives)
        for (int day = day_lo; day <= day_hi; ++day) feed_one(d, day);
      break;
    case Order::kInterleaved: {
      // Half the fleet a week ahead of the other half, swapping leads
      // every chunk — drives at visibly different watermarks.
      const std::size_t half = fleet.drives.size() / 2;
      for (int chunk = day_lo; chunk <= day_hi; chunk += 7) {
        const int hi = std::min(day_hi, chunk + 6);
        for (std::size_t i = 0; i < half; ++i)
          for (int day = chunk; day <= hi; ++day) feed_one(fleet.drives[i], day);
        for (std::size_t i = half; i < fleet.drives.size(); ++i)
          for (int day = chunk; day <= hi; ++day) feed_one(fleet.drives[i], day);
      }
      break;
    }
  }
}

void expect_same_scores(const std::vector<core::DriveDayScores>& got,
                        const std::vector<core::DriveDayScores>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].drive_index, want[i].drive_index) << "entry " << i;
    EXPECT_EQ(got[i].first_day, want[i].first_day) << "entry " << i;
    ASSERT_EQ(got[i].scores.size(), want[i].scores.size()) << "entry " << i;
    ASSERT_EQ(0, std::memcmp(got[i].scores.data(), want[i].scores.data(),
                             got[i].scores.size() * sizeof(double)))
        << "scores differ for drive " << got[i].drive_index;
  }
}

Engine make_engine(const data::FleetData& fleet, const core::WefrPredictor& pred,
                   std::size_t threads = 0, bool oracle_check = false) {
  EngineOptions eopt;
  eopt.experiment = light_cfg(threads);
  eopt.auto_check = false;
  eopt.oracle_check = oracle_check;
  Engine engine(eopt, eopt.experiment.windows);
  engine.resident().set_schema(fleet.model_name, fleet.feature_names);
  engine.set_predictor(pred);
  return engine;
}

// ------------------------------------------------------------- framing

TEST(DaemonFrame, RoundTripWithBinaryPayload) {
  std::string payload = "daemon payload";
  payload.push_back('\0');
  payload += "\x01\xff tail";
  const std::string frame =
      data::encode_daemon_frame(data::DaemonFrameKind::kRequest, 42, payload);
  ASSERT_GE(frame.size(), data::kDaemonFrameHeaderSize + payload.size() + 8);

  std::size_t total = 0;
  std::string why;
  EXPECT_EQ(data::DaemonFramePeek::kFrame, data::peek_daemon_frame(frame, total, &why));
  EXPECT_EQ(frame.size(), total);

  std::uint32_t seq = 0;
  std::string out;
  ASSERT_TRUE(data::decode_daemon_frame(frame, data::DaemonFrameKind::kRequest, seq, out,
                                        &why))
      << why;
  EXPECT_EQ(42u, seq);
  EXPECT_EQ(payload, out);

  // The kind slot distinguishes requests from responses.
  EXPECT_FALSE(
      data::decode_daemon_frame(frame, data::DaemonFrameKind::kResponse, seq, out, &why));
}

TEST(DaemonFrame, PeekNeedsWholeHeaderThenWholeFrame) {
  const std::string frame =
      data::encode_daemon_frame(data::DaemonFrameKind::kResponse, 7, "pay");
  std::size_t total = 0;
  for (std::size_t len = 0; len < data::kDaemonFrameHeaderSize; ++len) {
    EXPECT_EQ(data::DaemonFramePeek::kNeedMore,
              data::peek_daemon_frame(frame.substr(0, len), total, nullptr))
        << "header prefix " << len;
  }
  // With the header visible the peek reports the full size; every
  // truncated decode refuses.
  for (std::size_t len = data::kDaemonFrameHeaderSize; len < frame.size(); ++len) {
    const std::string prefix = frame.substr(0, len);
    EXPECT_EQ(data::DaemonFramePeek::kFrame,
              data::peek_daemon_frame(prefix, total, nullptr));
    EXPECT_EQ(frame.size(), total);
    std::uint32_t seq = 0;
    std::string out;
    EXPECT_FALSE(data::decode_daemon_frame(prefix, data::DaemonFrameKind::kResponse, seq,
                                           out, nullptr))
        << "truncated at " << len;
  }
}

TEST(DaemonFrame, EverySingleBitFlipIsRejected) {
  const std::string frame = data::encode_daemon_frame(data::DaemonFrameKind::kRequest, 9,
                                                      "thirty-two bytes of payload data");
  // The word-wise digest covers header and payload both, so no offset —
  // magic, version, kind, even the sequence-number slot — survives a
  // flip.
  for (std::size_t off = 0; off < frame.size(); ++off) {
    std::string bad = frame;
    bad[off] = static_cast<char>(bad[off] ^ 0x20);
    std::uint32_t seq = 0;
    std::string out, why;
    EXPECT_FALSE(
        data::decode_daemon_frame(bad, data::DaemonFrameKind::kRequest, seq, out, &why))
        << "bit flip at offset " << off << " was accepted";
  }
}

TEST(DaemonFrame, PeekRejectsForeignMagicAndOversizedFrames) {
  std::string frame = data::encode_daemon_frame(data::DaemonFrameKind::kRequest, 1, "x");
  std::string bad = frame;
  bad[0] = 'X';
  std::size_t total = 0;
  std::string why;
  EXPECT_EQ(data::DaemonFramePeek::kBad, data::peek_daemon_frame(bad, total, &why));
  EXPECT_FALSE(why.empty());

  // A payload-size lie past the cap is refused at peek time, before any
  // allocation in its name.
  bad = frame;
  const std::uint64_t huge = data::kDaemonMaxFramePayload + 1;
  std::memcpy(bad.data() + 32, &huge, sizeof(huge));
  EXPECT_EQ(data::DaemonFramePeek::kBad, data::peek_daemon_frame(bad, total, &why));
}

TEST(DaemonSnapshotRecord, RoundTripTamperAndFile) {
  const std::string payload = "resident fleet snapshot bytes \x00\x01\x02";
  const std::string rec = data::encode_daemon_snapshot(payload);
  std::string out, why;
  ASSERT_TRUE(data::decode_daemon_snapshot(rec, out, &why)) << why;
  EXPECT_EQ(payload, out);

  for (std::size_t off = 0; off < rec.size(); off += 3) {
    std::string bad = rec;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    EXPECT_FALSE(data::decode_daemon_snapshot(bad, out, nullptr)) << "offset " << off;
  }
  EXPECT_FALSE(data::decode_daemon_snapshot(rec.substr(0, rec.size() - 1), out, nullptr));

  const std::string path =
      testing::TempDir() + "wefrds_test_" + std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(data::write_daemon_snapshot(path, payload, &why)) << why;
  ASSERT_TRUE(data::read_daemon_snapshot(path, out, &why)) << why;
  EXPECT_EQ(payload, out);
  ::unlink(path.c_str());
}

// ------------------------------------------------------------ protocol

TEST(DaemonProtocol, MessageRoundTripAllTypes) {
  Msg m;
  m.type = MsgType::kHello;
  m.client_name = "tester";
  m.model_name = "MC1";
  m.feature_names = {"A_R", "A_N", "MWI_N"};
  Msg back;
  std::string why;
  ASSERT_TRUE(decode_message(encode_message(m), back, &why)) << why;
  EXPECT_EQ(MsgType::kHello, back.type);
  EXPECT_EQ(m.client_name, back.client_name);
  EXPECT_EQ(m.feature_names, back.feature_names);

  m = Msg{};
  m.type = MsgType::kAppendDay;
  m.drive_id = "MC1_17";
  m.day = 93;
  m.fail_day = 120;
  m.values = {1.0, -0.0, std::nan("")};
  ASSERT_TRUE(decode_message(encode_message(m), back, &why)) << why;
  EXPECT_EQ(m.drive_id, back.drive_id);
  EXPECT_EQ(m.day, back.day);
  EXPECT_EQ(m.fail_day, back.fail_day);
  ASSERT_EQ(3u, back.values.size());
  // Bitwise: -0.0 and NaN payloads must survive the wire untouched.
  EXPECT_EQ(0, std::memcmp(m.values.data(), back.values.data(), 3 * sizeof(double)));

  m = Msg{};
  m.type = MsgType::kScoreOk;
  m.found = true;
  m.score_day = 88;
  m.score = 0.625;
  m.days_scored = 1234;
  m.drives_rescored = 56;
  ASSERT_TRUE(decode_message(encode_message(m), back, &why)) << why;
  EXPECT_TRUE(back.found);
  EXPECT_EQ(88, back.score_day);
  EXPECT_EQ(0.625, back.score);
  EXPECT_EQ(1234u, back.days_scored);
  EXPECT_EQ(56u, back.drives_rescored);

  m = make_error("no predictor yet");
  ASSERT_TRUE(decode_message(encode_message(m), back, &why)) << why;
  EXPECT_EQ(MsgType::kError, back.type);
  EXPECT_EQ("no predictor yet", back.text);
}

TEST(DaemonProtocol, MalformedMessagesRefused) {
  Msg back;
  std::string why;
  EXPECT_FALSE(decode_message("", back, &why));
  EXPECT_FALSE(decode_message("abc", back, &why));  // truncated type tag

  const std::uint32_t bogus = 9999;
  std::string unknown(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  EXPECT_FALSE(decode_message(unknown, back, &why));
  EXPECT_NE(std::string::npos, why.find("unknown"));

  Msg m;
  m.type = MsgType::kReport;
  std::string trailing = encode_message(m) + "x";
  EXPECT_FALSE(decode_message(trailing, back, &why));

  m.type = MsgType::kAppendDay;
  m.drive_id = "d";
  m.values = {1.0, 2.0};
  const std::string enc = encode_message(m);
  EXPECT_FALSE(decode_message(std::string_view(enc).substr(0, enc.size() - 5), back, &why));
}

// ------------------------------------------------- resident bit-identity

void check_resident_matches_batch(const data::WindowFeatureConfig& cfg, int days,
                                  std::size_t cols) {
  std::mt19937_64 rng(0x5eedull + days);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  data::Matrix series;
  std::vector<double> row(cols);
  for (int d = 0; d < days; ++d) {
    for (auto& v : row) v = dist(rng);
    series.push_row(row);
  }
  std::vector<std::size_t> base_cols(cols);
  std::iota(base_cols.begin(), base_cols.end(), std::size_t{0});

  ResidentFleet resident(cfg);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < cols; ++c) names.push_back("f" + std::to_string(c));
  resident.set_schema("T", names);

  data::Matrix streamed;
  for (int d = 0; d < days; ++d) {
    resident.append_day("drv", d, series.row(static_cast<std::size_t>(d)));
    // The emitted row must match the batch expansion of the history as
    // of *this* length — checked via causality below, plus directly at
    // one mid-stream length.
    if (d == days / 2) {
      const auto& tail = resident.feature_tail(0);
      data::Matrix prefix;
      for (int p = 0; p <= d; ++p) prefix.push_row(series.row(static_cast<std::size_t>(p)));
      const data::Matrix want = data::expand_series(prefix, base_cols, cfg);
      ASSERT_EQ(tail.rows(), want.rows());
      ASSERT_EQ(0, std::memcmp(tail.raw().data(), want.raw().data(),
                               tail.rows() * tail.cols() * sizeof(double)))
          << "mid-stream divergence at length " << d + 1;
    }
  }
  const auto& tail = resident.feature_tail(0);
  const data::Matrix want = data::expand_series(series, base_cols, cfg);
  ASSERT_EQ(tail.rows(), want.rows());
  ASSERT_EQ(tail.cols(), want.cols());
  for (std::size_t r = 0; r < tail.rows(); ++r) {
    ASSERT_EQ(0, std::memcmp(tail.row(r).data(), want.row(r).data(),
                             tail.cols() * sizeof(double)))
        << "row " << r << " windows config diverged";
  }
}

TEST(ResidentFleet, StreamingRowsMatchBatchExpansionDefaultWindows) {
  check_resident_matches_batch(data::WindowFeatureConfig{}, 41, 3);
}

TEST(ResidentFleet, StreamingRowsMatchBatchExpansionPowerOfTwoWindows) {
  data::WindowFeatureConfig cfg;
  cfg.windows = {1, 2, 4, 8};
  check_resident_matches_batch(cfg, 37, 2);
}

TEST(ResidentFleet, StreamingRowsMatchBatchExpansionWideWindows) {
  data::WindowFeatureConfig cfg;
  cfg.windows = {2, 5, 16, 30};
  check_resident_matches_batch(cfg, 64, 2);
}

TEST(ResidentFleet, NonFiniteValueKnocksDriveOutOfStreaming) {
  ResidentFleet resident;
  resident.set_schema("T", {"a", "b"});
  const double clean[2] = {1.0, 2.0};
  for (int d = 0; d < 5; ++d) {
    const auto res = resident.append_day("drv", d, clean);
    EXPECT_FALSE(res.went_nonfinite);
  }
  EXPECT_TRUE(resident.streaming(0));
  EXPECT_EQ(5u, resident.feature_tail(0).rows());

  const double dirty[2] = {1.0, std::nan("")};
  const auto res = resident.append_day("drv", 5, dirty);
  EXPECT_TRUE(res.went_nonfinite);
  EXPECT_FALSE(resident.streaming(0));
  EXPECT_EQ(0u, resident.feature_tail(0).rows());

  // Once out, a drive stays out — later finite days do not resume the
  // stream (the whole-column finiteness classification already flipped).
  const auto later = resident.append_day("drv", 6, clean);
  EXPECT_FALSE(later.went_nonfinite);
  EXPECT_FALSE(resident.streaming(0));
  // The raw history keeps everything for the batch oracle.
  EXPECT_EQ(7u, resident.fleet().drives[0].num_days());
}

TEST(ResidentFleet, RefusesGapsAndConflictingFailDays) {
  ResidentFleet resident;
  resident.set_schema("T", {"a"});
  const double v[1] = {1.0};
  resident.append_day("drv", 10, v);  // late start is fine
  EXPECT_EQ(10, resident.fleet().drives[0].first_day);
  EXPECT_THROW(resident.append_day("drv", 12, v), std::invalid_argument);  // gap
  EXPECT_THROW(resident.append_day("drv", 10, v), std::invalid_argument);  // replay
  resident.append_day("drv", 11, v, 40);
  EXPECT_THROW(resident.append_day("drv", 12, v, 41), std::invalid_argument);
  const std::vector<double> wide = {1.0, 2.0};
  EXPECT_THROW(resident.append_day("other", 0, wide), std::invalid_argument);
}

TEST(ResidentFleet, SnapshotRoundTripRebuildsStreamingState) {
  const auto fleet = mc1_fleet(17, 12, 60);
  ResidentFleet a;
  a.set_schema(fleet.model_name, fleet.feature_names);
  for (int day = 0; day < fleet.num_days; ++day) {
    for (const auto& d : fleet.drives) {
      if (day < d.first_day || day > d.last_day()) continue;
      a.append_day(d.drive_id, day, d.values.row(static_cast<std::size_t>(day - d.first_day)),
                   d.fail_day);
    }
  }
  // A non-finite drive must survive the round trip as non-streaming.
  const std::vector<double> dirty(fleet.num_features(), std::nan(""));
  a.append_day("nan_drive", 30, dirty);
  ASSERT_FALSE(a.streaming(a.find_drive("nan_drive")));

  const std::string payload = a.save_snapshot();
  ResidentFleet b;
  std::string why;
  ASSERT_TRUE(b.load_snapshot(payload, &why)) << why;

  ASSERT_EQ(a.num_drives(), b.num_drives());
  ASSERT_EQ(a.max_day(), b.max_day());
  for (std::size_t di = 0; di < a.num_drives(); ++di) {
    const auto& da = a.fleet().drives[di];
    const auto& db = b.fleet().drives[di];
    EXPECT_EQ(da.drive_id, db.drive_id);
    EXPECT_EQ(da.first_day, db.first_day);
    EXPECT_EQ(da.fail_day, db.fail_day);
    ASSERT_EQ(da.num_days(), db.num_days());
    ASSERT_EQ(0, std::memcmp(da.values.raw().data(), db.values.raw().data(),
                             da.values.rows() * da.values.cols() * sizeof(double)));
    EXPECT_EQ(a.streaming(di), b.streaming(di));
  }

  // The rebuilt accumulators keep emitting bit-identical rows: append
  // one more day to a streaming drive on both sides and compare.
  const auto& d0 = fleet.drives[0];
  std::vector<double> next(fleet.num_features(), 0.25);
  const int day = a.fleet().drives[0].last_day() + 1;
  a.drop_feature_tail(0);
  b.drop_feature_tail(0);
  a.append_day(d0.drive_id, day, next, d0.fail_day);
  b.append_day(d0.drive_id, day, next, d0.fail_day);
  ASSERT_EQ(1u, a.feature_tail(0).rows());
  ASSERT_EQ(1u, b.feature_tail(0).rows());
  ASSERT_EQ(0, std::memcmp(a.feature_tail(0).row(0).data(), b.feature_tail(0).row(0).data(),
                           a.feature_tail(0).cols() * sizeof(double)));
}

// A daemon stopped before its first hello snapshots the pre-schema
// empty state; restarting from that snapshot must work (and must not be
// confused with a truncated payload).
TEST(ResidentFleet, EmptySnapshotRoundTripsBeforeAnySchema) {
  ResidentFleet a;
  const std::string payload = a.save_snapshot();

  ResidentFleet b;
  std::string why;
  ASSERT_TRUE(b.load_snapshot(payload, &why)) << why;
  EXPECT_FALSE(b.has_schema());
  EXPECT_EQ(0u, b.num_drives());

  // The restored instance is still a blank slate: schema + appends work.
  b.set_schema("T", {"x"});
  const double v[1] = {2.5};
  b.append_day("drv", 0, v);
  EXPECT_TRUE(b.streaming(0));

  // But an empty schema followed by drive payload is damage, not data:
  // flip the feature count to zero in a populated snapshot.
  ResidentFleet c;
  c.set_schema("T", {"x"});
  c.append_day("drv", 0, v);
  std::string damaged = c.save_snapshot();
  // Layout: u32 version, str model ("T": u32 len + 1 byte), u32 nwin,
  // nwin i32s, then u32 nfeat — zero it in place.
  const std::size_t nwin_at = sizeof(std::uint32_t) + sizeof(std::uint32_t) + 1;
  std::uint32_t nwin = 0;
  std::memcpy(&nwin, damaged.data() + nwin_at, sizeof(nwin));
  const std::size_t nfeat_at = nwin_at + sizeof(std::uint32_t) + nwin * sizeof(std::int32_t);
  const std::uint32_t zero = 0;
  std::memcpy(damaged.data() + nfeat_at, &zero, sizeof(zero));
  ResidentFleet d;
  EXPECT_FALSE(d.load_snapshot(damaged, &why));
}

TEST(ResidentFleet, SnapshotRefusesDamageAndConfigMismatch) {
  ResidentFleet a;
  a.set_schema("T", {"x"});
  const double v[1] = {1.5};
  for (int d = 0; d < 10; ++d) a.append_day("drv", d, v);
  const std::string payload = a.save_snapshot();

  std::string why;
  ResidentFleet truncated;
  EXPECT_FALSE(
      truncated.load_snapshot(std::string_view(payload).substr(0, payload.size() / 2), &why));

  data::WindowFeatureConfig other;
  other.windows = {3, 7, 14};
  ResidentFleet mismatched(other);
  EXPECT_FALSE(mismatched.load_snapshot(payload, &why));
  EXPECT_NE(std::string::npos, why.find("window"));

  ResidentFleet occupied;
  occupied.set_schema("T", {"x"});
  occupied.append_day("drv", 0, v);
  EXPECT_FALSE(occupied.load_snapshot(payload, &why));
}

// --------------------------------------------- engine vs batch oracle

TEST(Engine, MatchesBatchOracleAcrossAppendOrdersAndThreads) {
  const auto fleet = mc1_fleet();
  const auto cfg0 = light_cfg(0);
  const auto pred = routed_predictor(fleet, 79, cfg0);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    const auto oracle =
        core::score_fleet(fleet, pred, 0, fleet.num_days - 1, light_cfg(threads));
    for (const Order order : {Order::kDayMajor, Order::kDriveMajor, Order::kInterleaved}) {
      Engine engine = make_engine(fleet, pred, threads);
      append_fleet(engine, fleet, 0, fleet.num_days - 1, order);
      const auto stats = engine.rescore();
      EXPECT_EQ(fleet.drives.size(), stats.drives_rescored);
      EXPECT_EQ(0u, stats.drives_full);  // everything finite -> all streaming
      expect_same_scores(engine.scores(), oracle);
    }
  }
}

TEST(Engine, IncrementalRescoresMatchOracleAtEveryCutPoint) {
  const auto fleet = mc1_fleet(23, 40, 90);
  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 59, cfg);
  Engine engine = make_engine(fleet, pred);

  std::size_t total_rows = 0;
  for (int lo = 0; lo < fleet.num_days; lo += 10) {
    const int hi = std::min(fleet.num_days - 1, lo + 9);
    append_fleet(engine, fleet, lo, hi, Order::kDayMajor);
    const auto stats = engine.rescore();
    total_rows += stats.rows_scored;
    EXPECT_EQ(0u, stats.drives_full);
    // Each pass is incremental: only the newly appended days run
    // inference, yet the cumulative result equals the from-scratch
    // oracle at this cut point.
    const auto oracle = core::score_fleet(fleet, pred, 0, hi, cfg);
    expect_same_scores(engine.scores(), oracle);
  }
  EXPECT_EQ(fleet.total_drive_days(), total_rows);  // no day scored twice

  // Once clean, a rescore is free.
  const auto idle = engine.rescore();
  EXPECT_EQ(0u, idle.drives_rescored);
  EXPECT_EQ(0u, idle.rows_scored);
}

TEST(Engine, NonFiniteDrivesFallBackToOracleScoring) {
  auto fleet = mc1_fleet(29, 30, 80);
  // Drive 3: NaN burst in one raw feature -> leaves streaming mode.
  for (int d = 20; d < 24; ++d) fleet.drives[3].values(d, 1) = std::nan("");
  // Drive 7: NaN in the MWI column. Any non-finite value exits
  // streaming mode, and on top of that the batch oracle cannot route
  // those days and rescores them against the whole-model bundle — both
  // behaviors must agree with score_fleet.
  const int mwi_col = fleet.feature_index("MWI_N");
  ASSERT_GE(mwi_col, 0);
  for (int d = 40; d < 43; ++d)
    fleet.drives[7].values(d, static_cast<std::size_t>(mwi_col)) = std::nan("");

  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 49, cfg);
  Engine engine = make_engine(fleet, pred);
  append_fleet(engine, fleet, 0, fleet.num_days - 1, Order::kDayMajor);
  const auto stats = engine.rescore();
  EXPECT_EQ(2u, stats.drives_full);  // exactly the two NaN drives
  EXPECT_FALSE(engine.resident().streaming(3));
  EXPECT_FALSE(engine.resident().streaming(7));
  expect_same_scores(engine.scores(),
                     core::score_fleet(fleet, pred, 0, fleet.num_days - 1, cfg));

  const auto again = engine.rescore();
  EXPECT_EQ(0u, again.drives_rescored);
}

TEST(Engine, OracleCheckModeSelfVerifies) {
  const auto fleet = mc1_fleet(31, 25, 70);
  const auto pred = routed_predictor(fleet, 49, light_cfg(0));
  Engine engine = make_engine(fleet, pred, 0, /*oracle_check=*/true);
  append_fleet(engine, fleet, 0, fleet.num_days - 1, Order::kInterleaved);
  const auto stats = engine.rescore();
  EXPECT_TRUE(stats.oracle_checked);
  EXPECT_TRUE(stats.oracle_match);
}

TEST(Engine, NewPredictorDirtiesEverythingAndStillMatches) {
  const auto fleet = mc1_fleet(37, 30, 80);
  const auto cfg = light_cfg(0);
  const auto pred1 = routed_predictor(fleet, 49, cfg);
  Engine engine = make_engine(fleet, pred1);
  append_fleet(engine, fleet, 0, fleet.num_days - 1, Order::kDayMajor);
  engine.rescore();

  // Retrain on a different feature set: every drive is dirty again and
  // the full history is re-scored under the new predictor.
  core::WefrPredictor pred2;
  const std::vector<std::size_t> cols = {1, 4, 5, 8};
  pred2.all = core::train_bundle(fleet, cols, 0, 59, cfg);
  engine.set_predictor(pred2);
  EXPECT_EQ(fleet.drives.size(), engine.dirty_count());
  const auto stats = engine.rescore();
  EXPECT_EQ(fleet.drives.size(), stats.drives_rescored);
  expect_same_scores(engine.scores(),
                     core::score_fleet(fleet, pred2, 0, fleet.num_days - 1, cfg));
}

TEST(Engine, SnapshotRestoreRescoresToSameBits) {
  const auto fleet = mc1_fleet(41, 20, 60);
  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 39, cfg);

  Engine a = make_engine(fleet, pred);
  append_fleet(a, fleet, 0, fleet.num_days - 1, Order::kDayMajor);
  a.rescore();

  // The restore target must start empty (schema travels in the
  // snapshot); the predictor is not persisted and is re-installed.
  EngineOptions eopt;
  eopt.experiment = cfg;
  eopt.auto_check = false;
  Engine b(eopt, eopt.experiment.windows);
  std::string why;
  ASSERT_TRUE(b.load_snapshot(a.save_snapshot(), &why)) << why;
  b.set_predictor(pred);
  b.rescore();
  expect_same_scores(b.scores(), a.scores());
}

// ------------------------------------------- scheduled checks and drift

TEST(Engine, ScheduledChecksRunAtTheWatermark) {
  const auto fleet = mc1_fleet(43, 120, 100, 40.0);
  EngineOptions eopt;
  eopt.experiment = light_cfg(0);
  eopt.experiment.negative_keep_prob = 0.10;
  eopt.auto_check = true;
  eopt.warmup_days = 60;
  eopt.check_interval_days = 14;
  Engine engine(eopt, eopt.experiment.windows);
  engine.resident().set_schema(fleet.model_name, fleet.feature_names);
  append_fleet(engine, fleet, 0, fleet.num_days - 1, Order::kDayMajor);

  // Days 60, 74, 88 are past the warmup: three scheduled checks.
  ASSERT_EQ(3u, engine.checks().size());
  EXPECT_EQ(60, engine.checks()[0].day);
  EXPECT_EQ(74, engine.checks()[1].day);
  EXPECT_EQ(88, engine.checks()[2].day);
  EXPECT_TRUE(engine.has_predictor());
  EXPECT_TRUE(engine.checks()[0].trained);
  EXPECT_EQ(102, engine.next_check_day());

  // With a predictor installed by the in-process check, rescore agrees
  // with the batch oracle under that same predictor.
  engine.rescore();
  expect_same_scores(engine.scores(), core::score_fleet(fleet, *engine.predictor(), 0,
                                                        fleet.num_days - 1,
                                                        eopt.experiment));
}

TEST(Engine, DriftDetectionPullsTheCheckForward) {
  // Hand-built fleet: mean MWI_N declines gently, then falls off a
  // cliff at day 70. The online watch sees the delta distribution jump
  // and must pull the next check in front of the slow cadence.
  data::FleetData fleet;
  fleet.model_name = "SYN";
  fleet.feature_names = {"X_R", "MWI_N"};
  fleet.num_days = 100;
  for (int i = 0; i < 10; ++i) {
    data::DriveSeries d;
    d.drive_id = "syn_" + std::to_string(i);
    d.first_day = 0;
    for (int day = 0; day < fleet.num_days; ++day) {
      const double base = day < 70 ? 100.0 - 0.05 * day : 96.5 - 2.0 * (day - 70);
      const double row[2] = {std::sin(0.1 * day + i), base + 0.01 * std::sin(0.7 * day)};
      d.values.push_row(row);
    }
    fleet.drives.push_back(std::move(d));
  }

  EngineOptions eopt;
  eopt.experiment = light_cfg(0);
  eopt.auto_check = true;
  eopt.warmup_days = 40;
  eopt.check_interval_days = 365;  // the drift watch must beat this
  eopt.online_drift_check = true;
  eopt.drift_probability_threshold = 0.5;
  Engine engine(eopt, eopt.experiment.windows);
  engine.resident().set_schema(fleet.model_name, fleet.feature_names);
  append_fleet(engine, fleet, 0, fleet.num_days - 1, Order::kDayMajor);

  ASSERT_FALSE(engine.drift_detections().empty());
  const auto& det = engine.drift_detections().front();
  EXPECT_GE(det.day, 68);
  EXPECT_LE(det.day, 85);
  // A drift-triggered check ran right after the detection (untrained —
  // the synthetic fleet has no failures to learn from — but recorded).
  bool drift_check = false;
  for (const auto& ev : engine.checks()) drift_check = drift_check || ev.drift_triggered;
  EXPECT_TRUE(drift_check);
}

// --------------------------------------------------- transport: loopback

/// Streams the fleet through the client day-major; asserts every append
/// is accepted.
void client_append_fleet(Client& client, const data::FleetData& fleet, int day_lo,
                         int day_hi) {
  Msg reply;
  std::string err;
  for (int day = day_lo; day <= day_hi; ++day) {
    for (const auto& d : fleet.drives) {
      if (day < d.first_day || day > d.last_day()) continue;
      const auto row = d.values.row(static_cast<std::size_t>(day - d.first_day));
      ASSERT_TRUE(client.append_day(d.drive_id, day,
                                    std::vector<double>(row.begin(), row.end()),
                                    d.fail_day, reply, &err))
          << err;
      ASSERT_EQ(MsgType::kAppendOk, reply.type) << reply.text;
    }
  }
}

TEST(DaemonLoopback, EndToEndScoringMatchesOracle) {
  const auto fleet = mc1_fleet(47, 20, 60);
  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 39, cfg);

  EngineOptions eopt;
  eopt.experiment = cfg;
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  engine.set_predictor(pred);

  Server server(engine, ServerOptions{});
  const int fd = server.connect_loopback();
  ASSERT_GE(fd, 0);
  std::thread loop([&server] { server.run(); });

  Client::Options copt;
  copt.client_name = "test";
  copt.model_name = fleet.model_name;
  copt.feature_names = fleet.feature_names;
  Client client(copt);
  std::string err;
  ASSERT_TRUE(client.adopt_fd(fd, &err)) << err;
  EXPECT_EQ("wefrd", client.hello_reply().server_name);
  EXPECT_EQ(0u, client.hello_reply().num_drives);

  client_append_fleet(client, fleet, 0, fleet.num_days - 1);

  const auto oracle = core::score_fleet(fleet, pred, 0, fleet.num_days - 1, cfg);
  Msg reply;
  for (const auto& want : oracle) {
    const auto& d = fleet.drives[want.drive_index];
    ASSERT_TRUE(client.score_drive(d.drive_id, reply, &err)) << err;
    ASSERT_EQ(MsgType::kScoreOk, reply.type) << reply.text;
    EXPECT_TRUE(reply.found);
    EXPECT_EQ(d.last_day(), reply.score_day);
    const double want_score = want.scores.back();
    EXPECT_EQ(0, std::memcmp(&want_score, &reply.score, sizeof(double)))
        << "drive " << d.drive_id;
  }

  ASSERT_TRUE(client.report(reply, &err)) << err;
  ASSERT_EQ(MsgType::kReportOk, reply.type);
  EXPECT_NE(std::string::npos, reply.text.find("\"drives\":20"));

  ASSERT_TRUE(client.shutdown_server(reply, &err)) << err;
  EXPECT_EQ(MsgType::kShutdownOk, reply.type);
  loop.join();
  EXPECT_GE(server.frames_ok(), fleet.total_drive_days());
}

TEST(DaemonLoopback, ScoreWithoutPredictorIsRefusedNotFatal) {
  const auto fleet = mc1_fleet(53, 5, 60);
  EngineOptions eopt;
  eopt.experiment = light_cfg(0);
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  Server server(engine, ServerOptions{});
  const int fd = server.connect_loopback();
  ASSERT_GE(fd, 0);
  std::thread loop([&server] { server.run(); });

  Client::Options copt;
  copt.model_name = fleet.model_name;
  copt.feature_names = fleet.feature_names;
  Client client(copt);
  std::string err;
  ASSERT_TRUE(client.adopt_fd(fd, &err)) << err;
  client_append_fleet(client, fleet, 0, 9);

  Msg reply;
  ASSERT_TRUE(client.score_drive(fleet.drives[0].drive_id, reply, &err)) << err;
  EXPECT_EQ(MsgType::kError, reply.type);
  // The refusal did not kill the connection: the next request works.
  ASSERT_TRUE(client.report(reply, &err)) << err;
  EXPECT_EQ(MsgType::kReportOk, reply.type);

  client.shutdown_server(reply, &err);
  loop.join();
}

TEST(DaemonLoopback, SchemaMismatchIsRefusedAtHello) {
  const auto fleet = mc1_fleet(59, 5, 60);
  EngineOptions eopt;
  eopt.experiment = light_cfg(0);
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  engine.resident().set_schema(fleet.model_name, fleet.feature_names);

  Server server(engine, ServerOptions{});
  const int fd = server.connect_loopback();
  ASSERT_GE(fd, 0);
  std::thread loop([&server] { server.run(); });

  Client::Options copt;
  copt.model_name = fleet.model_name;
  copt.feature_names = {"not", "the", "schema"};
  Client client(copt);
  std::string err;
  EXPECT_FALSE(client.adopt_fd(fd, &err));
  EXPECT_NE(std::string::npos, err.find("refused"));

  server.request_stop();
  loop.join();
}

TEST(DaemonLoopback, TamperedFrameGetsErrorReplyThenDisconnect) {
  EngineOptions eopt;
  eopt.experiment = light_cfg(0);
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  Server server(engine, ServerOptions{});
  const int fd = server.connect_loopback();
  ASSERT_GE(fd, 0);
  std::thread loop([&server] { server.run(); });

  Msg hello;
  hello.type = MsgType::kHello;
  hello.model_name = "T";
  hello.feature_names = {"x"};
  std::string frame =
      data::encode_daemon_frame(data::DaemonFrameKind::kRequest, 3, encode_message(hello));
  frame[data::kDaemonFrameHeaderSize] ^= 0x20;  // corrupt the payload
  ASSERT_EQ(static_cast<ssize_t>(frame.size()),
            ::send(fd, frame.data(), frame.size(), 0));

  // One error reply, then EOF: the server refuses to resync a damaged
  // stream.
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  std::size_t total = 0;
  ASSERT_EQ(data::DaemonFramePeek::kFrame, data::peek_daemon_frame(buf, total, nullptr));
  ASSERT_EQ(buf.size(), total);
  std::uint32_t seq = 99;
  std::string payload, why;
  ASSERT_TRUE(
      data::decode_daemon_frame(buf, data::DaemonFrameKind::kResponse, seq, payload, &why))
      << why;
  Msg reply;
  ASSERT_TRUE(decode_message(payload, reply, &why)) << why;
  EXPECT_EQ(MsgType::kError, reply.type);
  ::close(fd);

  server.request_stop();
  loop.join();
  EXPECT_EQ(1u, server.frames_rejected());
}

// ------------------------------------------------ transport: unix socket

std::string test_socket_path(const char* tag) {
  return testing::TempDir() + "wefrd_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

TEST(DaemonSocket, ClientReconnectsAfterMidStreamDrop) {
#ifdef WEFR_FORCE_LOOPBACK_DAEMON
  GTEST_SKIP() << "sanitizer build: daemon tests run on the loopback transport";
#else
  const auto fleet = mc1_fleet(61, 15, 60);
  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 29, cfg);
  EngineOptions eopt;
  eopt.experiment = cfg;
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  engine.set_predictor(pred);

  ServerOptions sopt;
  sopt.socket_path = test_socket_path("drop");
  Server server(engine, sopt);
  std::string err;
  ASSERT_TRUE(server.listen_unix(&err)) << err;
  std::thread loop([&server] { server.run(); });

  Client::Options copt;
  copt.socket_path = sopt.socket_path;
  copt.model_name = fleet.model_name;
  copt.feature_names = fleet.feature_names;
  Client client(copt);
  ASSERT_TRUE(client.connect(&err)) << err;

  client_append_fleet(client, fleet, 0, 24);
  client.drop_connection_for_test();  // mid-stream crash, no goodbye
  client_append_fleet(client, fleet, 25, fleet.num_days - 1);
  EXPECT_EQ(1u, client.reconnects());

  Msg reply;
  ASSERT_TRUE(client.score_drive(fleet.drives[0].drive_id, reply, &err)) << err;
  ASSERT_EQ(MsgType::kScoreOk, reply.type) << reply.text;

  // The cut is invisible to the scoring contract.
  const auto oracle = core::score_fleet(fleet, pred, 0, fleet.num_days - 1, cfg);
  const auto& d0 = fleet.drives[0];
  bool checked = false;
  for (const auto& ds : oracle) {
    if (ds.drive_index != 0) continue;
    const double want = ds.scores.back();
    EXPECT_EQ(0, std::memcmp(&want, &reply.score, sizeof(double)));
    EXPECT_EQ(d0.last_day(), reply.score_day);
    checked = true;
  }
  EXPECT_TRUE(checked);

  client.shutdown_server(reply, &err);
  loop.join();
#endif
}

TEST(DaemonSocket, ClientSurvivesServerRestartOnResidentState) {
#ifdef WEFR_FORCE_LOOPBACK_DAEMON
  GTEST_SKIP() << "sanitizer build: daemon tests run on the loopback transport";
#else
  const auto fleet = mc1_fleet(67, 12, 60);
  const auto cfg = light_cfg(0);
  const auto pred = routed_predictor(fleet, 24, cfg);
  EngineOptions eopt;
  eopt.experiment = cfg;
  eopt.auto_check = false;
  Engine engine(eopt, eopt.experiment.windows);
  engine.set_predictor(pred);

  ServerOptions sopt;
  sopt.socket_path = test_socket_path("restart");

  Client::Options copt;
  copt.socket_path = sopt.socket_path;
  copt.model_name = fleet.model_name;
  copt.feature_names = fleet.feature_names;
  Client client(copt);
  std::string err;

  {
    Server first(engine, sopt);
    ASSERT_TRUE(first.listen_unix(&err)) << err;
    std::thread loop([&first] { first.run(); });
    ASSERT_TRUE(client.connect(&err)) << err;
    client_append_fleet(client, fleet, 0, 19);
    first.request_stop();
    loop.join();
  }  // the first server is gone; the engine (resident state) survives

  Server second(engine, sopt);
  ASSERT_TRUE(second.listen_unix(&err)) << err;
  std::thread loop([&second] { second.run(); });

  // The client's next request rides the transparent redial + re-hello;
  // the re-hello sees the resident fleet, not an empty one.
  client_append_fleet(client, fleet, 20, fleet.num_days - 1);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(fleet.drives.size(), client.hello_reply().num_drives);

  Msg reply;
  ASSERT_TRUE(client.score_drive(fleet.drives[1].drive_id, reply, &err)) << err;
  ASSERT_EQ(MsgType::kScoreOk, reply.type) << reply.text;
  const auto oracle = core::score_fleet(fleet, pred, 0, fleet.num_days - 1, cfg);
  const double want = oracle[1].scores.back();
  EXPECT_EQ(0, std::memcmp(&want, &reply.score, sizeof(double)));

  client.shutdown_server(reply, &err);
  loop.join();
#endif
}

}  // namespace
}  // namespace wefr::daemon
