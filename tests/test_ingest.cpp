#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/csv.h"
#include "data/preprocess.h"

namespace wefr::data {
namespace {

/// A clean 2-drive, 2-feature fleet CSV baseline (drive a: days 0-2,
/// drive b: days 1-2); tests append corrupted rows to it.
std::string csv_with(const std::string& extra_rows) {
  std::string s =
      "drive_id,day,failed,fail_day,f0,f1\n"
      "a,0,0,-1,1,10\n"
      "a,1,0,-1,2,20\n"
      "a,2,0,-1,3,30\n"
      "b,1,1,2,4,40\n"
      "b,2,1,2,5,50\n";
  return s + extra_rows;
}

ReadOptions recover() {
  ReadOptions opt;
  opt.policy = ParsePolicy::kRecover;
  return opt;
}

ReadOptions skip_drive() {
  ReadOptions opt;
  opt.policy = ParsePolicy::kSkipDrive;
  return opt;
}

FleetData parse(const std::string& text, const ReadOptions& opt, IngestReport& rep) {
  std::istringstream is(text);
  return read_fleet_csv(is, "M", opt, &rep);
}

void expect_strict_throws(const std::string& text) {
  std::istringstream is(text);
  EXPECT_THROW(read_fleet_csv(is, "M"), std::runtime_error);
}

TEST(Ingest, CleanInputIsCleanInEveryPolicy) {
  for (const auto& opt : {ReadOptions{}, recover(), skip_drive()}) {
    IngestReport rep;
    const FleetData fleet = parse(csv_with(""), opt, rep);
    EXPECT_EQ(fleet.drives.size(), 2u);
    EXPECT_EQ(rep.rows_total, 5u);
    EXPECT_EQ(rep.rows_ok, 5u);
    EXPECT_TRUE(rep.clean()) << rep.summary();
  }
}

TEST(Ingest, EmptyInputQuarantinedNotFatalThrow) {
  expect_strict_throws("");
  IngestReport rep;
  const FleetData fleet = parse("", recover(), rep);
  EXPECT_TRUE(fleet.drives.empty());
  EXPECT_TRUE(rep.fatal);
  EXPECT_EQ(rep.errors(RowError::kEmptyInput), 1u);
}

TEST(Ingest, HeaderTooShortIsFatalNotThrow) {
  expect_strict_throws("drive_id,day\n");
  IngestReport rep;
  const FleetData fleet = parse("drive_id,day\n", recover(), rep);
  EXPECT_TRUE(fleet.drives.empty());
  EXPECT_TRUE(rep.fatal);
  EXPECT_EQ(rep.errors(RowError::kBadHeader), 1u);
}

TEST(Ingest, WrongHeaderNamesIsFatalNotThrow) {
  const std::string text = "serial,day,failed,fail_day,f0\nx,0,0,-1,1\n";
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_TRUE(fleet.drives.empty());
  EXPECT_TRUE(rep.fatal);
  EXPECT_EQ(rep.errors(RowError::kBadHeader), 1u);
  EXPECT_FALSE(rep.fatal_detail.empty());
}

TEST(Ingest, WrongFieldCountQuarantinesRowOnly) {
  const std::string text = csv_with("c,0,0,-1,6\n");  // one field short
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_EQ(fleet.drives.size(), 2u);  // a and b survive, c never starts
  EXPECT_EQ(rep.rows_quarantined, 1u);
  EXPECT_EQ(rep.rows_ok, 5u);
  EXPECT_EQ(rep.errors(RowError::kWrongFieldCount), 1u);
  ASSERT_EQ(rep.quarantined_drive_ids.size(), 1u);
  EXPECT_EQ(rep.quarantined_drive_ids[0], "c");
}

TEST(Ingest, BadMetaFieldQuarantinesRowOnly) {
  const std::string text = csv_with("c,zero,0,-1,6,60\n");
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_EQ(fleet.drives.size(), 2u);
  EXPECT_EQ(rep.errors(RowError::kBadMetaField), 1u);
  EXPECT_EQ(rep.rows_quarantined, 1u);
}

TEST(Ingest, BadFeatureValueBecomesNanHole) {
  const std::string text = csv_with("c,0,0,-1,oops,60\n");
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  ASSERT_EQ(fleet.drives.size(), 3u);  // the row SURVIVES with a hole
  EXPECT_EQ(rep.rows_ok, 6u);
  EXPECT_EQ(rep.rows_quarantined, 0u);
  EXPECT_EQ(rep.cells_recovered, 1u);
  EXPECT_EQ(rep.errors(RowError::kBadValue), 1u);
  EXPECT_TRUE(std::isnan(fleet.drives[2].values(0, 0)));
  EXPECT_DOUBLE_EQ(fleet.drives[2].values(0, 1), 60.0);
}

TEST(Ingest, NanTokenCountsAsMissingNotBad) {
  const std::string text = csv_with("c,0,0,-1,nan,\n");
  expect_strict_throws(text);  // strict accepts only finite values
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  ASSERT_EQ(fleet.drives.size(), 3u);
  EXPECT_EQ(rep.errors(RowError::kMissingValue), 2u);
  EXPECT_EQ(rep.errors(RowError::kBadValue), 0u);
  EXPECT_EQ(rep.cells_recovered, 2u);
}

TEST(Ingest, DuplicateDayQuarantined) {
  const std::string text = csv_with("b,2,1,2,5,50\n");  // day 2 again
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_EQ(rep.errors(RowError::kNonContiguousDay), 1u);
  EXPECT_EQ(rep.rows_quarantined, 1u);
  ASSERT_EQ(fleet.drives.size(), 2u);
  EXPECT_EQ(fleet.drives[1].num_days(), 2u);  // not three
}

TEST(Ingest, SmallGapBridgedWithNanDays) {
  const std::string text = csv_with("b,5,1,2,6,60\n");  // days 3-4 missing
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_TRUE(rep.fatal == false);
  EXPECT_EQ(rep.gap_days_bridged, 2u);
  EXPECT_EQ(rep.rows_quarantined, 0u);
  ASSERT_EQ(fleet.drives.size(), 2u);
  const DriveSeries& b = fleet.drives[1];
  ASSERT_EQ(b.num_days(), 5u);  // days 1,2,(3),(4),5
  EXPECT_TRUE(std::isnan(b.values(2, 0)));
  EXPECT_TRUE(std::isnan(b.values(3, 1)));
  EXPECT_DOUBLE_EQ(b.values(4, 0), 6.0);
  EXPECT_EQ(fleet.num_days, 6);
}

TEST(Ingest, HugeGapQuarantined) {
  ReadOptions opt = recover();
  opt.max_gap_days = 3;
  const std::string text = csv_with("b,50,1,2,6,60\n");
  IngestReport rep;
  std::istringstream is(text);
  const FleetData fleet = read_fleet_csv(is, "M", opt, &rep);
  EXPECT_EQ(rep.errors(RowError::kNonContiguousDay), 1u);
  EXPECT_EQ(rep.gap_days_bridged, 0u);
  EXPECT_EQ(fleet.drives[1].num_days(), 2u);
}

TEST(Ingest, ReappearingDriveQuarantined) {
  const std::string text = csv_with("a,3,0,-1,9,90\n");  // a after b
  expect_strict_throws(text);
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  EXPECT_EQ(rep.errors(RowError::kReappearingDrive), 1u);
  EXPECT_EQ(rep.rows_quarantined, 1u);
  ASSERT_EQ(fleet.drives.size(), 2u);
  EXPECT_EQ(fleet.drives[0].num_days(), 3u);  // original run untouched
}

TEST(Ingest, SkipDrivePoisonsWholeDrive) {
  // Drive b takes a structural error on its second row: in kSkipDrive
  // its already-accepted first row is reclaimed too.
  const std::string text =
      "drive_id,day,failed,fail_day,f0\n"
      "a,0,0,-1,1\n"
      "b,0,1,2,2\n"
      "b,1,1,2\n"  // wrong field count
      "b,2,1,2,4\n"
      "a2,0,0,-1,5\n";
  IngestReport rep;
  const FleetData fleet = parse(text, skip_drive(), rep);
  ASSERT_EQ(fleet.drives.size(), 2u);
  EXPECT_EQ(fleet.drives[0].drive_id, "a");
  EXPECT_EQ(fleet.drives[1].drive_id, "a2");
  EXPECT_EQ(rep.drives_quarantined, 1u);
  EXPECT_EQ(rep.rows_ok, 2u);
  EXPECT_EQ(rep.rows_quarantined, 3u);  // b's bad row + 2 reclaimed/poisoned
  ASSERT_EQ(rep.quarantined_drive_ids.size(), 1u);
  EXPECT_EQ(rep.quarantined_drive_ids[0], "b");
}

TEST(Ingest, RecoverKeepsDriveThatSkipDriveDrops) {
  const std::string text =
      "drive_id,day,failed,fail_day,f0\n"
      "b,0,1,2,2\n"
      "b,1,1,2\n"
      "b,2,1,2,4\n";
  IngestReport rep;
  const FleetData fleet = parse(text, recover(), rep);
  ASSERT_EQ(fleet.drives.size(), 1u);
  // Day 1's row was quarantined, and day 2 then bridged the 1-day hole
  // with a NaN row: the drive keeps 3 days, one synthetic.
  EXPECT_EQ(fleet.drives[0].num_days(), 3u);
  EXPECT_TRUE(std::isnan(fleet.drives[0].values(1, 0)));
  EXPECT_EQ(rep.gap_days_bridged, 1u);
}

TEST(Ingest, QuarantinedIdListIsBounded) {
  std::string text = "drive_id,day,failed,fail_day,f0\n";
  for (int i = 0; i < 10; ++i) {
    text += "d";
    text += std::to_string(i);
    text += ",0,0,-1\n";  // all short
  }
  ReadOptions opt = recover();
  opt.max_quarantined_ids = 4;
  IngestReport rep;
  std::istringstream is(text);
  read_fleet_csv(is, "M", opt, &rep);
  EXPECT_EQ(rep.errors(RowError::kWrongFieldCount), 10u);  // tallies exact
  EXPECT_EQ(rep.quarantined_drive_ids.size(), 4u);         // sample bounded
}

TEST(Ingest, MissingFileRetriesThenThrowsStrict) {
  ReadOptions opt;
  opt.max_io_attempts = 3;
  try {
    read_fleet_csv("/nonexistent/wefr_ingest_test.csv", "M", opt);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"), std::string::npos);
  }
}

TEST(Ingest, MissingFileRetriesThenReportsFatalRecover) {
  ReadOptions opt = recover();
  opt.max_io_attempts = 3;
  IngestReport rep;
  const FleetData fleet =
      read_fleet_csv("/nonexistent/wefr_ingest_test.csv", "M", opt, &rep);
  EXPECT_TRUE(fleet.drives.empty());
  EXPECT_TRUE(rep.fatal);
  EXPECT_EQ(rep.io_retries, 2u);  // attempts - 1
  EXPECT_EQ(rep.errors(RowError::kIoFailure), 1u);
}

TEST(Ingest, LoadFleetCsvRunsForwardFill) {
  const std::string path = ::testing::TempDir() + "wefr_ingest_fill.csv";
  {
    std::ofstream ofs(path);
    ofs << "drive_id,day,failed,fail_day,f0,f1\n"
           "a,0,0,-1,1,bad\n"   // f1 hole on day 0 (leading NaN)
           "a,1,0,-1,2,20\n";
  }
  IngestReport rep;
  const FleetData fleet = load_fleet_csv(path, "M", recover(), &rep);
  std::remove(path.c_str());
  ASSERT_EQ(fleet.drives.size(), 1u);
  EXPECT_EQ(rep.cells_recovered, 1u);
  EXPECT_EQ(rep.fill.cells_filled, 1u);
  EXPECT_EQ(rep.fill.leading_backfilled, 1u);
  EXPECT_DOUBLE_EQ(fleet.drives[0].values(0, 1), 20.0);  // backfilled
  EXPECT_EQ(count_missing(fleet), 0u);
}

TEST(Ingest, SummaryMentionsErrorClasses) {
  const std::string text = csv_with("c,0,0,-1,6\n");
  IngestReport rep;
  parse(text, recover(), rep);
  const std::string s = rep.summary();
  EXPECT_NE(s.find("wrong_field_count"), std::string::npos) << s;
}

TEST(Ingest, StrictOverloadMatchesLegacyReader) {
  // The policy-aware strict path and the historical 2-arg overload parse
  // clean input identically.
  IngestReport rep;
  const FleetData a = parse(csv_with(""), ReadOptions{}, rep);
  std::istringstream is(csv_with(""));
  const FleetData b = read_fleet_csv(is, "M");
  ASSERT_EQ(a.drives.size(), b.drives.size());
  EXPECT_EQ(a.num_days, b.num_days);
  for (std::size_t i = 0; i < a.drives.size(); ++i) {
    EXPECT_EQ(a.drives[i].drive_id, b.drives[i].drive_id);
    EXPECT_EQ(a.drives[i].num_days(), b.drives[i].num_days());
  }
}

}  // namespace
}  // namespace wefr::data
