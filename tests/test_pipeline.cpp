#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "smartsim/generator.h"

namespace wefr::core {
namespace {

ExperimentConfig light_cfg() {
  ExperimentConfig cfg;
  cfg.forest.num_trees = 15;
  cfg.forest.tree.max_depth = 9;
  cfg.forest.tree.min_samples_leaf = 4;
  cfg.negative_keep_prob = 0.08;
  return cfg;
}

const data::FleetData& shared_fleet() {
  static const data::FleetData fleet = [] {
    smartsim::SimOptions opt;
    opt.num_drives = 700;
    opt.num_days = 220;
    opt.seed = 51;
    opt.afr_scale = 30.0;
    return generate_fleet(smartsim::profile_by_name("MC1"), opt);
  }();
  return fleet;
}

TEST(Pipeline, SelectionSamplesHaveBaseFeatures) {
  const auto& fleet = shared_fleet();
  const auto ds = build_selection_samples(fleet, 0, 150, light_cfg());
  EXPECT_EQ(ds.feature_names, fleet.feature_names);
  EXPECT_GT(ds.size(), 100u);
  EXPECT_GT(ds.num_positive(), 10u);
  for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_LE(ds.day[i], 150);
}

TEST(Pipeline, TrainBundleAndScore) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const std::vector<std::size_t> cols = {0, 1, 2, 3};
  const auto bundle = train_bundle(fleet, cols, 0, 150, cfg);
  EXPECT_TRUE(bundle.forest.trained());
  EXPECT_EQ(bundle.base_cols, cols);

  WefrPredictor pred;
  pred.all = bundle;
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  EXPECT_GT(scores.size(), 0u);
  for (const auto& ds : scores) {
    EXPECT_GE(ds.first_day, 160);
    for (double s : ds.scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(Pipeline, TrainBundleRejectsEmptyFeatures) {
  const auto& fleet = shared_fleet();
  const std::vector<std::size_t> none;
  EXPECT_THROW(train_bundle(fleet, none, 0, 100, light_cfg()), std::invalid_argument);
}

TEST(Pipeline, ScoreFleetSkipsFailedDrives) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const std::vector<std::size_t> cols = {0, 1};
  const auto pred = train_predictor(fleet, cols, 0, 150, cfg);
  const auto scores = score_fleet(fleet, pred, 200, 219, cfg);
  for (const auto& ds : scores) {
    const auto& drive = fleet.drives[ds.drive_index];
    // Drives failing before day 200 have no observations there.
    if (drive.failed()) EXPECT_GT(drive.fail_day, 200);
  }
}

TEST(Pipeline, EvaluateDetectsPlantedFailures) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  // Use the planted signature features (raw channels).
  std::vector<std::size_t> cols;
  for (const auto* name : {"OCE_R", "UCE_R", "CMDT_R", "MWI_N", "POH_R"}) {
    const int c = fleet.feature_index(name);
    ASSERT_GE(c, 0) << name;
    cols.push_back(static_cast<std::size_t>(c));
  }
  const auto pred = train_predictor(fleet, cols, 0, 159, cfg);
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  const auto eval =
      evaluate_fixed_recall(fleet, scores, 160, 219, cfg.horizon_days, 0.3);
  // The signature is planted, so a real signal must be found.
  EXPECT_GE(eval.recall, 0.3);
  EXPECT_GT(eval.precision, 0.3);
  EXPECT_GT(eval.f05, 0.3);
}

TEST(Pipeline, FixedRecallIsRespectedWhenReachable) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const auto cols = data::all_feature_columns(fleet);
  const auto pred = train_predictor(fleet, cols, 0, 159, cfg);
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  for (double target : {0.1, 0.2, 0.3}) {
    const auto eval =
        evaluate_fixed_recall(fleet, scores, 160, 219, cfg.horizon_days, target);
    EXPECT_GE(eval.recall, target) << "target " << target;
  }
}

TEST(Pipeline, HigherTargetRecallLowersPrecision) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const auto cols = data::all_feature_columns(fleet);
  const auto pred = train_predictor(fleet, cols, 0, 159, cfg);
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  const auto lo = evaluate_fixed_recall(fleet, scores, 160, 219, cfg.horizon_days, 0.1);
  const auto hi = evaluate_fixed_recall(fleet, scores, 160, 219, cfg.horizon_days, 0.6);
  EXPECT_GE(lo.precision, hi.precision);
}

TEST(Pipeline, DriveMaskRestrictsEvaluation) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const std::vector<std::size_t> cols = {0, 1, 2};
  const auto pred = train_predictor(fleet, cols, 0, 159, cfg);
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  std::vector<bool> none(fleet.drives.size(), false);
  const auto eval =
      evaluate_fixed_recall(fleet, scores, 160, 219, cfg.horizon_days, 0.3, &none);
  EXPECT_EQ(eval.confusion.total(), 0u);
}

TEST(Pipeline, EmptyScoresGiveEmptyEval) {
  const auto& fleet = shared_fleet();
  const std::vector<DriveDayScores> none;
  const auto eval = evaluate_fixed_recall(fleet, none, 0, 10, 30, 0.3);
  EXPECT_EQ(eval.confusion.total(), 0u);
  EXPECT_DOUBLE_EQ(eval.f05, 0.0);
}

TEST(Pipeline, WearRoutedPredictorScoresEveryday) {
  const auto& fleet = shared_fleet();
  const auto cfg = light_cfg();
  const auto selection = build_selection_samples(fleet, 0, 159, cfg);
  WefrOptions wopt;
  const auto sel = run_wefr(fleet, selection, 159, wopt);
  const auto pred = train_predictor(fleet, sel, 0, 159, cfg);
  const auto scores = score_fleet(fleet, pred, 160, 219, cfg);
  EXPECT_GT(scores.size(), 0u);
  std::size_t total_days = 0;
  for (const auto& ds : scores) total_days += ds.scores.size();
  // Every observed drive-day in the window must be scored.
  std::size_t expected = 0;
  for (const auto& drive : fleet.drives) {
    const int lo = std::max(160, drive.first_day);
    const int hi = std::min(219, drive.last_day());
    if (lo <= hi) expected += static_cast<std::size_t>(hi - lo + 1);
  }
  EXPECT_EQ(total_days, expected);
}

TEST(Pipeline, ScoreFleetRejectsBadWindow) {
  const auto& fleet = shared_fleet();
  WefrPredictor pred;
  EXPECT_THROW(score_fleet(fleet, pred, 10, 5, light_cfg()), std::invalid_argument);
}

TEST(Pipeline, ParallelScoreFleetMatchesSerial) {
  const auto& fleet = shared_fleet();
  auto cfg = light_cfg();
  const std::vector<std::size_t> cols = {0, 1, 2, 3};
  const auto pred = train_predictor(fleet, cols, 0, 159, cfg);

  cfg.num_threads = 1;
  const auto serial = score_fleet(fleet, pred, 160, 219, cfg);
  cfg.num_threads = 4;
  const auto parallel = score_fleet(fleet, pred, 160, 219, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].drive_index, parallel[i].drive_index);
    EXPECT_EQ(serial[i].first_day, parallel[i].first_day);
    ASSERT_EQ(serial[i].scores.size(), parallel[i].scores.size());
    for (std::size_t d = 0; d < serial[i].scores.size(); ++d)
      EXPECT_DOUBLE_EQ(serial[i].scores[d], parallel[i].scores[d]);
  }
}

TEST(Pipeline, ThreadedTrainingMatchesSerial) {
  // ExperimentConfig::num_threads flows into the forest fit when
  // forest.num_threads is 0; per-tree pre-forked streams keep the
  // model identical either way.
  const auto& fleet = shared_fleet();
  auto serial_cfg = light_cfg();
  serial_cfg.num_threads = 1;
  auto par_cfg = light_cfg();
  par_cfg.num_threads = 4;
  const std::vector<std::size_t> cols = {0, 1, 2, 3, 4};
  const auto ps = train_predictor(fleet, cols, 0, 159, serial_cfg);
  const auto pp = train_predictor(fleet, cols, 0, 159, par_cfg);
  const auto ss = score_fleet(fleet, ps, 200, 219, serial_cfg);
  const auto sp = score_fleet(fleet, pp, 200, 219, par_cfg);
  ASSERT_EQ(ss.size(), sp.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    ASSERT_EQ(ss[i].scores.size(), sp[i].scores.size());
    for (std::size_t d = 0; d < ss[i].scores.size(); ++d)
      EXPECT_DOUBLE_EQ(ss[i].scores[d], sp[i].scores[d]);
  }
}

}  // namespace
}  // namespace wefr::core
